#!/usr/bin/env bash
# Extract every ```bash fence from README.md and run it, so the
# snippets users copy-paste are verified by CI instead of rotting.
#
# A block whose nearest preceding non-blank line is the marker
#   <!-- docs-smoke: skip -->
# is extracted but not executed (full experiment sweeps, placeholder
# paths). Everything else must exit 0. Snippets run sequentially in a
# shared scratch directory inside the workspace, so later snippets may
# consume files earlier ones produced, and `cargo run` resolves the
# workspace normally while artifacts stay out of the repo root.
set -euo pipefail

root="$(cd "$(dirname "$0")/.." && pwd)"
work="$root/target/docs-smoke"
rm -rf "$work"
mkdir -p "$work"

awk -v out="$work" '
  /^```bash$/ {
    n += 1
    file = sprintf("%s/snippet-%02d.sh", out, n)
    print "#!/usr/bin/env bash" > file
    print "set -euo pipefail" >> file
    if (prev == "<!-- docs-smoke: skip -->") print "# docs-smoke: skip" >> file
    collecting = 1
    next
  }
  /^```$/ { if (collecting) { close(file); collecting = 0 }; next }
  collecting { print >> file; next }
  NF { prev = $0 }
' "$root/README.md"

status=0
ran=0
skipped=0
for snippet in "$work"/snippet-*.sh; do
  name="$(basename "$snippet")"
  if grep -q '^# docs-smoke: skip' "$snippet"; then
    skipped=$((skipped + 1))
    echo "--- skip $name"
    continue
  fi
  echo "--- run $name"
  tail -n +3 "$snippet"
  if (cd "$work" && bash "$snippet"); then
    ran=$((ran + 1))
  else
    echo "FAILED: $name" >&2
    status=1
  fi
done

echo "docs-smoke: $ran snippet(s) ran, $skipped skipped"
if [ "$ran" -eq 0 ]; then
  echo "docs-smoke: no runnable snippets found in README.md" >&2
  exit 1
fi
exit $status
