//! Cross-crate accuracy validation: the paper's central claim is that
//! checkpointed warming (live-points) matches full warming (SMARTS)
//! because the stored state *is* the functionally-warmed state.

use spectral::core::{simulate_live_point, CreationConfig, LivePointLibrary};
use spectral::stats::{SampleDesign, SystematicDesign};
use spectral::uarch::MachineConfig;
use spectral::warming::smarts_run;
use spectral::workloads::{dynamic_length, tiny};

/// Per-window CPI from live-points must track per-window CPI from full
/// warming closely: same windows, same machine, state reconstructed
/// from the library instead of carried by continuous warming.
#[test]
fn livepoints_match_full_warming_per_window() {
    let program = tiny().build();
    let machine = MachineConfig::eight_way();
    let n = dynamic_length(&program);
    let windows = SystematicDesign::new(1000, 2000).windows(n, 30, 11);

    let smarts = smarts_run(&machine, &program, &windows);

    let cfg = CreationConfig::for_machine(&machine);
    let library = LivePointLibrary::create_with_windows(&program, &cfg, &windows).unwrap();

    // Match live-points to SMARTS windows by measure_start.
    let mut pairs = Vec::new();
    for i in 0..library.len() {
        let lp = library.get(i).unwrap();
        let pos = windows
            .iter()
            .position(|w| w.measure_start == lp.window.measure_start)
            .expect("live-point window must come from the design");
        let stats = simulate_live_point(&lp, &program, &machine).unwrap();
        pairs.push((pos, stats.cpi()));
    }
    assert!(pairs.len() >= smarts.per_window.len() - 1, "almost all windows present");

    let mut worst: f64 = 0.0;
    let mut sum = 0.0;
    for &(pos, lp_cpi) in &pairs {
        let smarts_cpi = smarts.per_window[pos];
        let rel = (lp_cpi - smarts_cpi).abs() / smarts_cpi;
        worst = worst.max(rel);
        sum += rel;
    }
    let avg = sum / pairs.len() as f64;
    eprintln!(
        "live-point vs SMARTS per-window: avg {:.3}% worst {:.3}%",
        avg * 100.0,
        worst * 100.0
    );
    assert!(
        avg < 0.02,
        "average per-window discrepancy too high: {:.3}% (worst {:.3}%)",
        avg * 100.0,
        worst * 100.0
    );
    assert!(worst < 0.10, "worst per-window discrepancy too high: {:.3}%", worst * 100.0);
}
