//! Differential guard for the per-point kernel optimisations.
//!
//! The pre-decode / index-wakeup / scratch-buffer work (DecodedProgram,
//! ready-queue issue, `decompress_into`) must not change any simulated
//! result. This test pins every experiment-visible statistic for a
//! fixed seed and configuration to golden values captured from the
//! unoptimised kernel: the compressed library bytes, each live-point's
//! full `WindowStats`, and the online/sweep estimates derived from
//! them. Any behavioural drift in the kernel shows up as a digest
//! mismatch here before it can silently bias an experiment.
//!
//! The parallel tests extend the same guard over the dynamic
//! chunk-claiming scheduler: exhaustive parallel runs (online, matched,
//! sweep) must reproduce the serial goldens bit-for-bit at every thread
//! count, in both scheduling modes.
//!
//! To regenerate the goldens after an *intentional* behaviour change,
//! run with `SPECTRAL_DIFF_PRINT=1 cargo test --release --test
//! differential -- --nocapture` and paste the printed constants.

use spectral_core::{
    simulate_live_point, CreationConfig, LivePointLibrary, MatchedRunner, OnlineRunner, RunPolicy,
    SchedMode, SweepRunner, V2WriteOptions,
};
use spectral_uarch::{MachineConfig, WindowStats};
use spectral_workloads::tiny;

/// Same workload/shape as the scaling bench: tiny benchmark, 8-way
/// machine, 24-point library, default creation seed.
const POINTS: u64 = 24;

/// CRC-like FNV-1a fold over 64-bit words: stable, dependency-free, and
/// sensitive to every bit of every field.
fn fold(digest: &mut u64, word: u64) {
    *digest ^= word;
    *digest = digest.wrapping_mul(0x100_0000_01B3);
}

fn stats_digest(digest: &mut u64, s: &WindowStats) {
    for w in [
        s.committed,
        s.cycles,
        s.wrong_path_fetched,
        s.mispredicts,
        s.loads,
        s.stores,
        s.l1d_misses,
        s.l2_misses,
        s.l1i_misses,
        s.dtlb_misses,
    ] {
        fold(digest, w);
    }
}

fn setup() -> (spectral_isa::Program, LivePointLibrary) {
    let program = tiny().build();
    let cfg = CreationConfig::for_machine(&MachineConfig::eight_way()).with_sample_size(POINTS);
    let library = LivePointLibrary::create(&program, &cfg).expect("fixture library");
    (program, library)
}

fn exhaustive() -> RunPolicy {
    RunPolicy { target_rel_err: 1e-12, trajectory_stride: 0, ..RunPolicy::default() }
}

// Golden values captured from the pre-optimisation kernel (seed
// 0x5EC7, tiny workload, eight-way machine, 24 points).
const GOLDEN_CONTENT_HASH: u32 = 0x0F52D33F;
const GOLDEN_STATS_DIGEST: u64 = 0x7E6D2628D2DD13C2;
const GOLDEN_POINT0: [u64; 10] = [1000, 344, 11, 1, 328, 0, 0, 0, 0, 0];
const GOLDEN_RUN_MEAN_BITS: u64 = 0x3FE0_DD2F_1A9F_BE77;
const GOLDEN_RUN_VARIANCE_BITS: u64 = 0x3FC3_97E7_F208_43C1;
const GOLDEN_RUN_PROCESSED: usize = 24;
const GOLDEN_SWEEP_MEAN_BITS: [u64; 3] =
    [0x3FE0_DD2F_1A9F_BE77, 0x3FE2_3078_263A_B597, 0x3FE2_06D3_A06D_3A07];

fn print_mode() -> bool {
    std::env::var_os("SPECTRAL_DIFF_PRINT").is_some()
}

#[test]
fn library_bytes_are_bit_identical() {
    let (_, library) = setup();
    let hash = library.content_hash();
    if print_mode() {
        println!("const GOLDEN_CONTENT_HASH: u32 = 0x{hash:08X};");
        return;
    }
    assert_eq!(hash, GOLDEN_CONTENT_HASH, "compressed library bytes changed");
}

#[test]
fn window_stats_are_bit_identical() {
    let (program, library) = setup();
    let machine = MachineConfig::eight_way();
    let mut digest = 0xCBF2_9CE4_8422_2325u64;
    let mut point0: Option<WindowStats> = None;
    for i in 0..library.len() {
        let lp = library.get(i).expect("decode");
        let stats = simulate_live_point(&lp, &program, &machine).expect("simulate");
        stats_digest(&mut digest, &stats);
        if i == 0 {
            point0 = Some(stats);
        }
    }
    let p0 = point0.expect("non-empty library");
    let p0_fields = [
        p0.committed,
        p0.cycles,
        p0.wrong_path_fetched,
        p0.mispredicts,
        p0.loads,
        p0.stores,
        p0.l1d_misses,
        p0.l2_misses,
        p0.l1i_misses,
        p0.dtlb_misses,
    ];
    if print_mode() {
        println!("const GOLDEN_STATS_DIGEST: u64 = 0x{digest:016X};");
        println!("const GOLDEN_POINT0: [u64; 10] = {p0_fields:?};");
        return;
    }
    assert_eq!(p0_fields, GOLDEN_POINT0, "point 0 WindowStats changed");
    assert_eq!(digest, GOLDEN_STATS_DIGEST, "per-point WindowStats changed");
}

#[test]
fn online_estimate_is_bit_identical() {
    let (program, library) = setup();
    let runner = OnlineRunner::new(&library, MachineConfig::eight_way());
    let est = runner.run(&program, &exhaustive()).expect("run");
    let mean = est.mean().to_bits();
    let var = est.estimator().variance().to_bits();
    if print_mode() {
        println!("const GOLDEN_RUN_MEAN_BITS: u64 = 0x{mean:016X};");
        println!("const GOLDEN_RUN_VARIANCE_BITS: u64 = 0x{var:016X};");
        println!("const GOLDEN_RUN_PROCESSED: usize = {};", est.processed());
        return;
    }
    assert_eq!(est.processed(), GOLDEN_RUN_PROCESSED);
    assert_eq!(mean, GOLDEN_RUN_MEAN_BITS, "online mean changed");
    assert_eq!(var, GOLDEN_RUN_VARIANCE_BITS, "online variance changed");
}

#[test]
fn parallel_online_is_bit_identical_at_any_thread_count() {
    // The dynamic chunk-claiming scheduler replays observations in
    // index order after the join, so an exhaustive parallel run must
    // reproduce the serial goldens exactly — whatever the thread count
    // or scheduling mode.
    let (program, library) = setup();
    let runner = OnlineRunner::new(&library, MachineConfig::eight_way());
    for sched in [SchedMode::DynamicChunk, SchedMode::StaticStride] {
        for threads in [1usize, 2, 4] {
            let policy = RunPolicy { sched, ..exhaustive() };
            let est = runner.run_parallel(&program, &policy, threads).expect("parallel run");
            assert_eq!(est.processed(), GOLDEN_RUN_PROCESSED, "{sched:?} x{threads}");
            assert_eq!(
                est.mean().to_bits(),
                GOLDEN_RUN_MEAN_BITS,
                "{sched:?} x{threads}: parallel mean drifted from the serial golden"
            );
            assert_eq!(
                est.estimator().variance().to_bits(),
                GOLDEN_RUN_VARIANCE_BITS,
                "{sched:?} x{threads}: parallel variance drifted from the serial golden"
            );
        }
    }
}

#[test]
fn parallel_trajectory_matches_serial_exactly() {
    let (program, library) = setup();
    let runner = OnlineRunner::new(&library, MachineConfig::eight_way());
    let policy = RunPolicy { trajectory_stride: 5, ..exhaustive() };
    let serial = runner.run(&program, &policy).expect("serial run");
    assert!(!serial.trajectory().is_empty(), "stride 5 over 24 points records samples");
    for threads in [2usize, 4] {
        let parallel = runner.run_parallel(&program, &policy, threads).expect("parallel run");
        assert_eq!(
            serial.trajectory(),
            parallel.trajectory(),
            "x{threads}: replayed trajectory must equal the serial one bit-for-bit"
        );
        assert_eq!(serial.half_width().to_bits(), parallel.half_width().to_bits());
    }
}

#[test]
fn parallel_matched_is_bit_identical() {
    let (program, library) = setup();
    let base = MachineConfig::eight_way();
    let experiment = base.clone().with_mem_latency(200);
    let runner = MatchedRunner::new(&library, base, experiment);
    let serial = runner.run(&program, &exhaustive()).expect("serial matched run");
    for threads in [2usize, 4] {
        let parallel =
            runner.run_parallel(&program, &exhaustive(), threads).expect("parallel matched run");
        assert_eq!(parallel.processed(), serial.processed(), "x{threads}");
        assert_eq!(
            parallel.delta_mean().to_bits(),
            serial.delta_mean().to_bits(),
            "x{threads}: matched delta mean drifted"
        );
        assert_eq!(
            parallel.delta_half_width().to_bits(),
            serial.delta_half_width().to_bits(),
            "x{threads}: matched delta half-width drifted"
        );
    }
}

#[test]
fn parallel_sweep_is_bit_identical() {
    let (program, library) = setup();
    let machine = MachineConfig::eight_way();
    let machines = vec![
        machine.clone(),
        machine.clone().with_mem_latency(200),
        machine.clone().with_queues(64, 32),
    ];
    let sweep = SweepRunner::new(&library, machines);
    for threads in [2usize, 4] {
        let out = sweep.run_parallel(&program, &exhaustive(), threads).expect("parallel sweep");
        let means: Vec<u64> = out.estimates().iter().map(|e| e.mean().to_bits()).collect();
        assert_eq!(means, GOLDEN_SWEEP_MEAN_BITS, "x{threads}: sweep means drifted");
    }
}

#[test]
fn v2_container_preserves_the_content_hash_golden() {
    // A dictionary-less v2 save re-frames the exact v1 record bodies,
    // so the stored content hash — and the hash recomputed by the
    // re-opened paged library — must equal the v1 golden.
    let (_, library) = setup();
    let path = std::env::temp_dir().join(format!("spectral_diff_v2_{}.splp", std::process::id()));
    let opts = V2WriteOptions { dict: false, ..V2WriteOptions::default() };
    let summary = library.save_v2(&path, &opts).expect("save v2");
    assert_eq!(summary.content_hash, GOLDEN_CONTENT_HASH, "v2 stored hash drifted");
    let paged = LivePointLibrary::open(&path).expect("open v2");
    assert_eq!(paged.format_version(), 2);
    assert_eq!(paged.content_hash(), GOLDEN_CONTENT_HASH, "v2 reopened hash drifted");
    std::fs::remove_file(&path).ok();
}

#[test]
fn v2_decoded_points_reproduce_the_run_goldens() {
    // Points decoded through the paged backing (dictionary compression
    // included) must drive the online runner to the exact serial and
    // parallel goldens — format v2 cannot perturb any simulated result.
    let (program, library) = setup();
    let path = std::env::temp_dir().join(format!("spectral_diff_v2d_{}.splp", std::process::id()));
    library.save_v2(&path, &V2WriteOptions::default()).expect("save v2 dict");
    let paged = LivePointLibrary::open(&path).expect("open v2");
    let runner = OnlineRunner::new(&paged, MachineConfig::eight_way());
    let est = runner.run(&program, &exhaustive()).expect("serial run on v2");
    assert_eq!(est.processed(), GOLDEN_RUN_PROCESSED);
    assert_eq!(est.mean().to_bits(), GOLDEN_RUN_MEAN_BITS, "v2 serial mean drifted");
    assert_eq!(
        est.estimator().variance().to_bits(),
        GOLDEN_RUN_VARIANCE_BITS,
        "v2 serial variance drifted"
    );
    for threads in [2usize, 4] {
        let est = runner.run_parallel(&program, &exhaustive(), threads).expect("parallel on v2");
        assert_eq!(est.processed(), GOLDEN_RUN_PROCESSED, "x{threads}");
        assert_eq!(est.mean().to_bits(), GOLDEN_RUN_MEAN_BITS, "x{threads}: v2 mean drifted");
        assert_eq!(
            est.estimator().variance().to_bits(),
            GOLDEN_RUN_VARIANCE_BITS,
            "x{threads}: v2 variance drifted"
        );
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn v1_v2_v1_round_trip_is_byte_identical() {
    // Converting to v2 with shared dictionaries and back must restore
    // the exact v1 byte stream (dictionary records decompress and
    // deterministically recompress to their original plain streams).
    let (_, library) = setup();
    let v1 = library.to_bytes().expect("v1 bytes");
    let path = std::env::temp_dir().join(format!("spectral_diff_v2r_{}.splp", std::process::id()));
    library.save_v2(&path, &V2WriteOptions::default()).expect("save v2 dict");
    let paged = LivePointLibrary::open(&path).expect("open v2");
    assert_eq!(paged.to_bytes().expect("back to v1"), v1, "v1→v2→v1 bytes drifted");
    std::fs::remove_file(&path).ok();
}

#[test]
fn sweep_estimates_are_bit_identical() {
    let (program, library) = setup();
    let machine = MachineConfig::eight_way();
    let machines = vec![
        machine.clone(),
        machine.clone().with_mem_latency(200),
        machine.clone().with_queues(64, 32),
    ];
    let sweep = SweepRunner::new(&library, machines);
    let out = sweep.run(&program, &exhaustive()).expect("sweep");
    let means: Vec<u64> = out.estimates().iter().map(|e| e.mean().to_bits()).collect();
    if print_mode() {
        println!("const GOLDEN_SWEEP_MEAN_BITS: [u64; 3] = {means:#018X?};");
        return;
    }
    assert_eq!(means, GOLDEN_SWEEP_MEAN_BITS, "sweep means changed");
}
