//! Cross-crate property tests: invariants that must hold for arbitrary
//! programs and access streams.

use proptest::prelude::*;
use spectral::cache::{Cache, CacheConfig, CacheHierarchy, Csr, HierarchyConfig, Mtr};
use spectral::isa::{Emulator, ProgramBuilder, Reg};
use spectral::stats::OnlineEstimator;
use spectral::uarch::{DetailedSim, MachineConfig};

/// A tiny random-but-valid program: arithmetic, memory traffic over a
/// small buffer, and a bounded loop.
fn arb_program() -> impl Strategy<Value = spectral::isa::Program> {
    (
        1u8..20,                                              // loop trips
        proptest::collection::vec((0u8..6, 0i64..64), 1..24), // body ops
    )
        .prop_map(|(trips, ops)| {
            let mut b = ProgramBuilder::new("prop");
            let buf = b.alloc_data(64);
            b.li(Reg::R1, buf as i64);
            b.li(Reg::R2, 0);
            b.li(Reg::R3, trips as i64);
            let top = b.label();
            for (kind, imm) in &ops {
                match kind {
                    0 => {
                        b.addi(Reg::R4, Reg::R4, *imm);
                    }
                    1 => {
                        b.mul(Reg::R5, Reg::R4, Reg::R2);
                    }
                    2 => {
                        b.load(Reg::R6, Reg::R1, (imm % 64) * 8);
                    }
                    3 => {
                        b.store(Reg::R1, Reg::R4, (imm % 64) * 8);
                    }
                    4 => {
                        b.fadd(1, 2, 3);
                    }
                    _ => {
                        b.xori(Reg::R7, Reg::R4, *imm);
                    }
                }
            }
            b.addi(Reg::R2, Reg::R2, 1);
            b.blt(Reg::R2, Reg::R3, top);
            b.halt();
            b.build()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The timing model must commit exactly the functional stream.
    #[test]
    fn timing_commits_functional_stream(program in arb_program()) {
        let mut emu = Emulator::new(&program);
        let mut n = 0u64;
        while emu.step().is_some() {
            n += 1;
        }
        let cfg = MachineConfig::eight_way();
        let stats = DetailedSim::new(&cfg, &program, Emulator::new(&program)).run_to_completion();
        prop_assert_eq!(stats.committed, n);
        // CPI must be sane: bounded below by 1/width and above by the
        // worst serialized latency.
        prop_assert!(stats.cpi() >= 1.0 / cfg.width as f64);
        prop_assert!(stats.cpi() < 400.0);
    }

    /// Detailed simulation is deterministic.
    #[test]
    fn timing_is_deterministic(program in arb_program()) {
        let cfg = MachineConfig::eight_way();
        let a = DetailedSim::new(&cfg, &program, Emulator::new(&program)).run_to_completion();
        let b = DetailedSim::new(&cfg, &program, Emulator::new(&program)).run_to_completion();
        prop_assert_eq!(a, b);
    }

    /// CSR reconstruction equals direct simulation for arbitrary streams
    /// and covered geometries (contents + LRU order).
    #[test]
    fn csr_matches_direct_cache(
        addrs in proptest::collection::vec((0u64..1u64 << 20, any::<bool>()), 1..800),
        shift in 0u32..3,
    ) {
        let max = CacheConfig::new(1 << 16, 4, 32).expect("valid");
        let target = CacheConfig::new((1 << 16) >> shift, 4 >> shift.min(2), 32);
        prop_assume!(target.is_ok());
        let target = target.expect("checked");
        prop_assume!(max.covers(&target));
        let mut csr = Csr::new(max);
        let mut direct = Cache::new(target);
        for &(a, w) in &addrs {
            csr.record(a, w);
            direct.access(a, w);
        }
        let rec = csr.reconstruct(&target).expect("covered");
        let blocks = |s: &spectral::cache::CacheState| -> Vec<Vec<u64>> {
            s.sets.iter().map(|v| v.iter().map(|&(b, _)| b).collect()).collect()
        };
        prop_assert_eq!(blocks(&rec), blocks(&direct.to_state()));
    }

    /// MTR reconstruction equals direct simulation for arbitrary
    /// geometries at or above its granule.
    #[test]
    fn mtr_matches_direct_cache(
        addrs in proptest::collection::vec(0u64..1u64 << 18, 1..600),
        size_log in 10u32..16,
        assoc_log in 0u32..3,
    ) {
        let target = CacheConfig::new(1 << size_log, 1 << assoc_log, 64);
        prop_assume!(target.is_ok());
        let target = target.expect("checked");
        let mut mtr = Mtr::new(32).expect("valid");
        let mut direct = Cache::new(target);
        for &a in &addrs {
            mtr.record(a, false);
            direct.access(a, false);
        }
        let rec = mtr.reconstruct(&target).expect("covered");
        let blocks = |s: &spectral::cache::CacheState| -> Vec<Vec<u64>> {
            s.sets.iter().map(|v| v.iter().map(|&(b, _)| b).collect()).collect()
        };
        prop_assert_eq!(blocks(&rec), blocks(&direct.to_state()));
    }

    /// Hierarchy snapshot/restore is lossless under arbitrary traffic.
    #[test]
    fn hierarchy_snapshot_roundtrip(
        addrs in proptest::collection::vec((0u64..1u64 << 22, 0u8..3), 1..500),
    ) {
        use spectral::cache::AccessKind;
        let cfg = HierarchyConfig::baseline_8way();
        let mut h = CacheHierarchy::new(cfg);
        for &(a, k) in &addrs {
            let kind = match k {
                0 => AccessKind::Fetch,
                1 => AccessKind::Read,
                _ => AccessKind::Write,
            };
            h.access(kind, a);
        }
        let snap = h.snapshot();
        let restored = CacheHierarchy::from_snapshot(cfg, &snap);
        prop_assert_eq!(restored.snapshot(), snap);
    }

    /// The dynamic chunk scheduler partitions the index space exactly:
    /// every index in `0..limit` is claimed once and only once, for any
    /// library size, worker count, chunk size, and any adaptive
    /// shrinking the workers drive mid-run.
    #[test]
    fn chunk_cursor_tiles_indices_exactly_once(
        limit in 1usize..700,
        threads in 1usize..9,
        chunk in 0usize..40,
        shrink_seed in proptest::collection::vec(1.0f64..16.0, 1..12),
    ) {
        use spectral::core::ChunkCursor;
        let cursor = ChunkCursor::new(limit, threads, chunk);
        let claimed = std::sync::Mutex::new(vec![0u32; limit]);
        std::thread::scope(|scope| {
            for worker in 0..threads {
                let (cursor, claimed, shrink_seed) = (&cursor, &claimed, &shrink_seed);
                scope.spawn(move || {
                    let mark = |range: std::ops::Range<usize>| {
                        let mut c = claimed.lock().expect("claim lock");
                        for i in range {
                            c[i] += 1;
                        }
                    };
                    mark(cursor.first(worker));
                    let mut round = 0usize;
                    while let Some(range) = cursor.claim() {
                        mark(range);
                        // Drive the adaptive shrink from the workers, as
                        // flush_batch does from the live estimate.
                        let ratio = shrink_seed[(worker + round) % shrink_seed.len()];
                        cursor.note_rel_error(ratio * 0.03, 0.03);
                        round += 1;
                    }
                });
            }
        });
        let claimed = claimed.into_inner().expect("claim lock");
        prop_assert!(
            claimed.iter().all(|&c| c == 1),
            "every index claimed exactly once: {claimed:?}"
        );
    }

    /// Merged estimators equal sequential estimators for any partition.
    #[test]
    fn estimator_merge_associative(
        xs in proptest::collection::vec(-100.0f64..100.0, 1..200),
        cut in 0usize..200,
    ) {
        let cut = cut.min(xs.len());
        let mut left: OnlineEstimator = xs[..cut].iter().copied().collect();
        let right: OnlineEstimator = xs[cut..].iter().copied().collect();
        left.merge(&right);
        let all: OnlineEstimator = xs.iter().copied().collect();
        prop_assert_eq!(left.count(), all.count());
        prop_assert!((left.mean() - all.mean()).abs() < 1e-9);
        prop_assert!((left.variance() - all.variance()).abs() < 1e-6);
    }
}
