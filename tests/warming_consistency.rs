//! The invariant behind the paper's central accuracy claim: the warm
//! state a live-point stores must equal the warm state functional
//! warming would have produced, structure by structure.

use spectral::core::{CreationConfig, LivePointLibrary};
use spectral::stats::{SampleDesign, SystematicDesign};
use spectral::uarch::MachineConfig;
use spectral::warming::FunctionalWarmer;
use spectral::workloads::{dynamic_length, tiny};

/// Reconstructed cache/TLB/predictor state from a live-point must match
/// the FunctionalWarmer's state at the same instant, exactly.
#[test]
fn livepoint_state_equals_functional_warming_state() {
    let program = tiny().build();
    let machine = MachineConfig::eight_way();
    let n = dynamic_length(&program);
    let windows = SystematicDesign::new(1000, 2000).windows(n, 8, 21);
    let cfg = CreationConfig::for_machine(&machine);
    let library = LivePointLibrary::create_with_windows(&program, &cfg, &windows).expect("library");

    // Walk the functional warmer to each window start and compare.
    let mut warmer = FunctionalWarmer::new(&machine);
    let mut emu = spectral::isa::Emulator::new(&program);
    for w in &windows {
        while emu.seq() < w.detail_start {
            let di = emu.step().expect("within benchmark");
            warmer.observe(&di);
        }
        // Find the live-point for this window (library is shuffled).
        let lp = (0..library.len())
            .map(|i| library.get(i).expect("decode"))
            .find(|lp| lp.window.measure_start == w.measure_start)
            .expect("window present");

        let reconstructed =
            lp.reconstruct_hierarchy(&machine.hierarchy).expect("covered configuration");
        let warm = warmer.hierarchy();

        let blocks = |s: &spectral::cache::CacheState| -> Vec<Vec<u64>> {
            s.sets.iter().map(|v| v.iter().map(|&(b, _)| b).collect()).collect()
        };
        assert_eq!(
            blocks(&reconstructed.l1i().to_state()),
            blocks(&warm.l1i().to_state()),
            "L1I state mismatch at window {}",
            w.measure_start
        );
        assert_eq!(
            blocks(&reconstructed.l1d().to_state()),
            blocks(&warm.l1d().to_state()),
            "L1D state mismatch at window {}",
            w.measure_start
        );
        assert_eq!(
            blocks(&reconstructed.l2().to_state()),
            blocks(&warm.l2().to_state()),
            "L2 state mismatch at window {}",
            w.measure_start
        );
        assert_eq!(
            blocks(&reconstructed.itlb().to_state()),
            blocks(&warm.itlb().to_state()),
            "ITLB state mismatch at window {}",
            w.measure_start
        );
        assert_eq!(
            blocks(&reconstructed.dtlb().to_state()),
            blocks(&warm.dtlb().to_state()),
            "DTLB state mismatch at window {}",
            w.measure_start
        );

        // Predictor snapshots must match bit for bit.
        let bp = lp.predictor_for(&machine.bpred).expect("stored predictor");
        assert_eq!(
            bp.snapshot(),
            warmer.bpred().snapshot(),
            "predictor state mismatch at window {}",
            w.measure_start
        );

        // Architectural state: same registers and pc.
        assert_eq!(lp.live_state.arch.pc, emu.pc());
        assert_eq!(lp.live_state.arch.seq, emu.seq());
        assert_eq!(&lp.live_state.arch.regs, emu.regs());
    }
}
