//! End-to-end workflow tests spanning every crate: the paper's §6.3
//! experiment procedure (create → shuffle → store → baseline →
//! comparative studies) exercised through the public API.

use spectral::core::{
    CreationConfig, LivePointLibrary, MatchedRunner, OnlineRunner, RunPolicy, StateScope,
};
use spectral::stats::{SampleDesign, SystematicDesign};
use spectral::uarch::MachineConfig;
use spectral::workloads::{dynamic_length, tiny, Benchmark, Kernel, Schedule};

fn small_library(program: &spectral::isa::Program) -> LivePointLibrary {
    let mut cfg = CreationConfig::default().with_sample_size(40);
    cfg.unit_len = 500;
    cfg.warm_len = 1500;
    LivePointLibrary::create(program, &cfg).expect("library creation")
}

#[test]
fn full_experiment_procedure() {
    // Steps 1-5 of Figure 6, on the tiny benchmark.
    let program = tiny().build();
    let library = small_library(&program);
    assert!(library.len() >= 30);

    // Step 3: the library is stored as a single compressed stream.
    let path = std::env::temp_dir().join("spectral_e2e.splp");
    library.save(&path).expect("save");
    let library = LivePointLibrary::load(&path).expect("load");
    std::fs::remove_file(&path).ok();

    // Step 4: baseline measurement with online confidence.
    let baseline = OnlineRunner::new(&library, MachineConfig::eight_way())
        .run(&program, &RunPolicy { max_points: Some(40), ..RunPolicy::default() })
        .expect("baseline run");
    assert!(baseline.mean() > 0.1 && baseline.mean() < 20.0);

    // Step 5: a comparative study against the 16-way machine from the
    // same library (the default creation bounds cover both).
    let outcome =
        MatchedRunner::new(&library, MachineConfig::eight_way(), MachineConfig::sixteen_way())
            .run(&program, &RunPolicy::default())
            .expect("matched run");
    assert!(outcome.processed() >= 30);
}

#[test]
fn sixteen_way_absolute_run_from_default_library() {
    let program = tiny().build();
    let library = small_library(&program);
    let est = OnlineRunner::new(&library, MachineConfig::sixteen_way())
        .run(&program, &RunPolicy { max_points: Some(35), ..RunPolicy::default() })
        .expect("16-way run");
    assert!(est.processed() >= 30);
    assert!(est.mean() > 0.05 && est.mean() < 20.0);
}

#[test]
fn dedicated_library_rejects_oversized_machine() {
    let program = tiny().build();
    let cfg = CreationConfig::for_machine(&MachineConfig::eight_way()).with_sample_size(5);
    let library = LivePointLibrary::create(&program, &cfg).expect("library");
    let err = OnlineRunner::new(&library, MachineConfig::sixteen_way())
        .run(&program, &RunPolicy::default());
    assert!(err.is_err(), "16-way hierarchy exceeds an 8-way-only library");
}

#[test]
fn restricted_scope_changes_wrong_path_only() {
    // Restricted live-state must reproduce correct-path execution
    // exactly; only wrong-path scheduling may differ. CPI deltas should
    // therefore be small but the committed counts identical.
    let bench = Benchmark::new(
        "rswp",
        "restricted-scope fixture with mispredicts and memory",
        vec![
            Kernel::RandomAccess { words: 1 << 14, count: 300 },
            Kernel::Branchy {
                count: 300,
                predictability: spectral::workloads::Predictability::Random,
            },
        ],
        Schedule::Interleaved,
        200_000,
        5,
    );
    let program = bench.build();
    let windows = SystematicDesign::new(1000, 2000).windows(dynamic_length(&program), 25, 3);
    let full_cfg = CreationConfig::for_machine(&MachineConfig::eight_way());
    let full = LivePointLibrary::create_with_windows(&program, &full_cfg, &windows).unwrap();
    let restricted = LivePointLibrary::create_with_windows(
        &program,
        &full_cfg.clone().with_scope(StateScope::Restricted),
        &windows,
    )
    .unwrap();

    let policy = RunPolicy { target_rel_err: 1e-12, trajectory_stride: 0, ..RunPolicy::default() };
    let ef = OnlineRunner::new(&full, MachineConfig::eight_way()).run(&program, &policy).unwrap();
    let er =
        OnlineRunner::new(&restricted, MachineConfig::eight_way()).run(&program, &policy).unwrap();
    assert_eq!(ef.processed(), er.processed());
    let rel = (ef.mean() - er.mean()).abs() / ef.mean();
    assert!(rel < 0.10, "restricted scope shifted CPI by {:.1}%", rel * 100.0);
}

#[test]
fn library_shuffle_preserves_content() {
    let program = tiny().build();
    let mut library = small_library(&program);
    let mut starts: Vec<u64> =
        (0..library.len()).map(|i| library.get(i).unwrap().window.measure_start).collect();
    library.shuffle(99);
    let mut starts2: Vec<u64> =
        (0..library.len()).map(|i| library.get(i).unwrap().window.measure_start).collect();
    starts.sort_unstable();
    starts2.sort_unstable();
    assert_eq!(starts, starts2, "shuffle must be a permutation");
}

#[test]
fn estimate_means_are_order_independent() {
    // Unbiasedness mechanics: any processing order yields the same
    // exhaustive mean (paper §6.1's sub-sample argument).
    let program = tiny().build();
    let mut library = small_library(&program);
    let policy = RunPolicy { target_rel_err: 1e-12, trajectory_stride: 0, ..RunPolicy::default() };
    let a = OnlineRunner::new(&library, MachineConfig::eight_way()).run(&program, &policy).unwrap();
    library.shuffle(12345);
    let b = OnlineRunner::new(&library, MachineConfig::eight_way()).run(&program, &policy).unwrap();
    assert!((a.mean() - b.mean()).abs() < 1e-12);
}

#[test]
fn persistence_does_not_change_results() {
    // Saving and loading a library must reproduce identical simulations
    // (the on-disk container is the paper's distribution format).
    let program = tiny().build();
    let library = small_library(&program);
    let policy = RunPolicy { target_rel_err: 1e-12, trajectory_stride: 0, ..RunPolicy::default() };
    let before =
        OnlineRunner::new(&library, MachineConfig::eight_way()).run(&program, &policy).unwrap();

    let bytes = library.to_bytes().unwrap();
    let reloaded = LivePointLibrary::from_bytes(&bytes).unwrap();
    let after =
        OnlineRunner::new(&reloaded, MachineConfig::eight_way()).run(&program, &policy).unwrap();

    assert_eq!(before.processed(), after.processed());
    assert_eq!(before.mean(), after.mean(), "byte-identical records, identical results");
}
