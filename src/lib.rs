//! # spectral — simulation sampling with live-points
//!
//! Umbrella crate re-exporting the Spectral workspace: a full
//! reproduction of *Simulation Sampling with Live-points* (Wenisch,
//! Wunderlich, Falsafi, Hoe — ISPASS 2006) in Rust, including every
//! substrate the paper depends on (functional emulator, synthetic
//! benchmark suite, cache/TLB models, an out-of-order superscalar timing
//! model, warming strategies, and the live-point sampling framework).
//!
//! See the individual crates for focused documentation:
//!
//! * [`isa`] — SRISC ISA and functional emulator
//! * [`workloads`] — synthetic SPEC2K-like benchmark suite
//! * [`cache`] — caches, TLBs, CSR/MTR reconstructable warm state
//! * [`uarch`] — cycle-level out-of-order timing model
//! * [`stats`] — sampling statistics and confidence machinery
//! * [`codec`] — DER subset + LZSS compression for live-point storage
//! * [`warming`] — full (SMARTS), detailed, and adaptive (MRRL) warming
//! * [`core`] — live-points: creation, libraries, runners, matched pairs
//! * [`telemetry`] — metrics, span tracing, and run manifests
//! * [`registry`] — append-only cross-run registry for perf trajectories
//!
//! ## Quickstart
//!
//! ```no_run
//! use spectral::core::{LivePointLibrary, CreationConfig, OnlineRunner, RunPolicy};
//! use spectral::uarch::MachineConfig;
//! use spectral::workloads::suite;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let bench = &suite()[0];
//! let program = bench.build();
//! let library = LivePointLibrary::create(&program, &CreationConfig::default())?;
//! let estimate = OnlineRunner::new(&library, MachineConfig::eight_way())
//!     .run(&program, &RunPolicy::default())?;
//! println!("CPI = {:.3} ± {:.3}", estimate.mean(), estimate.half_width());
//! # Ok(())
//! # }
//! ```

pub use spectral_cache as cache;
pub use spectral_codec as codec;
pub use spectral_core as core;
pub use spectral_isa as isa;
pub use spectral_registry as registry;
pub use spectral_stats as stats;
pub use spectral_telemetry as telemetry;
pub use spectral_uarch as uarch;
pub use spectral_warming as warming;
pub use spectral_workloads as workloads;
