//! Design-space exploration with the decode-once sweeper: the workflow
//! the paper's conclusion promises ("parametric studies that cover a
//! wide range of microarchitectural options … with reasonable
//! computational requirements").
//!
//! ```text
//! cargo run --release --example design_space [benchmark-name] [--threads T]
//!     [--metrics-out PATH] [--trace PATH]
//! ```
//!
//! One live-point library answers every design question in a single
//! pass: [`SweepRunner`] decompresses and DER-decodes each record once,
//! simulates it under the baseline and every candidate, and — because
//! all configurations see exactly the same points — yields matched-pair
//! comparisons against the baseline by construction. `--metrics-out`
//! writes a run manifest; `--trace` appends span events as JSONL.

use std::error::Error;
use std::time::Instant;

use spectral::core::{CreationConfig, LivePointLibrary, RunPolicy, SweepRunner};
use spectral::telemetry::{self, RunManifest};
use spectral::uarch::{FuPools, MachineConfig};
use spectral::workloads::by_name;

fn main() -> Result<(), Box<dyn Error>> {
    let mut name = "gcc-like".to_owned();
    let mut threads: Option<usize> = None;
    let mut metrics_out: Option<String> = None;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--threads" => {
                threads = Some(it.next().ok_or("--threads needs a value")?.parse()?);
            }
            "--metrics-out" => {
                metrics_out = Some(it.next().ok_or("--metrics-out needs a path")?);
            }
            "--trace" => {
                telemetry::set_trace_path(it.next().ok_or("--trace needs a path")?)?;
            }
            _ => name = a,
        }
    }
    telemetry::trace_from_env()?;
    let threads = threads
        .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1));

    let bench = by_name(&name).ok_or_else(|| format!("unknown benchmark {name}"))?;
    let program = bench.build();
    let base = MachineConfig::eight_way();
    let mut manifest = RunManifest::new("design_space", bench.name(), base.name, threads);

    println!("exploring the design space around the 8-way baseline on {}", bench.name());
    let config = CreationConfig::for_machine(&base).with_sample_size(300);
    manifest.seed = Some(config.seed);
    let t = Instant::now();
    let library = LivePointLibrary::create_parallel(&program, &config, threads)?;
    manifest.phase("create_library", t.elapsed().as_secs_f64());
    manifest.library_id = Some(format!("crc32:{:08x}", library.content_hash()));
    manifest.library_format = Some(u64::from(library.format_version()));
    manifest.library_points = Some(library.len() as u64);
    println!("library: {} live-points\n", library.len());

    let candidates: Vec<(&str, MachineConfig)> = vec![
        ("halve RUU/LSQ (128/64 → 64/32)", base.clone().with_queues(64, 32)),
        ("double memory latency (100 → 200)", base.clone().with_mem_latency(200)),
        ("drop to 2 integer ALUs", base.clone().with_fu(FuPools { int_alu: 2, ..base.fu })),
        ("slower L2 (12 → 16 cycles)", {
            let mut m = base.clone();
            m.lat.l2 = 16;
            m
        }),
        ("smaller store buffer (16 → 8)", {
            let mut m = base.clone();
            m.store_buffer = 8;
            m
        }),
        ("wider divide (20 → 12 cycles)", {
            let mut m = base.clone();
            m.lat.int_div = 12;
            m
        }),
    ];

    // One pass, decode-once: machine 0 is the baseline, the rest are
    // the candidates.
    let mut machines = vec![base];
    machines.extend(candidates.iter().map(|(_, m)| m.clone()));
    let sweep = SweepRunner::new(&library, machines);
    let policy = RunPolicy::default();
    let t = Instant::now();
    let outcome = sweep.run_parallel(&program, &policy, threads)?;
    manifest.phase("run_sweep", t.elapsed().as_secs_f64());
    manifest.points_processed = Some(outcome.processed() as u64);
    println!(
        "swept {} configurations over {} decoded points in {:.2?} ({} worker(s))\n",
        sweep.machines().len(),
        outcome.processed(),
        t.elapsed(),
        threads
    );

    println!(
        "{:<38} {:>9} {:>12} {:>7} {:>7}",
        "design change", "ΔCPI", "95%-of-base?", "pairs", "verdict"
    );
    let baseline = outcome.estimate(0);
    let base_mean = baseline.mean();
    manifest.set_estimate(baseline.mean(), baseline.half_width(), baseline.reached_target());
    let mut results: Vec<(usize, &str)> =
        candidates.iter().enumerate().map(|(i, (label, _))| (i + 1, *label)).collect();
    // Rank by impact, as a design-space search would.
    results.sort_by(|a, b| {
        let rel =
            |i: usize| outcome.pair_vs_baseline(i).expect("candidate").relative_change().abs();
        rel(b.0).partial_cmp(&rel(a.0)).expect("finite")
    });
    for (i, label) in &results {
        let pair = outcome.pair_vs_baseline(*i).expect("candidate");
        println!(
            "{:<38} {:>+8.2}% {:>12} {:>7} {:>7}",
            label,
            pair.relative_change() * 100.0,
            format!("±{:.2}%", pair.delta_half_width(policy.confidence) / base_mean * 100.0),
            pair.count(),
            if outcome.significant_vs_baseline(*i) { "real" } else { "noise" },
        );
    }
    println!();
    println!("every candidate was measured on the same decoded points — matched pairs by");
    println!("construction, and each record's decompress+decode cost paid once (§6.2).");

    if let Some(path) = metrics_out {
        manifest.write(&path, Some(&telemetry::snapshot()))?;
        println!("run manifest written to {path}");
    }
    telemetry::flush_trace();
    Ok(())
}
