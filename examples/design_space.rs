//! Design-space exploration with the decode-once sweeper: the workflow
//! the paper's conclusion promises ("parametric studies that cover a
//! wide range of microarchitectural options … with reasonable
//! computational requirements").
//!
//! ```text
//! cargo run --release --example design_space [benchmark-name] [--threads T]
//! ```
//!
//! One live-point library answers every design question in a single
//! pass: [`SweepRunner`] decompresses and DER-decodes each record once,
//! simulates it under the baseline and every candidate, and — because
//! all configurations see exactly the same points — yields matched-pair
//! comparisons against the baseline by construction.

use std::error::Error;
use std::time::Instant;

use spectral::core::{CreationConfig, LivePointLibrary, RunPolicy, SweepRunner};
use spectral::uarch::{FuPools, MachineConfig};
use spectral::workloads::by_name;

fn main() -> Result<(), Box<dyn Error>> {
    let mut name = "gcc-like".to_owned();
    let mut threads: Option<usize> = None;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        if a == "--threads" {
            threads = Some(it.next().ok_or("--threads needs a value")?.parse()?);
        } else {
            name = a;
        }
    }
    let threads = threads
        .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1));

    let bench = by_name(&name).ok_or_else(|| format!("unknown benchmark {name}"))?;
    let program = bench.build();
    let base = MachineConfig::eight_way();

    println!("exploring the design space around the 8-way baseline on {}", bench.name());
    let config = CreationConfig::for_machine(&base).with_sample_size(300);
    let library = LivePointLibrary::create_parallel(&program, &config, threads)?;
    println!("library: {} live-points\n", library.len());

    let candidates: Vec<(&str, MachineConfig)> = vec![
        ("halve RUU/LSQ (128/64 → 64/32)", base.clone().with_queues(64, 32)),
        ("double memory latency (100 → 200)", base.clone().with_mem_latency(200)),
        ("drop to 2 integer ALUs", base.clone().with_fu(FuPools { int_alu: 2, ..base.fu })),
        ("slower L2 (12 → 16 cycles)", {
            let mut m = base.clone();
            m.lat.l2 = 16;
            m
        }),
        ("smaller store buffer (16 → 8)", {
            let mut m = base.clone();
            m.store_buffer = 8;
            m
        }),
        ("wider divide (20 → 12 cycles)", {
            let mut m = base.clone();
            m.lat.int_div = 12;
            m
        }),
    ];

    // One pass, decode-once: machine 0 is the baseline, the rest are
    // the candidates.
    let mut machines = vec![base];
    machines.extend(candidates.iter().map(|(_, m)| m.clone()));
    let sweep = SweepRunner::new(&library, machines);
    let policy = RunPolicy::default();
    let t = Instant::now();
    let outcome = sweep.run_parallel(&program, &policy, threads)?;
    println!(
        "swept {} configurations over {} decoded points in {:.2?} ({} worker(s))\n",
        sweep.machines().len(),
        outcome.processed(),
        t.elapsed(),
        threads
    );

    println!(
        "{:<38} {:>9} {:>12} {:>7} {:>7}",
        "design change", "ΔCPI", "95%-of-base?", "pairs", "verdict"
    );
    let base_mean = outcome.estimate(0).mean();
    let mut results: Vec<(usize, &str)> =
        candidates.iter().enumerate().map(|(i, (label, _))| (i + 1, *label)).collect();
    // Rank by impact, as a design-space search would.
    results.sort_by(|a, b| {
        let rel =
            |i: usize| outcome.pair_vs_baseline(i).expect("candidate").relative_change().abs();
        rel(b.0).partial_cmp(&rel(a.0)).expect("finite")
    });
    for (i, label) in &results {
        let pair = outcome.pair_vs_baseline(*i).expect("candidate");
        println!(
            "{:<38} {:>+8.2}% {:>12} {:>7} {:>7}",
            label,
            pair.relative_change() * 100.0,
            format!("±{:.2}%", pair.delta_half_width(policy.confidence) / base_mean * 100.0),
            pair.count(),
            if outcome.significant_vs_baseline(*i) { "real" } else { "noise" },
        );
    }
    println!();
    println!("every candidate was measured on the same decoded points — matched pairs by");
    println!("construction, and each record's decompress+decode cost paid once (§6.2).");
    Ok(())
}
