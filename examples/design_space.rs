//! Design-space exploration with matched pairs: the workflow the paper's
//! conclusion promises ("parametric studies that cover a wide range of
//! microarchitectural options … with reasonable computational
//! requirements").
//!
//! ```text
//! cargo run --release --example design_space [benchmark-name]
//! ```
//!
//! One live-point library answers every design question: each candidate
//! change is compared to the 8-way baseline with matched pairs, which
//! need only a handful of points to separate real effects from noise.

use std::error::Error;

use spectral::core::{CreationConfig, LivePointLibrary, MatchedRunner, RunPolicy};
use spectral::uarch::{FuPools, MachineConfig};
use spectral::workloads::by_name;

fn main() -> Result<(), Box<dyn Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "gcc-like".into());
    let bench = by_name(&name).ok_or_else(|| format!("unknown benchmark {name}"))?;
    let program = bench.build();
    let base = MachineConfig::eight_way();

    println!("exploring the design space around the 8-way baseline on {}", bench.name());
    let config = CreationConfig::for_machine(&base).with_sample_size(300);
    let library = LivePointLibrary::create(&program, &config)?;
    println!("library: {} live-points\n", library.len());

    let candidates: Vec<(&str, MachineConfig)> = vec![
        ("halve RUU/LSQ (128/64 → 64/32)", base.clone().with_queues(64, 32)),
        ("double memory latency (100 → 200)", base.clone().with_mem_latency(200)),
        ("drop to 2 integer ALUs", base.clone().with_fu(FuPools { int_alu: 2, ..base.fu })),
        ("slower L2 (12 → 16 cycles)", {
            let mut m = base.clone();
            m.lat.l2 = 16;
            m
        }),
        ("smaller store buffer (16 → 8)", {
            let mut m = base.clone();
            m.store_buffer = 8;
            m
        }),
        ("wider divide (20 → 12 cycles)", {
            let mut m = base.clone();
            m.lat.int_div = 12;
            m
        }),
    ];

    println!(
        "{:<38} {:>9} {:>12} {:>7} {:>7}",
        "design change", "ΔCPI", "95%-of-base?", "pairs", "verdict"
    );
    let policy = RunPolicy::default();
    let mut results = Vec::new();
    for (label, machine) in candidates {
        let outcome = MatchedRunner::new(&library, base.clone(), machine).run(&program, &policy)?;
        results.push((label, outcome));
    }
    // Rank by impact, as a design-space search would.
    results.sort_by(|a, b| {
        b.1.relative_change()
            .abs()
            .partial_cmp(&a.1.relative_change().abs())
            .expect("finite")
    });
    for (label, outcome) in &results {
        println!(
            "{:<38} {:>+8.2}% {:>12} {:>7} {:>7}",
            label,
            outcome.relative_change() * 100.0,
            format!("±{:.2}%", outcome.delta_half_width() / outcome.pair().base().mean() * 100.0),
            outcome.processed(),
            if outcome.significant() { "real" } else { "noise" },
        );
    }
    println!();
    println!("matched pairs distinguish real effects from no-ops after ~30 points each —");
    println!("the whole sweep reuses one library and runs in seconds (paper §6.2).");
    Ok(())
}
