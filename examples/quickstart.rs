//! Quickstart: estimate a benchmark's CPI with live-points.
//!
//! ```text
//! cargo run --release --example quickstart [benchmark-name]
//! ```
//!
//! Builds a synthetic benchmark, creates a live-point library for the
//! paper's 8-way baseline, and produces a CPI estimate with 99.7%
//! confidence intervals — then verifies it against a full-detail
//! reference simulation.

use std::error::Error;

use spectral::core::{plan_library, CreationConfig, LivePointLibrary, OnlineRunner, RunPolicy};
use spectral::stats::Confidence;
use spectral::uarch::MachineConfig;
use spectral::warming::complete_detailed;
use spectral::workloads::by_name;

fn main() -> Result<(), Box<dyn Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "gzip-like".into());
    let bench = by_name(&name).ok_or_else(|| format!("unknown benchmark {name}"))?;
    let program = bench.build();
    let machine = MachineConfig::eight_way();

    println!("benchmark : {} — {}", bench.name(), bench.description());

    // Step 1 of the paper's procedure (Fig 6): measure variance with a
    // pilot and size the library accordingly.
    let plan = plan_library(&program, &machine, 60, 0.03, Confidence::C99_7, 7)?;
    println!(
        "plan      : pilot CPI {:.3}, cv {:.2} -> {} live-points needed for ±3% (max {}{})",
        plan.pilot_cpi,
        plan.cv,
        plan.required_points,
        plan.max_points,
        if plan.feasible() { "" } else { "; benchmark too short, clamping" },
    );

    // Step 2: the creation pass — one-time cost, amortized over every
    // later experiment (paper §6.3).
    println!("creating live-point library…");
    let config =
        CreationConfig::for_machine(&machine).with_sample_size(plan.recommended_points().min(500));
    let library = LivePointLibrary::create(&program, &config)?;
    println!(
        "library   : {} live-points, {} compressed ({} / point)",
        library.len(),
        human(library.total_compressed_bytes()),
        human(library.mean_point_bytes()),
    );

    // The actual experiment: seconds, not hours.
    let estimate =
        OnlineRunner::new(&library, machine.clone()).run(&program, &RunPolicy::default())?;
    println!(
        "estimate  : CPI {:.4} ± {:.4} (99.7% CI) from {} live-points{}",
        estimate.mean(),
        estimate.half_width(),
        estimate.processed(),
        if estimate.reached_target() { "" } else { " (library exhausted)" },
    );

    // Ground truth, for the skeptical.
    let reference = complete_detailed(&machine, &program);
    println!(
        "reference : CPI {:.4} (complete detailed simulation; bias {:.2}%)",
        reference.cpi(),
        ((estimate.mean() - reference.cpi()) / reference.cpi()).abs() * 100.0
    );
    Ok(())
}

fn human(b: u64) -> String {
    if b >= 1 << 20 {
        format!("{:.1} MB", b as f64 / (1 << 20) as f64)
    } else {
        format!("{:.1} KB", b as f64 / 1024.0)
    }
}
