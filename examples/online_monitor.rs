//! Online result monitoring: watch a CPI estimate and its confidence
//! interval converge *while the simulation runs* (paper §6.1).
//!
//! ```text
//! cargo run --release --example online_monitor [benchmark-name]
//! ```
//!
//! The paper notes this mode "has proven valuable during simulator
//! development to get quick-and-dirty performance estimates and detect
//! simulator bugs": after only ~100 live-points the interval is tight
//! enough to spot gross performance regressions. To show that, the
//! monitor also runs a deliberately mis-configured machine and flags it.
//!
//! The run also demonstrates the sampling-health event stream: it
//! installs an `--events`-style sink, and afterwards replays the
//! `progress` and `anomaly` records a live dashboard (or
//! `spectral-doctor`) would consume.

use std::error::Error;

use spectral::core::{CreationConfig, LivePointLibrary, OnlineRunner, RunPolicy};
use spectral::uarch::MachineConfig;
use spectral::workloads::by_name;

fn main() -> Result<(), Box<dyn Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "vpr-like".into());
    let bench = by_name(&name).ok_or_else(|| format!("unknown benchmark {name}"))?;
    let program = bench.build();
    let machine = MachineConfig::eight_way();

    println!("building library for {}…", bench.name());
    let config = CreationConfig::for_machine(&machine).with_sample_size(400);
    let library = LivePointLibrary::create(&program, &config)?;

    // Install a sampling-health event sink: every merge stride appends
    // a JSONL progress record, every outlier point an anomaly record.
    let events_path = std::env::temp_dir().join("online_monitor_events.jsonl");
    spectral::telemetry::set_events_path(&events_path)?;

    // Fine-grained trajectory = the "online monitor" feed.
    let policy = RunPolicy { target_rel_err: 1e-12, trajectory_stride: 25, ..RunPolicy::default() };
    let runner = OnlineRunner::new(&library, machine.clone());
    let estimate = runner.run(&program, &policy)?;

    println!("\nlive monitor ({} live-points total):", estimate.processed());
    println!("{:>8}  {:>10}  {:>12}  {:>10}", "points", "CPI", "99.7% CI", "rel. CI");
    for &(n, mean, hw) in estimate.trajectory() {
        let bar = "#".repeat(((hw / mean * 100.0) as usize).min(40));
        println!("{n:>8}  {mean:>10.4}  ±{hw:>10.4}  ±{:>7.2}%  {bar}", hw / mean * 100.0);
    }

    // "Detect simulator bugs": an accidentally tiny store buffer shows
    // up within the first handful of points.
    let mut buggy = machine.clone();
    buggy.store_buffer = 1;
    let probe = RunPolicy { max_points: Some(100), trajectory_stride: 0, ..RunPolicy::default() };
    let good = runner.run(&program, &probe)?;
    let bad = OnlineRunner::new(&library, buggy).run(&program, &probe)?;
    println!("\nregression probe after 100 points:");
    println!("  expected machine : CPI {:.4} ± {:.4}", good.mean(), good.half_width());
    println!("  buggy machine    : CPI {:.4} ± {:.4}", bad.mean(), bad.half_width());
    let separated = (bad.mean() - good.mean()).abs() > good.half_width() + bad.half_width();
    println!(
        "  verdict          : {}",
        if separated {
            "performance bug detected (intervals do not overlap)"
        } else {
            "no significant difference"
        }
    );

    // Replay the event stream the runs just emitted — the same feed a
    // live dashboard would tail, and what `spectral-doctor` diagnoses.
    spectral::telemetry::flush_events();
    let text = std::fs::read_to_string(&events_path)?;
    let (progress, anomalies): (Vec<&str>, Vec<&str>) =
        text.lines().filter(|l| !l.is_empty()).partition(|l| l.contains("\"type\":\"progress\""));
    println!("\nsampling-health event stream ({}):", events_path.display());
    println!("  {} progress records, {} anomaly records", progress.len(), anomalies.len());
    for line in progress.iter().take(3) {
        println!("  {line}");
    }
    if let Some(line) = anomalies.first() {
        println!("  {line}");
    }
    println!("  diagnose with: spectral-doctor analyze --events {}", events_path.display());
    println!("  watch live   : spectral-doctor watch --events {} --once", events_path.display());
    Ok(())
}
