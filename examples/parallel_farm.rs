//! Parallel live-point processing: window independence makes sampled
//! simulation embarrassingly parallel, "with parallelism degree up to
//! the sample size" (paper §6).
//!
//! ```text
//! cargo run --release --example parallel_farm [benchmark-name] [--threads T]
//!     [--chunk N] [--prefetch N] [--metrics-out PATH] [--trace PATH]
//! ```
//!
//! The same shuffled library is processed serially and with 2–8 worker
//! threads (plus `--threads T` when given); workers claim index chunks
//! from the dynamic scheduler and the coordinator replays their
//! observations in index order, so the exhaustive estimates are
//! bit-identical to the serial pass while wall-clock drops on
//! multi-core hosts. Library creation itself runs on the pipelined
//! multi-core path and stays byte-identical to a serial build.
//! `--chunk`/`--prefetch` tune the scheduler's chunk size and
//! decode-ahead depth; `--metrics-out` writes a run manifest (phases,
//! points, estimate, embedded metrics snapshot — including the
//! `core.sched.*` steal/occupancy metrics); `--trace` appends span
//! events as JSONL.

use std::error::Error;
use std::time::Instant;

use spectral::core::{CreationConfig, LivePointLibrary, OnlineRunner, RunPolicy};
use spectral::telemetry::{self, RunManifest};
use spectral::uarch::MachineConfig;
use spectral::workloads::by_name;

fn main() -> Result<(), Box<dyn Error>> {
    let mut name = "bzip2-like".to_owned();
    let mut threads: Option<usize> = None;
    let mut chunk: Option<usize> = None;
    let mut prefetch: Option<usize> = None;
    let mut metrics_out: Option<String> = None;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--threads" => {
                threads = Some(it.next().ok_or("--threads needs a value")?.parse()?);
            }
            "--chunk" => {
                chunk = Some(it.next().ok_or("--chunk needs a value")?.parse()?);
            }
            "--prefetch" => {
                prefetch = Some(it.next().ok_or("--prefetch needs a value")?.parse()?);
            }
            "--metrics-out" => {
                metrics_out = Some(it.next().ok_or("--metrics-out needs a path")?);
            }
            "--trace" => {
                telemetry::set_trace_path(it.next().ok_or("--trace needs a path")?)?;
            }
            _ => name = a,
        }
    }
    telemetry::trace_from_env()?;
    // When SPECTRAL_REGISTRY names a registry, tally convergence
    // summaries in-process so the appended record carries them.
    let registry = spectral::registry::Registry::from_env()?;
    if registry.is_some() {
        telemetry::enable_run_summaries();
    }
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let threads = threads.unwrap_or(cores);

    let bench = by_name(&name).ok_or_else(|| format!("unknown benchmark {name}"))?;
    let program = bench.build();
    let machine = MachineConfig::eight_way();
    let mut manifest = RunManifest::new("parallel_farm", bench.name(), machine.name, threads);

    println!("building library for {} with {threads} worker(s)…", bench.name());
    let config = CreationConfig::for_machine(&machine).with_sample_size(320);
    manifest.seed = Some(config.seed);
    let t = Instant::now();
    let library = LivePointLibrary::create_parallel(&program, &config, threads)?;
    manifest.phase("create_library", t.elapsed().as_secs_f64());
    manifest.library_id = Some(format!("crc32:{:08x}", library.content_hash()));
    manifest.library_format = Some(u64::from(library.format_version()));
    manifest.library_points = Some(library.len() as u64);
    println!("library: {} live-points in {:.2?}\n", library.len(), t.elapsed());

    println!("host exposes {cores} core(s) — wall-clock speedups need more than one.\n");
    let runner = OnlineRunner::new(&library, machine);
    // Exhaustive policy: identical work in every configuration.
    let mut policy =
        RunPolicy { target_rel_err: 1e-12, trajectory_stride: 0, ..RunPolicy::default() };
    if let Some(c) = chunk {
        policy.chunk = c;
    }
    if let Some(p) = prefetch {
        policy.prefetch = p;
    }

    let t = Instant::now();
    let serial = runner.run(&program, &policy)?;
    let t_serial = t.elapsed().as_secs_f64();
    manifest.phase("run_serial", t_serial);
    println!(
        "serial     : {:>3} points  CPI {:.4} ± {:.4}  {:>7.2?}",
        serial.processed(),
        serial.mean(),
        serial.half_width(),
        t.elapsed()
    );

    let mut farm = vec![2usize, 4, 8];
    if !farm.contains(&threads) && threads > 1 {
        farm.push(threads);
        farm.sort_unstable();
    }
    let t_farm = Instant::now();
    for threads in farm {
        let t = Instant::now();
        let est = runner.run_parallel(&program, &policy, threads)?;
        let wall = t.elapsed().as_secs_f64();
        println!(
            "{threads} workers  : {:>3} points  CPI {:.4} ± {:.4}  {:>7.2?}  ({:.1}x vs serial)",
            est.processed(),
            est.mean(),
            est.half_width(),
            t.elapsed(),
            t_serial / wall,
        );
        // The coordinator replays worker observations in index order,
        // so the parallel estimate is the serial push sequence exactly.
        assert_eq!(
            est.mean().to_bits(),
            serial.mean().to_bits(),
            "exhaustive parallel estimates are bit-identical to serial"
        );
        assert_eq!(est.half_width().to_bits(), serial.half_width().to_bits());
    }
    manifest.phase("run_parallel_farm", t_farm.elapsed().as_secs_f64());
    manifest.points_processed = Some(serial.processed() as u64);
    manifest.set_estimate(serial.mean(), serial.half_width(), serial.reached_target());
    println!("\nestimates are bit-identical to the serial pass — order independence");
    println!("is what lets a cluster split one library across hosts (paper §6.1).");

    manifest.run_id =
        Some(telemetry::derive_run_id(&manifest.to_json(), telemetry::next_run_seq()));
    if let Some(path) = metrics_out {
        manifest.write(&path, Some(&telemetry::snapshot()))?;
        println!("run manifest written to {path}");
    }
    if let Some(registry) = registry {
        let summaries = telemetry::take_run_summaries();
        let record = spectral::registry::RunRecord::from_manifest(&manifest, summaries);
        registry.append(&record)?;
        println!("run record appended to {}", registry.dir().display());
    }
    telemetry::flush_trace();
    Ok(())
}
