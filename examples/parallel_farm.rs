//! Parallel live-point processing: window independence makes sampled
//! simulation embarrassingly parallel, "with parallelism degree up to
//! the sample size" (paper §6).
//!
//! ```text
//! cargo run --release --example parallel_farm [benchmark-name]
//! ```
//!
//! The same shuffled library is processed serially and with 2–8 worker
//! threads; every run merges per-worker observations into one estimator,
//! so the exhaustive estimates agree exactly while wall-clock drops.

use std::error::Error;
use std::time::Instant;

use spectral::core::{CreationConfig, LivePointLibrary, OnlineRunner, RunPolicy};
use spectral::uarch::MachineConfig;
use spectral::workloads::by_name;

fn main() -> Result<(), Box<dyn Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "bzip2-like".into());
    let bench = by_name(&name).ok_or_else(|| format!("unknown benchmark {name}"))?;
    let program = bench.build();
    let machine = MachineConfig::eight_way();

    println!("building library for {}…", bench.name());
    let config = CreationConfig::for_machine(&machine).with_sample_size(320);
    let library = LivePointLibrary::create(&program, &config)?;
    println!("library: {} live-points\n", library.len());

    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!("host exposes {cores} core(s) — wall-clock speedups need more than one.\n");
    let runner = OnlineRunner::new(&library, machine);
    // Exhaustive policy: identical work in every configuration.
    let policy = RunPolicy { target_rel_err: 1e-12, trajectory_stride: 0, ..RunPolicy::default() };

    let t = Instant::now();
    let serial = runner.run(&program, &policy)?;
    let t_serial = t.elapsed().as_secs_f64();
    println!(
        "serial     : {:>3} points  CPI {:.4} ± {:.4}  {:>7.2?}",
        serial.processed(),
        serial.mean(),
        serial.half_width(),
        t.elapsed()
    );

    for threads in [2usize, 4, 8] {
        let t = Instant::now();
        let est = runner.run_parallel(&program, &policy, threads)?;
        let wall = t.elapsed().as_secs_f64();
        println!(
            "{threads} workers  : {:>3} points  CPI {:.4} ± {:.4}  {:>7.2?}  ({:.1}x vs serial)",
            est.processed(),
            est.mean(),
            est.half_width(),
            t.elapsed(),
            t_serial / wall,
        );
        // Workers merge observations in nondeterministic order, so the
        // mean can differ by floating-point summation order only.
        assert!(
            (est.mean() - serial.mean()).abs() / serial.mean() < 1e-6,
            "estimates must agree up to summation order"
        );
    }
    println!("\nestimates agree to floating-point summation order — order independence");
    println!("is what lets a cluster split one library across hosts (paper §6.1).");
    Ok(())
}
