//! Full warming (the SMARTS baseline) and the non-sampled reference.

use crate::functional::FunctionalWarmer;
use spectral_isa::{Emulator, Program};
use spectral_stats::{OnlineEstimator, WindowSpec};
use spectral_uarch::{DetailedSim, MachineConfig, WindowStats};

/// Result of a sampled simulation run (full or adaptive warming).
#[derive(Debug, Clone)]
pub struct SampledResult {
    /// Per-window measured CPI, in program order.
    pub per_window: Vec<f64>,
    /// Aggregate estimator over the window CPIs.
    pub estimator: OnlineEstimator,
    /// Instructions processed by functional warming (the paper's
    /// dominant cost for SMARTS; reduced for adaptive warming).
    pub warming_insts: u64,
    /// Instructions simulated in detail (warming + measurement).
    pub detailed_insts: u64,
    /// Instructions functionally *skipped* without warming (adaptive
    /// warming's saving; zero for full warming).
    pub skipped_insts: u64,
}

impl SampledResult {
    /// Estimated CPI (mean over windows).
    pub fn cpi(&self) -> f64 {
        self.estimator.mean()
    }
}

/// Run the complete benchmark through the detailed timing model — the
/// `sim-outorder` row of Table 2 and the ground truth for bias
/// measurements.
pub fn complete_detailed(cfg: &MachineConfig, program: &Program) -> WindowStats {
    let mut sim = DetailedSim::new(cfg, program, Emulator::new(program));
    sim.run_to_completion()
}

/// Full-warming (SMARTS) sampled simulation.
///
/// Functionally warms every instruction of the benchmark; at each
/// sample window, clones the warm state into a detailed simulation that
/// performs `warm_len` instructions of detailed warming followed by the
/// measured interval. Windows must be sorted and non-overlapping (as
/// produced by the [`SampleDesign`](spectral_stats::SampleDesign) impls).
///
/// # Panics
///
/// Panics if `windows` is not sorted by position.
pub fn smarts_run(cfg: &MachineConfig, program: &Program, windows: &[WindowSpec]) -> SampledResult {
    assert!(
        windows.windows(2).all(|w| w[0].measure_start <= w[1].measure_start),
        "windows must be sorted"
    );
    let mut warmer = FunctionalWarmer::new(cfg);
    let mut emu = Emulator::new(program);
    let mut per_window = Vec::with_capacity(windows.len());
    let mut estimator = OnlineEstimator::new();
    let mut detailed_insts = 0u64;

    for w in windows {
        // Functional warming up to the start of detailed warming.
        while emu.seq() < w.detail_start && !emu.is_halted() {
            if let Some(di) = emu.step() {
                warmer.observe(&di);
            }
        }
        if emu.is_halted() {
            break;
        }
        // Detailed window on cloned state; the warmer continues past it
        // afterwards (functional warming is continuous in SMARTS).
        let state = warmer.clone_state();
        let mut sim =
            DetailedSim::with_state(cfg, program, emu.clone(), state.hierarchy, state.bpred);
        let warm = w.warm_len();
        sim.run(warm);
        let measured = sim.run(w.measure_len);
        detailed_insts += warm + measured.committed;
        if measured.committed > 0 {
            per_window.push(measured.cpi());
            estimator.push(measured.cpi());
        }
    }
    // Finish warming the tail so warming_insts reflects the whole
    // benchmark (the paper's point: cost scales with benchmark length).
    while !emu.is_halted() {
        match emu.step() {
            Some(di) => warmer.observe(&di),
            None => break,
        }
    }

    SampledResult {
        per_window,
        estimator,
        warming_insts: warmer.observed(),
        detailed_insts,
        skipped_insts: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spectral_stats::{Confidence, SampleDesign, SystematicDesign};
    use spectral_workloads::{dynamic_length, tiny};

    #[test]
    fn smarts_tracks_reference_cpi() {
        let p = tiny().build();
        let cfg = MachineConfig::eight_way();
        let n = dynamic_length(&p);
        let windows = SystematicDesign::new(1000, 2000).windows(n, 40, 3);
        let result = smarts_run(&cfg, &p, &windows);
        let reference = complete_detailed(&cfg, &p);
        assert!(result.per_window.len() >= 30, "got {} windows", result.per_window.len());
        let bias = (result.cpi() - reference.cpi()).abs() / reference.cpi();
        // Full warming should land near the true CPI; the sample itself
        // carries sampling error, so accept a loose bound here (bias
        // experiments use more windows and tighter checks).
        assert!(
            bias < 0.25,
            "full-warming estimate {:.3} too far from reference {:.3} (bias {:.1}%)",
            result.cpi(),
            reference.cpi(),
            bias * 100.0
        );
        assert_eq!(result.warming_insts, n, "functional warming covers the whole benchmark");
        assert_eq!(result.skipped_insts, 0);
        // With the tiny test benchmark windows cover much of the run;
        // the detail-is-tiny property is asserted on full-size
        // benchmarks in the experiment suite.
        assert!(result.detailed_insts <= n);
    }

    #[test]
    fn estimator_matches_per_window() {
        let p = tiny().build();
        let cfg = MachineConfig::eight_way();
        let n = dynamic_length(&p);
        let windows = SystematicDesign::new(1000, 2000).windows(n, 35, 9);
        let r = smarts_run(&cfg, &p, &windows);
        let manual: OnlineEstimator = r.per_window.iter().copied().collect();
        assert_eq!(r.estimator.count(), manual.count());
        assert!((r.estimator.mean() - manual.mean()).abs() < 1e-12);
        let _ = r.estimator.half_width(Confidence::C99_7);
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn unsorted_windows_rejected() {
        let p = tiny().build();
        let cfg = MachineConfig::eight_way();
        let windows = vec![
            WindowSpec { detail_start: 5000, measure_start: 7000, measure_len: 1000 },
            WindowSpec { detail_start: 0, measure_start: 2000, measure_len: 1000 },
        ];
        smarts_run(&cfg, &p, &windows);
    }
}
