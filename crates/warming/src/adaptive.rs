//! Adaptive warming (AW-MRRL): per-window reduced functional warming.

use crate::functional::FunctionalWarmer;
use crate::mrrl::MrrlAnalysis;
use crate::smarts::SampledResult;
use spectral_isa::{Emulator, Program};
use spectral_stats::{OnlineEstimator, WindowSpec};
use spectral_uarch::{DetailedSim, MachineConfig};

/// Result of an adaptive-warming run, plus which stitching mode was used.
#[derive(Debug, Clone)]
pub struct AdaptiveResult {
    /// The sampled-run payload (per-window CPIs, costs).
    pub sampled: SampledResult,
    /// Whether warm state was stitched across windows.
    pub stitched: bool,
}

/// Adaptive-warming sampled simulation (the paper's AW-MRRL, §4.2).
///
/// For each window, instructions up to `detail_start − L_i` are
/// *skipped* (architectural emulation only — with real checkpoints this
/// is a constant-time jump), then `L_i` instructions are functionally
/// warmed, then the detailed window runs as usual.
///
/// With `stitched = true` (the accurate variant), cache/predictor state
/// carries over across the skipped gaps, so each warming period tops up
/// existing state. With `stitched = false`, state is flushed before each
/// warming period — the variant the paper reports as 1.9% average /
/// 11% worst-case bias, but which makes windows independent.
///
/// # Panics
///
/// Panics if `analysis.warming_lens.len() != windows.len()` or windows
/// are unsorted.
pub fn adaptive_run(
    cfg: &MachineConfig,
    program: &Program,
    windows: &[WindowSpec],
    analysis: &MrrlAnalysis,
    stitched: bool,
) -> AdaptiveResult {
    assert_eq!(
        analysis.warming_lens.len(),
        windows.len(),
        "one warming length per window required"
    );
    assert!(
        windows.windows(2).all(|w| w[0].measure_start <= w[1].measure_start),
        "windows must be sorted"
    );

    // A window's warm region [detail_start − L, detail_start) may reach
    // back past earlier windows whose own warming needs were smaller, so
    // the regions must be planned globally: warm the union of all
    // regions, skip everything outside it.
    let mut regions: Vec<(u64, u64)> = windows
        .iter()
        .zip(&analysis.warming_lens)
        .map(|(w, &len)| (w.detail_start.saturating_sub(len), w.detail_start))
        .collect();
    regions.sort_unstable();
    let mut merged: Vec<(u64, u64)> = Vec::with_capacity(regions.len());
    for (start, end) in regions {
        match merged.last_mut() {
            Some(last) if start <= last.1 => last.1 = last.1.max(end),
            _ => merged.push((start, end)),
        }
    }
    let in_warm_region = |seq: u64, cursor: &mut usize| -> bool {
        while *cursor < merged.len() && merged[*cursor].1 <= seq {
            *cursor += 1;
        }
        *cursor < merged.len() && seq >= merged[*cursor].0
    };

    let mut warmer = FunctionalWarmer::new(cfg);
    let mut emu = Emulator::new(program);
    let mut per_window = Vec::with_capacity(windows.len());
    let mut estimator = OnlineEstimator::new();
    let mut warming_insts = 0u64;
    let mut skipped_insts = 0u64;
    let mut detailed_insts = 0u64;
    let mut cursor = 0usize;

    for (w, &warm_len) in windows.iter().zip(&analysis.warming_lens) {
        if !stitched {
            // Unstitched: state is discarded; only the window's own
            // (forward-reachable) warm region warms it.
            warmer.flush();
        }
        let own_start = w.detail_start.saturating_sub(warm_len);
        while emu.seq() < w.detail_start && !emu.is_halted() {
            let warm = if stitched {
                in_warm_region(emu.seq(), &mut cursor)
            } else {
                emu.seq() >= own_start
            };
            match emu.step() {
                Some(di) => {
                    if warm {
                        warmer.observe(&di);
                        warming_insts += 1;
                    } else {
                        skipped_insts += 1;
                    }
                }
                None => break,
            }
        }
        if emu.is_halted() {
            break;
        }
        let state = warmer.clone_state();
        let mut sim =
            DetailedSim::with_state(cfg, program, emu.clone(), state.hierarchy, state.bpred);
        sim.run(w.warm_len());
        let measured = sim.run(w.measure_len);
        detailed_insts += w.warm_len() + measured.committed;
        if measured.committed > 0 {
            per_window.push(measured.cpi());
            estimator.push(measured.cpi());
        }
    }

    AdaptiveResult {
        sampled: SampledResult {
            per_window,
            estimator,
            warming_insts,
            detailed_insts,
            skipped_insts,
        },
        stitched,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mrrl::mrrl_analyze;
    use crate::smarts::{complete_detailed, smarts_run};
    use spectral_stats::{SampleDesign, SystematicDesign};
    use spectral_workloads::{dynamic_length, tiny};

    fn setup() -> (Program, Vec<WindowSpec>, MachineConfig) {
        let p = tiny().build();
        let n = dynamic_length(&p);
        let windows = SystematicDesign::new(1000, 2000).windows(n, 30, 5);
        (p, windows, MachineConfig::eight_way())
    }

    #[test]
    fn adaptive_is_cheaper_than_full_warming() {
        let (p, windows, cfg) = setup();
        let analysis = mrrl_analyze(&p, &windows, 32, 0.999);
        let adaptive = adaptive_run(&cfg, &p, &windows, &analysis, true);
        let full = smarts_run(&cfg, &p, &windows);
        assert!(
            adaptive.sampled.warming_insts < full.warming_insts,
            "adaptive warming {} must undercut full warming {}",
            adaptive.sampled.warming_insts,
            full.warming_insts
        );
        assert!(adaptive.sampled.skipped_insts > 0);
    }

    #[test]
    fn stitched_tracks_reference_loosely() {
        let (p, windows, cfg) = setup();
        let analysis = mrrl_analyze(&p, &windows, 32, 0.999);
        let adaptive = adaptive_run(&cfg, &p, &windows, &analysis, true);
        let reference = complete_detailed(&cfg, &p);
        let bias = (adaptive.sampled.cpi() - reference.cpi()).abs() / reference.cpi();
        assert!(
            bias < 0.35,
            "stitched AW-MRRL wildly off: est {:.3} vs ref {:.3}",
            adaptive.sampled.cpi(),
            reference.cpi()
        );
    }

    #[test]
    fn unstitched_at_least_as_biased_as_stitched() {
        // The paper: dropping stitched state raises bias (1.1% → 1.9%
        // average, 5.4% → 11% worst). The ordering is structural when
        // reuse distances span several windows: stitched state carries
        // the working set across skips, cold state cannot. A streaming
        // FP sweep makes that reuse pattern explicit.
        use spectral_workloads::{Benchmark, Kernel, Schedule};
        let bench = Benchmark::new(
            "sweep",
            "stitching fixture: repeated stencil sweeps",
            vec![Kernel::Stencil { words: 1 << 13 }],
            Schedule::Phased,
            400_000,
            9,
        );
        let p = bench.build();
        let n = spectral_workloads::dynamic_length(&p);
        let cfg = MachineConfig::eight_way();
        let windows = SystematicDesign::new(1000, 2000).windows(n, 30, 5);
        let analysis = mrrl_analyze(&p, &windows, 32, 0.999);
        let full = smarts_run(&cfg, &p, &windows);
        let stitched = adaptive_run(&cfg, &p, &windows, &analysis, true);
        let unstitched = adaptive_run(&cfg, &p, &windows, &analysis, false);
        let err = |r: &SampledResult| -> f64 {
            r.per_window.iter().zip(&full.per_window).map(|(a, b)| (a - b).abs() / b).sum::<f64>()
                / r.per_window.len() as f64
        };
        let e_st = err(&stitched.sampled);
        let e_un = err(&unstitched.sampled);
        assert!(
            e_un >= e_st,
            "unstitched ({e_un:.4}) must not beat stitched ({e_st:.4}) on a reuse-heavy sweep"
        );
    }

    #[test]
    #[should_panic(expected = "one warming length per window")]
    fn mismatched_analysis_rejected() {
        let (p, windows, cfg) = setup();
        let analysis =
            MrrlAnalysis { warming_lens: vec![100], reuse_prob: 0.999, granule_bytes: 32 };
        adaptive_run(&cfg, &p, &windows, &analysis, true);
    }
}
