//! Memory Reference Reuse Latency (MRRL) analysis
//! (Haskins & Skadron, ISPASS 2003; evaluated by the paper in §4.2).
//!
//! For each detailed window, MRRL measures how far back (in committed
//! instructions) the window's memory references reuse earlier blocks,
//! and reports the warming length sufficient to cover a target fraction
//! (the paper uses 99.9%) of those reuse latencies. The analysis is
//! configuration independent — distances are in instructions — and costs
//! one functional pass per benchmark and sample design.

use std::collections::HashMap;

use spectral_isa::{Emulator, Program};
use spectral_stats::WindowSpec;

/// Output of an MRRL analysis pass.
#[derive(Debug, Clone, PartialEq)]
pub struct MrrlAnalysis {
    /// Per-window functional-warming length, in instructions, aligned
    /// with the window list passed to [`mrrl_analyze`].
    pub warming_lens: Vec<u64>,
    /// The reuse-coverage probability used (e.g. `0.999`).
    pub reuse_prob: f64,
    /// Block granularity of the reuse tracking, in bytes.
    pub granule_bytes: u64,
}

impl MrrlAnalysis {
    /// Mean warming length over all windows.
    pub fn mean_warming(&self) -> f64 {
        if self.warming_lens.is_empty() {
            return 0.0;
        }
        self.warming_lens.iter().sum::<u64>() as f64 / self.warming_lens.len() as f64
    }

    /// Total functional-warming instructions the adaptive strategy will
    /// spend (the paper reports this as ~20% of full warming at 99.9%).
    pub fn total_warming(&self) -> u64 {
        self.warming_lens.iter().sum()
    }
}

/// Run the MRRL analysis: one functional pass recording, for each
/// window, the reuse latencies of every memory block referenced inside
/// it (data reads/writes and instruction fetches at `granule_bytes`
/// granularity), then picking the `reuse_prob` percentile per window.
///
/// Warming lengths are measured backwards from each window's
/// `detail_start` and capped there (warming cannot extend before the
/// program start).
///
/// # Panics
///
/// Panics if `reuse_prob` is outside `(0, 1]` or windows are unsorted.
pub fn mrrl_analyze(
    program: &Program,
    windows: &[WindowSpec],
    granule_bytes: u64,
    reuse_prob: f64,
) -> MrrlAnalysis {
    assert!(reuse_prob > 0.0 && reuse_prob <= 1.0, "reuse probability must be in (0, 1]");
    assert!(
        windows.windows(2).all(|w| w[0].measure_start <= w[1].measure_start),
        "windows must be sorted"
    );

    let mut last_access: HashMap<u64, u64> = HashMap::new();
    let mut per_window_distances: Vec<Vec<u64>> = vec![Vec::new(); windows.len()];
    let mut emu = Emulator::new(program);
    let mut win_idx = 0usize;

    while let Some(di) = emu.step() {
        let seq = di.seq;
        // Advance the active-window cursor.
        while win_idx < windows.len() && seq >= windows[win_idx].end() {
            win_idx += 1;
        }
        if win_idx >= windows.len() {
            break;
        }
        let w = &windows[win_idx];
        let in_window = seq >= w.detail_start && seq < w.end();

        // Track both ifetch and data blocks.
        let mut touch = |addr: u64| {
            let g = addr / granule_bytes;
            if in_window {
                if let Some(&prev) = last_access.get(&g) {
                    // Distance from the window's warming anchor.
                    if prev < w.detail_start {
                        per_window_distances[win_idx].push(w.detail_start - prev);
                    }
                    // Reuse within the window is covered by detailed
                    // warming; distance zero.
                }
            }
            last_access.insert(g, seq);
        };
        touch(di.pc);
        if let Some((_, addr)) = di.mem {
            touch(addr);
        }
    }

    let warming_lens = windows
        .iter()
        .zip(per_window_distances.iter_mut())
        .map(|(w, distances)| {
            if distances.is_empty() {
                return 0;
            }
            distances.sort_unstable();
            let idx = ((distances.len() as f64 * reuse_prob).ceil() as usize)
                .clamp(1, distances.len())
                - 1;
            distances[idx].min(w.detail_start)
        })
        .collect();

    MrrlAnalysis { warming_lens, reuse_prob, granule_bytes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spectral_stats::{SampleDesign, SystematicDesign};
    use spectral_workloads::{dynamic_length, tiny};

    fn setup() -> (Program, Vec<WindowSpec>) {
        let p = tiny().build();
        let n = dynamic_length(&p);
        let windows = SystematicDesign::new(1000, 2000).windows(n, 20, 5);
        (p, windows)
    }

    #[test]
    fn produces_one_length_per_window() {
        let (p, windows) = setup();
        let a = mrrl_analyze(&p, &windows, 32, 0.999);
        assert_eq!(a.warming_lens.len(), windows.len());
        assert!(a.total_warming() > 0, "some reuse must cross window boundaries");
    }

    #[test]
    fn lengths_bounded_by_position() {
        let (p, windows) = setup();
        let a = mrrl_analyze(&p, &windows, 32, 0.999);
        for (w, &len) in windows.iter().zip(&a.warming_lens) {
            assert!(len <= w.detail_start, "warming cannot precede program start");
        }
    }

    #[test]
    fn higher_probability_needs_more_warming() {
        let (p, windows) = setup();
        let lo = mrrl_analyze(&p, &windows, 32, 0.5);
        let hi = mrrl_analyze(&p, &windows, 32, 0.999);
        assert!(
            hi.total_warming() >= lo.total_warming(),
            "99.9% coverage ({}) must need at least as much warming as 50% ({})",
            hi.total_warming(),
            lo.total_warming()
        );
    }

    #[test]
    fn adaptive_warming_is_cheaper_than_full() {
        // The headline MRRL property: total warming is a fraction of the
        // benchmark length (the paper reports ~20%).
        let (p, windows) = setup();
        let n = dynamic_length(&p);
        let a = mrrl_analyze(&p, &windows, 32, 0.999);
        assert!(
            a.total_warming() < n,
            "adaptive warming {} should undercut full warming {}",
            a.total_warming(),
            n
        );
    }

    #[test]
    #[should_panic(expected = "reuse probability")]
    fn rejects_bad_probability() {
        let (p, windows) = setup();
        mrrl_analyze(&p, &windows, 32, 0.0);
    }

    #[test]
    fn deterministic() {
        let (p, windows) = setup();
        assert_eq!(mrrl_analyze(&p, &windows, 32, 0.99), mrrl_analyze(&p, &windows, 32, 0.99));
    }
}
