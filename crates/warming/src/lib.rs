//! # spectral-warming — warming strategies for simulation sampling
//!
//! Implements the warming design space of the paper's §4 (Figure 2):
//!
//! * [`FunctionalWarmer`] — continuous functional warming of
//!   long-history structures (caches, TLBs, branch predictor) from the
//!   committed instruction stream,
//! * [`smarts_run`] — **full warming** (the SMARTS baseline): functional
//!   warming across the entire benchmark, detailed warming + measurement
//!   at each sample window,
//! * [`mrrl_analyze`] / [`adaptive_run`] — **adaptive warming** using
//!   Memory Reference Reuse Latency (Haskins & Skadron): a per-window
//!   warming length covering a target fraction (99.9%) of observed reuse
//!   distances, with or without state *stitching* between windows,
//! * [`complete_detailed`] — the non-sampled full-detail reference run
//!   (the `sim-outorder` row of Table 2, and the ground truth all bias
//!   numbers are measured against).
//!
//! **Checkpointed warming** — the third strategy, where the warm state
//! produced by a [`FunctionalWarmer`] is stored in live-points — lives in
//! `spectral-core`, built on the primitives here.
//!
//! ## Example: full-warming estimate vs reference
//!
//! ```no_run
//! use spectral_stats::{SampleDesign, SystematicDesign};
//! use spectral_uarch::MachineConfig;
//! use spectral_warming::{complete_detailed, smarts_run};
//! use spectral_workloads::{dynamic_length, tiny};
//!
//! let program = tiny().build();
//! let cfg = MachineConfig::eight_way();
//! let n = dynamic_length(&program);
//! let windows = SystematicDesign::paper_8way().windows(n, 30, 1);
//! let smarts = smarts_run(&cfg, &program, &windows);
//! let reference = complete_detailed(&cfg, &program);
//! let bias = (smarts.estimator.mean() - reference.cpi()).abs() / reference.cpi();
//! println!("CPI bias {:.2}%", bias * 100.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adaptive;
mod functional;
mod mrrl;
mod smarts;

pub use adaptive::{adaptive_run, AdaptiveResult};
pub use functional::{FunctionalWarmer, WarmState};
pub use mrrl::{mrrl_analyze, MrrlAnalysis};
pub use smarts::{complete_detailed, smarts_run, SampledResult};
