//! Continuous functional warming of long-history structures.

use spectral_cache::{AccessKind, CacheHierarchy};
use spectral_isa::{DynInst, MemOp, OpClass, INST_BYTES};
use spectral_uarch::{BranchPredictor, MachineConfig};

/// A bundle of functionally-warmed long-history state: the cache/TLB
/// hierarchy and the branch predictor.
#[derive(Debug, Clone)]
pub struct WarmState {
    /// Warmed cache/TLB hierarchy.
    pub hierarchy: CacheHierarchy,
    /// Warmed branch predictor.
    pub bpred: BranchPredictor,
}

/// Updates caches, TLBs, and the branch predictor from the committed
/// instruction stream — the paper's *functional warming* component.
///
/// Drive it by calling [`observe`](Self::observe) on every [`DynInst`]
/// the functional emulator commits. Instruction-fetch accesses are
/// deduplicated per cache line (consecutive fetches within one line
/// count as a single access), matching the timing model's fetch
/// behaviour so that warmed state agrees with detailed-simulation state.
#[derive(Debug, Clone)]
pub struct FunctionalWarmer {
    hierarchy: CacheHierarchy,
    bpred: BranchPredictor,
    last_fetch_line: u64,
    observed: u64,
}

impl FunctionalWarmer {
    /// Create a cold warmer for the given machine configuration.
    pub fn new(cfg: &MachineConfig) -> Self {
        FunctionalWarmer {
            hierarchy: CacheHierarchy::new(cfg.hierarchy),
            bpred: BranchPredictor::new(cfg.bpred),
            last_fetch_line: u64::MAX,
            observed: 0,
        }
    }

    /// Create a warmer resuming from existing warm state (stitching).
    pub fn from_state(state: WarmState) -> Self {
        FunctionalWarmer {
            hierarchy: state.hierarchy,
            bpred: state.bpred,
            last_fetch_line: u64::MAX,
            observed: 0,
        }
    }

    /// Observe one committed instruction, updating all warm structures.
    pub fn observe(&mut self, di: &DynInst) {
        self.observed += 1;
        let line = di.pc / self.hierarchy.config().l1i.line_bytes();
        if line != self.last_fetch_line {
            self.hierarchy.access(AccessKind::Fetch, di.pc);
            self.last_fetch_line = line;
        }
        if let Some((op, addr)) = di.mem {
            let kind = match op {
                MemOp::Read => AccessKind::Read,
                MemOp::Write => AccessKind::Write,
            };
            self.hierarchy.access(kind, addr);
        }
        if di.op == OpClass::Branch || di.op == OpClass::Jump {
            if let Some(info) = di.branch {
                self.bpred.update(di.pc, di.pc + INST_BYTES, &info);
            }
        }
    }

    /// Number of instructions observed so far.
    pub fn observed(&self) -> u64 {
        self.observed
    }

    /// Shared view of the warmed hierarchy.
    pub fn hierarchy(&self) -> &CacheHierarchy {
        &self.hierarchy
    }

    /// Shared view of the warmed predictor.
    pub fn bpred(&self) -> &BranchPredictor {
        &self.bpred
    }

    /// Clone the warm state (for seeding a detailed window while the
    /// warmer keeps running).
    pub fn clone_state(&self) -> WarmState {
        WarmState { hierarchy: self.hierarchy.clone(), bpred: self.bpred.clone() }
    }

    /// Discard all warm state (used by the unstitched adaptive-warming
    /// variant, which assumes cold structures before each warm period).
    pub fn flush(&mut self) {
        let h_cfg = *self.hierarchy.config();
        let b_cfg = *self.bpred.config();
        self.hierarchy = CacheHierarchy::new(h_cfg);
        self.bpred = BranchPredictor::new(b_cfg);
        self.last_fetch_line = u64::MAX;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spectral_isa::Emulator;
    use spectral_workloads::tiny;

    #[test]
    fn warming_populates_structures() {
        let p = tiny().build();
        let cfg = MachineConfig::eight_way();
        let mut w = FunctionalWarmer::new(&cfg);
        let mut emu = Emulator::new(&p);
        for _ in 0..50_000 {
            match emu.step() {
                Some(di) => w.observe(&di),
                None => break,
            }
        }
        assert!(w.observed() > 10_000);
        assert!(w.hierarchy().l1d().occupancy() > 0);
        assert!(w.hierarchy().l1i().occupancy() > 0);
        assert!(w.hierarchy().l2().occupancy() > 0);
        assert!(w.bpred().lookups() > 0);
    }

    #[test]
    fn clone_state_is_independent() {
        let p = tiny().build();
        let cfg = MachineConfig::eight_way();
        let mut w = FunctionalWarmer::new(&cfg);
        let mut emu = Emulator::new(&p);
        for _ in 0..10_000 {
            match emu.step() {
                Some(di) => w.observe(&di),
                None => break,
            }
        }
        let snap = w.clone_state();
        let occ = snap.hierarchy.l1d().occupancy();
        for _ in 0..10_000 {
            match emu.step() {
                Some(di) => w.observe(&di),
                None => break,
            }
        }
        assert_eq!(snap.hierarchy.l1d().occupancy(), occ, "clone unaffected");
    }

    #[test]
    fn flush_resets() {
        let p = tiny().build();
        let cfg = MachineConfig::eight_way();
        let mut w = FunctionalWarmer::new(&cfg);
        let mut emu = Emulator::new(&p);
        for _ in 0..5_000 {
            match emu.step() {
                Some(di) => w.observe(&di),
                None => break,
            }
        }
        w.flush();
        assert_eq!(w.hierarchy().l1d().occupancy(), 0);
        assert_eq!(w.hierarchy().l2().occupancy(), 0);
    }
}
