//! Confidence levels and sample-size planning.

use std::fmt;

/// A two-sided normal confidence level, carried as its z-score.
///
/// The paper's experiments all target [`Confidence::C99_7`]
/// ("three sigma") with a ±3% relative error bound.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Confidence {
    z: f64,
}

impl Confidence {
    /// 90% confidence (z ≈ 1.645).
    pub const C90: Confidence = Confidence { z: 1.6448536 };
    /// 95% confidence (z ≈ 1.960).
    pub const C95: Confidence = Confidence { z: 1.9599640 };
    /// 99% confidence (z ≈ 2.576).
    pub const C99: Confidence = Confidence { z: 2.5758293 };
    /// 99.7% confidence (z = 3), the paper's standard target.
    pub const C99_7: Confidence = Confidence { z: 3.0 };

    /// A custom confidence level from a z-score.
    ///
    /// # Panics
    ///
    /// Panics if `z` is not finite and positive.
    pub fn from_z(z: f64) -> Confidence {
        assert!(z.is_finite() && z > 0.0, "z-score must be finite and positive");
        Confidence { z }
    }

    /// The z-score.
    pub fn z(&self) -> f64 {
        self.z
    }
}

impl fmt::Display for Confidence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "z={:.3}", self.z)
    }
}

/// Minimum sample size floor imposed so the central limit theorem is
/// trustworthy (paper §6.1: "a minimum sample size of 30 live-points").
pub const MIN_SAMPLE_SIZE: u64 = 30;

/// Sample size required to bound the relative confidence-interval
/// half-width by `relative_error` at `confidence`, given the target
/// metric's coefficient of variation `cv`.
///
/// Uses `n ≥ (z · cv / ε)²`, the standard formula the SMARTS/live-points
/// line of work plans samples with, floored at [`MIN_SAMPLE_SIZE`].
///
/// # Panics
///
/// Panics if `relative_error` is not positive or `cv` is negative.
pub fn required_sample_size(cv: f64, relative_error: f64, confidence: Confidence) -> u64 {
    assert!(relative_error > 0.0, "relative error target must be positive");
    assert!(cv >= 0.0, "coefficient of variation cannot be negative");
    let n = (confidence.z() * cv / relative_error).powi(2).ceil() as u64;
    n.max(MIN_SAMPLE_SIZE)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_target_is_three_sigma() {
        assert_eq!(Confidence::C99_7.z(), 3.0);
    }

    #[test]
    fn sample_size_formula() {
        // cv = 0.3, ±3% at z=3 → (3*0.3/0.03)^2 = 900.
        assert_eq!(required_sample_size(0.3, 0.03, Confidence::C99_7), 900);
    }

    #[test]
    fn min_sample_floor() {
        assert_eq!(required_sample_size(0.0, 0.03, Confidence::C99_7), MIN_SAMPLE_SIZE);
        assert_eq!(required_sample_size(0.001, 0.5, Confidence::C90), MIN_SAMPLE_SIZE);
    }

    #[test]
    fn tighter_error_needs_more_samples() {
        let loose = required_sample_size(0.5, 0.05, Confidence::C99_7);
        let tight = required_sample_size(0.5, 0.01, Confidence::C99_7);
        assert!(tight > loose);
        assert_eq!(tight, loose * 25, "quadratic in 1/ε");
    }

    #[test]
    #[should_panic(expected = "relative error")]
    fn rejects_zero_error() {
        required_sample_size(0.3, 0.0, Confidence::C95);
    }

    #[test]
    fn custom_z() {
        let c = Confidence::from_z(2.0);
        assert_eq!(c.z(), 2.0);
        assert!(c < Confidence::C99_7);
    }

    #[test]
    #[should_panic(expected = "z-score")]
    fn rejects_bad_z() {
        Confidence::from_z(-1.0);
    }
}
