//! Single-pass (Welford) mean/variance estimation with merging.

use crate::confidence::Confidence;

/// A numerically-stable online estimator of mean and variance.
///
/// Supports [`merge`](Self::merge) (Chan et al. parallel combination) so
/// per-thread partial estimates from parallel live-point processing can
/// be combined without loss.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct OnlineEstimator {
    n: u64,
    mean: f64,
    m2: f64,
}

impl OnlineEstimator {
    /// Create an empty estimator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean (0 when empty).
    pub fn std_error(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.std_dev() / (self.n as f64).sqrt()
        }
    }

    /// Coefficient of variation `σ/μ` (0 when the mean is 0).
    pub fn coefficient_of_variation(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.std_dev() / self.mean.abs()
        }
    }

    /// Two-sided confidence-interval half-width at `confidence`.
    pub fn half_width(&self, confidence: Confidence) -> f64 {
        confidence.z() * self.std_error()
    }

    /// Half-width relative to the mean, the paper's "±X% error" measure
    /// (`f64::INFINITY` when the mean is 0).
    pub fn relative_half_width(&self, confidence: Confidence) -> f64 {
        if self.mean == 0.0 {
            f64::INFINITY
        } else {
            self.half_width(confidence) / self.mean.abs()
        }
    }

    /// Combine two partial estimates, as if all observations had been
    /// pushed into one estimator.
    pub fn merge(&mut self, other: &OnlineEstimator) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
    }
}

impl FromIterator<f64> for OnlineEstimator {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut e = OnlineEstimator::new();
        for x in iter {
            e.push(x);
        }
        e
    }
}

impl Extend<f64> for OnlineEstimator {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference_stats(xs: &[f64]) -> (f64, f64) {
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
        (mean, var)
    }

    #[test]
    fn matches_two_pass_reference() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 3.0 + 5.0).collect();
        let est: OnlineEstimator = xs.iter().copied().collect();
        let (mean, var) = reference_stats(&xs);
        assert!((est.mean() - mean).abs() < 1e-12);
        assert!((est.variance() - var).abs() < 1e-10);
    }

    #[test]
    fn empty_and_single() {
        let mut e = OnlineEstimator::new();
        assert_eq!(e.count(), 0);
        assert_eq!(e.mean(), 0.0);
        assert_eq!(e.variance(), 0.0);
        e.push(4.0);
        assert_eq!(e.mean(), 4.0);
        assert_eq!(e.variance(), 0.0, "undefined variance reported as 0");
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64 * 0.7).collect();
        let ys: Vec<f64> = (0..70).map(|i| (i as f64).cos()).collect();
        let mut a: OnlineEstimator = xs.iter().copied().collect();
        let b: OnlineEstimator = ys.iter().copied().collect();
        a.merge(&b);
        let all: OnlineEstimator = xs.iter().chain(ys.iter()).copied().collect();
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-12);
        assert!((a.variance() - all.variance()).abs() < 1e-10);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a: OnlineEstimator = [1.0, 2.0, 3.0].into_iter().collect();
        let before = a;
        a.merge(&OnlineEstimator::new());
        assert_eq!(a, before);
        let mut e = OnlineEstimator::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn half_width_shrinks_with_n() {
        let mut e = OnlineEstimator::new();
        for i in 0..100 {
            e.push(if i % 2 == 0 { 1.0 } else { 2.0 });
        }
        let hw100 = e.half_width(Confidence::C99_7);
        for i in 0..900 {
            e.push(if i % 2 == 0 { 1.0 } else { 2.0 });
        }
        assert!(e.half_width(Confidence::C99_7) < hw100 / 2.0);
    }

    #[test]
    fn constant_stream_has_zero_cv() {
        let e: OnlineEstimator = std::iter::repeat_n(2.5, 40).collect();
        assert_eq!(e.coefficient_of_variation(), 0.0);
        assert_eq!(e.relative_half_width(Confidence::C95), 0.0);
    }
}
