//! Matched-pair comparison (paper §6.2, after Ekman & Stenström).

use crate::confidence::{required_sample_size, Confidence, MIN_SAMPLE_SIZE};
use crate::estimator::OnlineEstimator;

/// A matched-pair comparison between a base and an experimental design.
///
/// Both designs are measured on the *same* sample (the same live-points);
/// the estimator tracks per-window deltas `experiment − base`. Because a
/// design change usually shifts all windows similarly, the delta variance
/// — and therefore the sample size needed to bound the delta's confidence
/// interval — is far smaller than for an absolute estimate. The paper
/// reports reduction factors of 3.5–150×.
///
/// # Example
///
/// ```
/// use spectral_stats::{Confidence, MatchedPair};
///
/// let mut mp = MatchedPair::new();
/// for i in 0..100u64 {
///     let base = 1.0 + (i % 7) as f64 * 0.1;     // varies a lot
///     let exp = base + 0.05;                      // uniform +0.05 shift
///     mp.push(base, exp);
/// }
/// assert!((mp.delta_mean() - 0.05).abs() < 1e-12);
/// assert!(mp.delta_half_width(Confidence::C99_7) < 1e-9, "no delta variance");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MatchedPair {
    base: OnlineEstimator,
    experiment: OnlineEstimator,
    delta: OnlineEstimator,
}

impl MatchedPair {
    /// Create an empty comparison.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one paired measurement (same window under both designs).
    pub fn push(&mut self, base: f64, experiment: f64) {
        self.base.push(base);
        self.experiment.push(experiment);
        self.delta.push(experiment - base);
    }

    /// Number of paired measurements.
    pub fn count(&self) -> u64 {
        self.delta.count()
    }

    /// Estimator over the base design's measurements.
    pub fn base(&self) -> &OnlineEstimator {
        &self.base
    }

    /// Estimator over the experimental design's measurements.
    pub fn experiment(&self) -> &OnlineEstimator {
        &self.experiment
    }

    /// Mean per-window delta (`experiment − base`).
    pub fn delta_mean(&self) -> f64 {
        self.delta.mean()
    }

    /// Confidence-interval half-width on the delta.
    pub fn delta_half_width(&self, confidence: Confidence) -> f64 {
        self.delta.half_width(confidence)
    }

    /// Relative change `(experiment − base) / base` of the means.
    pub fn relative_change(&self) -> f64 {
        if self.base.mean() == 0.0 {
            0.0
        } else {
            self.delta.mean() / self.base.mean()
        }
    }

    /// The delta's confidence interval `(lo, hi)` at `confidence`
    /// (`delta_mean ± delta_half_width`).
    pub fn delta_interval(&self, confidence: Confidence) -> (f64, f64) {
        let hw = self.delta_half_width(confidence);
        (self.delta_mean() - hw, self.delta_mean() + hw)
    }

    /// The relative change's confidence interval `(lo, hi)` at
    /// `confidence`: the delta interval scaled by the base mean. Used by
    /// `spectral-doctor gate` to report how bad a regression *could* be,
    /// not just its point estimate; `(0.0, 0.0)` when the base mean is
    /// zero.
    pub fn relative_change_interval(&self, confidence: Confidence) -> (f64, f64) {
        if self.base.mean() == 0.0 {
            return (0.0, 0.0);
        }
        let (lo, hi) = self.delta_interval(confidence);
        let (a, b) = (lo / self.base.mean(), hi / self.base.mean());
        (a.min(b), a.max(b))
    }

    /// Whether the delta is statistically distinguishable from zero at
    /// `confidence` (its confidence interval excludes zero).
    pub fn significant(&self, confidence: Confidence) -> bool {
        self.count() >= MIN_SAMPLE_SIZE
            && self.delta_mean().abs() > self.delta_half_width(confidence)
    }

    /// Sample size needed to bound the *delta's* confidence interval to
    /// `relative_error` of the **base mean** — the matched-pair analogue
    /// of the absolute sample-size formula.
    pub fn required_delta_sample(&self, relative_error: f64, confidence: Confidence) -> u64 {
        if self.base.mean() == 0.0 {
            return MIN_SAMPLE_SIZE;
        }
        // cv here is delta-σ relative to the base mean.
        let cv = self.delta.std_dev() / self.base.mean().abs();
        required_sample_size(cv, relative_error, confidence)
    }

    /// Sample size an *absolute* estimate of the experimental design
    /// would need for the same target.
    pub fn required_absolute_sample(&self, relative_error: f64, confidence: Confidence) -> u64 {
        required_sample_size(self.experiment.coefficient_of_variation(), relative_error, confidence)
    }

    /// The matched-pair sample-size reduction factor
    /// (absolute ÷ matched-pair requirement); the paper reports 3.5–150×.
    pub fn reduction_factor(&self, relative_error: f64, confidence: Confidence) -> f64 {
        let abs = self.required_absolute_sample(relative_error, confidence);
        let mp = self.required_delta_sample(relative_error, confidence);
        abs as f64 / mp as f64
    }

    /// Merge another comparison's partials (parallel processing).
    pub fn merge(&mut self, other: &MatchedPair) {
        self.base.merge(&other.base);
        self.experiment.merge(&other.experiment);
        self.delta.merge(&other.delta);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-noise in [-0.5, 0.5).
    fn noise(i: u64) -> f64 {
        let mut z = i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z ^= z >> 31;
        (z % 1000) as f64 / 1000.0 - 0.5
    }

    #[test]
    fn uniform_shift_has_tiny_delta_variance() {
        let mut mp = MatchedPair::new();
        for i in 0..500 {
            let base = 2.0 + noise(i); // high absolute variance
            mp.push(base, base * 1.02); // ~uniform 2% slowdown
        }
        let f = mp.reduction_factor(0.03, Confidence::C99_7);
        assert!(f > 3.0, "matched pairs should need far fewer samples, got {f}");
    }

    #[test]
    fn no_effect_is_insignificant() {
        let mut mp = MatchedPair::new();
        for i in 0..200 {
            let base = 1.5 + noise(i);
            mp.push(base, base + noise(i + 1000) * 1e-3);
        }
        assert!(!mp.significant(Confidence::C99_7));
    }

    #[test]
    fn clear_effect_is_significant() {
        let mut mp = MatchedPair::new();
        for i in 0..200 {
            let base = 1.5 + noise(i);
            mp.push(base, base + 0.3);
        }
        assert!(mp.significant(Confidence::C99_7));
        assert!((mp.delta_mean() - 0.3).abs() < 1e-9);
        assert!((mp.relative_change() - 0.3 / mp.base().mean()).abs() < 1e-12);
    }

    #[test]
    fn intervals_bracket_the_point_estimates() {
        let mut mp = MatchedPair::new();
        for i in 0..200 {
            let base = 1.5 + noise(i);
            mp.push(base, base + 0.3 + noise(i + 7_000) * 0.01);
        }
        let (lo, hi) = mp.delta_interval(Confidence::C95);
        assert!(lo < mp.delta_mean() && mp.delta_mean() < hi);
        assert!((hi - lo) - 2.0 * mp.delta_half_width(Confidence::C95) < 1e-12);
        let (rlo, rhi) = mp.relative_change_interval(Confidence::C95);
        assert!(rlo <= mp.relative_change() && mp.relative_change() <= rhi);
        assert!(rlo <= rhi, "interval is ordered even for negative base means");
        // Degenerate base: well-defined zeros, not NaN.
        let empty = MatchedPair::new();
        assert_eq!(empty.relative_change_interval(Confidence::C95), (0.0, 0.0));
    }

    #[test]
    fn too_few_samples_never_significant() {
        let mut mp = MatchedPair::new();
        for _ in 0..10 {
            mp.push(1.0, 2.0);
        }
        assert!(!mp.significant(Confidence::C95), "below the n ≥ 30 floor");
    }

    #[test]
    fn merge_equals_sequential() {
        let mut a = MatchedPair::new();
        let mut b = MatchedPair::new();
        let mut all = MatchedPair::new();
        for i in 0..100 {
            let (x, y) = (1.0 + noise(i), 1.1 + noise(i));
            if i % 2 == 0 {
                a.push(x, y);
            } else {
                b.push(x, y);
            }
            all.push(x, y);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.delta_mean() - all.delta_mean()).abs() < 1e-12);
    }
}
