//! Sample designs: where in the dynamic instruction stream to measure.

/// One measurement window: a detailed-warming prefix followed by the
/// measured interval, both positioned by committed-instruction sequence
/// numbers.
///
/// This is the paper's "detailed window": `warm_len` instructions of
/// detailed warming (Table 1: 2000 for the 8-way, 4000 for the 16-way)
/// immediately followed by a `measure_len`-instruction measurement
/// (1000 in all experiments).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WindowSpec {
    /// Sequence number where detailed warming begins.
    pub detail_start: u64,
    /// Sequence number where measurement begins.
    pub measure_start: u64,
    /// Measured instruction count.
    pub measure_len: u64,
}

impl WindowSpec {
    /// Sequence number one past the last measured instruction.
    pub fn end(&self) -> u64 {
        self.measure_start + self.measure_len
    }

    /// Detailed-warming length in instructions.
    pub fn warm_len(&self) -> u64 {
        self.measure_start - self.detail_start
    }

    /// Total window length (warming + measurement).
    pub fn total_len(&self) -> u64 {
        self.end() - self.detail_start
    }
}

/// A strategy for choosing measurement windows over a benchmark.
///
/// Implementations must produce windows sorted by position and
/// non-overlapping, so that a single forward pass (live-point creation
/// or full warming) can service all of them.
pub trait SampleDesign {
    /// Choose up to `n` windows over a benchmark of `benchmark_len`
    /// committed instructions, deterministically from `seed`.
    fn windows(&self, benchmark_len: u64, n: u64, seed: u64) -> Vec<WindowSpec>;
}

/// Splitmix64 — a tiny deterministic generator so designs are
/// reproducible without external dependencies.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The paper's periodic sample design: measurement units of `unit_len`
/// instructions at a fixed period with a random phase, each preceded by
/// `warm_len` instructions of detailed warming.
///
/// Periodic (systematic) sampling with a random phase is unbiased for
/// the population mean and was shown by SMARTS to minimize detailed
/// simulation for a given confidence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SystematicDesign {
    unit_len: u64,
    warm_len: u64,
}

impl SystematicDesign {
    /// Create a design with `unit_len`-instruction measurement units and
    /// `warm_len`-instruction detailed warming.
    ///
    /// # Panics
    ///
    /// Panics if `unit_len` is zero.
    pub fn new(unit_len: u64, warm_len: u64) -> Self {
        assert!(unit_len > 0, "measurement unit length must be positive");
        SystematicDesign { unit_len, warm_len }
    }

    /// The paper's standard 8-way design: U = 1000, W = 2000.
    pub fn paper_8way() -> Self {
        SystematicDesign::new(1000, 2000)
    }

    /// The paper's 16-way design: U = 1000, W = 4000 (larger structures
    /// need longer detailed warming; Table 1).
    pub fn paper_16way() -> Self {
        SystematicDesign::new(1000, 4000)
    }

    /// Measurement unit length.
    pub fn unit_len(&self) -> u64 {
        self.unit_len
    }

    /// Detailed-warming length.
    pub fn warm_len(&self) -> u64 {
        self.warm_len
    }
}

impl SampleDesign for SystematicDesign {
    fn windows(&self, benchmark_len: u64, n: u64, seed: u64) -> Vec<WindowSpec> {
        if n == 0 || benchmark_len < self.unit_len + self.warm_len {
            return Vec::new();
        }
        let n = n.min(benchmark_len / (self.unit_len + self.warm_len)).max(1);
        let period = benchmark_len / n;
        let mut state = seed ^ 0xA076_1D64_78BD_642F;
        // One measurement per period. When the period has room, each
        // window gets its own random phase within the period's middle
        // half ("systematic random" placement): strictly periodic
        // placement aliases with periodic program structure — on
        // loop-regular workloads every window can land at the same
        // offset of the same kernel loop, yielding degenerate
        // zero-variance samples and false confidence. Jitter bounded to
        // the middle half keeps windows sorted and non-overlapping.
        let span = self.unit_len + self.warm_len;
        let jitter_room = (period / 2).saturating_sub(self.unit_len);
        let jittered = period >= 2 * span && jitter_room > 0;
        let global_slack = period.saturating_sub(self.unit_len);
        let global_phase =
            if global_slack == 0 { 0 } else { splitmix64(&mut state) % global_slack };
        let mut windows = Vec::with_capacity(n as usize);
        for i in 0..n {
            let phase = if jittered {
                period / 4 + splitmix64(&mut state) % jitter_room
            } else {
                global_phase
            };
            let measure_start = i * period + phase;
            if measure_start + self.unit_len > benchmark_len {
                break;
            }
            let detail_start = measure_start.saturating_sub(self.warm_len);
            windows.push(WindowSpec { detail_start, measure_start, measure_len: self.unit_len });
        }
        windows
    }
}

/// Uniform random sampling: `n` unit starts drawn without overlap.
///
/// Included because the paper notes live-points "can also be applied to
/// other sample designs (e.g., random sampling)".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RandomDesign {
    unit_len: u64,
    warm_len: u64,
}

impl RandomDesign {
    /// Create a random design with the given unit and warming lengths.
    ///
    /// # Panics
    ///
    /// Panics if `unit_len` is zero.
    pub fn new(unit_len: u64, warm_len: u64) -> Self {
        assert!(unit_len > 0, "measurement unit length must be positive");
        RandomDesign { unit_len, warm_len }
    }
}

impl SampleDesign for RandomDesign {
    fn windows(&self, benchmark_len: u64, n: u64, seed: u64) -> Vec<WindowSpec> {
        let span = self.unit_len + self.warm_len;
        if n == 0 || benchmark_len < span {
            return Vec::new();
        }
        // Draw starts on a unit-length grid, then de-overlap by keeping
        // sorted unique slots.
        let slots = benchmark_len / self.unit_len;
        let mut state = seed ^ 0x243F_6A88_85A3_08D3;
        let mut picks: Vec<u64> = (0..n * 2).map(|_| splitmix64(&mut state) % slots).collect();
        picks.sort_unstable();
        picks.dedup();
        let mut windows = Vec::new();
        let mut last_end = 0u64;
        for slot in picks {
            if windows.len() as u64 == n {
                break;
            }
            let measure_start = slot * self.unit_len;
            let detail_start = measure_start.saturating_sub(self.warm_len);
            if detail_start < last_end || measure_start + self.unit_len > benchmark_len {
                continue;
            }
            let w = WindowSpec { detail_start, measure_start, measure_len: self.unit_len };
            last_end = w.end();
            windows.push(w);
        }
        windows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_valid(windows: &[WindowSpec], benchmark_len: u64) {
        let mut prev_end = 0;
        for w in windows {
            assert!(w.detail_start <= w.measure_start);
            assert!(w.end() <= benchmark_len);
            assert!(w.measure_start >= prev_end, "measurements must not overlap");
            prev_end = w.measure_start + w.measure_len;
        }
    }

    #[test]
    fn systematic_produces_n_windows() {
        let d = SystematicDesign::paper_8way();
        let ws = d.windows(10_000_000, 100, 42);
        assert_eq!(ws.len(), 100);
        assert_valid(&ws, 10_000_000);
        assert!(ws.iter().all(|w| w.measure_len == 1000));
        // All but possibly the first have full warming.
        assert!(ws[1..].iter().all(|w| w.warm_len() == 2000));
    }

    #[test]
    fn systematic_one_window_per_period() {
        let d = SystematicDesign::paper_8way();
        let ws = d.windows(1_000_000, 10, 7);
        let period = 1_000_000 / 10;
        for (i, w) in ws.iter().enumerate() {
            let lo = i as u64 * period;
            assert!(
                w.measure_start >= lo && w.measure_start + w.measure_len <= lo + period,
                "window {i} at {} escapes its period [{lo}, {})",
                w.measure_start,
                lo + period
            );
        }
    }

    #[test]
    fn jitter_breaks_phase_alignment() {
        // With room to jitter, consecutive gaps must not all be equal —
        // the anti-aliasing property.
        let d = SystematicDesign::paper_8way();
        let ws = d.windows(10_000_000, 50, 3);
        let gaps: Vec<u64> =
            ws.windows(2).map(|p| p[1].measure_start - p[0].measure_start).collect();
        let first = gaps[0];
        assert!(gaps.iter().any(|&g| g != first), "gaps all equal: aliasing risk");
    }

    #[test]
    fn tight_benchmark_falls_back_to_strict_periodic() {
        // Period < 2*(unit+warm): no room to jitter; strict placement.
        let d = SystematicDesign::new(1000, 2000);
        let ws = d.windows(40_000, 10, 3);
        assert!(!ws.is_empty());
        let gaps: Vec<u64> =
            ws.windows(2).map(|p| p[1].measure_start - p[0].measure_start).collect();
        assert!(gaps.iter().all(|&g| g == gaps[0]), "fallback must be periodic");
    }

    #[test]
    fn systematic_deterministic_in_seed() {
        let d = SystematicDesign::paper_8way();
        assert_eq!(d.windows(1_000_000, 10, 7), d.windows(1_000_000, 10, 7));
        assert_ne!(
            d.windows(10_000_000, 10, 7)[0],
            d.windows(10_000_000, 10, 8)[0],
            "different phases"
        );
    }

    #[test]
    fn short_benchmark_yields_fewer_windows() {
        let d = SystematicDesign::paper_8way();
        let ws = d.windows(30_000, 100, 1);
        assert!(ws.len() <= 10);
        assert!(!ws.is_empty());
        assert_valid(&ws, 30_000);
    }

    #[test]
    fn degenerate_inputs() {
        let d = SystematicDesign::paper_8way();
        assert!(d.windows(100, 10, 1).is_empty(), "benchmark shorter than one window");
        assert!(d.windows(1_000_000, 0, 1).is_empty());
    }

    #[test]
    fn random_design_valid_and_seeded() {
        let d = RandomDesign::new(1000, 2000);
        let ws = d.windows(10_000_000, 50, 9);
        assert!(!ws.is_empty());
        assert_valid(&ws, 10_000_000);
        assert_eq!(ws, d.windows(10_000_000, 50, 9));
    }

    #[test]
    fn window_spec_arithmetic() {
        let w = WindowSpec { detail_start: 100, measure_start: 2100, measure_len: 1000 };
        assert_eq!(w.warm_len(), 2000);
        assert_eq!(w.end(), 3100);
        assert_eq!(w.total_len(), 3000);
    }
}
