//! Stratified sampling (the paper's cited optimization, Wunderlich et
//! al., "An evaluation of stratified sampling of microarchitecture
//! simulations").
//!
//! When a benchmark has phases, windows within a phase resemble each
//! other far more than windows across phases. Stratifying the population
//! (here: by position, which tracks phases for phased programs) and
//! allocating measurements per stratum reduces the variance of the
//! combined estimate for the same total sample size.

use crate::confidence::Confidence;
use crate::estimator::OnlineEstimator;

/// A stratified estimator: one [`OnlineEstimator`] per stratum plus the
/// strata's population weights.
///
/// The combined mean is `Σ wₕ·μₕ` and the combined standard error is
/// `√(Σ wₕ²·σₕ²/nₕ)` — smaller than simple random sampling whenever
/// within-stratum variance is below the population variance.
#[derive(Debug, Clone)]
pub struct StratifiedEstimator {
    strata: Vec<OnlineEstimator>,
    weights: Vec<f64>,
}

impl StratifiedEstimator {
    /// Create an estimator over strata with the given population
    /// weights.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty, holds non-positive entries, or does
    /// not sum to ~1.
    pub fn new(weights: Vec<f64>) -> Self {
        assert!(!weights.is_empty(), "at least one stratum required");
        assert!(weights.iter().all(|&w| w > 0.0), "weights must be positive");
        let sum: f64 = weights.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "weights must sum to 1, got {sum}");
        StratifiedEstimator { strata: vec![OnlineEstimator::new(); weights.len()], weights }
    }

    /// Equal-width position strata (the default for phase tracking).
    pub fn uniform(num_strata: usize) -> Self {
        Self::new(vec![1.0 / num_strata as f64; num_strata])
    }

    /// Number of strata.
    pub fn num_strata(&self) -> usize {
        self.strata.len()
    }

    /// Record an observation in stratum `h`.
    ///
    /// # Panics
    ///
    /// Panics if `h` is out of range.
    pub fn push(&mut self, h: usize, x: f64) {
        self.strata[h].push(x);
    }

    /// Per-stratum estimator access.
    pub fn stratum(&self, h: usize) -> &OnlineEstimator {
        &self.strata[h]
    }

    /// Total observations across strata.
    pub fn count(&self) -> u64 {
        self.strata.iter().map(OnlineEstimator::count).sum()
    }

    /// Whether every stratum has at least `n` observations (needed
    /// before the combined variance is meaningful).
    pub fn all_strata_have(&self, n: u64) -> bool {
        self.strata.iter().all(|s| s.count() >= n)
    }

    /// Combined (weighted) mean.
    pub fn mean(&self) -> f64 {
        self.strata.iter().zip(&self.weights).map(|(s, w)| w * s.mean()).sum()
    }

    /// Standard error of the combined mean (0 until every stratum has
    /// two observations).
    pub fn std_error(&self) -> f64 {
        self.strata
            .iter()
            .zip(&self.weights)
            .map(|(s, w)| if s.count() < 2 { 0.0 } else { w * w * s.variance() / s.count() as f64 })
            .sum::<f64>()
            .sqrt()
    }

    /// Confidence-interval half-width on the combined mean.
    pub fn half_width(&self, confidence: Confidence) -> f64 {
        confidence.z() * self.std_error()
    }

    /// Half-width relative to the combined mean.
    pub fn relative_half_width(&self, confidence: Confidence) -> f64 {
        let m = self.mean();
        if m == 0.0 {
            f64::INFINITY
        } else {
            self.half_width(confidence) / m.abs()
        }
    }

    /// Neyman allocation of `total` further observations: proportional
    /// to `wₕ·σₕ`, using current per-stratum deviations (each stratum
    /// needs ≥2 pilot observations first). Every stratum receives at
    /// least one slot.
    pub fn neyman_allocation(&self, total: u64) -> Vec<u64> {
        let scores: Vec<f64> =
            self.strata.iter().zip(&self.weights).map(|(s, w)| w * s.std_dev()).collect();
        let sum: f64 = scores.iter().sum();
        if sum <= 0.0 {
            // Degenerate: equal split.
            let per = (total / self.strata.len() as u64).max(1);
            return vec![per; self.strata.len()];
        }
        scores.iter().map(|sc| (((sc / sum) * total as f64).round() as u64).max(1)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combined_mean_is_weighted() {
        let mut s = StratifiedEstimator::new(vec![0.25, 0.75]);
        for _ in 0..10 {
            s.push(0, 1.0);
            s.push(1, 3.0);
        }
        assert!((s.mean() - (0.25 * 1.0 + 0.75 * 3.0)).abs() < 1e-12);
        assert_eq!(s.count(), 20);
    }

    #[test]
    fn stratification_beats_pooling_on_phases() {
        // Two phases with different means but tiny within-phase noise:
        // the stratified SE must be far below the pooled SE.
        let mut strat = StratifiedEstimator::uniform(2);
        let mut pooled = OnlineEstimator::new();
        for i in 0..100u64 {
            let noise = ((i * 2654435761) % 100) as f64 / 1000.0;
            let a = 1.0 + noise;
            let b = 3.0 + noise;
            strat.push(0, a);
            strat.push(1, b);
            pooled.push(a);
            pooled.push(b);
        }
        assert!(
            strat.std_error() * 5.0 < pooled.std_error(),
            "stratified {} vs pooled {}",
            strat.std_error(),
            pooled.std_error()
        );
        assert!((strat.mean() - pooled.mean()).abs() < 1e-9, "same mean");
    }

    #[test]
    fn neyman_favors_noisy_strata() {
        let mut s = StratifiedEstimator::uniform(2);
        for i in 0..30u64 {
            s.push(0, 1.0); // zero variance
            s.push(1, if i % 2 == 0 { 1.0 } else { 5.0 }); // high variance
        }
        let alloc = s.neyman_allocation(100);
        assert_eq!(alloc.len(), 2);
        assert!(alloc[1] > alloc[0] * 10, "noisy stratum gets the budget: {alloc:?}");
        assert!(alloc[0] >= 1, "every stratum keeps at least one slot");
    }

    #[test]
    fn degenerate_allocation_splits_evenly() {
        let mut s = StratifiedEstimator::uniform(4);
        for h in 0..4 {
            s.push(h, 2.0);
            s.push(h, 2.0);
        }
        let alloc = s.neyman_allocation(40);
        assert_eq!(alloc, vec![10, 10, 10, 10]);
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn rejects_bad_weights() {
        StratifiedEstimator::new(vec![0.5, 0.2]);
    }

    #[test]
    fn half_width_tracks_confidence() {
        let mut s = StratifiedEstimator::uniform(2);
        for i in 0..50u64 {
            s.push(0, (i % 3) as f64);
            s.push(1, (i % 5) as f64);
        }
        assert!(s.half_width(Confidence::C99_7) > s.half_width(Confidence::C90));
        assert!(s.relative_half_width(Confidence::C95).is_finite());
    }
}
