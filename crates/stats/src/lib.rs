//! # spectral-stats — sampling statistics for simulation sampling
//!
//! The statistical machinery behind the Spectral live-points framework
//! (reproduction of *Simulation Sampling with Live-points*, ISPASS 2006):
//!
//! * [`OnlineEstimator`] — Welford single-pass mean/variance with
//!   mergeable partials (for parallel live-point processing),
//! * [`Confidence`] — confidence levels as z-scores; the paper's
//!   "99.7% confidence of ±3% error" is [`Confidence::C99_7`] with a
//!   relative error target of `0.03`,
//! * sample-size planning ([`required_sample_size`]) with the paper's
//!   `n ≥ 30` central-limit floor,
//! * [`SystematicDesign`] / [`RandomDesign`] — the paper's periodic
//!   1000-instruction measurement-unit sample design (plus uniform
//!   random sampling as an alternative),
//! * [`MatchedPair`] — matched-pair comparison on per-window deltas
//!   (paper §6.2, after Ekman & Stenström), which shrinks required
//!   sample sizes by large factors for comparative studies,
//! * [`StreamingCi`] / [`AnomalyDetector`] — sampling-health substrate
//!   for the observability layer: termination-rule eligibility tracking
//!   (including the ±ε@95% early-stop rule) and per-point kσ CPI /
//!   latency-tail anomaly detection.
//!
//! ## Example: plan and evaluate a sample
//!
//! ```
//! use spectral_stats::{Confidence, OnlineEstimator, required_sample_size};
//!
//! let mut est = OnlineEstimator::new();
//! for i in 0..1000u64 {
//!     est.push(1.0 + 0.25 * ((i % 10) as f64) / 10.0); // fake CPIs
//! }
//! let n = required_sample_size(est.coefficient_of_variation(), 0.03, Confidence::C99_7);
//! assert!(n >= 30);
//! assert!(est.relative_half_width(Confidence::C99_7) < 0.03);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod confidence;
mod design;
mod estimator;
mod health;
mod matched;
mod strata;

pub use confidence::{required_sample_size, Confidence, MIN_SAMPLE_SIZE};
pub use design::{RandomDesign, SampleDesign, SystematicDesign, WindowSpec};
pub use estimator::OnlineEstimator;
pub use health::{AnomalyDetector, PointHealth, StreamingCi, ANOMALY_WARMUP};
pub use matched::MatchedPair;
pub use strata::StratifiedEstimator;
