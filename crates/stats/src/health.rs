//! Streaming sampling-health statistics: confidence tracking against a
//! termination rule, and per-observation anomaly detection.
//!
//! The paper's online mode promises results *while the simulation
//! runs*; this module supplies the statistical substrate the
//! observability layer reports from:
//!
//! * [`StreamingCi`] — an [`OnlineEstimator`] bound to a confidence
//!   level and a relative-error target, answering "could this run stop
//!   now?" ([`eligible`](StreamingCi::eligible)) at the policy
//!   confidence and at the paper's ±ε@95% rule
//!   ([`eligible_at`](StreamingCi::eligible_at)).
//! * [`AnomalyDetector`] — flags individual live-points whose CPI
//!   deviates more than kσ from the running estimate, or whose decode /
//!   simulate wall-clock lands beyond the stream's p99 log₂ bucket
//!   (the histogram's top-tail).

use crate::confidence::{Confidence, MIN_SAMPLE_SIZE};
use crate::estimator::OnlineEstimator;

/// Observations a latency tail must accumulate before its p99 bucket is
/// considered meaningful (anomalies are never flagged during warmup).
pub const ANOMALY_WARMUP: u64 = 32;

/// A running confidence interval bound to a termination rule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamingCi {
    estimator: OnlineEstimator,
    confidence: Confidence,
    target_rel_err: f64,
}

impl StreamingCi {
    /// Track an interval at `confidence` against a relative-error
    /// target (the paper's ±3% is `0.03`).
    pub fn new(confidence: Confidence, target_rel_err: f64) -> Self {
        StreamingCi { estimator: OnlineEstimator::new(), confidence, target_rel_err }
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        self.estimator.push(x);
    }

    /// Merge another partial (parallel shards).
    pub fn merge(&mut self, other: &OnlineEstimator) {
        self.estimator.merge(other);
    }

    /// Observations so far.
    pub fn count(&self) -> u64 {
        self.estimator.count()
    }

    /// Running mean.
    pub fn mean(&self) -> f64 {
        self.estimator.mean()
    }

    /// Half-width at the bound confidence level.
    pub fn half_width(&self) -> f64 {
        self.estimator.half_width(self.confidence)
    }

    /// Relative half-width at the bound confidence level.
    pub fn relative_half_width(&self) -> f64 {
        self.estimator.relative_half_width(self.confidence)
    }

    /// The relative-error target.
    pub fn target_rel_err(&self) -> f64 {
        self.target_rel_err
    }

    /// Whether the run could terminate now at the bound confidence:
    /// `n ≥ 30` and the relative half-width is within the target.
    pub fn eligible(&self) -> bool {
        self.eligible_at(self.confidence)
    }

    /// The same termination test at another confidence level (the
    /// paper's ±ε@95% early-termination rule checks
    /// `eligible_at(Confidence::C95)` regardless of the reporting
    /// confidence).
    pub fn eligible_at(&self, confidence: Confidence) -> bool {
        self.estimator.count() >= MIN_SAMPLE_SIZE
            && self.estimator.relative_half_width(confidence) <= self.target_rel_err
    }

    /// The underlying estimator.
    pub fn estimator(&self) -> &OnlineEstimator {
        &self.estimator
    }
}

/// The log₂ bucket a value falls into (bucket 0 holds zeros, bucket
/// `i ≥ 1` holds `[2^(i-1), 2^i)`), mirroring the telemetry histogram
/// layout so doctor tooling can compare the two.
fn log2_bucket(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// A compact log₂ latency distribution with a p99-bucket query.
#[derive(Debug, Clone)]
struct LatencyTail {
    buckets: [u32; 65],
    count: u64,
}

impl LatencyTail {
    fn new() -> Self {
        LatencyTail { buckets: [0; 65], count: 0 }
    }

    /// The bucket containing the p99 rank of everything seen so far.
    fn p99_bucket(&self) -> usize {
        if self.count == 0 {
            return 0;
        }
        let rank = ((0.99 * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += u64::from(c);
            if seen >= rank {
                return i;
            }
        }
        64
    }

    /// Record `value`; returns `true` when the stream is past warmup
    /// and `value` lands *beyond* the previous p99 bucket — the
    /// histogram's top-tail.
    fn observe(&mut self, value: u64) -> bool {
        let slow = self.count >= ANOMALY_WARMUP && log2_bucket(value) > self.p99_bucket();
        self.buckets[log2_bucket(value)] = self.buckets[log2_bucket(value)].saturating_add(1);
        self.count += 1;
        slow
    }
}

/// Per-point health verdict from [`AnomalyDetector::observe`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PointHealth {
    /// `Some(k)` when the point's CPI sat `k` standard deviations from
    /// the running mean and `k` exceeded the detector's threshold.
    pub cpi_sigmas: Option<f64>,
    /// Decode wall-clock landed beyond the stream's p99 log₂ bucket.
    pub slow_decode: bool,
    /// Simulate wall-clock landed beyond the stream's p99 log₂ bucket.
    pub slow_simulate: bool,
}

impl PointHealth {
    /// Whether any anomaly fired.
    pub fn is_anomalous(&self) -> bool {
        self.cpi_sigmas.is_some() || self.slow_decode || self.slow_simulate
    }
}

/// Streaming per-point anomaly detection over (CPI, decode time,
/// simulate time) triples.
///
/// CPI outliers are judged against the *running* estimate (Welford mean
/// and deviation of everything observed before the point in question),
/// never retroactively — matching what an online operator watching the
/// run could have known at that moment. Time outliers are judged
/// against each stream's own log₂ distribution: a point is slow when
/// its bucket lies strictly beyond the p99 bucket of all prior
/// observations (after [`ANOMALY_WARMUP`] points).
#[derive(Debug, Clone)]
pub struct AnomalyDetector {
    sigma_threshold: f64,
    cpi: OnlineEstimator,
    decode: LatencyTail,
    simulate: LatencyTail,
}

impl AnomalyDetector {
    /// Flag CPI deviations beyond `sigma_threshold` standard deviations
    /// (3.0 is the conventional choice).
    ///
    /// # Panics
    ///
    /// Panics when `sigma_threshold` is not finite and positive.
    pub fn new(sigma_threshold: f64) -> Self {
        assert!(
            sigma_threshold.is_finite() && sigma_threshold > 0.0,
            "sigma threshold must be finite and positive"
        );
        AnomalyDetector {
            sigma_threshold,
            cpi: OnlineEstimator::new(),
            decode: LatencyTail::new(),
            simulate: LatencyTail::new(),
        }
    }

    /// Record one point and report whether it is anomalous relative to
    /// everything observed before it.
    pub fn observe(&mut self, cpi: f64, decode_ns: u64, simulate_ns: u64) -> PointHealth {
        let cpi_sigmas = if self.cpi.count() >= MIN_SAMPLE_SIZE && self.cpi.std_dev() > 0.0 {
            let k = (cpi - self.cpi.mean()).abs() / self.cpi.std_dev();
            (k > self.sigma_threshold).then_some(k)
        } else {
            None
        };
        self.cpi.push(cpi);
        PointHealth {
            cpi_sigmas,
            slow_decode: self.decode.observe(decode_ns),
            slow_simulate: self.simulate.observe(simulate_ns),
        }
    }

    /// The running CPI estimator the outlier test compares against.
    pub fn cpi_estimator(&self) -> &OnlineEstimator {
        &self.cpi
    }

    /// The configured kσ threshold.
    pub fn sigma_threshold(&self) -> f64 {
        self.sigma_threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streaming_ci_tracks_eligibility() {
        let mut ci = StreamingCi::new(Confidence::C99_7, 0.05);
        for i in 0..(MIN_SAMPLE_SIZE - 1) {
            ci.push(1.0 + 0.001 * (i % 2) as f64);
        }
        assert!(!ci.eligible(), "below the n >= 30 floor");
        ci.push(1.0);
        assert!(ci.eligible(), "tight data past the floor");
        assert!(ci.eligible_at(Confidence::C95), "95% is looser than 99.7%");
        assert!(ci.relative_half_width() <= 0.05);
    }

    #[test]
    fn eligibility_95_is_looser_than_99_7() {
        let mut ci = StreamingCi::new(Confidence::C99_7, 0.03);
        // Spread chosen so the interval passes at z=1.96 but not z=3.
        for i in 0..200u64 {
            ci.push(1.0 + if i % 2 == 0 { 0.18 } else { -0.18 });
        }
        assert!(ci.eligible_at(Confidence::C95));
        assert!(!ci.eligible(), "same data must still fail at 99.7%");
    }

    #[test]
    fn cpi_outlier_needs_floor_and_deviation() {
        let mut d = AnomalyDetector::new(3.0);
        // Alternating stream: nonzero variance, no outliers.
        for i in 0..100u64 {
            let h = d.observe(if i % 2 == 0 { 1.0 } else { 1.2 }, 100, 1000);
            assert_eq!(h.cpi_sigmas, None, "point {i} wrongly flagged");
        }
        let h = d.observe(9.0, 100, 1000);
        let k = h.cpi_sigmas.expect("9.0 is far outside a 1.0/1.2 stream");
        assert!(k > 3.0, "sigmas {k}");
    }

    #[test]
    fn constant_stream_never_divides_by_zero() {
        let mut d = AnomalyDetector::new(3.0);
        for _ in 0..100 {
            let h = d.observe(1.5, 100, 1000);
            assert_eq!(h.cpi_sigmas, None, "zero variance must not flag");
        }
    }

    #[test]
    fn slow_tail_flags_only_past_warmup() {
        // A huge value during warmup is never flagged.
        let mut warming = AnomalyDetector::new(3.0);
        assert!(!warming.observe(1.0, 1 << 40, 1000).slow_decode);

        let mut d = AnomalyDetector::new(3.0);
        for _ in 0..ANOMALY_WARMUP {
            assert!(!d.observe(1.0, 1000, 1000).slow_decode);
        }
        // Past warmup a value orders of magnitude beyond the p99 bucket
        // is flagged; a typical value is not.
        let h = d.observe(1.0, 1 << 40, 1000);
        assert!(h.slow_decode);
        assert!(!h.slow_simulate);
        assert!(!d.observe(1.0, 1100, 1000).slow_decode);
    }

    #[test]
    fn p99_bucket_tracks_distribution() {
        let mut t = LatencyTail::new();
        for _ in 0..99 {
            t.observe(1000);
        }
        assert_eq!(t.p99_bucket(), log2_bucket(1000));
        // A 1%-tail of larger values moves the p99 bucket up.
        for _ in 0..99 {
            t.observe(1 << 30);
        }
        assert_eq!(t.p99_bucket(), log2_bucket(1 << 30));
    }

    #[test]
    #[should_panic(expected = "sigma threshold")]
    fn rejects_bad_sigma() {
        AnomalyDetector::new(0.0);
    }
}
