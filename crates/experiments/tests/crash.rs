//! Process-level crash drills: real experiment binaries killed by the
//! fault harness (`SPECTRAL_FAULT_KILL` aborts the process at a named
//! I/O site, simulating `kill -9`) must leave every on-disk structure
//! either old or new — never torn — and a killed checkpointing run must
//! resume to the same printed estimate an uninterrupted run produces.
//!
//! The in-process differential suite (`crates/core/tests/resume.rs`)
//! pins bit-identity; this suite pins the end-to-end operator story:
//! crash the binary for real, restart it with `--resume`, read the same
//! answer.

use std::path::PathBuf;
use std::process::{Command, Output};

use spectral_core::{LivePointLibrary, RunCheckpoint};
use spectral_registry::Registry;

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("spectral_crash_{}_{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A small, fully deterministic `online` invocation.
fn online(extra: &[&str], envs: &[(&str, &str)]) -> Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_online"));
    cmd.args(["--quick", "--windows", "30", "--target", "10"]).args(extra);
    for (k, v) in envs {
        cmd.env(k, v);
    }
    cmd.output().expect("spawn online")
}

fn final_estimate_line(out: &Output) -> String {
    let stdout = String::from_utf8_lossy(&out.stdout);
    stdout
        .lines()
        .find(|l| l.starts_with("final estimate"))
        .unwrap_or_else(|| panic!("no final-estimate line in:\n{stdout}"))
        .to_string()
}

#[test]
fn killed_checkpointing_run_resumes_to_the_same_estimate() {
    let dir = temp_dir("resume");
    let ckpt = dir.join("online.ckpt");
    let ckpt_s = ckpt.to_str().unwrap();

    // Leg 1: checkpoint every 3 points, SIGKILL at the 5th probe of the
    // checkpoint-write site — mid-run, after at least one durable
    // snapshot.
    let killed = online(
        &["--checkpoint", ckpt_s, "--checkpoint-every", "3"],
        &[("SPECTRAL_FAULT_KILL", "core.ckpt.write:5")],
    );
    assert!(!killed.status.success(), "kill must abort the process");
    let snapshot = RunCheckpoint::load(&ckpt).expect("checkpoint on disk is loadable, not torn");
    assert!(!snapshot.is_empty(), "the crashed run made durable progress");

    // Leg 2: same command, resumed. Leg 3: clean uninterrupted run.
    let resumed = online(&["--checkpoint", ckpt_s, "--resume", ckpt_s], &[]);
    assert!(
        resumed.status.success(),
        "resume failed: {}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    let clean = online(&[], &[]);
    assert!(clean.status.success());
    assert_eq!(
        final_estimate_line(&resumed),
        final_estimate_line(&clean),
        "resumed run must print the identical final estimate"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn kill_around_registry_append_leaves_zero_or_one_committed_records() {
    // Kill *before* the index append: no record. Kill *after* the
    // durable append: exactly one record. Both leave a loadable index.
    for (site, expected) in [("registry.append", 0usize), ("registry.append.post", 1)] {
        let dir = temp_dir(&format!("reg_{expected}"));
        let out = online(
            &["--registry", dir.to_str().unwrap()],
            &[("SPECTRAL_FAULT_KILL", &format!("{site}:1"))],
        );
        assert!(!out.status.success(), "kill at {site} must abort");
        let registry = Registry::open(&dir).expect("registry dir intact");
        let records = registry.load().expect("index never torn");
        assert_eq!(records.len(), expected, "kill at {site}");
        // Any committed record's manifest artifact must be complete.
        for r in &records {
            let rel = r.manifest_path.as_ref().expect("artifact stored before index append");
            let bytes = registry.read_artifact(rel).expect("artifact readable");
            assert!(bytes.starts_with(b"{"), "artifact is the manifest JSON");
        }

        // The next clean run appends over whatever the crash left.
        let out = online(&["--registry", dir.to_str().unwrap()], &[]);
        assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
        let records = registry.load().expect("index loads after recovery append");
        assert_eq!(records.len(), expected + 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn short_write_tears_only_the_index_tail_and_heals_on_next_append() {
    let dir = temp_dir("short");
    // Force every index append to stop short and fail: the binary exits
    // with an error and the index ends in a torn partial record.
    let out = online(
        &["--registry", dir.to_str().unwrap()],
        &[("SPECTRAL_FAULT_SHORT", "registry.append:1"), ("SPECTRAL_FAULT_RETRIES", "1")],
    );
    assert!(!out.status.success(), "short-write injection must fail the run");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("injected fault"), "diagnostic names the injection: {stderr}");

    let registry = Registry::open(&dir).unwrap();
    let records = registry.load().expect("torn tail is dropped, not fatal");
    assert_eq!(records.len(), 0, "the partial record is not surfaced");

    // A clean append repairs the tail; the new record is intact.
    let out = online(&["--registry", dir.to_str().unwrap()], &[]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let records = registry.load().unwrap();
    assert_eq!(records.len(), 1);
    assert_eq!(records[0].binary, "online");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn kill_between_fsync_and_rename_never_leaves_a_torn_container_or_manifest() {
    // v2 container save: killed in the torn-state window (temp durable,
    // destination not yet renamed) the destination must simply not
    // exist; a clean rerun produces a complete, openable container.
    let dir = temp_dir("rename");
    let lib = dir.join("tiny.splp");
    let out = online(
        &["--save-library", lib.to_str().unwrap()],
        &[("SPECTRAL_FAULT_KILL", "library.v2.save.rename:1")],
    );
    assert!(!out.status.success());
    assert!(!lib.exists(), "no torn container at the destination");

    let out = online(&["--save-library", lib.to_str().unwrap()], &[]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    LivePointLibrary::open(&lib).expect("rerun leaves a complete container");

    // Run manifest: same protocol, same guarantee.
    let manifest = dir.join("run.json");
    let out = online(
        &["--metrics-out", manifest.to_str().unwrap()],
        &[("SPECTRAL_FAULT_KILL", "telemetry.manifest.write.rename:1")],
    );
    assert!(!out.status.success());
    assert!(!manifest.exists(), "no torn manifest at the destination");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn non_resumable_binaries_reject_recovery_flags_with_a_diagnostic() {
    for (bin, name) in
        [(env!("CARGO_BIN_EXE_fig4"), "fig4"), (env!("CARGO_BIN_EXE_table2"), "table2")]
    {
        let out = Command::new(bin)
            .args(["--quick", "--resume", "nope.ckpt"])
            .output()
            .expect("spawn binary");
        assert!(!out.status.success(), "{name} must reject --resume");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains(name), "diagnostic names the binary: {stderr}");
        assert!(stderr.contains("resumable binaries"), "{stderr}");
    }
}

#[test]
fn matched_pair_resume_with_bad_prefix_errors_instead_of_restarting() {
    let dir = temp_dir("mp_prefix");
    let missing = dir.join("never-created.ckpt");
    let out = Command::new(env!("CARGO_BIN_EXE_matched_pair"))
        .args(["--quick", "--limit", "1", "--windows", "12"])
        .args(["--resume", missing.to_str().unwrap()])
        .output()
        .expect("spawn matched_pair");
    assert!(!out.status.success(), "bad resume prefix must not silently restart");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("no checkpoint sidecars found"), "{stderr}");
    let _ = std::fs::remove_dir_all(&dir);
}
