//! End-to-end registry population: two real seeded `online` invocations
//! with `--registry` append two queryable records, and `doctor trend`
//! machinery renders a two-point trajectory from them. This is the
//! acceptance path for cross-run perf tracking; the deterministic
//! exit-code tests live in `crates/doctor/tests/registry_cli.rs`.

use std::path::PathBuf;
use std::process::Command;

use spectral_registry::{Registry, CODE_VERSION_ENV};
use spectral_telemetry::JsonValue;

fn temp_dir(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("spectral_exp_{}_{name}", std::process::id()))
}

#[test]
fn two_online_invocations_build_a_queryable_trend() {
    let dir = temp_dir("registry");
    let _ = std::fs::remove_dir_all(&dir);

    // Same seeded quick configuration twice, labeled baseline/candidate
    // the way CI's registry-gate job stamps run-sets.
    for version in ["baseline", "candidate"] {
        let out = Command::new(env!("CARGO_BIN_EXE_online"))
            .args(["--quick", "--windows", "40", "--target", "10", "--registry"])
            .arg(&dir)
            .env(CODE_VERSION_ENV, version)
            .output()
            .expect("run online");
        assert!(
            out.status.success(),
            "online --registry failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }

    let registry = Registry::open(&dir).expect("open registry");
    let records = registry.load().expect("load registry");
    assert_eq!(records.len(), 2, "one record per invocation");
    assert_ne!(records[0].run_id, records[1].run_id, "run ids are collision-resistant");
    for (r, version) in records.iter().zip(["baseline", "candidate"]) {
        assert_eq!((r.kind.as_str(), r.binary.as_str()), ("run", "online"));
        assert_eq!(r.code_version, version, "SPECTRAL_CODE_VERSION labels the run-set");
        assert!(r.run_rate.is_some_and(|rate| rate > 0.0), "run phases yield a throughput");
        assert_eq!(r.points_processed, Some(40), "early-termination pass processed the cap");
        assert!(!r.convergence.is_empty(), "in-process tally distilled the health stream");
        assert!(r.estimate.is_some());

        // The stored manifest artifact is readable JSON carrying the
        // same run id the index line does.
        let rel = r.manifest_path.as_ref().expect("manifest artifact stored");
        let bytes = registry.read_artifact(rel).expect("artifact readable");
        let doc = JsonValue::parse(std::str::from_utf8(&bytes).expect("utf-8"))
            .expect("manifest artifact parses");
        assert_eq!(
            doc.get("run_id").and_then(JsonValue::as_str),
            Some(r.run_id.as_str()),
            "artifact and index agree on the run id"
        );
        assert!(doc.get("metrics").is_some(), "artifact embeds the metrics snapshot");
    }

    // The two invocations form one two-point trend series.
    let series = spectral_doctor::trend(&records);
    assert_eq!(series.len(), 1, "same binary/benchmark/machine/threads tuple");
    assert_eq!(series[0].points.len(), 2, "two invocations, two trajectory points");
    assert!(series[0].points.iter().all(|p| p.run_rate.is_some()));
    let text = spectral_doctor::render_trend_text(&series);
    assert!(text.contains("run rate"), "{text}");
    assert!(text.contains("2 runs"), "{text}");

    let _ = std::fs::remove_dir_all(&dir);
}
