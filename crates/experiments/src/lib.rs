//! # spectral-experiments — regenerating the paper's tables and figures
//!
//! One binary per table/figure of the evaluation (see DESIGN.md's
//! experiment index):
//!
//! | binary         | paper artifact |
//! |----------------|----------------|
//! | `fig4`         | Fig 4 — adaptive-warming (AW-MRRL) additional CPI bias |
//! | `fig5`         | Fig 5 — restricted live-state additional CPI bias |
//! | `fig7`         | Fig 7 — live-point size breakdown vs AW-MRRL checkpoints |
//! | `fig8`         | Fig 8 — checkpoint size & processing time vs max cache size |
//! | `table2`       | Table 2 — runtimes of all four methods |
//! | `table3`       | Table 3 — summary of warming approaches |
//! | `matched_pair` | §6.2 — matched-pair sample-size reduction factors |
//! | `online`       | §6.1 — random-order online convergence |
//!
//! All binaries accept:
//!
//! * `--benchmarks a,b,c` — run a named subset of the suite
//! * `--limit K` — first K suite benchmarks
//! * `--quick` — small preset (few benchmarks, fewer windows)
//! * `--windows N`, `--seeds S`, `--scale F` where meaningful
//! * `--threads T` — worker threads for library creation and runs
//!   (default: the host's available parallelism)

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::Instant;

use spectral_isa::Program;
use spectral_workloads::{dynamic_length, suite, Benchmark};

/// Parsed common command-line options.
#[derive(Debug, Clone)]
pub struct Args {
    /// Explicit benchmark names (`--benchmarks`).
    pub benchmarks: Option<Vec<String>>,
    /// First-K limit (`--limit`).
    pub limit: Option<usize>,
    /// Quick preset (`--quick`).
    pub quick: bool,
    /// Windows per sample (`--windows`).
    pub windows: Option<u64>,
    /// Sample seeds / repetitions (`--seeds`).
    pub seeds: Option<u64>,
    /// Benchmark length scale factor (`--scale`).
    pub scale: Option<u64>,
    /// Machine selection: "8" (default) or "16" (`--machine`).
    pub machine: Option<String>,
    /// Worker-thread count for creation and runs (`--threads`; default
    /// = available parallelism).
    pub threads: Option<usize>,
}

impl Args {
    /// Parse from `std::env::args`.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed arguments.
    pub fn parse() -> Args {
        let mut args = Args {
            benchmarks: None,
            limit: None,
            quick: false,
            windows: None,
            seeds: None,
            scale: None,
            machine: None,
            threads: None,
        };
        let mut it = std::env::args().skip(1);
        while let Some(a) = it.next() {
            let mut value = |what: &str| -> String {
                it.next().unwrap_or_else(|| panic!("{what} needs a value"))
            };
            match a.as_str() {
                "--benchmarks" => {
                    args.benchmarks =
                        Some(value("--benchmarks").split(',').map(str::to_owned).collect())
                }
                "--limit" => args.limit = Some(value("--limit").parse().expect("--limit: integer")),
                "--quick" => args.quick = true,
                "--windows" => {
                    args.windows = Some(value("--windows").parse().expect("--windows: integer"))
                }
                "--seeds" => args.seeds = Some(value("--seeds").parse().expect("--seeds: integer")),
                "--scale" => args.scale = Some(value("--scale").parse().expect("--scale: integer")),
                "--machine" => args.machine = Some(value("--machine")),
                "--threads" => {
                    args.threads = Some(value("--threads").parse().expect("--threads: integer"))
                }
                other => panic!("unknown argument {other}"),
            }
        }
        args
    }

    /// Effective repetition count (paper methodology: 5 samples;
    /// default here 3, quick 1).
    pub fn seed_count(&self, default: u64) -> u64 {
        self.seeds.unwrap_or(if self.quick { 1 } else { default })
    }

    /// Effective windows-per-sample.
    pub fn window_count(&self, default: u64) -> u64 {
        self.windows.unwrap_or(if self.quick { default / 3 } else { default })
    }

    /// Effective worker-thread count: `--threads` when given, otherwise
    /// the host's available parallelism.
    pub fn thread_count(&self) -> usize {
        self.threads
            .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1))
    }
}

impl Args {
    /// Resolve the selected machine configuration ("8" default, "16").
    ///
    /// # Panics
    ///
    /// Panics on an unknown machine name.
    pub fn machine_config(&self) -> spectral_uarch::MachineConfig {
        match self.machine.as_deref() {
            None | Some("8") => spectral_uarch::MachineConfig::eight_way(),
            Some("16") => spectral_uarch::MachineConfig::sixteen_way(),
            Some(other) => panic!("unknown machine {other} (use 8 or 16)"),
        }
    }
}

/// A benchmark with its built program and measured dynamic length.
#[derive(Debug)]
pub struct BenchCase {
    /// The benchmark definition.
    pub bench: Benchmark,
    /// The built program image.
    pub program: Program,
    /// Committed-instruction count.
    pub len: u64,
}

impl BenchCase {
    /// Build and measure one benchmark.
    pub fn new(bench: Benchmark) -> BenchCase {
        let program = bench.build();
        let len = dynamic_length(&program);
        BenchCase { bench, program, len }
    }

    /// The benchmark name.
    pub fn name(&self) -> &str {
        self.bench.name()
    }
}

/// Load the benchmark set selected by `args`, optionally scaled.
pub fn load_cases(args: &Args) -> Vec<BenchCase> {
    let scale = args.scale.unwrap_or(1);
    let all = suite();
    let chosen: Vec<Benchmark> = match (&args.benchmarks, args.limit, args.quick) {
        (Some(names), _, _) => names
            .iter()
            .map(|n| {
                all.iter()
                    .find(|b| b.name() == n)
                    .unwrap_or_else(|| panic!("unknown benchmark {n}"))
                    .clone()
            })
            .collect(),
        (None, Some(k), _) => all.into_iter().take(k).collect(),
        (None, None, true) => {
            // Representative quick set: one memory-bound, one branchy,
            // one FP, one call-heavy, one streaming.
            let names = ["mcf-like", "gcc-like", "swim-like", "perlbmk-like", "gzip-like"];
            all.into_iter().filter(|b| names.contains(&b.name())).collect()
        }
        (None, None, false) => all,
    };
    chosen
        .into_iter()
        .map(|b| BenchCase::new(if scale > 1 { b.scaled(scale) } else { b }))
        .collect()
}

/// Order-preserving parallel map: applies `f` to every item with up to
/// `threads` scoped workers (static stride sharding) and returns the
/// results in input order. Used by experiment binaries whose outer
/// per-benchmark loops are independent.
pub fn par_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = threads.clamp(1, items.len().max(1));
    if threads <= 1 {
        return items.iter().map(f).collect();
    }
    let slots: Vec<std::sync::Mutex<Option<R>>> =
        items.iter().map(|_| std::sync::Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for worker in 0..threads {
            let (f, slots) = (&f, &slots);
            scope.spawn(move || {
                let mut i = worker;
                while i < items.len() {
                    let r = f(&items[i]);
                    *slots[i].lock().expect("slot lock") = Some(r);
                    i += threads;
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.into_inner().expect("slot lock").expect("worker filled slot"))
        .collect()
}

/// Wall-clock timing helper.
#[derive(Debug)]
pub struct Timer(Instant);

impl Timer {
    /// Start timing.
    pub fn start() -> Timer {
        Timer(Instant::now())
    }

    /// Elapsed seconds.
    pub fn secs(&self) -> f64 {
        self.0.elapsed().as_secs_f64()
    }
}

/// Render a fixed-width text table.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: Vec<String>| {
        let mut s = String::new();
        for (i, cell) in cells.iter().enumerate() {
            s.push_str(&format!("{:<w$}  ", cell, w = widths[i]));
        }
        println!("{}", s.trim_end());
    };
    line(headers.iter().map(|s| s.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

/// Human-readable byte count.
pub fn fmt_bytes(b: u64) -> String {
    if b >= 1 << 30 {
        format!("{:.1} GB", b as f64 / (1u64 << 30) as f64)
    } else if b >= 1 << 20 {
        format!("{:.1} MB", b as f64 / (1u64 << 20) as f64)
    } else if b >= 1 << 10 {
        format!("{:.1} KB", b as f64 / 1024.0)
    } else {
        format!("{b} B")
    }
}

/// Human-readable seconds.
pub fn fmt_secs(s: f64) -> String {
    if s >= 3600.0 {
        format!("{:.1} h", s / 3600.0)
    } else if s >= 60.0 {
        format!("{:.1} m", s / 60.0)
    } else if s >= 1.0 {
        format!("{s:.2} s")
    } else {
        format!("{:.1} ms", s * 1000.0)
    }
}

/// Relative bias in percent.
pub fn bias_pct(estimate: f64, reference: f64) -> f64 {
    ((estimate - reference) / reference).abs() * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_bytes_units() {
        assert_eq!(fmt_bytes(512), "512 B");
        assert_eq!(fmt_bytes(2048), "2.0 KB");
        assert_eq!(fmt_bytes(3 << 20), "3.0 MB");
        assert_eq!(fmt_bytes(5 << 30), "5.0 GB");
    }

    #[test]
    fn fmt_secs_units() {
        assert_eq!(fmt_secs(0.005), "5.0 ms");
        assert_eq!(fmt_secs(2.0), "2.00 s");
        assert_eq!(fmt_secs(90.0), "1.5 m");
        assert_eq!(fmt_secs(7200.0), "2.0 h");
    }

    #[test]
    fn bias_pct_symmetric() {
        assert!((bias_pct(1.03, 1.0) - 3.0).abs() < 1e-9);
        assert!((bias_pct(0.97, 1.0) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<u64> = (0..37).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * 2).collect();
        assert_eq!(par_map(&items, 4, |&x| x * 2), expect);
        assert_eq!(par_map(&items, 1, |&x| x * 2), expect);
        assert_eq!(par_map(&items, 64, |&x| x * 2), expect);
        assert!(par_map(&[] as &[u64], 4, |&x| x).is_empty());
    }

    #[test]
    fn bench_case_builds() {
        let c = BenchCase::new(spectral_workloads::tiny());
        assert!(c.len > 10_000);
        assert_eq!(c.name(), "tiny");
    }
}
