//! # spectral-experiments — regenerating the paper's tables and figures
//!
//! One binary per table/figure of the evaluation (see DESIGN.md's
//! experiment index):
//!
//! | binary         | paper artifact |
//! |----------------|----------------|
//! | `fig4`         | Fig 4 — adaptive-warming (AW-MRRL) additional CPI bias |
//! | `fig5`         | Fig 5 — restricted live-state additional CPI bias |
//! | `fig7`         | Fig 7 — live-point size breakdown vs AW-MRRL checkpoints |
//! | `fig8`         | Fig 8 — checkpoint size & processing time vs max cache size |
//! | `table2`       | Table 2 — runtimes of all four methods |
//! | `table3`       | Table 3 — summary of warming approaches |
//! | `matched_pair` | §6.2 — matched-pair sample-size reduction factors |
//! | `online`       | §6.1 — random-order online convergence |
//!
//! All binaries accept:
//!
//! * `--benchmarks a,b,c` — run a named subset of the suite
//! * `--limit K` — first K suite benchmarks
//! * `--quick` — small preset (few benchmarks, fewer windows)
//! * `--windows N`, `--seeds S`, `--scale F` where meaningful
//! * `--threads T` — worker threads for library creation and runs
//!   (default: the host's available parallelism)
//! * `--library PATH` — open an existing on-disk library (either
//!   format) instead of re-creating one, where the binary supports it
//! * `--save-library PATH` — persist the library the binary used
//! * `--lib-format N` — container format for `--save-library`: 1 =
//!   monolithic v1 stream, 2 = paged (default)
//! * `--block N` — records per shared-dictionary block when writing v2
//! * `--dict on|off` — enable/disable block-shared LZSS dictionaries
//!   when writing v2 (default on)
//! * `--decode-cache N` — decoded-point LRU cache capacity in points
//!   (0 disables; default 256, also via `SPECTRAL_DECODE_CACHE`)
//! * `--chunk N` — dynamic-scheduler chunk size for parallel runs
//!   (0 = auto: the merge stride)
//! * `--prefetch N` — decode-ahead prefetch-ring depth per worker
//! * `--target PCT` — early-termination relative-error target in
//!   percent, where the binary estimates one (default: the paper's 3)
//! * `--checkpoint PATH` — periodically write a crash-safe run
//!   checkpoint (temp + fsync + atomic rename) to PATH;
//!   `--checkpoint-every N` sets the flush cadence in fresh points
//!   (default 64)
//! * `--resume PATH` — restart an interrupted run from a checkpoint
//!   written by `--checkpoint`; resumed estimates are bit-identical to
//!   an uninterrupted run. Binaries without a resumable run loop
//!   reject the recovery flags instead of silently restarting.
//! * `--metrics-out PATH` — write a JSON run manifest (with the full
//!   metrics snapshot embedded) on exit
//! * `--trace PATH` — append JSONL span events to PATH as the run
//!   executes (also enabled by the `TELEMETRY` env var)
//! * `--events PATH` — append JSONL sampling-health events (merge-stride
//!   convergence progress, per-point anomalies) to PATH; also enabled by
//!   the `TELEMETRY_EVENTS` env var. Feed the stream to
//!   `spectral-doctor` afterwards.
//! * `--profile PATH` — write JSONL worker-timeline profile records
//!   (per-worker phase intervals and aggregates, plus a run bracket)
//!   to PATH; also enabled by the `SPECTRAL_PROFILE` env var. Feed the
//!   stream to `spectral-doctor profile` for wall-clock attribution.
//! * `--registry DIR` — append one distilled run record (run id, code
//!   version, throughput, final estimate, convergence summaries) to the
//!   cross-run registry at DIR on exit; also enabled by the
//!   `SPECTRAL_REGISTRY` env var. Query the registry with
//!   `spectral-doctor trend` / `gate` / `watch`.
//! * `--report-out PATH` — copy the report (tables and lines) to a
//!   text file
//! * `--report-json PATH` — write the report as structured JSON
//!
//! Binaries exit non-zero with a one-line `binary: error: …`
//! diagnostic on malformed arguments or I/O faults.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::io::Write as _;
use std::path::PathBuf;
use std::time::Instant;

use spectral_isa::Program;
use spectral_telemetry::RunManifest;
use spectral_workloads::{dynamic_length, suite, Benchmark};

/// An experiment-binary failure: a one-line diagnostic for stderr.
#[derive(Debug)]
pub struct ExpError(String);

impl ExpError {
    /// Build an error from any displayable message.
    pub fn msg(m: impl Into<String>) -> ExpError {
        ExpError(m.into())
    }
}

impl fmt::Display for ExpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ExpError {}

impl From<spectral_core::CoreError> for ExpError {
    fn from(e: spectral_core::CoreError) -> ExpError {
        ExpError(format!("simulation fault: {e}"))
    }
}

impl From<std::io::Error> for ExpError {
    fn from(e: std::io::Error) -> ExpError {
        ExpError(format!("i/o error: {e}"))
    }
}

/// Attach file-path context to fallible I/O.
pub trait IoContext<T> {
    /// Wrap an error with `what` and the offending path.
    fn context(self, what: &str, path: &std::path::Path) -> Result<T, ExpError>;
}

impl<T, E: fmt::Display> IoContext<T> for Result<T, E> {
    fn context(self, what: &str, path: &std::path::Path) -> Result<T, ExpError> {
        self.map_err(|e| ExpError(format!("{what} {}: {e}", path.display())))
    }
}

/// Run an experiment binary body, mapping any failure to a one-line
/// stderr diagnostic and a non-zero exit code.
pub fn run_main(
    binary: &str,
    body: impl FnOnce(Args) -> Result<(), ExpError>,
) -> std::process::ExitCode {
    match Args::try_parse().and_then(body) {
        Ok(()) => std::process::ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("{binary}: error: {e}");
            std::process::ExitCode::FAILURE
        }
    }
}

/// Parsed common command-line options.
#[derive(Debug, Clone)]
pub struct Args {
    /// Explicit benchmark names (`--benchmarks`).
    pub benchmarks: Option<Vec<String>>,
    /// First-K limit (`--limit`).
    pub limit: Option<usize>,
    /// Quick preset (`--quick`).
    pub quick: bool,
    /// Windows per sample (`--windows`).
    pub windows: Option<u64>,
    /// Sample seeds / repetitions (`--seeds`).
    pub seeds: Option<u64>,
    /// Benchmark length scale factor (`--scale`).
    pub scale: Option<u64>,
    /// Machine selection: "8" (default) or "16" (`--machine`).
    pub machine: Option<String>,
    /// Worker-thread count for creation and runs (`--threads`; default
    /// = available parallelism).
    pub threads: Option<usize>,
    /// Existing on-disk library to open instead of creating
    /// (`--library`).
    pub library: Option<PathBuf>,
    /// Where to persist the library the binary used (`--save-library`).
    pub save_library: Option<PathBuf>,
    /// Container format for `--save-library`: 1 or 2 (`--lib-format`;
    /// default 2).
    pub lib_format: Option<u16>,
    /// Records per shared-dictionary block when writing v2 (`--block`).
    pub block: Option<usize>,
    /// Block-shared LZSS dictionaries when writing v2 (`--dict on|off`;
    /// default on).
    pub dict: Option<bool>,
    /// Decoded-point LRU cache capacity (`--decode-cache`; 0 disables).
    pub decode_cache: Option<usize>,
    /// Dynamic-scheduler chunk size (`--chunk`; 0 = auto).
    pub chunk: Option<usize>,
    /// Decode-ahead prefetch-ring depth (`--prefetch`).
    pub prefetch: Option<usize>,
    /// Relative-error target in percent (`--target`).
    pub target: Option<f64>,
    /// Checkpoint sidecar path for crash-safe runs (`--checkpoint`).
    pub checkpoint: Option<PathBuf>,
    /// Fresh points between checkpoint flushes (`--checkpoint-every`;
    /// default 64).
    pub checkpoint_every: Option<u64>,
    /// Checkpoint file to resume an interrupted run from (`--resume`).
    pub resume: Option<PathBuf>,
    /// Run-manifest output path (`--metrics-out`).
    pub metrics_out: Option<PathBuf>,
    /// JSONL span-trace output path (`--trace`).
    pub trace: Option<PathBuf>,
    /// JSONL sampling-health event output path (`--events`).
    pub events: Option<PathBuf>,
    /// JSONL worker-timeline profile output path (`--profile`).
    pub profile: Option<PathBuf>,
    /// Cross-run registry directory (`--registry`).
    pub registry: Option<PathBuf>,
    /// Text report copy (`--report-out`).
    pub report_out: Option<PathBuf>,
    /// JSON report output (`--report-json`).
    pub report_json: Option<PathBuf>,
}

impl Args {
    fn empty() -> Args {
        Args {
            benchmarks: None,
            limit: None,
            quick: false,
            windows: None,
            seeds: None,
            scale: None,
            machine: None,
            threads: None,
            library: None,
            save_library: None,
            lib_format: None,
            block: None,
            dict: None,
            decode_cache: None,
            chunk: None,
            prefetch: None,
            target: None,
            checkpoint: None,
            checkpoint_every: None,
            resume: None,
            metrics_out: None,
            trace: None,
            events: None,
            profile: None,
            registry: None,
            report_out: None,
            report_json: None,
        }
    }

    /// Parse from `std::env::args`.
    ///
    /// # Errors
    ///
    /// Returns a usage diagnostic on unknown flags, missing values, or
    /// malformed integers. Also installs the span-trace sink when
    /// `--trace` (or the `TELEMETRY` env var) is present, the
    /// sampling-health event sink when `--events` (or the
    /// `TELEMETRY_EVENTS` env var) is present, the worker-timeline
    /// profile sink when `--profile` (or the `SPECTRAL_PROFILE` env
    /// var) is present, and the in-process
    /// run-summary tally when `--registry` (or the `SPECTRAL_REGISTRY`
    /// env var) is present — the registry record distills convergence
    /// from the tally, which works without any JSONL sink.
    pub fn try_parse() -> Result<Args, ExpError> {
        let argv: Vec<String> = std::env::args().skip(1).collect();
        let args = Self::try_parse_from(&argv)?;
        if let Some(capacity) = args.decode_cache {
            spectral_core::set_decode_cache_capacity(capacity);
        }
        if args.registry_dir().is_some() {
            spectral_telemetry::enable_run_summaries();
        }
        match &args.trace {
            Some(path) => {
                spectral_telemetry::set_trace_path(path).context("cannot open trace file", path)?;
            }
            None => {
                spectral_telemetry::trace_from_env()
                    .map_err(|e| ExpError::msg(format!("cannot open TELEMETRY trace file: {e}")))?;
            }
        }
        match &args.events {
            Some(path) => {
                spectral_telemetry::set_events_path(path)
                    .context("cannot open events file", path)?;
            }
            None => {
                spectral_telemetry::events_from_env().map_err(|e| {
                    ExpError::msg(format!("cannot open TELEMETRY_EVENTS file: {e}"))
                })?;
            }
        }
        match &args.profile {
            Some(path) => {
                spectral_telemetry::set_profile_path(path)
                    .context("cannot open profile file", path)?;
            }
            None => {
                spectral_telemetry::profile_from_env().map_err(|e| {
                    ExpError::msg(format!("cannot open SPECTRAL_PROFILE file: {e}"))
                })?;
            }
        }
        Ok(args)
    }

    /// Parse from an explicit argument list (testable core of
    /// [`try_parse`](Self::try_parse); no side effects).
    ///
    /// # Errors
    ///
    /// Returns a usage diagnostic on unknown flags, missing values, or
    /// malformed integers.
    pub fn try_parse_from(argv: &[String]) -> Result<Args, ExpError> {
        let mut args = Args::empty();
        let mut it = argv.iter();
        while let Some(a) = it.next() {
            let mut value = |what: &str| -> Result<&String, ExpError> {
                it.next().ok_or_else(|| ExpError(format!("{what} needs a value")))
            };
            fn int<T: std::str::FromStr>(what: &str, v: &str) -> Result<T, ExpError> {
                v.parse().map_err(|_| ExpError(format!("{what}: expected an integer, got '{v}'")))
            }
            match a.as_str() {
                "--benchmarks" => {
                    args.benchmarks =
                        Some(value("--benchmarks")?.split(',').map(str::to_owned).collect())
                }
                "--limit" => args.limit = Some(int("--limit", value("--limit")?)?),
                "--quick" => args.quick = true,
                "--windows" => args.windows = Some(int("--windows", value("--windows")?)?),
                "--seeds" => args.seeds = Some(int("--seeds", value("--seeds")?)?),
                "--scale" => args.scale = Some(int("--scale", value("--scale")?)?),
                "--machine" => args.machine = Some(value("--machine")?.clone()),
                "--threads" => args.threads = Some(int("--threads", value("--threads")?)?),
                "--library" => args.library = Some(PathBuf::from(value("--library")?)),
                "--save-library" => {
                    args.save_library = Some(PathBuf::from(value("--save-library")?))
                }
                "--lib-format" => {
                    let v: u16 = int("--lib-format", value("--lib-format")?)?;
                    if !(v == 1 || v == 2) {
                        return Err(ExpError(format!("--lib-format: expected 1 or 2, got '{v}'")));
                    }
                    args.lib_format = Some(v);
                }
                "--block" => {
                    let v: usize = int("--block", value("--block")?)?;
                    if v == 0 {
                        return Err(ExpError("--block: must be at least 1".into()));
                    }
                    args.block = Some(v);
                }
                "--dict" => {
                    args.dict = Some(match value("--dict")?.as_str() {
                        "on" => true,
                        "off" => false,
                        other => {
                            return Err(ExpError(format!(
                                "--dict: expected on or off, got '{other}'"
                            )))
                        }
                    })
                }
                "--decode-cache" => {
                    args.decode_cache = Some(int("--decode-cache", value("--decode-cache")?)?)
                }
                "--chunk" => args.chunk = Some(int("--chunk", value("--chunk")?)?),
                "--prefetch" => args.prefetch = Some(int("--prefetch", value("--prefetch")?)?),
                "--target" => {
                    let v = value("--target")?;
                    let pct: f64 = v.parse().map_err(|_| {
                        ExpError(format!("--target: expected a percentage, got '{v}'"))
                    })?;
                    if !(pct.is_finite() && pct > 0.0) {
                        return Err(ExpError(format!("--target: must be positive, got '{v}'")));
                    }
                    args.target = Some(pct);
                }
                "--checkpoint" => args.checkpoint = Some(PathBuf::from(value("--checkpoint")?)),
                "--checkpoint-every" => {
                    let v: u64 = int("--checkpoint-every", value("--checkpoint-every")?)?;
                    if v == 0 {
                        return Err(ExpError("--checkpoint-every: must be at least 1".into()));
                    }
                    args.checkpoint_every = Some(v);
                }
                "--resume" => args.resume = Some(PathBuf::from(value("--resume")?)),
                "--metrics-out" => args.metrics_out = Some(PathBuf::from(value("--metrics-out")?)),
                "--trace" => args.trace = Some(PathBuf::from(value("--trace")?)),
                "--events" => args.events = Some(PathBuf::from(value("--events")?)),
                "--profile" => args.profile = Some(PathBuf::from(value("--profile")?)),
                "--registry" => args.registry = Some(PathBuf::from(value("--registry")?)),
                "--report-out" => args.report_out = Some(PathBuf::from(value("--report-out")?)),
                "--report-json" => args.report_json = Some(PathBuf::from(value("--report-json")?)),
                other => {
                    return Err(ExpError(format!(
                        "unknown argument {other} (flags: --benchmarks --limit --quick \
                         --windows --seeds --scale --machine --threads --library \
                         --save-library --lib-format --block --dict --decode-cache \
                         --chunk --prefetch --target --checkpoint --checkpoint-every \
                         --resume --metrics-out --trace --events \
                         --profile --registry --report-out --report-json)"
                    )))
                }
            }
        }
        Ok(args)
    }

    /// Effective repetition count (paper methodology: 5 samples;
    /// default here 3, quick 1).
    pub fn seed_count(&self, default: u64) -> u64 {
        self.seeds.unwrap_or(if self.quick { 1 } else { default })
    }

    /// Effective windows-per-sample.
    pub fn window_count(&self, default: u64) -> u64 {
        self.windows.unwrap_or(if self.quick { default / 3 } else { default })
    }

    /// Effective worker-thread count: `--threads` when given, otherwise
    /// the host's available parallelism.
    pub fn thread_count(&self) -> usize {
        self.threads
            .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1))
    }

    /// Effective relative-error target as a fraction: `--target`
    /// (percent) when given, otherwise `default` (a fraction, e.g. the
    /// paper's 0.03).
    pub fn target_rel_err(&self, default: f64) -> f64 {
        self.target.map_or(default, |pct| pct / 100.0)
    }

    /// The crash-recovery configuration selected by `--checkpoint`,
    /// `--checkpoint-every`, and `--resume` (default flush cadence: 64
    /// fresh points). [`Recovery::none`](spectral_core::Recovery::none)
    /// when no recovery flag was given.
    pub fn recovery(&self) -> spectral_core::Recovery {
        let mut r = spectral_core::Recovery::none();
        if let Some(path) = &self.checkpoint {
            r = r.checkpoint_to(path.clone(), self.checkpoint_every.unwrap_or(64) as usize);
        }
        if let Some(path) = &self.resume {
            r = r.resume_from(path.clone());
        }
        r
    }

    /// Stamp resume lineage into a run manifest: when `--resume` named
    /// a checkpoint, a `resumed_from` note records it so the manifest,
    /// the registry record, and `doctor analyze` can distinguish
    /// resumed runs from uninterrupted ones.
    pub fn stamp_recovery(&self, manifest: &mut RunManifest) {
        if let Some(ckpt) = &self.resume {
            manifest.note("resumed_from", ckpt.display().to_string());
        }
    }

    /// Reject `--checkpoint` / `--checkpoint-every` / `--resume` in a
    /// binary whose run loop is not resumable, instead of silently
    /// ignoring the flags and restarting from zero.
    ///
    /// # Errors
    ///
    /// Returns a diagnostic naming the binary whenever any recovery
    /// flag is present.
    pub fn reject_recovery_flags(&self, binary: &str) -> Result<(), ExpError> {
        if self.checkpoint.is_some() || self.checkpoint_every.is_some() || self.resume.is_some() {
            return Err(ExpError(format!(
                "{binary} does not support --checkpoint/--checkpoint-every/--resume \
                 (resumable binaries: online, matched_pair)"
            )));
        }
        Ok(())
    }

    /// Apply the scheduler knobs (`--chunk`, `--prefetch`) to a run
    /// policy, leaving the policy's defaults in place when the flags
    /// were not given.
    pub fn sched_policy(&self, mut policy: spectral_core::RunPolicy) -> spectral_core::RunPolicy {
        if let Some(c) = self.chunk {
            policy.chunk = c;
        }
        if let Some(p) = self.prefetch {
            policy.prefetch = p;
        }
        policy
    }
}

impl Args {
    /// Resolve the selected machine configuration ("8" default, "16").
    ///
    /// # Errors
    ///
    /// Returns a diagnostic on an unknown machine name.
    pub fn machine_config(&self) -> Result<spectral_uarch::MachineConfig, ExpError> {
        match self.machine.as_deref() {
            None | Some("8") => Ok(spectral_uarch::MachineConfig::eight_way()),
            Some("16") => Ok(spectral_uarch::MachineConfig::sixteen_way()),
            Some(other) => Err(ExpError(format!("unknown machine '{other}' (use 8 or 16)"))),
        }
    }

    /// The machine label for manifests ("8" or "16").
    pub fn machine_label(&self) -> &str {
        self.machine.as_deref().unwrap_or("8")
    }

    /// The paged-container write options selected by `--block` /
    /// `--dict` (defaults: 64-record blocks, dictionaries on).
    pub fn v2_options(&self) -> spectral_core::V2WriteOptions {
        let mut opts = spectral_core::V2WriteOptions::default();
        if let Some(points) = self.block {
            opts.block_points = points;
        }
        if let Some(dict) = self.dict {
            opts.dict = dict;
        }
        opts
    }

    /// Persist `library` to `path` in the `--lib-format` container
    /// (paged v2 unless `--lib-format 1` asked for the monolithic
    /// stream).
    ///
    /// # Errors
    ///
    /// Returns a diagnostic naming the unwritable path.
    pub fn write_library(
        &self,
        library: &spectral_core::LivePointLibrary,
        path: &std::path::Path,
    ) -> Result<(), ExpError> {
        match self.lib_format.unwrap_or(2) {
            1 => library.save(path).context("cannot save library", path)?,
            _ => {
                library
                    .save_v2(path, &self.v2_options())
                    .context("cannot save library", path)
                    .map(drop)?;
            }
        }
        Ok(())
    }

    /// Start a run manifest for `binary` under these arguments,
    /// pre-filled with the machine label, thread count, and the quick /
    /// scale / windows / seeds settings as notes.
    pub fn manifest(&self, binary: &str, benchmark: &str) -> RunManifest {
        let mut m = RunManifest::new(binary, benchmark, self.machine_label(), self.thread_count());
        if self.quick {
            m.note("quick", "true");
        }
        if let Some(s) = self.scale {
            m.note("scale", s.to_string());
        }
        if let Some(w) = self.windows {
            m.note("windows", w.to_string());
        }
        if let Some(s) = self.seeds {
            m.note("seeds", s.to_string());
        }
        if let Some(c) = self.chunk {
            m.note("chunk", c.to_string());
        }
        if let Some(p) = self.prefetch {
            m.note("prefetch", p.to_string());
        }
        if let Some(f) = self.lib_format {
            m.note("lib_format", f.to_string());
        }
        if let Some(c) = self.decode_cache {
            m.note("decode_cache", c.to_string());
        }
        m
    }

    /// The effective registry directory: `--registry` when given, else
    /// the `SPECTRAL_REGISTRY` environment variable (when non-empty).
    pub fn registry_dir(&self) -> Option<PathBuf> {
        self.registry.clone().or_else(|| {
            std::env::var_os(spectral_registry::REGISTRY_ENV)
                .filter(|v| !v.is_empty())
                .map(PathBuf::from)
        })
    }

    /// Finish a run: stamp a collision-resistant `run_id` into the
    /// manifest, embed the metrics snapshot and write the manifest to
    /// `--metrics-out` (when given), append a distilled record (with
    /// the stored manifest artifact and the convergence summaries
    /// drained from the in-process tally) to the cross-run registry
    /// (when `--registry` / `SPECTRAL_REGISTRY` names one), and flush
    /// the span trace, sampling-health event stream, and worker-timeline
    /// profile stream.
    ///
    /// # Errors
    ///
    /// Returns a diagnostic when the manifest cannot be written or the
    /// registry cannot be appended to.
    pub fn finish_run(&self, manifest: &mut RunManifest) -> Result<(), ExpError> {
        if manifest.run_id.is_none() {
            // Seeded from the manifest content so two binaries started
            // in the same instant still derive distinct ids; the seq
            // ordinal separates identical manifests within a process.
            manifest.run_id = Some(spectral_telemetry::derive_run_id(
                &manifest.to_json(),
                spectral_telemetry::next_run_seq(),
            ));
        }
        let registry_dir = self.registry_dir();
        if self.metrics_out.is_some() || registry_dir.is_some() {
            let snapshot = spectral_telemetry::snapshot();
            if let Some(path) = &self.metrics_out {
                manifest.write(path, Some(&snapshot)).context("cannot write manifest", path)?;
            }
            if let Some(dir) = registry_dir {
                let registry = spectral_registry::Registry::open(&dir)
                    .context("cannot open registry", &dir)?;
                let summaries = spectral_telemetry::take_run_summaries();
                let mut record = spectral_registry::RunRecord::from_manifest(manifest, summaries);
                record.cache_hits = snapshot.counter("core.lib.cache_hits");
                record.cache_misses = snapshot.counter("core.lib.cache_misses");
                record.cache_evictions = snapshot.counter("core.lib.cache_evictions");
                record.manifest_path = Some(
                    registry
                        .store_artifact("json", manifest.to_json_with_metrics(&snapshot).as_bytes())
                        .context("cannot store manifest artifact in", &dir)?,
                );
                registry.append(&record).context("cannot append to registry", &dir)?;
            }
        }
        spectral_telemetry::flush_trace();
        spectral_telemetry::flush_events();
        spectral_telemetry::flush_profile();
        Ok(())
    }
}

/// Record a library's identity in a run manifest: content hash,
/// container format version, and point count — what the registry
/// distills into `library_id` / `library_format`.
pub fn stamp_library(manifest: &mut RunManifest, library: &spectral_core::LivePointLibrary) {
    manifest.library_id = Some(format!("crc32:{:08x}", library.content_hash()));
    manifest.library_format = Some(u64::from(library.format_version()));
    manifest.library_points = Some(library.len() as u64);
}

/// A benchmark with its built program and measured dynamic length.
#[derive(Debug)]
pub struct BenchCase {
    /// The benchmark definition.
    pub bench: Benchmark,
    /// The built program image.
    pub program: Program,
    /// Committed-instruction count.
    pub len: u64,
}

impl BenchCase {
    /// Build and measure one benchmark.
    pub fn new(bench: Benchmark) -> BenchCase {
        let program = bench.build();
        let len = dynamic_length(&program);
        BenchCase { bench, program, len }
    }

    /// The benchmark name.
    pub fn name(&self) -> &str {
        self.bench.name()
    }
}

/// Load the benchmark set selected by `args`, optionally scaled.
///
/// # Errors
///
/// Returns a diagnostic naming the first unknown `--benchmarks` entry.
pub fn load_cases(args: &Args) -> Result<Vec<BenchCase>, ExpError> {
    let scale = args.scale.unwrap_or(1);
    let all = suite();
    let chosen: Vec<Benchmark> = match (&args.benchmarks, args.limit, args.quick) {
        (Some(names), _, _) => names
            .iter()
            .map(|n| {
                all.iter().find(|b| b.name() == n).cloned().ok_or_else(|| {
                    let known: Vec<&str> = all.iter().map(|b| b.name()).collect();
                    ExpError(format!("unknown benchmark '{n}' (known: {})", known.join(", ")))
                })
            })
            .collect::<Result<_, _>>()?,
        (None, Some(k), _) => all.into_iter().take(k).collect(),
        (None, None, true) => {
            // Representative quick set: one memory-bound, one branchy,
            // one FP, one call-heavy, one streaming.
            let names = ["mcf-like", "gcc-like", "swim-like", "perlbmk-like", "gzip-like"];
            all.into_iter().filter(|b| names.contains(&b.name())).collect()
        }
        (None, None, false) => all,
    };
    Ok(chosen
        .into_iter()
        .map(|b| BenchCase::new(if scale > 1 { b.scaled(scale) } else { b }))
        .collect())
}

/// Order-preserving parallel map: applies `f` to every item with up to
/// `threads` scoped workers (static stride sharding) and returns the
/// results in input order. Used by experiment binaries whose outer
/// per-benchmark loops are independent.
pub fn par_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = threads.clamp(1, items.len().max(1));
    if threads <= 1 {
        return items.iter().map(f).collect();
    }
    let slots: Vec<std::sync::Mutex<Option<R>>> =
        items.iter().map(|_| std::sync::Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for worker in 0..threads {
            let (f, slots) = (&f, &slots);
            scope.spawn(move || {
                let mut i = worker;
                while i < items.len() {
                    let r = f(&items[i]);
                    *slots[i].lock().expect("slot lock") = Some(r);
                    i += threads;
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.into_inner().expect("slot lock").expect("worker filled slot"))
        .collect()
}

/// Wall-clock timing helper.
#[derive(Debug)]
pub struct Timer(Instant);

impl Timer {
    /// Start timing.
    pub fn start() -> Timer {
        Timer(Instant::now())
    }

    /// Elapsed seconds.
    pub fn secs(&self) -> f64 {
        self.0.elapsed().as_secs_f64()
    }
}

/// Render a fixed-width text table to a string (one trailing newline
/// per line, none at the end).
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let mut line = |cells: Vec<String>| {
        let mut s = String::new();
        for (i, cell) in cells.iter().enumerate() {
            s.push_str(&format!("{:<w$}  ", cell, w = widths[i]));
        }
        out.push_str(s.trim_end());
        out.push('\n');
    };
    line(headers.iter().map(|s| s.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
    out.pop();
    out
}

/// Render a fixed-width text table to stdout.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    println!("{}", render_table(headers, rows));
}

/// One item of a [`Report`].
#[derive(Debug, Clone)]
pub enum ReportItem {
    /// A free-form text line.
    Line(String),
    /// A titled table.
    Table {
        /// Table caption ("" for none).
        title: String,
        /// Column headers.
        headers: Vec<String>,
        /// Row cells (ragged rows are padded in text rendering).
        rows: Vec<Vec<String>>,
    },
}

/// Buffered experiment output: every line and table is echoed to
/// stdout as it is added (preserving interactive behavior) and kept so
/// [`finish`](Report::finish) can also write the whole report to a
/// text file (`--report-out`) and/or structured JSON (`--report-json`)
/// — the shared emission path for all experiment binaries.
#[derive(Debug)]
pub struct Report {
    binary: String,
    items: Vec<ReportItem>,
}

impl Report {
    /// Start a report for `binary`.
    pub fn new(binary: impl Into<String>) -> Report {
        Report { binary: binary.into(), items: Vec::new() }
    }

    /// Emit a text line (echoed to stdout immediately).
    pub fn line(&mut self, text: impl Into<String>) {
        let text = text.into();
        println!("{text}");
        self.items.push(ReportItem::Line(text));
    }

    /// Emit a blank separator line.
    pub fn blank(&mut self) {
        self.line("");
    }

    /// Emit a titled table (echoed to stdout immediately; empty `title`
    /// prints no caption line).
    pub fn table(&mut self, title: impl Into<String>, headers: &[&str], rows: Vec<Vec<String>>) {
        let title = title.into();
        if !title.is_empty() {
            println!("{title}");
        }
        println!("{}", render_table(headers, &rows));
        self.items.push(ReportItem::Table {
            title,
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows,
        });
    }

    /// The report rendered as plain text (what stdout saw).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for item in &self.items {
            match item {
                ReportItem::Line(l) => {
                    out.push_str(l);
                    out.push('\n');
                }
                ReportItem::Table { title, headers, rows } => {
                    if !title.is_empty() {
                        out.push_str(title);
                        out.push('\n');
                    }
                    let headers: Vec<&str> = headers.iter().map(String::as_str).collect();
                    out.push_str(&render_table(&headers, rows));
                    out.push('\n');
                }
            }
        }
        out
    }

    /// The report as structured JSON.
    pub fn to_json(&self) -> String {
        let q = spectral_telemetry::json_quote;
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"binary\": {},\n", q(&self.binary)));
        out.push_str("  \"items\": [");
        for (i, item) in self.items.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            match item {
                ReportItem::Line(l) => {
                    out.push_str(&format!("\n    {{\"type\": \"line\", \"text\": {}}}", q(l)));
                }
                ReportItem::Table { title, headers, rows } => {
                    let hs: Vec<String> = headers.iter().map(|h| q(h)).collect();
                    out.push_str(&format!(
                        "\n    {{\"type\": \"table\", \"title\": {}, \"headers\": [{}], \"rows\": [",
                        q(title),
                        hs.join(", ")
                    ));
                    for (j, row) in rows.iter().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        let cells: Vec<String> = row.iter().map(|c| q(c)).collect();
                        out.push_str(&format!("\n      [{}]", cells.join(", ")));
                    }
                    if !rows.is_empty() {
                        out.push_str("\n    ");
                    }
                    out.push_str("]}");
                }
            }
        }
        if !self.items.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}");
        out
    }

    /// Write the report to the `--report-out` / `--report-json` targets
    /// selected by `args` (stdout already received everything).
    ///
    /// # Errors
    ///
    /// Returns a diagnostic naming the unwritable path.
    pub fn finish(&self, args: &Args) -> Result<(), ExpError> {
        if let Some(path) = &args.report_out {
            let mut f = std::fs::File::create(path).context("cannot write report", path)?;
            f.write_all(self.to_text().as_bytes()).context("cannot write report", path)?;
        }
        if let Some(path) = &args.report_json {
            let mut f = std::fs::File::create(path).context("cannot write report", path)?;
            f.write_all(self.to_json().as_bytes()).context("cannot write report", path)?;
            f.write_all(b"\n").context("cannot write report", path)?;
        }
        Ok(())
    }
}

/// Human-readable byte count.
pub fn fmt_bytes(b: u64) -> String {
    if b >= 1 << 30 {
        format!("{:.1} GB", b as f64 / (1u64 << 30) as f64)
    } else if b >= 1 << 20 {
        format!("{:.1} MB", b as f64 / (1u64 << 20) as f64)
    } else if b >= 1 << 10 {
        format!("{:.1} KB", b as f64 / 1024.0)
    } else {
        format!("{b} B")
    }
}

/// Human-readable seconds.
pub fn fmt_secs(s: f64) -> String {
    if s >= 3600.0 {
        format!("{:.1} h", s / 3600.0)
    } else if s >= 60.0 {
        format!("{:.1} m", s / 60.0)
    } else if s >= 1.0 {
        format!("{s:.2} s")
    } else {
        format!("{:.1} ms", s * 1000.0)
    }
}

/// Relative bias in percent.
pub fn bias_pct(estimate: f64, reference: f64) -> f64 {
    ((estimate - reference) / reference).abs() * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_bytes_units() {
        assert_eq!(fmt_bytes(512), "512 B");
        assert_eq!(fmt_bytes(2048), "2.0 KB");
        assert_eq!(fmt_bytes(3 << 20), "3.0 MB");
        assert_eq!(fmt_bytes(5 << 30), "5.0 GB");
    }

    #[test]
    fn fmt_secs_units() {
        assert_eq!(fmt_secs(0.005), "5.0 ms");
        assert_eq!(fmt_secs(2.0), "2.00 s");
        assert_eq!(fmt_secs(90.0), "1.5 m");
        assert_eq!(fmt_secs(7200.0), "2.0 h");
    }

    #[test]
    fn bias_pct_symmetric() {
        assert!((bias_pct(1.03, 1.0) - 3.0).abs() < 1e-9);
        assert!((bias_pct(0.97, 1.0) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<u64> = (0..37).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * 2).collect();
        assert_eq!(par_map(&items, 4, |&x| x * 2), expect);
        assert_eq!(par_map(&items, 1, |&x| x * 2), expect);
        assert_eq!(par_map(&items, 64, |&x| x * 2), expect);
        assert!(par_map(&[] as &[u64], 4, |&x| x).is_empty());
    }

    #[test]
    fn bench_case_builds() {
        let c = BenchCase::new(spectral_workloads::tiny());
        assert!(c.len > 10_000);
        assert_eq!(c.name(), "tiny");
    }

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn try_parse_from_accepts_all_flags() {
        let a = Args::try_parse_from(&argv(&[
            "--benchmarks",
            "gcc-like,mcf-like",
            "--limit",
            "3",
            "--quick",
            "--windows",
            "50",
            "--seeds",
            "2",
            "--scale",
            "4",
            "--machine",
            "16",
            "--threads",
            "6",
            "--library",
            "lib.splp",
            "--save-library",
            "out.splp",
            "--lib-format",
            "2",
            "--block",
            "32",
            "--dict",
            "off",
            "--decode-cache",
            "512",
            "--chunk",
            "16",
            "--prefetch",
            "8",
            "--target",
            "10",
            "--checkpoint",
            "c.ckpt",
            "--checkpoint-every",
            "32",
            "--resume",
            "r.ckpt",
            "--metrics-out",
            "m.json",
            "--trace",
            "t.jsonl",
            "--events",
            "e.jsonl",
            "--profile",
            "p.jsonl",
            "--report-out",
            "r.txt",
            "--report-json",
            "r.json",
            "--registry",
            "reg-dir",
        ]))
        .expect("valid argv");
        assert_eq!(a.benchmarks.as_deref(), Some(&["gcc-like".to_owned(), "mcf-like".into()][..]));
        assert_eq!(a.limit, Some(3));
        assert!(a.quick);
        assert_eq!(a.windows, Some(50));
        assert_eq!(a.seeds, Some(2));
        assert_eq!(a.scale, Some(4));
        assert_eq!(a.machine.as_deref(), Some("16"));
        assert_eq!(a.threads, Some(6));
        assert_eq!(a.library.as_deref(), Some(std::path::Path::new("lib.splp")));
        assert_eq!(a.save_library.as_deref(), Some(std::path::Path::new("out.splp")));
        assert_eq!(a.lib_format, Some(2));
        assert_eq!(a.block, Some(32));
        assert_eq!(a.dict, Some(false));
        assert_eq!(a.decode_cache, Some(512));
        let opts = a.v2_options();
        assert_eq!(opts.block_points, 32);
        assert!(!opts.dict);
        assert_eq!(a.chunk, Some(16));
        assert_eq!(a.prefetch, Some(8));
        let p = a.sched_policy(spectral_core::RunPolicy::default());
        assert_eq!((p.chunk, p.prefetch), (16, 8));
        assert_eq!(a.target, Some(10.0));
        assert!((a.target_rel_err(0.03) - 0.10).abs() < 1e-12);
        assert_eq!(a.checkpoint.as_deref(), Some(std::path::Path::new("c.ckpt")));
        assert_eq!(a.checkpoint_every, Some(32));
        assert_eq!(a.resume.as_deref(), Some(std::path::Path::new("r.ckpt")));
        let recovery = a.recovery();
        assert!(recovery.is_active());
        assert!(a.reject_recovery_flags("fig4").is_err());
        assert_eq!(a.metrics_out.as_deref(), Some(std::path::Path::new("m.json")));
        assert_eq!(a.trace.as_deref(), Some(std::path::Path::new("t.jsonl")));
        assert_eq!(a.events.as_deref(), Some(std::path::Path::new("e.jsonl")));
        assert_eq!(a.profile.as_deref(), Some(std::path::Path::new("p.jsonl")));
        assert_eq!(a.report_out.as_deref(), Some(std::path::Path::new("r.txt")));
        assert_eq!(a.report_json.as_deref(), Some(std::path::Path::new("r.json")));
        assert_eq!(a.registry.as_deref(), Some(std::path::Path::new("reg-dir")));
        assert!(a.machine_config().is_ok());
    }

    #[test]
    fn try_parse_from_diagnoses_bad_input() {
        let e = Args::try_parse_from(&argv(&["--threads", "abc"])).unwrap_err();
        assert!(e.to_string().contains("--threads"), "{e}");
        assert!(e.to_string().contains("abc"), "{e}");
        let e = Args::try_parse_from(&argv(&["--windows"])).unwrap_err();
        assert!(e.to_string().contains("needs a value"), "{e}");
        let e = Args::try_parse_from(&argv(&["--chunk", "x"])).unwrap_err();
        assert!(e.to_string().contains("--chunk"), "{e}");
        let e = Args::try_parse_from(&argv(&["--prefetch", "-1"])).unwrap_err();
        assert!(e.to_string().contains("--prefetch"), "{e}");
        let e = Args::try_parse_from(&argv(&["--bogus"])).unwrap_err();
        assert!(e.to_string().contains("unknown argument --bogus"), "{e}");
        let e = Args::try_parse_from(&argv(&["--lib-format", "3"])).unwrap_err();
        assert!(e.to_string().contains("--lib-format"), "{e}");
        let e = Args::try_parse_from(&argv(&["--dict", "maybe"])).unwrap_err();
        assert!(e.to_string().contains("--dict"), "{e}");
        let e = Args::try_parse_from(&argv(&["--block", "0"])).unwrap_err();
        assert!(e.to_string().contains("--block"), "{e}");
        let e = Args::try_parse_from(&argv(&["--decode-cache", "x"])).unwrap_err();
        assert!(e.to_string().contains("--decode-cache"), "{e}");
        let e = Args::try_parse_from(&argv(&["--target", "-3"])).unwrap_err();
        assert!(e.to_string().contains("--target"), "{e}");
        let e = Args::try_parse_from(&argv(&["--checkpoint-every", "0"])).unwrap_err();
        assert!(e.to_string().contains("--checkpoint-every"), "{e}");
        let e = Args::try_parse_from(&argv(&["--resume"])).unwrap_err();
        assert!(e.to_string().contains("needs a value"), "{e}");
        assert!(Args::empty().reject_recovery_flags("fig4").is_ok());
        assert!(Args::try_parse_from(&argv(&["--target", "nan"])).is_err());
        let mut a = Args::empty();
        a.machine = Some("32".into());
        assert!(a.machine_config().is_err());
    }

    #[test]
    fn render_table_aligns_columns() {
        let rows = vec![vec!["a".to_owned(), "10".into()], vec!["longer-name".into(), "3".into()]];
        let text = render_table(&["name", "n"], &rows);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].starts_with("-----------"));
        assert_eq!(lines[2], "a            10");
        assert_eq!(lines[3], "longer-name  3");
    }

    #[test]
    fn report_json_is_parseable() {
        let mut r = Report::new("unit-test");
        r.line("header \"quoted\" line");
        r.table("caption", &["x", "y"], vec![vec!["1".to_owned(), "2".into()]]);
        let v = spectral_telemetry::JsonValue::parse(&r.to_json()).expect("valid JSON");
        assert_eq!(v.get("binary").and_then(|b| b.as_str()), Some("unit-test"));
        let items = v.get("items").and_then(|i| i.as_arr()).expect("items array");
        assert_eq!(items.len(), 2);
        assert_eq!(items[0].get("type").and_then(|t| t.as_str()), Some("line"));
        assert_eq!(items[1].get("type").and_then(|t| t.as_str()), Some("table"));
        assert_eq!(items[1].get("title").and_then(|t| t.as_str()), Some("caption"));
        assert!(r.to_text().contains("caption\n"));
    }

    #[test]
    fn manifest_carries_arg_notes() {
        let mut a = Args::empty();
        a.quick = true;
        a.scale = Some(6);
        a.threads = Some(2);
        let m = a.manifest("unit", "tiny");
        let json = m.to_json();
        let v = spectral_telemetry::JsonValue::parse(&json).expect("valid JSON");
        assert_eq!(v.get("binary").and_then(|b| b.as_str()), Some("unit"));
        assert_eq!(v.get("threads").and_then(|t| t.as_u64()), Some(2));
        let notes = v.get("notes").expect("notes object");
        assert_eq!(notes.get("quick").and_then(|q| q.as_str()), Some("true"));
        assert_eq!(notes.get("scale").and_then(|s| s.as_str()), Some("6"));
    }
}
