//! `convert` — inspect and convert on-disk live-point libraries
//! between container formats.
//!
//! * `convert --library in.splp` — print the library header (format
//!   version, benchmark, scope, point/block counts, compressed size)
//!   without touching a single record: a metadata-only
//!   [`LivePointLibrary::open_header`] read.
//! * `convert --library in.splp --save-library out.splp
//!   [--lib-format 1|2] [--block N] [--dict on|off]` — rewrite the
//!   library in the requested container (paged v2 by default) and
//!   verify the copy decodes to the same content.
//!
//! Conversion preserves record order and point content; v1 → v2 → v1
//! is byte-identical (the round-trip golden in the core tests).

use spectral_core::LivePointLibrary;
use spectral_experiments::{
    fmt_bytes, run_main, stamp_library, Args, ExpError, IoContext, Report, Timer,
};

fn main() -> std::process::ExitCode {
    run_main("convert", run)
}

fn run(args: Args) -> Result<(), ExpError> {
    args.reject_recovery_flags("convert")?;
    let Some(input) = &args.library else {
        return Err(ExpError::msg("convert needs --library PATH (and optionally --save-library)"));
    };
    let mut report = Report::new("convert");

    // Metadata-only open: header + footer for v2, a frame walk (no
    // decompression) for v1.
    let t = Timer::start();
    let header = LivePointLibrary::open_header(input).context("cannot read library", input)?;
    report.line(format!("{}:", input.display()));
    report.line(format!(
        "  format v{}  benchmark={}  scope={:?}",
        header.format_version, header.benchmark, header.scope
    ));
    report.line(format!(
        "  {} points in {} blocks, {} compressed ({} on disk), header read in {}",
        header.points,
        header.blocks,
        fmt_bytes(header.total_compressed_bytes),
        fmt_bytes(header.file_bytes),
        spectral_experiments::fmt_secs(t.secs()),
    ));
    if let Some(hash) = header.content_hash {
        report.line(format!("  content hash crc32:{hash:08x}"));
    }

    let Some(output) = &args.save_library else {
        report.finish(&args)?;
        return Ok(());
    };

    let mut manifest = args.manifest("convert", &header.benchmark);
    let t = Timer::start();
    let library = LivePointLibrary::open(input).context("cannot open library", input)?;
    manifest.phase("open_library", t.secs());

    let target = args.lib_format.unwrap_or(2);
    let t = Timer::start();
    args.write_library(&library, output)?;
    manifest.phase("write_library", t.secs());

    // Re-open the copy and verify it carries the same points. The
    // stored content hash moves with the representation (dictionary
    // compression changes the stored bodies), so compare the canonical
    // v1-semantics stream instead — it decodes every record of both
    // containers and is byte-identical iff the points are.
    let converted = LivePointLibrary::open(output).context("cannot re-open converted", output)?;
    if converted.len() != library.len() || converted.to_bytes()? != library.to_bytes()? {
        return Err(ExpError::msg(format!(
            "conversion verification failed: {} points (hash crc32:{:08x}) did not survive as \
             {} points (hash crc32:{:08x})",
            library.len(),
            library.content_hash(),
            converted.len(),
            converted.content_hash(),
        )));
    }
    let out_header = LivePointLibrary::open_header(output).context("cannot read", output)?;
    report.line(format!(
        "wrote {} as format v{}: {} compressed ({} on disk), verified {} points intact",
        output.display(),
        target,
        fmt_bytes(out_header.total_compressed_bytes),
        fmt_bytes(out_header.file_bytes),
        converted.len(),
    ));

    stamp_library(&mut manifest, &converted);
    manifest.points_processed = Some(converted.len() as u64);
    report.finish(&args)?;
    args.finish_run(&mut manifest)
}
