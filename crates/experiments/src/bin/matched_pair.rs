//! **§6.2** — Matched-pair comparison: sample-size reduction factors
//! across a sensitivity suite of design changes (latencies, queue sizes,
//! functional-unit mixes, cache parameters).
//!
//! Paper result: matched pairs cut the required sample size by 3.5–150×
//! relative to absolute estimation, with the largest wins on changes
//! that have little effect.

use std::path::{Path, PathBuf};

use spectral_core::{CreationConfig, LivePointLibrary, MatchedRunner, Recovery, RunPolicy};
use spectral_experiments::{load_cases, run_main, Args, ExpError, Report, Timer};
use spectral_uarch::{FuPools, MachineConfig};

/// Per-(benchmark, variant) sidecar path: `--checkpoint` / `--resume`
/// name a path *prefix* here, since one invocation runs many
/// independent matched-pair comparisons.
fn sidecar(base: &Path, bench: &str, variant: usize) -> PathBuf {
    let mut name = base.as_os_str().to_owned();
    name.push(format!(".{bench}.v{variant}"));
    PathBuf::from(name)
}

/// The recovery configuration for one (benchmark, variant) cell.
fn cell_recovery(args: &Args, bench: &str, variant: usize) -> Recovery {
    let mut r = Recovery::none();
    if let Some(base) = &args.checkpoint {
        let every = args.checkpoint_every.unwrap_or(64) as usize;
        r = r.checkpoint_to(sidecar(base, bench, variant), every);
    }
    if let Some(base) = &args.resume {
        let p = sidecar(base, bench, variant);
        // Cells the crashed invocation never reached have no sidecar to
        // replay; they run fresh. A bad prefix is caught up front in
        // `run`, so this cannot silently resume nothing.
        if p.exists() {
            r = r.resume_from(p);
        }
    }
    r
}

fn main() -> std::process::ExitCode {
    run_main("matched_pair", run)
}

fn run(mut args: Args) -> Result<(), ExpError> {
    if args.benchmarks.is_none() && args.limit.is_none() && !args.quick {
        args.benchmarks = Some(vec!["gcc-like".into(), "mcf-like".into(), "swim-like".into()]);
    }
    let cases = load_cases(&args)?;
    let library_cap = args.window_count(400);
    let threads = args.thread_count();
    let base = MachineConfig::eight_way();
    let mut report = Report::new("matched_pair");
    let benchmarks: Vec<&str> = cases.iter().map(|c| c.name()).collect();
    let mut manifest = args.manifest("matched_pair", &benchmarks.join(","));

    // The sensitivity suite (paper: "varying latencies, queue sizes,
    // functional unit mix, etc.").
    let variants: Vec<(&str, MachineConfig)> = vec![
        ("mem latency 100->120", base.clone().with_mem_latency(120)),
        ("mem latency 100->200", base.clone().with_mem_latency(200)),
        ("L2 latency 12->16", {
            let mut m = base.clone();
            m.lat.l2 = 16;
            m
        }),
        ("RUU/LSQ 128/64->96/48", base.clone().with_queues(96, 48)),
        ("RUU/LSQ 128/64->64/32", base.clone().with_queues(64, 32)),
        ("I-ALUs 4->2", base.clone().with_fu(FuPools { int_alu: 2, ..base.fu })),
        ("FP-ALUs 2->1", base.clone().with_fu(FuPools { fp_alu: 1, ..base.fu })),
        ("store buffer 16->8", {
            let mut m = base.clone();
            m.store_buffer = 8;
            m
        }),
        ("no change (control)", base.clone()),
    ];

    args.stamp_recovery(&mut manifest);
    if let Some(base) = &args.resume {
        let any = cases
            .iter()
            .any(|case| (0..variants.len()).any(|vi| sidecar(base, case.name(), vi).exists()));
        if !any {
            return Err(ExpError::msg(format!(
                "--resume {}: no checkpoint sidecars found for that prefix \
                 (expected files like {})",
                base.display(),
                sidecar(base, cases[0].name(), 0).display()
            )));
        }
    }

    report.line("== Matched-pair comparison (paper SS6.2): sample-size reduction ==");
    report.line(format!("benchmarks={} library cap={}\n", cases.len(), library_cap));

    let policy = args.sched_policy(RunPolicy::default());
    let mut all_factors: Vec<f64> = Vec::new();
    let mut rows = Vec::new();
    let mut pairs_total = 0u64;
    for case in &cases {
        let t = Timer::start();
        let cfg = CreationConfig::for_machine(&base).with_sample_size(library_cap);
        let library = LivePointLibrary::create_parallel(&case.program, &cfg, threads)?;
        manifest.phase(format!("create_library.{}", case.name()), t.secs());
        let t = Timer::start();
        for (vi, (label, variant)) in variants.iter().enumerate() {
            let runner = MatchedRunner::new(&library, base.clone(), variant.clone());
            let recovery = cell_recovery(&args, case.name(), vi);
            let out =
                runner.run_parallel_recoverable(&case.program, &policy, threads, &recovery)?;
            let absolute =
                out.pair().required_absolute_sample(policy.target_rel_err, policy.confidence);
            let matched =
                out.pair().required_delta_sample(policy.target_rel_err, policy.confidence);
            let factor = out.reduction_factor(policy.target_rel_err);
            all_factors.push(factor);
            pairs_total += out.processed() as u64;
            rows.push(vec![
                case.name().to_owned(),
                (*label).to_owned(),
                format!("{:+.2}%", out.relative_change() * 100.0),
                if out.significant() { "yes" } else { "no" }.into(),
                out.processed().to_string(),
                matched.to_string(),
                absolute.to_string(),
                format!("{factor:.1}x"),
            ]);
        }
        manifest.phase(format!("run_variants.{}", case.name()), t.secs());
    }
    manifest.points_processed = Some(pairs_total);

    report.table(
        "",
        &[
            "benchmark",
            "design change",
            "dCPI",
            "signif",
            "pairs run",
            "n matched",
            "n absolute",
            "reduction",
        ],
        rows,
    );

    let min = all_factors.iter().fold(f64::INFINITY, |a, &b| a.min(b));
    let max = all_factors.iter().fold(0.0f64, |a, &b| a.max(b));
    let gm = (all_factors.iter().map(|f| f.ln()).sum::<f64>() / all_factors.len() as f64).exp();
    manifest.note("reduction_geo_mean", format!("{gm:.2}"));
    report.blank();
    report.line(format!(
        "reduction factors: min {min:.1}x  geo-mean {gm:.1}x  max {max:.1}x   (paper: 3.5x - 150x)"
    ));
    report.line("largest factors on no-effect changes, as the paper observes.");

    report.finish(&args)?;
    args.finish_run(&mut manifest)
}
