//! Stratified live-point processing (the paper's cited optimization):
//! for phase-heavy benchmarks, position-band strata shrink the combined
//! confidence interval at equal sample size — and with live-points,
//! smaller samples translate directly into shorter runtimes (the paper's
//! point that sampling optimizations finally pay off once functional
//! warming is gone).

use spectral_core::{CreationConfig, LivePointLibrary, OnlineRunner, RunPolicy, StratifiedRunner};
use spectral_experiments::{load_cases, run_main, Args, ExpError, Report, Timer};
use spectral_uarch::MachineConfig;

fn main() -> std::process::ExitCode {
    run_main("stratified", run)
}

fn run(mut args: Args) -> Result<(), ExpError> {
    args.reject_recovery_flags("stratified")?;
    if args.benchmarks.is_none() && args.limit.is_none() && !args.quick {
        // Phased benchmarks, where position tracks phase.
        args.benchmarks = Some(vec![
            "gzip-like".into(),
            "gcc-like".into(),
            "bzip2-like".into(),
            "mgrid-like".into(),
            "ammp-like".into(),
        ]);
    }
    let machine = MachineConfig::eight_way();
    let library_cap = args.window_count(400);
    let threads = args.thread_count();
    let cases = load_cases(&args)?;
    let benchmarks: Vec<&str> = cases.iter().map(|c| c.name()).collect();
    let mut report = Report::new("stratified");
    let mut manifest = args.manifest("stratified", &benchmarks.join(","));

    report.line("== Stratified vs uniform estimation (position-band strata) ==");
    report.line(format!("benchmarks={} library cap={}\n", cases.len(), library_cap));

    let exhaustive = args.sched_policy(RunPolicy {
        target_rel_err: 1e-12,
        trajectory_stride: 0,
        ..RunPolicy::default()
    });
    let t = Timer::start();
    let mut points = 0u64;
    let mut rows = Vec::new();
    for case in &cases {
        let cfg = CreationConfig::for_machine(&machine).with_sample_size(library_cap);
        let lib = LivePointLibrary::create_parallel(&case.program, &cfg, threads)?;

        // The uniform comparator runs sharded-parallel; the stratified
        // runner is serial (per-stratum accumulation).
        let uniform = OnlineRunner::new(&lib, machine.clone()).run_parallel(
            &case.program,
            &exhaustive,
            threads,
        )?;
        let strat =
            StratifiedRunner::new(&lib, machine.clone(), 4).run(&case.program, &exhaustive)?;

        // Early-termination comparison at the paper's ±3% target.
        let target = args.sched_policy(RunPolicy::default());
        let u_early = OnlineRunner::new(&lib, machine.clone()).run(&case.program, &target)?;
        let s_early =
            StratifiedRunner::new(&lib, machine.clone(), 4).run(&case.program, &target)?;
        points +=
            (uniform.processed() + strat.processed() + u_early.processed() + s_early.processed())
                as u64;

        rows.push(vec![
            case.name().to_owned(),
            format!("{:.4}", uniform.mean()),
            format!("{:.4}", strat.mean()),
            format!("±{:.2}%", uniform.relative_half_width() * 100.0),
            format!("±{:.2}%", strat.relative_half_width() * 100.0),
            format!("{}{}", u_early.processed(), if u_early.reached_target() { "" } else { "*" }),
            format!("{}{}", s_early.processed(), if s_early.reached_target() { "" } else { "*" }),
        ]);
    }
    manifest.phase("stratified_vs_uniform", t.secs());
    manifest.points_processed = Some(points);
    report.table(
        "",
        &[
            "benchmark",
            "uniform CPI",
            "strat CPI",
            "uniform CI",
            "strat CI",
            "n uniform @3%",
            "n strat @3%",
        ],
        rows,
    );
    report.line("  * library exhausted before the ±3% target");
    report.blank();
    report.line("shape: same means; stratified intervals no wider, usually tighter on phased");
    report.line("benchmarks — fewer live-points for the same confidence.");

    report.finish(&args)?;
    args.finish_run(&mut manifest)
}
