//! Stratified live-point processing (the paper's cited optimization):
//! for phase-heavy benchmarks, position-band strata shrink the combined
//! confidence interval at equal sample size — and with live-points,
//! smaller samples translate directly into shorter runtimes (the paper's
//! point that sampling optimizations finally pay off once functional
//! warming is gone).

use spectral_core::{CreationConfig, LivePointLibrary, OnlineRunner, RunPolicy, StratifiedRunner};
use spectral_experiments::{load_cases, print_table, Args};
use spectral_uarch::MachineConfig;

fn main() {
    let mut args = Args::parse();
    if args.benchmarks.is_none() && args.limit.is_none() && !args.quick {
        // Phased benchmarks, where position tracks phase.
        args.benchmarks = Some(vec![
            "gzip-like".into(),
            "gcc-like".into(),
            "bzip2-like".into(),
            "mgrid-like".into(),
            "ammp-like".into(),
        ]);
    }
    let machine = MachineConfig::eight_way();
    let library_cap = args.window_count(400);
    let threads = args.thread_count();
    let cases = load_cases(&args);

    println!("== Stratified vs uniform estimation (position-band strata) ==");
    println!("benchmarks={} library cap={}\n", cases.len(), library_cap);

    let exhaustive =
        RunPolicy { target_rel_err: 1e-12, trajectory_stride: 0, ..RunPolicy::default() };
    let mut rows = Vec::new();
    for case in &cases {
        let cfg = CreationConfig::for_machine(&machine).with_sample_size(library_cap);
        let lib = LivePointLibrary::create_parallel(&case.program, &cfg, threads)
            .expect("library creation");

        // The uniform comparator runs sharded-parallel; the stratified
        // runner is serial (per-stratum accumulation).
        let uniform = OnlineRunner::new(&lib, machine.clone())
            .run_parallel(&case.program, &exhaustive, threads)
            .expect("uniform run");
        let strat = StratifiedRunner::new(&lib, machine.clone(), 4)
            .run(&case.program, &exhaustive)
            .expect("stratified run");

        // Early-termination comparison at the paper's ±3% target.
        let target = RunPolicy::default();
        let u_early = OnlineRunner::new(&lib, machine.clone())
            .run(&case.program, &target)
            .expect("uniform early");
        let s_early = StratifiedRunner::new(&lib, machine.clone(), 4)
            .run(&case.program, &target)
            .expect("stratified early");

        rows.push(vec![
            case.name().to_owned(),
            format!("{:.4}", uniform.mean()),
            format!("{:.4}", strat.mean()),
            format!("±{:.2}%", uniform.relative_half_width() * 100.0),
            format!("±{:.2}%", strat.relative_half_width() * 100.0),
            format!("{}{}", u_early.processed(), if u_early.reached_target() { "" } else { "*" }),
            format!("{}{}", s_early.processed(), if s_early.reached_target() { "" } else { "*" }),
        ]);
    }
    print_table(
        &[
            "benchmark",
            "uniform CPI",
            "strat CPI",
            "uniform CI",
            "strat CI",
            "n uniform @3%",
            "n strat @3%",
        ],
        &rows,
    );
    println!("  * library exhausted before the ±3% target");
    println!();
    println!("shape: same means; stratified intervals no wider, usually tighter on phased");
    println!("benchmarks — fewer live-points for the same confidence.");
}
