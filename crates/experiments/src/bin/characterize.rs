//! Workload characterization: the suite-overview table backing every
//! other experiment (dynamic length, reference CPI, branch MPKI, cache
//! miss rates, memory footprint, and per-window CPI variability — the
//! quantity that determines each benchmark's required sample size).

use spectral_experiments::{
    fmt_bytes, load_cases, par_map, run_main, Args, ExpError, Report, Timer,
};
use spectral_isa::Emulator;
use spectral_stats::{required_sample_size, Confidence, SampleDesign, SystematicDesign};
use spectral_uarch::MachineConfig;
use spectral_warming::{complete_detailed, smarts_run};

fn main() -> std::process::ExitCode {
    run_main("characterize", run)
}

fn run(args: Args) -> Result<(), ExpError> {
    args.reject_recovery_flags("characterize")?;
    let machine = MachineConfig::eight_way();
    let design = SystematicDesign::paper_8way();
    let n_windows = args.window_count(120);
    let cases = load_cases(&args)?;
    let benchmarks: Vec<&str> = cases.iter().map(|c| c.name()).collect();
    let mut report = Report::new("characterize");
    let mut manifest = args.manifest("characterize", &benchmarks.join(","));

    report.line("== Synthetic suite characterization (8-way baseline) ==\n");
    // Benchmarks are independent: characterize them in parallel.
    let t = Timer::start();
    let rows = par_map(&cases, args.thread_count(), |case| {
        let stats = complete_detailed(&machine, &case.program);
        // Footprint from a functional pass.
        let mut emu = Emulator::new(&case.program);
        while emu.step().is_some() {}
        let footprint = emu.memory().footprint_bytes();
        // Per-window variability via a full-warming sample.
        let windows = design.windows(case.len, n_windows, 777);
        let sampled = smarts_run(&machine, &case.program, &windows);
        let cv = sampled.estimator.coefficient_of_variation();
        let needed = required_sample_size(cv, 0.03, Confidence::C99_7);

        vec![
            case.name().to_owned(),
            format!("{:.1}M", case.len as f64 / 1e6),
            format!("{:.3}", stats.cpi()),
            format!("{:.1}", stats.mispredicts as f64 / stats.committed as f64 * 1000.0),
            // l1d_misses counts load and store-drain misses alike.
            format!(
                "{:.1}%",
                stats.l1d_misses as f64 / (stats.loads + stats.stores).max(1) as f64 * 100.0
            ),
            format!("{:.1}%", stats.l2_misses as f64 / stats.l1d_misses.max(1) as f64 * 100.0),
            fmt_bytes(footprint),
            format!("{cv:.2}"),
            needed.to_string(),
        ]
    });
    manifest.phase("characterize_suite", t.secs());
    manifest.points_processed = Some(cases.len() as u64 * n_windows);
    report.table(
        "",
        &[
            "benchmark",
            "length",
            "CPI",
            "mispred/kinst",
            "L1D miss*",
            "L2 miss",
            "footprint",
            "window CV",
            "n for ±3%",
        ],
        rows,
    );
    report.blank();
    report.line("  *misses per data access (loads + committed stores)");
    report.line("window CV drives sample size (n ≈ (3·cv/0.03)²) — the paper's Table 2 runtime");
    report.line("spread (1 s … 12 min per benchmark) is exactly this variation.");

    report.finish(&args)?;
    args.finish_run(&mut manifest)
}
