//! **Table 3** — Summary of simulation-sampling warming methods:
//! accuracy (CPI bias vs complete detailed simulation), runtime,
//! scaling behaviour, checkpoint independence, library size, and the
//! microarchitectural parameters each method fixes.
//!
//! Paper row targets: full warming 0.6% (1.6%) bias; AW-MRRL 1.1%
//! (5.4%) and loses window independence unless bias grows; live-points
//! match full warming's bias, run fastest, and fix only the maximum
//! cache/TLB geometry plus the stored predictor set.

use spectral_core::{CreationConfig, LivePointLibrary, OnlineRunner, RunPolicy};
use spectral_experiments::{
    fmt_bytes, fmt_secs, load_cases, run_main, Args, ExpError, Report, Timer,
};
use spectral_stats::{SampleDesign, SystematicDesign};
use spectral_uarch::MachineConfig;
use spectral_warming::{adaptive_run, complete_detailed, mrrl_analyze, smarts_run};

fn main() -> std::process::ExitCode {
    run_main("table3", run)
}

fn run(args: Args) -> Result<(), ExpError> {
    args.reject_recovery_flags("table3")?;
    let machine = MachineConfig::eight_way();
    let design = SystematicDesign::paper_8way();
    let n_windows = args.window_count(150);
    let threads = args.thread_count();
    let cases = load_cases(&args)?;
    let benchmarks: Vec<&str> = cases.iter().map(|c| c.name()).collect();
    let mut report = Report::new("table3");
    let mut manifest = args.manifest("table3", &benchmarks.join(","));

    report.line("== Table 3: summary of warming methods (8-way) ==");
    report.line(format!("benchmarks={} windows/sample={}\n", cases.len(), n_windows));

    let mut full_bias = Vec::new(); // vs reference: includes sampling error
    let mut aw_bias = Vec::new(); // additional, matched vs full warming
    let mut lp_bias = Vec::new(); // additional, matched vs full warming
    let mut t_ref = 0.0;
    let mut t_smarts = 0.0;
    let mut t_aw = 0.0;
    let mut t_lp = 0.0;
    let mut lib_bytes = 0u64;
    let mut points = 0u64;

    let policy = args.sched_policy(RunPolicy {
        target_rel_err: 1e-12,
        trajectory_stride: 0,
        ..RunPolicy::default()
    });

    let t_all = Timer::start();
    for case in &cases {
        let windows = design.windows(case.len, n_windows, 31337);

        let t = Timer::start();
        let reference = complete_detailed(&machine, &case.program);
        t_ref += t.secs();
        let ref_cpi = reference.cpi();

        let t = Timer::start();
        let smarts = smarts_run(&machine, &case.program, &windows);
        t_smarts += t.secs();
        full_bias.push((smarts.cpi() - ref_cpi).abs() / ref_cpi * 100.0);

        let analysis = mrrl_analyze(&case.program, &windows, 32, 0.999);
        let t = Timer::start();
        let adaptive = adaptive_run(&machine, &case.program, &windows, &analysis, true);
        t_aw += t.secs();
        // Additional bias, matched on the same windows (the paper's
        // Fig 4 method): isolates warming error from sampling error.
        aw_bias.push((adaptive.sampled.cpi() - smarts.cpi()).abs() / smarts.cpi() * 100.0);

        let cfg = CreationConfig::for_machine(&machine).with_sample_size(n_windows);
        let library =
            LivePointLibrary::create_with_windows_parallel(&case.program, &cfg, &windows, threads)?;
        lib_bytes += library.total_compressed_bytes();
        let t = Timer::start();
        let estimate = OnlineRunner::new(&library, machine.clone()).run_parallel(
            &case.program,
            &policy,
            threads,
        )?;
        t_lp += t.secs();
        points += estimate.processed() as u64;
        lp_bias.push((estimate.mean() - smarts.cpi()).abs() / smarts.cpi() * 100.0);

        eprintln!(
            "  {:14} ref {:.3}  smarts {:.2}%  aw {:.2}%  lp {:.2}%",
            case.name(),
            ref_cpi,
            full_bias.last().unwrap(),
            aw_bias.last().unwrap(),
            lp_bias.last().unwrap()
        );
    }
    manifest.phase("method_comparison", t_all.secs());
    manifest.points_processed = Some(points);

    let n = cases.len() as f64;
    let stat = |v: &[f64]| -> (f64, f64) {
        (v.iter().sum::<f64>() / v.len() as f64, v.iter().fold(0.0f64, |a, &b| a.max(b)))
    };
    let (fb_avg, fb_worst) = stat(&full_bias);
    let (ab_avg, ab_worst) = stat(&aw_bias);
    let (lb_avg, lb_worst) = stat(&lp_bias);
    manifest.note("lp_addl_bias_avg_pct", format!("{lb_avg:.4}"));
    manifest.note("lp_addl_bias_worst_pct", format!("{lb_worst:.4}"));

    let rows = vec![
        vec![
            "CPI error vs reference*".into(),
            "none".into(),
            format!("{fb_avg:.2}% ({fb_worst:.2}%)"),
            "= full + row below".into(),
            "= full + row below".into(),
        ],
        vec![
            "add'l bias vs full warming".into(),
            "n/a".into(),
            "0 (definition)".into(),
            format!("{ab_avg:.2}% ({ab_worst:.2}%)"),
            format!("{lb_avg:.3}% ({lb_worst:.3}%)"),
        ],
        vec![
            "avg benchmark runtime".into(),
            fmt_secs(t_ref / n),
            fmt_secs(t_smarts / n),
            fmt_secs(t_aw / n),
            fmt_secs(t_lp / n),
        ],
        vec![
            "runtime scaling".into(),
            "O(B x DS)".into(),
            "O(B)".into(),
            "O(1)*".into(),
            "O(C)".into(),
        ],
        vec![
            "independent checkpoints".into(),
            "n/a".into(),
            "n/a".into(),
            "no*".into(),
            "yes".into(),
        ],
        vec![
            "suite library size".into(),
            "n/a".into(),
            "n/a".into(),
            "(AW ckpts: see fig7)".into(),
            fmt_bytes(lib_bytes),
        ],
        vec![
            "fixed uarch parameters".into(),
            "none".into(),
            "none".into(),
            "none".into(),
            "max cache/TLB, bpred set".into(),
        ],
    ];
    report.blank();
    report.table(
        "",
        &["", "complete (sim-outorder)", "full warming (SMARTS)", "AW-MRRL", "live-points"],
        rows,
    );
    report.line(
        "  *includes sampling error at this sample size (the paper's samples are ~10,000 windows);",
    );
    report.line(
        "   the additional-bias row is matched on identical windows, so sampling error cancels.",
    );
    report.line(
        "  *unstitched AW-MRRL checkpoints are independent, at considerably higher bias (fig4)",
    );
    report.blank();
    report.line("paper targets: full warming 0.6% (1.6%) vs reference; AW-MRRL +1.1% (5.4%);");
    report
        .line("live-points +0.0% — identical to full warming, the paper's central accuracy claim.");

    report.finish(&args)?;
    args.finish_run(&mut manifest)
}
