//! **Figure 7** — Breakdown of a typical live-point (uncompressed),
//! compared with an AW-MRRL checkpoint and a conventional checkpoint.
//!
//! Paper numbers (8-way maxima): registers/TLBs ≈ 3 KB, branch
//! predictor ≈ 4 KB, L1I tags ≈ 8 KB, L1D tags ≈ 16 KB, L2 tags ≈ 46 KB,
//! memory data ≈ 16 KB — ≈ 142 KB total, vs ≈ 360 KB of memory data for
//! an AW-MRRL checkpoint and ≈ 105 MB for a conventional checkpoint.
//! Shape target: L2 tags dominate the live-point; the AW-MRRL
//! checkpoint's memory data dwarfs the live-point's; the conventional
//! image dwarfs both by orders of magnitude.

use spectral_core::{collect_live_state, CreationConfig, LivePointLibrary, SizeBreakdown};
use spectral_experiments::{fmt_bytes, load_cases, run_main, Args, ExpError, Report, Timer};
use spectral_stats::{SampleDesign, SystematicDesign};
use spectral_uarch::MachineConfig;
use spectral_warming::mrrl_analyze;

fn main() -> std::process::ExitCode {
    run_main("fig7", run)
}

fn run(args: Args) -> Result<(), ExpError> {
    args.reject_recovery_flags("fig7")?;
    let machine = MachineConfig::eight_way();
    let design = SystematicDesign::paper_8way();
    let n_points = args.window_count(16);
    let threads = args.thread_count();
    let cases = load_cases(&args)?;
    let benchmarks: Vec<&str> = cases.iter().map(|c| c.name()).collect();
    let mut report = Report::new("fig7");
    let mut manifest = args.manifest("fig7", &benchmarks.join(","));

    report.line("== Figure 7: live-point size breakdown (uncompressed DER) ==");
    report.line(format!("benchmarks={} points/benchmark={}\n", cases.len(), n_points));

    let mut acc = SizeBreakdown::default();
    let mut aw_mem_acc = 0u64;
    let mut conventional_acc = 0u64;
    let mut compressed_acc = 0u64;
    let mut dict_acc = 0u64;
    let mut rows = Vec::new();

    let t = Timer::start();
    for case in &cases {
        let windows = design.windows(case.len, n_points, 77);
        let cfg = CreationConfig::for_machine(&machine).with_sample_size(n_points);
        let lib =
            LivePointLibrary::create_with_windows_parallel(&case.program, &cfg, &windows, threads)?;
        let b = lib.mean_breakdown(8)?;

        // Paged container with block-shared dictionaries: same records,
        // better ratio (the v2 bytes/point column).
        let v2_path = std::env::temp_dir().join(format!(
            "spectral_fig7_{}_{}.splp",
            std::process::id(),
            case.name()
        ));
        let summary = lib.save_v2(&v2_path, &args.v2_options())?;
        std::fs::remove_file(&v2_path).ok();
        let dict_bytes = summary.record_bytes / u64::from(summary.count.max(1));

        // AW-MRRL checkpoint model: architectural registers plus the
        // live-state of the (much longer) warming+detailed window.
        let analysis = mrrl_analyze(&case.program, &windows, 32, 0.999);
        let mut aw_mem = 0u64;
        let sample = windows.len().min(4);
        let stride = (windows.len() / sample).max(1);
        for (w, &warm) in windows.iter().zip(&analysis.warming_lens).step_by(stride).take(sample) {
            let ls =
                collect_live_state(&case.program, w.detail_start.saturating_sub(warm), w.end());
            aw_mem += ls.word_count() as u64 * 9 + 512;
        }
        aw_mem /= sample as u64;

        let conventional = lib.get(0)?.live_state.conventional_bytes;

        rows.push(vec![
            case.name().to_owned(),
            fmt_bytes(b.regs_tlb),
            fmt_bytes(b.bpred),
            fmt_bytes(b.l1i_tags),
            fmt_bytes(b.l1d_tags),
            fmt_bytes(b.l2_tags),
            fmt_bytes(b.memory_data),
            fmt_bytes(b.total()),
            fmt_bytes(lib.mean_point_bytes()),
            fmt_bytes(dict_bytes),
            fmt_bytes(aw_mem),
            fmt_bytes(conventional),
        ]);
        acc.regs_tlb += b.regs_tlb;
        acc.bpred += b.bpred;
        acc.l1i_tags += b.l1i_tags;
        acc.l1d_tags += b.l1d_tags;
        acc.l2_tags += b.l2_tags;
        acc.memory_data += b.memory_data;
        aw_mem_acc += aw_mem;
        conventional_acc += conventional;
        compressed_acc += lib.mean_point_bytes();
        dict_acc += dict_bytes;
    }
    manifest.phase("size_breakdown", t.secs());
    manifest.points_processed = Some(cases.len() as u64 * n_points);

    report.table(
        "",
        &[
            "benchmark",
            "regs+TLB",
            "bpred",
            "L1I tags",
            "L1D tags",
            "L2 tags",
            "mem data",
            "total",
            "compressed",
            "v2+dict",
            "AW-MRRL ckpt",
            "conventional",
        ],
        rows,
    );

    let n = cases.len() as u64;
    manifest.note("mean_live_point_bytes", (acc.total() / n).to_string());
    manifest.note("mean_compressed_bytes", (compressed_acc / n).to_string());
    manifest.note("mean_dict_compressed_bytes", (dict_acc / n).to_string());
    report.blank();
    report.line("suite averages (paper: 3K / 4K / 8K / 16K / 46K / 16K = ~142 KB; AW ~363 KB; conventional ~105 MB):");
    report.line(format!(
        "  regs+TLB {}  bpred {}  L1I {}  L1D {}  L2 {}  mem {}  | total {}  compressed {}",
        fmt_bytes(acc.regs_tlb / n),
        fmt_bytes(acc.bpred / n),
        fmt_bytes(acc.l1i_tags / n),
        fmt_bytes(acc.l1d_tags / n),
        fmt_bytes(acc.l2_tags / n),
        fmt_bytes(acc.memory_data / n),
        fmt_bytes(acc.total() / n),
        fmt_bytes(compressed_acc / n),
    ));
    report.line(format!(
        "  paged v2 with block-shared dictionaries: {} / point",
        fmt_bytes(dict_acc / n)
    ));
    report.line(format!(
        "  AW-MRRL checkpoint {}   conventional checkpoint {}",
        fmt_bytes(aw_mem_acc / n),
        fmt_bytes(conventional_acc / n)
    ));
    report.line(format!(
        "  live-point : conventional ratio = 1 : {:.0}",
        conventional_acc as f64 / acc.total().max(1) as f64
    ));

    report.finish(&args)?;
    args.finish_run(&mut manifest)
}
