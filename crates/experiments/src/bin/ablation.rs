//! Ablations for the design decisions DESIGN.md calls out:
//!
//! 1. **Wrong-path modeling** (§5's foundation): how much CPI do
//!    wrong-path instructions contribute, per benchmark? The paper
//!    argues their effects "cannot be ignored given our tight bias
//!    goals"; turning the mechanism off quantifies that.
//! 2. **L2 record stream policy**: live-point L2 state recorded from
//!    max-L1-filtered misses (default) vs the raw reference stream
//!    (Barr-style) — checkpointed-warming bias under each.

use spectral_core::{CreationConfig, L2StreamPolicy, LivePointLibrary, OnlineRunner, RunPolicy};
use spectral_experiments::{load_cases, run_main, Args, ExpError, Report, Timer};
use spectral_stats::{SampleDesign, SystematicDesign};
use spectral_uarch::MachineConfig;
use spectral_warming::{complete_detailed, smarts_run};

fn main() -> std::process::ExitCode {
    run_main("ablation", run)
}

fn run(mut args: Args) -> Result<(), ExpError> {
    args.reject_recovery_flags("ablation")?;
    if args.benchmarks.is_none() && args.limit.is_none() && !args.quick {
        args.benchmarks = Some(vec![
            "gcc-like".into(),
            "mcf-like".into(),
            "crafty-like".into(),
            "swim-like".into(),
        ]);
    }
    let machine = MachineConfig::eight_way();
    let design = SystematicDesign::paper_8way();
    let n_windows = args.window_count(100);
    let threads = args.thread_count();
    let cases = load_cases(&args)?;
    let benchmarks: Vec<&str> = cases.iter().map(|c| c.name()).collect();
    let mut report = Report::new("ablation");
    let mut manifest = args.manifest("ablation", &benchmarks.join(","));

    report.line("== Ablation 1: wrong-path modeling (complete detailed runs) ==\n");
    let t = Timer::start();
    let mut rows = Vec::new();
    for case in &cases {
        let with_wp = complete_detailed(&machine, &case.program);
        let without = complete_detailed(&machine.clone().without_wrong_path(), &case.program);
        rows.push(vec![
            case.name().to_owned(),
            format!("{:.4}", with_wp.cpi()),
            format!("{:.4}", without.cpi()),
            format!("{:+.2}%", (without.cpi() - with_wp.cpi()) / with_wp.cpi() * 100.0),
            with_wp.wrong_path_fetched.to_string(),
        ]);
    }
    manifest.phase("ablate_wrong_path", t.secs());
    report.table(
        "",
        &["benchmark", "CPI (modeled)", "CPI (no wrong path)", "delta", "wp insts fetched"],
        rows,
    );
    report.line("wrong-path work perturbs cache tags and contends for resources; removing the");
    report.line("mechanism shifts CPI, which is why restricted live-state (fig5) carries bias.\n");

    report.line("== Ablation 2: L2 record stream policy (checkpointed-warming bias) ==\n");
    let t = Timer::start();
    let policy = args.sched_policy(RunPolicy {
        target_rel_err: 1e-12,
        trajectory_stride: 0,
        ..RunPolicy::default()
    });
    let mut points = 0u64;
    let mut rows = Vec::new();
    for case in &cases {
        let windows = design.windows(case.len, n_windows, 555);
        let smarts = smarts_run(&machine, &case.program, &windows);
        let mut bias = Vec::new();
        for l2_policy in [L2StreamPolicy::FilteredByMaxL1, L2StreamPolicy::Unfiltered] {
            let mut cfg = CreationConfig::for_machine(&machine);
            cfg.l2_policy = l2_policy;
            let lib = LivePointLibrary::create_with_windows_parallel(
                &case.program,
                &cfg,
                &windows,
                threads,
            )?;
            let est = OnlineRunner::new(&lib, machine.clone()).run_parallel(
                &case.program,
                &policy,
                threads,
            )?;
            points += est.processed() as u64;
            bias.push((est.mean() - smarts.cpi()).abs() / smarts.cpi() * 100.0);
        }
        rows.push(vec![
            case.name().to_owned(),
            format!("{:.3}%", bias[0]),
            format!("{:.3}%", bias[1]),
        ]);
    }
    manifest.phase("ablate_l2_policy", t.secs());
    manifest.points_processed = Some(points);
    report.table(
        "",
        &["benchmark", "filtered-by-max-L1 (default)", "unfiltered (Barr-style)"],
        rows,
    );
    report.line("bias vs full warming on identical windows; the filtered default is exact when");
    report.line("the simulated L1s equal the library maxima (DESIGN.md decision #6).");

    report.finish(&args)?;
    args.finish_run(&mut manifest)
}
