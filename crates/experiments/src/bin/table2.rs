//! **Table 2** — Runtimes of the four simulation methods per benchmark:
//! complete detailed simulation (`sim-outorder`), full warming
//! (SMARTSim), adaptive warming (AW-MRRL), and live-points.
//!
//! Paper shape (8-way): live-points (91 s avg) ≫ faster than AW-MRRL
//! (1.5 h) ≫ faster than SMARTSim (7 h) ≫ faster than complete detailed
//! simulation (5.5 days); live-point runtime depends on sample size
//! (CPI variance), not benchmark length.
//!
//! Notes on this reproduction: benchmarks are ~10⁴× shorter than SPEC
//! reference runs, which compresses every ratio; `--scale` stretches
//! them back (default 6× here). AW-MRRL is reported two ways: measured
//! wall-clock, and a modelled time that excludes the architectural
//! fast-forward the paper assumes is a free checkpoint jump.

use spectral_core::{benchmark_length, CreationConfig, LivePointLibrary, OnlineRunner, RunPolicy};
use spectral_experiments::{fmt_secs, run_main, Args, ExpError, Report, Timer};
use spectral_stats::{SampleDesign, SystematicDesign};
use spectral_warming::{adaptive_run, complete_detailed, mrrl_analyze, smarts_run};

fn main() -> std::process::ExitCode {
    run_main("table2", run)
}

fn run(mut args: Args) -> Result<(), ExpError> {
    args.reject_recovery_flags("table2")?;
    if args.scale.is_none() {
        args.scale = Some(if args.quick { 2 } else { 6 });
    }
    let machine = args.machine_config()?;
    let design = SystematicDesign::new(1000, machine.detailed_warming);
    let library_cap = args.window_count(500);
    let threads = args.thread_count();
    let cases = spectral_experiments::load_cases(&args)?;
    let benchmarks: Vec<&str> = cases.iter().map(|c| c.name()).collect();
    let mut report = Report::new("table2");
    let mut manifest = args.manifest("table2", &benchmarks.join(","));

    report.line(format!(
        "== Table 2: runtimes per benchmark ({}, scale {}x) ==\n",
        machine.name,
        args.scale.unwrap_or(1)
    ));

    struct Row {
        name: String,
        n_inst: u64,
        t_full: f64,
        t_smarts: f64,
        t_aw_meas: f64,
        t_aw_model: f64,
        t_lp: f64,
        t_create: f64,
        n_used: usize,
        rel_err: f64,
    }

    let mut points = 0u64;
    let mut rows: Vec<Row> = Vec::new();
    for case in &cases {
        // Plain functional emulation rate: models the constant-time
        // checkpoint jump AW-MRRL assumes for the skipped spans.
        let t = Timer::start();
        let n_inst = benchmark_length(&case.program);
        let emu_rate = n_inst as f64 / t.secs();

        // 1. Complete detailed simulation.
        let t = Timer::start();
        let reference = complete_detailed(&machine, &case.program);
        let t_full = t.secs();

        // 2. Live-point library (creation reported separately, as the
        //    paper reports its 8.5 h creation pass separately).
        let cfg = CreationConfig::for_machine(&machine).with_sample_size(library_cap);
        let t = Timer::start();
        let library = LivePointLibrary::create_parallel(&case.program, &cfg, threads)?;
        let t_create = t.secs();
        manifest.phase(format!("create_library.{}", case.name()), t_create);

        // 3. Live-point run to +-3% @ 99.7% (or library exhaustion).
        let runner = OnlineRunner::new(&library, machine.clone());
        let t = Timer::start();
        let estimate = runner.run_parallel(
            &case.program,
            &args.sched_policy(RunPolicy::default()),
            threads,
        )?;
        let t_lp = t.secs();
        manifest.phase(format!("run_live_points.{}", case.name()), t_lp);
        points += estimate.processed() as u64;

        // 4. SMARTS over the same number of windows the live-point run
        //    needed.
        let windows = design.windows(n_inst, estimate.processed() as u64, 4242);
        let t = Timer::start();
        let smarts = smarts_run(&machine, &case.program, &windows);
        let t_smarts = t.secs();
        let _ = smarts.cpi(); // estimate retained for spot checks

        // 5. AW-MRRL over the same windows (analysis pass excluded, as
        //    the paper treats it as a separate offline pass).
        let analysis = mrrl_analyze(&case.program, &windows, 32, 0.999);
        let t = Timer::start();
        let adaptive = adaptive_run(&machine, &case.program, &windows, &analysis, true);
        let t_aw_meas = t.secs();
        let t_aw_model = t_aw_meas - adaptive.sampled.skipped_insts as f64 / emu_rate;
        manifest.phase(format!("run_comparators.{}", case.name()), t_full + t_smarts + t_aw_meas);

        eprintln!(
            "  {:14} ref CPI {:.3}  est {:.3}  n={}  lp {}  smarts {}",
            case.name(),
            reference.cpi(),
            estimate.mean(),
            estimate.processed(),
            fmt_secs(t_lp),
            fmt_secs(t_smarts),
        );
        rows.push(Row {
            name: case.name().to_owned(),
            n_inst,
            t_full,
            t_smarts,
            t_aw_meas,
            t_aw_model,
            t_lp,
            t_create,
            n_used: estimate.processed(),
            rel_err: estimate.relative_half_width() * 100.0,
        });
    }
    manifest.points_processed = Some(points);

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                format!("{:.1}M", r.n_inst as f64 / 1e6),
                fmt_secs(r.t_full),
                fmt_secs(r.t_smarts),
                fmt_secs(r.t_aw_model),
                fmt_secs(r.t_lp),
                r.n_used.to_string(),
                format!("±{:.1}%", r.rel_err),
                fmt_secs(r.t_create),
            ]
        })
        .collect();
    report.blank();
    report.table(
        "",
        &[
            "benchmark",
            "length",
            "sim-outorder",
            "SMARTSim",
            "AW-MRRL*",
            "live-points",
            "n",
            "achieved",
            "creation",
        ],
        table,
    );
    report.line(
        "  *AW-MRRL modelled: measured wall minus the fast-forward the paper's checkpoints skip",
    );

    let agg = |f: &dyn Fn(&Row) -> f64| -> (f64, f64, f64) {
        let mut min = f64::INFINITY;
        let mut max = 0.0f64;
        let mut sum = 0.0;
        for r in &rows {
            let v = f(r);
            min = min.min(v);
            max = max.max(v);
            sum += v;
        }
        (min, sum / rows.len() as f64, max)
    };
    let (fmin, favg, fmax) = agg(&|r| r.t_full);
    let (smin, savg, smax) = agg(&|r| r.t_smarts);
    let (amin, aavg, amax) = agg(&|r| r.t_aw_model);
    let (mmin, mavg, mmax) = agg(&|r| r.t_aw_meas);
    let (lmin, lavg, lmax) = agg(&|r| r.t_lp);
    report.blank();
    report.line("min / avg / max across benchmarks (paper row order):");
    report.line(format!(
        "  sim-outorder : {} / {} / {}",
        fmt_secs(fmin),
        fmt_secs(favg),
        fmt_secs(fmax)
    ));
    report.line(format!(
        "  SMARTSim     : {} / {} / {}",
        fmt_secs(smin),
        fmt_secs(savg),
        fmt_secs(smax)
    ));
    report.line(format!(
        "  AW-MRRL mod. : {} / {} / {}",
        fmt_secs(amin),
        fmt_secs(aavg),
        fmt_secs(amax)
    ));
    report.line(format!(
        "  AW-MRRL meas : {} / {} / {}",
        fmt_secs(mmin),
        fmt_secs(mavg),
        fmt_secs(mmax)
    ));
    report.line(format!(
        "  live-points  : {} / {} / {}",
        fmt_secs(lmin),
        fmt_secs(lavg),
        fmt_secs(lmax)
    ));
    manifest.note("speedup_vs_sim_outorder", format!("{:.1}", favg / lavg));
    manifest.note("speedup_vs_smarts", format!("{:.2}", savg / lavg));
    report.blank();
    report.line(format!(
        "speedups (avg): live-points vs sim-outorder {:.0}x, vs SMARTSim {:.1}x, vs AW-MRRL {:.1}x",
        favg / lavg,
        savg / lavg,
        aavg / lavg
    ));
    report.line(
        "(paper: 250x+ vs SMARTSim at SPEC2K lengths; ratios compress at 10^4-shorter benchmarks,",
    );
    report.line(
        " and grow with --scale: live-point time is O(sample), every other method is O(benchmark))",
    );

    report.finish(&args)?;
    args.finish_run(&mut manifest)
}
