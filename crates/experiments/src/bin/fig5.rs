//! **Figure 5** — Restricted live-state bias: additional CPI error when
//! live-points store only correct-path-touched state, so wrong-path
//! instructions execute against effectively-uninitialized tags.
//!
//! Paper result: 0.1% average, 3.3% worst case additional bias over full
//! live-state. Shape target: small on most benchmarks, with a tail on
//! mispredict-heavy, memory-sensitive ones.

use spectral_core::{CreationConfig, LivePointLibrary, OnlineRunner, RunPolicy, StateScope};
use spectral_experiments::{load_cases, run_main, Args, ExpError, Report, Timer};
use spectral_stats::{SampleDesign, SystematicDesign};
use spectral_uarch::MachineConfig;

fn main() -> std::process::ExitCode {
    run_main("fig5", run)
}

fn run(args: Args) -> Result<(), ExpError> {
    args.reject_recovery_flags("fig5")?;
    let machine = MachineConfig::eight_way();
    let design = SystematicDesign::paper_8way();
    let n_windows = args.window_count(120);
    let seeds = args.seed_count(2);
    let threads = args.thread_count();
    let cases = load_cases(&args)?;
    let benchmarks: Vec<&str> = cases.iter().map(|c| c.name()).collect();
    let mut report = Report::new("fig5");
    let mut manifest = args.manifest("fig5", &benchmarks.join(","));

    report.line("== Figure 5: restricted live-state additional CPI bias (8-way) ==");
    report.line(format!(
        "benchmarks={} windows/sample={} samples={}\n",
        cases.len(),
        n_windows,
        seeds
    ));

    // Exhaustive policy: process every live-point so the comparison is
    // matched (same windows, zero sampling noise).
    let policy = args.sched_policy(RunPolicy {
        target_rel_err: 1e-12,
        trajectory_stride: 0,
        ..RunPolicy::default()
    });

    let t = Timer::start();
    let mut points = 0u64;
    let mut rows: Vec<(String, f64)> = Vec::new();
    for case in &cases {
        let mut acc = 0.0;
        for seed in 0..seeds {
            let windows = design.windows(case.len, n_windows, 2000 + seed);
            let base_cfg = CreationConfig::for_machine(&machine).with_seed(9 + seed);
            let full_lib = LivePointLibrary::create_with_windows_parallel(
                &case.program,
                &base_cfg,
                &windows,
                threads,
            )?;
            let restricted_lib = LivePointLibrary::create_with_windows_parallel(
                &case.program,
                &base_cfg.clone().with_scope(StateScope::Restricted),
                &windows,
                threads,
            )?;

            let full = OnlineRunner::new(&full_lib, machine.clone()).run_parallel(
                &case.program,
                &policy,
                threads,
            )?;
            let restricted = OnlineRunner::new(&restricted_lib, machine.clone()).run_parallel(
                &case.program,
                &policy,
                threads,
            )?;
            points += (full.processed() + restricted.processed()) as u64;
            acc += (restricted.mean() - full.mean()).abs() / full.mean();
        }
        let add_bias = acc / seeds as f64 * 100.0;
        eprintln!("  {:14} +{add_bias:.3}%", case.name());
        rows.push((case.name().to_owned(), add_bias));
    }
    manifest.phase("bias_sweep", t.secs());
    manifest.points_processed = Some(points);

    rows.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
    let top = rows.len().min(10);
    let mut table = Vec::new();
    for (name, b) in &rows[..top] {
        table.push(vec![name.clone(), format!("{b:.3}%")]);
    }
    if rows.len() > top {
        let rest = &rows[top..];
        let avg = rest.iter().map(|r| r.1).sum::<f64>() / rest.len() as f64;
        table.push(vec!["avg. rest".into(), format!("{avg:.3}%")]);
    }
    report.blank();
    report.table("", &["benchmark", "restricted live-state add'l CPI bias"], table);

    let avg = rows.iter().map(|r| r.1).sum::<f64>() / rows.len() as f64;
    let worst = rows.iter().map(|r| r.1).fold(0.0f64, f64::max);
    manifest.note("avg_addl_bias_pct", format!("{avg:.4}"));
    manifest.note("worst_addl_bias_pct", format!("{worst:.4}"));
    report.blank();
    report
        .line(format!("summary (paper: 0.1% avg / 3.3% worst): avg {avg:.3}%  worst {worst:.3}%"));

    report.finish(&args)?;
    args.finish_run(&mut manifest)
}
