//! **§6.1** — Random-order processing and online results: the running
//! estimate and its confidence interval are available while the
//! simulation runs, converging toward the final value; the run can stop
//! the moment the target confidence is met. Also demonstrates parallel
//! processing (window independence).

use spectral_core::{CreationConfig, LivePointLibrary, OnlineRunner, RunPolicy};
use spectral_experiments::{
    fmt_secs, load_cases, run_main, stamp_library, Args, ExpError, IoContext, Report, Timer,
};
use spectral_uarch::MachineConfig;
use spectral_warming::complete_detailed;

fn main() -> std::process::ExitCode {
    run_main("online", run)
}

fn run(mut args: Args) -> Result<(), ExpError> {
    if args.benchmarks.is_none() && args.limit.is_none() {
        args.benchmarks = Some(vec!["gcc-like".into()]);
    }
    let cases = load_cases(&args)?;
    let case = &cases[0];
    let machine = MachineConfig::eight_way();
    let library_cap = args.window_count(400);
    let recovery = args.recovery();
    let mut report = Report::new("online");
    let mut manifest = args.manifest("online", case.name());
    manifest.seed = Some(CreationConfig::for_machine(&machine).seed);
    args.stamp_recovery(&mut manifest);

    report.line("== Online results (paper SS6.1): random-order convergence ==");
    report.line(format!("benchmark={} library cap={}\n", case.name(), library_cap));

    let t = Timer::start();
    let library = match &args.library {
        Some(path) => {
            // Metadata-only peek first: the header tells us what we are
            // about to run without touching a single record.
            let header =
                LivePointLibrary::open_header(path).context("cannot read library header", path)?;
            report.line(format!(
                "library {}: v{} {} ({:?}), {} points in {} blocks",
                path.display(),
                header.format_version,
                header.benchmark,
                header.scope,
                header.points,
                header.blocks,
            ));
            let library = LivePointLibrary::open(path).context("cannot open library", path)?;
            if library.benchmark() != case.name() {
                return Err(ExpError::msg(format!(
                    "library {} was built for benchmark '{}', not '{}'",
                    path.display(),
                    library.benchmark(),
                    case.name()
                )));
            }
            manifest.phase("open_library", t.secs());
            library
        }
        None => {
            let cfg = CreationConfig::for_machine(&machine).with_sample_size(library_cap);
            let library =
                LivePointLibrary::create_parallel(&case.program, &cfg, args.thread_count())?;
            manifest.phase("create_library", t.secs());
            library
        }
    };
    if let Some(path) = &args.save_library {
        let t = Timer::start();
        args.write_library(&library, path)?;
        manifest.phase("save_library", t.secs());
        report.line(format!(
            "library saved to {} (format v{})",
            path.display(),
            args.lib_format.unwrap_or(2)
        ));
    }
    stamp_library(&mut manifest, &library);
    let runner = OnlineRunner::new(&library, machine.clone());

    // Exhaustive run with a fine trajectory: the convergence picture.
    // Keeping the real ±3% target (but not stopping at it) means the
    // sampling-health event stream records when the run *became*
    // eligible, so spectral-doctor can report wasted points past that.
    // This is the run that checkpoints / resumes: its processing order
    // is deterministic, so a resumed run replays the identical
    // estimator push sequence and lands on bit-identical estimates.
    let t = Timer::start();
    let target = args.target_rel_err(RunPolicy::default().target_rel_err);
    let policy = RunPolicy {
        target_rel_err: target,
        stop_at_target: false,
        trajectory_stride: 20,
        ..RunPolicy::default()
    };
    let threads = args.thread_count();
    let estimate = if threads > 1 && recovery.is_active() {
        runner.run_parallel_recoverable(
            &case.program,
            &args.sched_policy(policy),
            threads,
            &recovery,
        )?
    } else {
        runner.run_recoverable(&case.program, &policy, &recovery)?
    };
    manifest.phase("run_exhaustive", t.secs());
    let reference = complete_detailed(&machine, &case.program);

    let rows: Vec<Vec<String>> = estimate
        .trajectory()
        .iter()
        .map(|&(n, mean, hw)| {
            vec![
                n.to_string(),
                format!("{mean:.4}"),
                format!("±{hw:.4}"),
                format!("±{:.2}%", hw / mean * 100.0),
            ]
        })
        .collect();
    report.table("", &["live-points", "CPI estimate", "99.7% CI", "relative"], rows);
    report.blank();
    report.line(format!(
        "final estimate {:.4} ± {:.4}  |  complete-detailed reference {:.4}  (bias {:.2}%)",
        estimate.mean(),
        estimate.half_width(),
        reference.cpi(),
        (estimate.mean() - reference.cpi()).abs() / reference.cpi() * 100.0
    ));

    // Early termination at the target (the paper's ±3% by default).
    let t = Timer::start();
    let early =
        runner.run(&case.program, &RunPolicy { target_rel_err: target, ..RunPolicy::default() })?;
    manifest.phase("run_early_termination", t.secs());
    manifest.points_processed = Some(early.processed() as u64);
    manifest.set_estimate(early.mean(), early.half_width(), early.reached_target());
    report.blank();
    report.line(format!(
        "early termination at ±{:.0}% @ 99.7%: {} live-points in {} (reached: {})",
        target * 100.0,
        early.processed(),
        fmt_secs(t.secs()),
        early.reached_target()
    ));

    // Parallel farm: same estimate, more workers (wall-clock gains
    // require a multi-core host; correctness holds regardless).
    let mut farm = vec![1usize, 2, 4, 8];
    if let Some(t) = args.threads {
        if !farm.contains(&t) {
            farm.push(t);
        }
    }
    let t = Timer::start();
    for threads in farm {
        let t = Timer::start();
        let est = runner.run_parallel(
            &case.program,
            &args.sched_policy(RunPolicy {
                target_rel_err: 1e-12,
                trajectory_stride: 0,
                ..RunPolicy::default()
            }),
            threads,
        )?;
        report.line(format!(
            "parallel x{threads}: {} points, CPI {:.4}, {}",
            est.processed(),
            est.mean(),
            fmt_secs(t.secs())
        ));
    }
    manifest.phase("run_parallel_farm", t.secs());
    report.blank();
    report.line("shape: CI tightens as points accumulate; estimates are unbiased at any cut;");
    report.line("parallel runs return the same estimate faster (independence, SS6).");

    report.finish(&args)?;
    args.finish_run(&mut manifest)
}
