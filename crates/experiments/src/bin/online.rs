//! **§6.1** — Random-order processing and online results: the running
//! estimate and its confidence interval are available while the
//! simulation runs, converging toward the final value; the run can stop
//! the moment the target confidence is met. Also demonstrates parallel
//! processing (window independence).

use spectral_core::{CreationConfig, LivePointLibrary, OnlineRunner, RunPolicy};
use spectral_experiments::{fmt_secs, load_cases, print_table, Args, Timer};
use spectral_uarch::MachineConfig;
use spectral_warming::complete_detailed;

fn main() {
    let mut args = Args::parse();
    if args.benchmarks.is_none() && args.limit.is_none() {
        args.benchmarks = Some(vec!["gcc-like".into()]);
    }
    let cases = load_cases(&args);
    let case = &cases[0];
    let machine = MachineConfig::eight_way();
    let library_cap = args.window_count(400);

    println!("== Online results (paper SS6.1): random-order convergence ==");
    println!("benchmark={} library cap={}\n", case.name(), library_cap);

    let cfg = CreationConfig::for_machine(&machine).with_sample_size(library_cap);
    let library = LivePointLibrary::create_parallel(&case.program, &cfg, args.thread_count())
        .expect("library creation");
    let runner = OnlineRunner::new(&library, machine.clone());

    // Exhaustive run with a fine trajectory: the convergence picture.
    let policy = RunPolicy { target_rel_err: 1e-12, trajectory_stride: 20, ..RunPolicy::default() };
    let estimate = runner.run(&case.program, &policy).expect("run");
    let reference = complete_detailed(&machine, &case.program);

    let rows: Vec<Vec<String>> = estimate
        .trajectory()
        .iter()
        .map(|&(n, mean, hw)| {
            vec![
                n.to_string(),
                format!("{mean:.4}"),
                format!("±{hw:.4}"),
                format!("±{:.2}%", hw / mean * 100.0),
            ]
        })
        .collect();
    print_table(&["live-points", "CPI estimate", "99.7% CI", "relative"], &rows);
    println!();
    println!(
        "final estimate {:.4} ± {:.4}  |  complete-detailed reference {:.4}  (bias {:.2}%)",
        estimate.mean(),
        estimate.half_width(),
        reference.cpi(),
        (estimate.mean() - reference.cpi()).abs() / reference.cpi() * 100.0
    );

    // Early termination at the paper's target.
    let t = Timer::start();
    let early = runner.run(&case.program, &RunPolicy::default()).expect("run");
    println!();
    println!(
        "early termination at ±3% @ 99.7%: {} live-points in {} (reached: {})",
        early.processed(),
        fmt_secs(t.secs()),
        early.reached_target()
    );

    // Parallel farm: same estimate, more workers (wall-clock gains
    // require a multi-core host; correctness holds regardless).
    let mut farm = vec![1usize, 2, 4, 8];
    if let Some(t) = args.threads {
        if !farm.contains(&t) {
            farm.push(t);
        }
    }
    for threads in farm {
        let t = Timer::start();
        let est = runner
            .run_parallel(
                &case.program,
                &RunPolicy { target_rel_err: 1e-12, trajectory_stride: 0, ..RunPolicy::default() },
                threads,
            )
            .expect("parallel run");
        println!(
            "parallel x{threads}: {} points, CPI {:.4}, {}",
            est.processed(),
            est.mean(),
            fmt_secs(t.secs())
        );
    }
    println!();
    println!("shape: CI tightens as points accumulate; estimates are unbiased at any cut;");
    println!("parallel runs return the same estimate faster (independence, SS6).");
}
