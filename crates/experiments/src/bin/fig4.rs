//! **Figure 4** — Adaptive warming bias: additional CPI error introduced
//! by AW-MRRL (99.9% reuse coverage) relative to full warming, on the
//! 8-way baseline.
//!
//! Paper result: 1.1% average, 5.4% worst case (stitched); 1.9% / 11%
//! without stitched state. Shape target: adaptive warming is visibly
//! worse than full warming, with a heavy tail on phase-heavy benchmarks,
//! and the unstitched variant is worse still.

use spectral_experiments::{load_cases, par_map, run_main, Args, ExpError, Report, Timer};
use spectral_stats::{SampleDesign, SystematicDesign};
use spectral_uarch::MachineConfig;
use spectral_warming::{adaptive_run, mrrl_analyze, smarts_run};

/// MRRL reuse-coverage points: the paper's recommended 99.9% plus a
/// cheaper setting to expose the accuracy-vs-warming Pareto curve
/// ("increasing warming … will improve accuracy, but further reduces
/// the speed of adaptive warming", §4.2).
const REUSE_POINTS: [f64; 3] = [0.999, 0.95, 0.5];

fn main() -> std::process::ExitCode {
    run_main("fig4", run)
}

fn run(args: Args) -> Result<(), ExpError> {
    args.reject_recovery_flags("fig4")?;
    let machine = MachineConfig::eight_way();
    let design = SystematicDesign::paper_8way();
    let n_windows = args.window_count(150);
    let seeds = args.seed_count(3);
    let cases = load_cases(&args)?;
    let benchmarks: Vec<&str> = cases.iter().map(|c| c.name()).collect();
    let mut report = Report::new("fig4");
    let mut manifest = args.manifest("fig4", &benchmarks.join(","));

    report.line("== Figure 4: AW-MRRL additional CPI bias vs full warming (8-way) ==");
    report.line(format!(
        "benchmarks={} windows/sample={} samples={}\n",
        cases.len(),
        n_windows,
        seeds
    ));

    // Per-case bias runs are independent: fan out over benchmarks.
    struct CaseResult {
        name: String,
        st: f64,
        un: f64,
        ch: f64,
        hf: f64,
        warm: f64,
        warm_cheap: f64,
        warm_half: f64,
    }
    let t = Timer::start();
    let results = par_map(&cases, args.thread_count(), |case| {
        let mut st_acc = 0.0;
        let mut un_acc = 0.0;
        let mut cheap_acc = 0.0;
        let mut half_acc = 0.0;
        let mut warm = 0.0;
        let mut warm_cheap = 0.0;
        let mut warm_half = 0.0;
        for seed in 0..seeds {
            let windows = design.windows(case.len, n_windows, 1000 + seed);
            let full = smarts_run(&machine, &case.program, &windows);
            let analysis = mrrl_analyze(&case.program, &windows, 32, REUSE_POINTS[0]);
            let st = adaptive_run(&machine, &case.program, &windows, &analysis, true);
            let un = adaptive_run(&machine, &case.program, &windows, &analysis, false);
            st_acc += (st.sampled.cpi() - full.cpi()).abs() / full.cpi();
            un_acc += (un.sampled.cpi() - full.cpi()).abs() / full.cpi();
            warm += st.sampled.warming_insts as f64
                / (st.sampled.warming_insts + st.sampled.skipped_insts) as f64;
            let cheap = mrrl_analyze(&case.program, &windows, 32, REUSE_POINTS[1]);
            let stc = adaptive_run(&machine, &case.program, &windows, &cheap, true);
            cheap_acc += (stc.sampled.cpi() - full.cpi()).abs() / full.cpi();
            warm_cheap += stc.sampled.warming_insts as f64
                / (stc.sampled.warming_insts + stc.sampled.skipped_insts) as f64;
            let half = mrrl_analyze(&case.program, &windows, 32, REUSE_POINTS[2]);
            let sth = adaptive_run(&machine, &case.program, &windows, &half, true);
            half_acc += (sth.sampled.cpi() - full.cpi()).abs() / full.cpi();
            warm_half += sth.sampled.warming_insts as f64
                / (sth.sampled.warming_insts + sth.sampled.skipped_insts) as f64;
        }
        CaseResult {
            name: case.name().to_owned(),
            st: st_acc / seeds as f64 * 100.0,
            un: un_acc / seeds as f64 * 100.0,
            ch: cheap_acc / seeds as f64 * 100.0,
            hf: half_acc / seeds as f64 * 100.0,
            warm,
            warm_cheap,
            warm_half,
        }
    });
    manifest.phase("bias_sweep", t.secs());
    // Five sampled runs per (case, seed): full warming plus the four
    // adaptive variants, all over the same window set.
    manifest.points_processed = Some(cases.len() as u64 * seeds * n_windows * 5);

    let mut rows: Vec<(String, f64, f64)> = Vec::new(); // (name, stitched@99.9, unstitched@99.9)
    let mut cheap_rows: Vec<f64> = Vec::new(); // stitched @ 95%
    let mut half_rows: Vec<f64> = Vec::new(); // stitched @ 50%
    let mut warm_fraction = 0.0;
    let mut warm_fraction_cheap = 0.0;
    let mut warm_fraction_half = 0.0;
    for r in results {
        eprintln!(
            "  {:14} stitched {:.2}%  unstitched {:.2}%  @95% {:.2}%  @50% {:.2}%",
            r.name, r.st, r.un, r.ch, r.hf
        );
        rows.push((r.name, r.st, r.un));
        cheap_rows.push(r.ch);
        half_rows.push(r.hf);
        warm_fraction += r.warm;
        warm_fraction_cheap += r.warm_cheap;
        warm_fraction_half += r.warm_half;
    }
    let runs = (cases.len() as u64 * seeds) as f64;
    warm_fraction = warm_fraction / runs * 100.0;
    warm_fraction_cheap = warm_fraction_cheap / runs * 100.0;
    warm_fraction_half = warm_fraction_half / runs * 100.0;

    // Paper-style presentation: worst offenders first, then "avg. rest".
    rows.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
    let top = rows.len().min(10);
    let mut table = Vec::new();
    for (name, st, un) in &rows[..top] {
        table.push(vec![name.clone(), format!("{st:.2}%"), format!("{un:.2}%")]);
    }
    if rows.len() > top {
        let rest = &rows[top..];
        let avg = |f: &dyn Fn(&(String, f64, f64)) -> f64| {
            rest.iter().map(f).sum::<f64>() / rest.len() as f64
        };
        table.push(vec![
            "avg. rest".into(),
            format!("{:.2}%", avg(&|r| r.1)),
            format!("{:.2}%", avg(&|r| r.2)),
        ]);
    }
    report.blank();
    report.table("", &["benchmark", "AW-MRRL stitched (add'l bias)", "AW-MRRL unstitched"], table);

    let avg_st = rows.iter().map(|r| r.1).sum::<f64>() / rows.len() as f64;
    let worst_st = rows.iter().map(|r| r.1).fold(0.0f64, f64::max);
    let avg_un = rows.iter().map(|r| r.2).sum::<f64>() / rows.len() as f64;
    let worst_un = rows.iter().map(|r| r.2).fold(0.0f64, f64::max);
    let avg_ch = cheap_rows.iter().sum::<f64>() / cheap_rows.len() as f64;
    let worst_ch = cheap_rows.iter().fold(0.0f64, |a, &b| a.max(b));
    let avg_hf = half_rows.iter().sum::<f64>() / half_rows.len() as f64;
    let worst_hf = half_rows.iter().fold(0.0f64, |a, &b| a.max(b));
    manifest.note("stitched_avg_bias_pct", format!("{avg_st:.3}"));
    manifest.note("stitched_worst_bias_pct", format!("{worst_st:.3}"));
    report.blank();
    report.line(
        "summary (paper: stitched 1.1% avg / 5.4% worst at 20% warming; unstitched 1.9% / 11%):",
    );
    report.line(format!(
        "  stitched @99.9% : avg {avg_st:.2}%  worst {worst_st:.2}%  (warming {warm_fraction:.0}% of gaps)"
    ));
    report.line(format!(
        "  stitched @95%   : avg {avg_ch:.2}%  worst {worst_ch:.2}%  (warming {warm_fraction_cheap:.0}% of gaps)"
    ));
    report.line(format!(
        "  stitched @50%   : avg {avg_hf:.2}%  worst {worst_hf:.2}%  (warming {warm_fraction_half:.0}% of gaps)"
    ));
    report.line(format!("  unstitched      : avg {avg_un:.2}%  worst {worst_un:.2}%"));
    report.line("the accuracy-vs-warming Pareto: less warming -> more bias, as the paper argues.");

    report.finish(&args)?;
    args.finish_run(&mut manifest)
}
