//! **Figure 8** — Compressed checkpoint size and per-checkpoint
//! processing time as the stored maximum cache (and branch predictor)
//! grows: 1 MB L2 / 1K-entry predictor up to 16 MB L2 / 16K-entry
//! predictor.
//!
//! Paper shape: live-point size grows with the stored tag arrays and
//! crosses the (size-constant) AW-MRRL checkpoint around a 4 MB maximum
//! cache; live-point *processing* (decompress + load) stays an order of
//! magnitude faster than AW-MRRL's per-window functional warming at
//! every size.

use spectral_codec::{lzss, varint};
use spectral_core::{collect_live_state, CreationConfig, LivePointLibrary};
use spectral_experiments::{fmt_bytes, load_cases, run_main, Args, ExpError, Report, Timer};
use spectral_isa::Emulator;
use spectral_stats::{SampleDesign, SystematicDesign};
use spectral_uarch::{BpredConfig, MachineConfig};
use spectral_warming::{mrrl_analyze, FunctionalWarmer};

fn main() -> std::process::ExitCode {
    run_main("fig8", run)
}

fn run(args: Args) -> Result<(), ExpError> {
    args.reject_recovery_flags("fig8")?;
    let n_points = args.window_count(12);
    let threads = args.thread_count();
    // The sweep needs a footprint larger than the largest stored cache
    // (16 MB), as SPEC2K's ~105 MB footprints are in the paper; the
    // suite's benchmarks stay laptop-sized, so fig8 brings its own.
    let cases;
    let case = if args.benchmarks.is_some() || args.limit.is_some() {
        cases = load_cases(&args)?;
        &cases[0]
    } else {
        use spectral_workloads::{Benchmark, Kernel, Schedule};
        let big = Benchmark::new(
            "fig8-bigmem",
            "24 MB pointer chase + random access for the max-cache sweep",
            vec![
                Kernel::PointerChase { nodes: 1 << 21, hops: 1500 },
                Kernel::RandomAccess { words: 1 << 20, count: 900 },
            ],
            Schedule::Interleaved,
            3_000_000,
            41,
        );
        cases = vec![spectral_experiments::BenchCase::new(big)];
        &cases[0]
    };
    let design = SystematicDesign::paper_8way();
    let windows = design.windows(case.len, n_points, 88);
    let mut report = Report::new("fig8");
    let mut manifest = args.manifest("fig8", case.name());

    report.line("== Figure 8: checkpoint size & processing time vs max cache size ==");
    report.line(format!("benchmark={} points={}\n", case.name(), windows.len()));

    // --- AW-MRRL comparator (independent of max cache size) -----------
    let t = Timer::start();
    let analysis = mrrl_analyze(&case.program, &windows, 32, 0.999);
    let mean_warm = analysis.mean_warming();
    // Checkpoint: architectural registers + live-state of the warming
    // window, DER-style coded and compressed.
    let mut aw_bytes = 0u64;
    let sample = windows.len().min(4);
    let stride = (windows.len() / sample).max(1);
    for (w, &warm) in windows.iter().zip(&analysis.warming_lens).step_by(stride).take(sample) {
        let ls = collect_live_state(&case.program, w.detail_start.saturating_sub(warm), w.end());
        let mut payload = Vec::new();
        let mut prev = 0u64;
        for &(addr, value) in &ls.memory {
            varint::write_uvarint(&mut payload, (addr >> 3) - prev);
            prev = addr >> 3;
            payload.extend_from_slice(&value.to_le_bytes());
        }
        aw_bytes += lzss::compress(&payload).len() as u64 + 512;
    }
    aw_bytes /= sample as u64;
    // Processing: functional warming of the mean MRRL span, at the
    // measured warming rate.
    let rate = {
        let machine = MachineConfig::eight_way();
        let mut warmer = FunctionalWarmer::new(&machine);
        let mut emu = Emulator::new(&case.program);
        let t = Timer::start();
        let mut n = 0u64;
        while n < 1_000_000 {
            match emu.step() {
                Some(di) => {
                    warmer.observe(&di);
                    n += 1;
                }
                None => break,
            }
        }
        n as f64 / t.secs()
    };
    let aw_ms = mean_warm / rate * 1000.0;
    manifest.phase("aw_mrrl_comparator", t.secs());

    // --- live-point sweep ---------------------------------------------
    let t = Timer::start();
    let sweep: [(u64, u32, u32); 5] =
        [(1, 2048, 11), (2, 4096, 12), (4, 8192, 13), (8, 16384, 14), (16, 32768, 15)];
    let mut rows = Vec::new();
    for &(l2_mb, bp_entries, hist) in &sweep {
        let mut max_h = MachineConfig::eight_way().hierarchy;
        max_h.l2 = spectral_cache::CacheConfig::new(l2_mb << 20, 8, 128)
            .map_err(|e| ExpError::msg(format!("cache config: {e}")))?;
        let bp = BpredConfig {
            table_entries: bp_entries,
            history_bits: hist,
            btb_entries: 512,
            ras_entries: 8,
            mispredict_penalty: 7,
            predictions_per_cycle: 1,
        };
        let cfg = CreationConfig {
            max_hierarchy: max_h,
            bpred_configs: vec![bp],
            sample_size: n_points,
            ..CreationConfig::for_machine(&MachineConfig::eight_way())
        };
        let lib =
            LivePointLibrary::create_with_windows_parallel(&case.program, &cfg, &windows, threads)?;
        // Paged container with block-shared dictionaries: the v2
        // bytes/point at this stored maximum.
        let v2_path = std::env::temp_dir().join(format!(
            "spectral_fig8_{}_{}mb.splp",
            std::process::id(),
            l2_mb
        ));
        let summary = lib.save_v2(&v2_path, &args.v2_options())?;
        std::fs::remove_file(&v2_path).ok();
        let dict_bytes = summary.record_bytes / u64::from(summary.count.max(1));
        // Load (decompress + decode) time per point.
        let t = Timer::start();
        for i in 0..lib.len() {
            let _ = lib.get(i)?;
        }
        let lp_ms = t.secs() / lib.len() as f64 * 1000.0;
        rows.push(vec![
            format!("{l2_mb}MB L2 / {}K bpred", bp_entries / 1024),
            fmt_bytes(lib.mean_point_bytes()),
            fmt_bytes(dict_bytes),
            fmt_bytes(aw_bytes),
            format!("{lp_ms:.2} ms"),
            format!("{aw_ms:.2} ms"),
        ]);
    }
    manifest.phase("max_cache_sweep", t.secs());
    manifest.points_processed = Some(sweep.len() as u64 * windows.len() as u64);

    report.table(
        "",
        &[
            "max config",
            "live-point (compressed)",
            "v2+dict",
            "AW-MRRL ckpt",
            "LP load time",
            "AW warm time",
        ],
        rows,
    );
    report.blank();
    report.line(format!(
        "AW-MRRL mean warming span: {:.0} instructions ({:.1}% of the mean inter-window gap)",
        mean_warm,
        mean_warm / (case.len as f64 / windows.len() as f64) * 100.0
    ));
    report.line("shape: LP size grows with the stored max cache toward the flat AW-MRRL size");
    report.line("       (crossover position depends on the workload's warming spans);");
    report.line("       LP load stays 1-2 orders of magnitude below AW per-window warming.");

    report.finish(&args)?;
    args.finish_run(&mut manifest)
}
