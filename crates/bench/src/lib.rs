//! # spectral-bench — Criterion benchmarks for the paper's cost claims
//!
//! One bench target per quantitative claim (see DESIGN.md's experiment
//! index for the mapping to tables/figures):
//!
//! * `fig8_load` — live-point decompress+decode time as the stored
//!   maximum cache grows (Fig 8, right),
//! * `methods` — per-method unit costs: functional-warming rate,
//!   detailed-simulation rate, and per-live-point processing (the
//!   ingredients of Table 2's runtimes),
//! * `codec` — DER and LZSS throughput (the paper's "minimal storage and
//!   processing time overhead" claim for its encoding),
//! * `warmstate` — CSR vs MTR record/reconstruct costs (the DESIGN.md
//!   ablation for adaptable warm state),
//! * `pipeline` — out-of-order timing-model throughput per workload
//!   class,
//! * `scaling` — parallel-pipeline worker scaling (creation, sharded
//!   runs, decode-once sweeps at 1/2/4/8 workers, capped at the host's
//!   core count); also emits `BENCH_parallel.json` at the workspace
//!   root,
//! * `kernel` — per-point kernel layers bare (functional emulation,
//!   detailed pipeline, decode, single-thread end-to-end run); emits
//!   `BENCH_kernel.json`, which CI's perf-smoke job gates on,
//! * `sched` — static striding vs the dynamic chunk-claiming scheduler
//!   on a deliberately cost-skewed phased workload; emits
//!   `BENCH_sched.json` with a dynamic-vs-static speedup map CI's
//!   perf-smoke job gates on (skipped on degraded single-core hosts).
//!
//! This library crate only exposes shared fixtures for those targets.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use spectral_core::{CreationConfig, LivePointLibrary};
use spectral_isa::Program;
use spectral_uarch::MachineConfig;
use spectral_workloads::{by_name, tiny, Benchmark};

/// The benchmark used by cost benches (small enough to set up quickly,
/// busy enough to exercise every structure).
pub fn fixture_benchmark() -> Benchmark {
    tiny()
}

/// A memory-heavy suite benchmark for cache-sensitive benches.
pub fn memory_benchmark() -> Benchmark {
    by_name("mcf-like").expect("suite benchmark")
}

/// Build a small live-point library for `program` under the 8-way
/// machine.
///
/// # Panics
///
/// Panics if creation fails (fixture programs always host windows).
pub fn fixture_library(program: &Program, points: u64) -> LivePointLibrary {
    let cfg = CreationConfig::for_machine(&MachineConfig::eight_way()).with_sample_size(points);
    LivePointLibrary::create(program, &cfg).expect("fixture library")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_build() {
        let p = fixture_benchmark().build();
        let lib = fixture_library(&p, 8);
        assert!(lib.len() >= 4);
    }
}
