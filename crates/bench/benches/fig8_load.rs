//! Figure 8 (right): per-live-point processing time — decompress + DER
//! decode — as the stored maximum cache and predictor grow.
//!
//! Paper shape: processing time grows with stored state but remains an
//! order of magnitude below AW-MRRL's per-window functional warming at
//! every size (the warming comparator is measured in `methods.rs`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spectral_bench::memory_benchmark;
use spectral_core::{CreationConfig, LivePointLibrary};
use spectral_uarch::{BpredConfig, MachineConfig};

fn bench_load(c: &mut Criterion) {
    let program = memory_benchmark().build();
    let mut group = c.benchmark_group("fig8_livepoint_load");
    group.sample_size(20);

    for (l2_mb, bp_entries, hist) in [(1u64, 2048u32, 11u32), (4, 8192, 13), (16, 32768, 15)] {
        let mut max_h = MachineConfig::eight_way().hierarchy;
        max_h.l2 = spectral_cache::CacheConfig::new(l2_mb << 20, 8, 128).expect("valid");
        let cfg = CreationConfig {
            max_hierarchy: max_h,
            bpred_configs: vec![BpredConfig {
                table_entries: bp_entries,
                history_bits: hist,
                btb_entries: 512,
                ras_entries: 8,
                mispredict_penalty: 7,
                predictions_per_cycle: 1,
            }],
            sample_size: 4,
            ..CreationConfig::for_machine(&MachineConfig::eight_way())
        };
        let lib = LivePointLibrary::create(&program, &cfg).expect("library");
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{l2_mb}MB-L2")),
            &lib,
            |b, lib| {
                b.iter(|| lib.get(0).expect("decode"));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_load);
criterion_main!(benches);
