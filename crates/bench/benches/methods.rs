//! Table 2's ingredients: the unit costs of each simulation method.
//!
//! * functional warming (SMARTS's bottleneck) — cost per 10k committed
//!   instructions,
//! * plain architectural emulation (AW-MRRL's fast-forward) — same unit,
//! * detailed out-of-order simulation — cost per 1k committed
//!   instructions,
//! * one full live-point measurement (decode + reconstruct + detailed
//!   warming + measured window).
//!
//! Shape: emulate < warm ≪ detail per instruction; a live-point costs
//! milliseconds regardless of benchmark length.

use criterion::{criterion_group, criterion_main, Criterion};
use spectral_bench::{fixture_benchmark, fixture_library};
use spectral_core::simulate_live_point;
use spectral_isa::Emulator;
use spectral_uarch::{DetailedSim, MachineConfig};
use spectral_warming::FunctionalWarmer;

fn bench_methods(c: &mut Criterion) {
    let program = fixture_benchmark().build();
    let machine = MachineConfig::eight_way();
    let mut group = c.benchmark_group("table2_method_costs");
    group.sample_size(20);

    group.bench_function("emulate_10k_inst", |b| {
        b.iter(|| {
            let mut emu = Emulator::new(&program);
            emu.run_n(10_000, |_| {})
        });
    });

    group.bench_function("functional_warming_10k_inst", |b| {
        b.iter(|| {
            let mut warmer = FunctionalWarmer::new(&machine);
            let mut emu = Emulator::new(&program);
            emu.run_n(10_000, |di| warmer.observe(di))
        });
    });

    group.bench_function("detailed_sim_1k_inst", |b| {
        b.iter(|| {
            let mut sim = DetailedSim::new(&machine, &program, Emulator::new(&program));
            sim.run(1_000)
        });
    });

    let library = fixture_library(&program, 8);
    let lp = library.get(0).expect("decode");
    group.bench_function("one_livepoint_measurement", |b| {
        b.iter(|| simulate_live_point(&lp, &program, &machine).expect("simulate"));
    });
    group.bench_function("one_livepoint_decode_and_measure", |b| {
        b.iter(|| {
            let lp = library.get(0).expect("decode");
            simulate_live_point(&lp, &program, &machine).expect("simulate")
        });
    });
    group.finish();
}

criterion_group!(benches, bench_methods);
criterion_main!(benches);
