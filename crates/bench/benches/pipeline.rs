//! Timing-model throughput per workload class, plus branch-predictor
//! unit costs. These bound every experiment's wall-clock and provide the
//! per-instruction detailed-simulation rate behind Table 2.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spectral_isa::{Emulator, ProgramBuilder, Reg};
use spectral_uarch::{BpredConfig, BranchPredictor, DetailedSim, MachineConfig};
use spectral_workloads::{Kernel, Predictability};

fn kernel_program(k: Kernel, reps: i64) -> spectral_isa::Program {
    let mut b = ProgramBuilder::new("bench");
    let main = b.new_label();
    b.jump(main);
    let fn_f = spectral_workloads::emit_call_targets(&mut b);
    b.bind(main);
    let base = b.alloc_data(k.data_words().max(1));
    if let Kernel::PointerChase { nodes, .. } = k {
        for i in 0..nodes {
            b.init_word(base + i * 8, base + ((i + 1) % nodes) * 8);
        }
        b.li(Reg::R28, base as i64);
    }
    b.li(Reg::R29, 0x1234_5679);
    b.li(Reg::R10, 0);
    b.li(Reg::R11, reps);
    let top = b.label();
    k.emit(&mut b, spectral_workloads::EmitCtx { base, fn_f });
    b.addi(Reg::R10, Reg::R10, 1);
    b.blt(Reg::R10, Reg::R11, top);
    b.halt();
    b.build()
}

fn bench_pipeline(c: &mut Criterion) {
    let machine = MachineConfig::eight_way();
    let kernels: Vec<(&str, Kernel)> = vec![
        ("alu_loop", Kernel::StreamSum { words: 256 }),
        ("branchy", Kernel::Branchy { count: 200, predictability: Predictability::Random }),
        ("pointer_chase", Kernel::PointerChase { nodes: 1 << 12, hops: 200 }),
        ("fp_stencil", Kernel::Stencil { words: 256 }),
    ];
    let mut group = c.benchmark_group("pipeline_5k_inst");
    group.sample_size(15);
    for (name, k) in kernels {
        let program = kernel_program(k, 1000);
        group.bench_with_input(BenchmarkId::from_parameter(name), &program, |b, p| {
            b.iter(|| {
                let mut sim = DetailedSim::new(&machine, p, Emulator::new(p));
                sim.run(5_000)
            });
        });
    }
    group.finish();

    let mut g2 = c.benchmark_group("bpred");
    g2.sample_size(30);
    let mut bp = BranchPredictor::new(BpredConfig::paper_2k());
    let info = spectral_isa::BranchInfo {
        taken: true,
        target: 0x40_0100,
        conditional: true,
        indirect: false,
        is_call: false,
        is_return: false,
    };
    g2.bench_function("predict_1k", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for i in 0..1000u64 {
                acc += bp.predict_direction(0x40_0000 + i * 4) as u32;
            }
            acc
        });
    });
    g2.bench_function("update_1k", |b| {
        b.iter(|| {
            for i in 0..1000u64 {
                bp.update(0x40_0000 + i * 4, 0x40_0004 + i * 4, &info);
            }
        });
    });
    g2.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
