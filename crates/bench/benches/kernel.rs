//! Per-point kernel benchmark: the hot loops the per-point overhaul
//! targets, measured bare.
//!
//! * `emu` — functional emulator instructions/s over the pre-decoded
//!   stream (the live-state collection and functional-warming floor),
//! * `pipeline` — detailed out-of-order model instructions/s with the
//!   index-based RUU wakeup (the per-window simulation floor),
//! * `decode` — live-points decoded per second through reused scratch
//!   buffers (`decompress_into` + DER decode, the paper's "checkpoint
//!   processing" cost),
//! * `run` — single-thread end-to-end online run, points/s. This is the
//!   headline number the overhaul is gated on: CI compares it against
//!   the committed `BENCH_kernel.json` baseline and fails on >20%
//!   regression.
//!
//! Besides the console report the target writes `BENCH_kernel.json` at
//! the workspace root. Set `SPECTRAL_BENCH_QUICK=1` for the CI smoke
//! mode (fewer samples, same measurements).

use std::fmt::Write as _;

use criterion::{Criterion, Throughput};
use spectral_bench::{fixture_benchmark, fixture_library};
use spectral_core::{DecodeScratch, OnlineRunner, RunPolicy};
use spectral_isa::Emulator;
use spectral_uarch::{DetailedSim, MachineConfig};

const POINTS: u64 = 24;
const EMU_INSTRS: u64 = 200_000;
const PIPE_INSTRS: u64 = 20_000;

fn quick() -> bool {
    std::env::var_os("SPECTRAL_BENCH_QUICK").is_some_and(|v| v != "0" && !v.is_empty())
}

fn samples(full: usize) -> usize {
    if quick() {
        5
    } else {
        full
    }
}

fn bench_kernel(c: &mut Criterion) {
    let program = fixture_benchmark().build();
    let machine = MachineConfig::eight_way();
    let library = fixture_library(&program, POINTS);
    let points = library.len() as u64;

    // Bare functional emulation over the pre-decoded instruction stream.
    let mut group = c.benchmark_group("emu");
    group.sample_size(samples(10)).throughput(Throughput::Elements(EMU_INSTRS));
    group.bench_function("instrs", |b| {
        b.iter(|| {
            let mut emu = Emulator::new(&program);
            emu.run_n(EMU_INSTRS, |_| {})
        });
    });
    group.finish();

    // Bare detailed pipeline with the index-based RUU wakeup.
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(samples(10)).throughput(Throughput::Elements(PIPE_INSTRS));
    group.bench_function("instrs", |b| {
        b.iter(|| {
            let mut sim = DetailedSim::new(&machine, &program, Emulator::new(&program));
            sim.run(PIPE_INSTRS)
        });
    });
    group.finish();

    // Decompress + DER decode through reused scratch buffers.
    let mut group = c.benchmark_group("decode");
    group.sample_size(samples(10)).throughput(Throughput::Elements(points));
    group.bench_function("points", |b| {
        let mut scratch = DecodeScratch::new();
        b.iter(|| {
            let mut committed = 0u64;
            for i in 0..library.len() {
                committed += library.get_with(&mut scratch, i).expect("decode").window.measure_len;
            }
            committed
        });
    });
    group.finish();

    // End-to-end single-thread online run: the gated number.
    let mut group = c.benchmark_group("run");
    group.sample_size(samples(10)).throughput(Throughput::Elements(points));
    let runner = OnlineRunner::new(&library, machine.clone());
    let exhaustive =
        RunPolicy { target_rel_err: 1e-12, trajectory_stride: 0, ..RunPolicy::default() };
    group.bench_function("1", |b| {
        b.iter(|| runner.run(&program, &exhaustive).expect("run"));
    });
    group.finish();
}

/// Render the collected results as JSON: each benchmark's median
/// per-second rate in its declared unit (instructions or points), plus
/// the single-thread run rate hoisted to a top-level key for the CI
/// gate. The gated key uses the **best-observed** rate (fastest
/// sample): interference on a shared runner only ever slows a sample,
/// so the minimum time is the noise-robust regression signal.
fn emit_json(c: &Criterion) -> String {
    let host = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let mut run_rate = 0.0f64;
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"host_parallelism\": {host},");
    let _ = writeln!(json, "  \"quick\": {},", quick());
    let _ = writeln!(json, "  \"points\": {POINTS},");
    json.push_str("  \"throughput_per_s\": {\n");
    let mut first = true;
    for r in c.results() {
        let unit = match r.throughput {
            Some(Throughput::Elements(n)) | Some(Throughput::Bytes(n)) => n as f64,
            None => 1.0,
        };
        if r.id == "run/1" {
            run_rate = unit / r.min_s;
        }
        if !first {
            json.push_str(",\n");
        }
        first = false;
        let _ = write!(json, "    \"{}\": {:.1}", r.id, unit / r.median_s);
    }
    json.push_str("\n  },\n");
    let _ = writeln!(json, "  \"run_points_per_s\": {run_rate:.1}");
    json.push_str("}\n");
    json
}

fn main() {
    let mut criterion = Criterion::default();
    bench_kernel(&mut criterion);
    let json = emit_json(&criterion);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernel.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => eprintln!("\ncould not write {path}: {e}"),
    }
}
