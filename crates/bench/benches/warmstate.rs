//! CSR vs MTR ablation (DESIGN.md decision #2): recording cost,
//! reconstruction cost, and the storage shapes behind the paper's §4.3
//! choice of bounded Cache Set Records inside live-points.

use criterion::{criterion_group, criterion_main, Criterion};
use spectral_cache::{Cache, CacheConfig, Csr, Mtr};

fn stream(n: u64) -> Vec<(u64, bool)> {
    (0..n)
        .map(|i| {
            let a = i.wrapping_mul(0x9E37_79B9_7F4A_7C15) % (1 << 24);
            (a, i % 5 == 0)
        })
        .collect()
}

fn bench_warmstate(c: &mut Criterion) {
    let max = CacheConfig::new(1 << 20, 4, 128).expect("valid"); // 1MB L2
    let target = CacheConfig::new(1 << 18, 2, 128).expect("valid"); // 256KB
    let accesses = stream(50_000);

    let mut group = c.benchmark_group("csr_vs_mtr");
    group.sample_size(15);

    group.bench_function("csr_record_50k", |b| {
        b.iter(|| {
            let mut csr = Csr::new(max);
            for &(a, w) in &accesses {
                csr.record(a, w);
            }
            csr
        });
    });
    group.bench_function("mtr_record_50k", |b| {
        b.iter(|| {
            let mut mtr = Mtr::new(128).expect("valid");
            for &(a, w) in &accesses {
                mtr.record(a, w);
            }
            mtr
        });
    });
    group.bench_function("plain_cache_50k", |b| {
        b.iter(|| {
            let mut cache = Cache::new(max);
            for &(a, w) in &accesses {
                cache.access(a, w);
            }
            cache
        });
    });

    let mut csr = Csr::new(max);
    let mut mtr = Mtr::new(128).expect("valid");
    for &(a, w) in &accesses {
        csr.record(a, w);
        mtr.record(a, w);
    }
    group.bench_function("csr_reconstruct_smaller", |b| {
        b.iter(|| csr.reconstruct(&target).expect("covered"));
    });
    group.bench_function("mtr_reconstruct_smaller", |b| {
        b.iter(|| mtr.reconstruct(&target).expect("covered"));
    });
    group.finish();
}

criterion_group!(benches, bench_warmstate);
criterion_main!(benches);
