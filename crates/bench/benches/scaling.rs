//! Worker-scaling benchmark for the parallel live-point pipeline:
//! library creation, sharded online runs, and decode-once design-space
//! sweeps at 1/2/4/8 workers. Worker counts exceeding the host's actual
//! core count are skipped (with a logged note and a JSON record) —
//! oversubscribed numbers measure scheduler interleaving, not scaling.
//!
//! Besides the usual console report, this target writes
//! `BENCH_parallel.json` at the workspace root with the measured
//! throughput (live-points per second) at each worker count, plus the
//! host parallelism the numbers were collected under — wall-clock
//! speedup over the 1-worker row requires a host that actually exposes
//! multiple cores. It also writes `BENCH_telemetry.json`: the same
//! throughput table wrapped with the full telemetry metrics snapshot
//! accumulated over the benchmark runs (decode vs simulate time,
//! compression ratios, merge lock waits, …) — empty when built with
//! telemetry disabled, which is itself the no-overhead check. The
//! telemetry document also carries a `"profiler"` section: a paired
//! profiled/unprofiled measurement of the worker-timeline profiler's
//! wall-clock cost on the 2-worker online stage, plus the phase
//! attribution parsed back out of the stream it produced. Set
//! `SPECTRAL_BENCH_QUICK=1` for the CI smoke run.

use std::fmt::Write as _;

use criterion::{BenchmarkId, Criterion, Throughput};
use spectral_bench::fixture_benchmark;
use spectral_core::{CreationConfig, LivePointLibrary, OnlineRunner, RunPolicy, SweepRunner};
use spectral_telemetry::JsonValue;
use spectral_uarch::MachineConfig;

const WORKERS: [usize; 4] = [1, 2, 4, 8];
const POINTS: u64 = 24;

fn quick() -> bool {
    std::env::var_os("SPECTRAL_BENCH_QUICK").is_some_and(|v| v != "0" && !v.is_empty())
}

/// Worker counts the host can actually run concurrently. Benchmarking
/// more workers than cores only measures scheduler interleaving, so
/// oversubscribed counts are skipped with a note rather than reported
/// as if they were real scaling data.
fn honest_workers() -> Vec<usize> {
    let host = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let (run, skipped): (Vec<usize>, Vec<usize>) = WORKERS.iter().partition(|&&w| w <= host);
    if !skipped.is_empty() {
        eprintln!(
            "warning: host exposes only {host} core(s); skipping oversubscribed worker counts \
             {skipped:?} — scaling numbers from this host are DEGRADED (the JSON output carries \
             \"degraded\": true)"
        );
    }
    run
}

fn bench_scaling(c: &mut Criterion) {
    let workers = honest_workers();
    let program = fixture_benchmark().build();
    let machine = MachineConfig::eight_way();
    let cfg = CreationConfig::for_machine(&machine).with_sample_size(POINTS);
    let library = LivePointLibrary::create(&program, &cfg).expect("fixture library");
    let points = library.len() as u64;
    let exhaustive =
        RunPolicy { target_rel_err: 1e-12, trajectory_stride: 0, ..RunPolicy::default() };

    let mut group = c.benchmark_group("create");
    group.sample_size(10).throughput(Throughput::Elements(points));
    for &threads in &workers {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            b.iter(|| LivePointLibrary::create_parallel(&program, &cfg, t).expect("create"));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("run");
    group.sample_size(10).throughput(Throughput::Elements(points));
    let runner = OnlineRunner::new(&library, machine.clone());
    for &threads in &workers {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            b.iter(|| runner.run_parallel(&program, &exhaustive, t).expect("run"));
        });
    }
    group.finish();

    let machines = vec![
        machine.clone(),
        machine.clone().with_mem_latency(200),
        machine.clone().with_queues(64, 32),
    ];
    let sweep = SweepRunner::new(&library, machines);
    let mut group = c.benchmark_group("sweep3");
    group.sample_size(10).throughput(Throughput::Elements(points));
    for &threads in &workers {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            b.iter(|| sweep.run_parallel(&program, &exhaustive, t).expect("sweep"));
        });
    }
    group.finish();
}

/// Render the collected results as a small JSON document: per-stage
/// points-per-second at each worker count.
fn emit_json(c: &Criterion) -> String {
    let host = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let skipped: Vec<usize> = WORKERS.iter().copied().filter(|&w| w > host).collect();
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"host_parallelism\": {host},");
    // A host too narrow for the full worker ladder produces scaling
    // numbers that are not comparable with a full run; flag them so
    // downstream dashboards can segregate (or drop) the record.
    let _ = writeln!(json, "  \"degraded\": {},", !skipped.is_empty());
    let _ = writeln!(
        json,
        "  \"workers_skipped_oversubscribed\": [{}],",
        skipped.iter().map(|w| w.to_string()).collect::<Vec<_>>().join(", ")
    );
    let _ = writeln!(json, "  \"points\": {POINTS},");
    json.push_str("  \"throughput_points_per_s\": {\n");
    let mut first = true;
    for r in c.results() {
        let rate = match r.throughput {
            Some(Throughput::Elements(n)) => n as f64 / r.median_s,
            Some(Throughput::Bytes(n)) => n as f64 / r.median_s,
            None => 1.0 / r.median_s,
        };
        if !first {
            json.push_str(",\n");
        }
        first = false;
        let _ = write!(json, "    \"{}\": {rate:.1}", r.id);
    }
    json.push_str("\n  }\n}\n");
    json
}

/// Middle element of the sorted sample — robust against the odd slow
/// outlier the way a mean is not.
fn median_secs(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(f64::total_cmp);
    xs[xs.len() / 2]
}

/// Paired profiled/unprofiled measurement of the worker-timeline
/// profiler: time the same 2-worker online run with and without a
/// profile sink installed, then parse the stream the profiled runs
/// produced for interval counts and phase attribution. Installing a
/// sink is one-way for the process lifetime, so this must run *after*
/// the criterion groups — the scaling numbers above are never
/// profiled.
fn profiler_overhead_json() -> String {
    if !spectral_telemetry::compiled_in() {
        return String::from("{ \"enabled\": false }");
    }
    let host = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let threads = 2.min(host);
    let reps = if quick() { 3 } else { 7 };
    let program = fixture_benchmark().build();
    let machine = MachineConfig::eight_way();
    let cfg = CreationConfig::for_machine(&machine).with_sample_size(POINTS);
    let library = LivePointLibrary::create(&program, &cfg).expect("fixture library");
    let exhaustive =
        RunPolicy { target_rel_err: 1e-12, trajectory_stride: 0, ..RunPolicy::default() };
    let runner = OnlineRunner::new(&library, machine);
    let time_reps = || {
        let mut secs = Vec::with_capacity(reps);
        for _ in 0..reps {
            let t0 = std::time::Instant::now();
            runner.run_parallel(&program, &exhaustive, threads).expect("run");
            secs.push(t0.elapsed().as_secs_f64());
        }
        median_secs(secs)
    };
    // Warm-up run so first-touch effects (page faults, decode cache
    // fill) don't land inside the unprofiled arm only.
    runner.run_parallel(&program, &exhaustive, threads).expect("run");
    let unprofiled_s = time_reps();
    let profile_path =
        std::env::temp_dir().join(format!("spectral_scaling_profile_{}.jsonl", std::process::id()));
    if let Err(e) = spectral_telemetry::set_profile_path(&profile_path) {
        eprintln!("could not install profile sink at {}: {e}", profile_path.display());
        return String::from("{ \"enabled\": false }");
    }
    let profiled_s = time_reps();
    spectral_telemetry::flush_profile();
    let text = std::fs::read_to_string(&profile_path).unwrap_or_default();
    let _ = std::fs::remove_file(&profile_path);

    // Attribution from the stream the profiled arm just produced: total
    // intervals recorded and per-phase share of recorded busy time.
    let mut intervals = 0u64;
    let mut phase_ns: std::collections::BTreeMap<String, u64> = std::collections::BTreeMap::new();
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        let Ok(doc) = JsonValue::parse(line) else { continue };
        if doc.get("type").and_then(JsonValue::as_str) != Some("profile_worker") {
            continue;
        }
        intervals += doc.get("recorded").and_then(JsonValue::as_u64).unwrap_or(0);
        let Some(phases) = doc.get("phases").and_then(JsonValue::as_obj) else { continue };
        for (phase, totals) in phases {
            let ns = totals.get("ns").and_then(JsonValue::as_u64).unwrap_or(0);
            *phase_ns.entry(phase.clone()).or_insert(0) += ns;
        }
    }
    let busy_ns: u64 = phase_ns.values().sum();
    let overhead_pct =
        if unprofiled_s > 0.0 { (profiled_s - unprofiled_s) / unprofiled_s * 100.0 } else { 0.0 };

    let mut json = String::from("{\n");
    let _ = writeln!(json, "    \"enabled\": true,");
    let _ = writeln!(json, "    \"threads\": {threads},");
    let _ = writeln!(json, "    \"reps\": {reps},");
    let _ = writeln!(json, "    \"unprofiled_s\": {unprofiled_s:.6},");
    let _ = writeln!(json, "    \"profiled_s\": {profiled_s:.6},");
    let _ = writeln!(json, "    \"overhead_pct\": {overhead_pct:.2},");
    let _ = writeln!(json, "    \"intervals_recorded\": {intervals},");
    json.push_str("    \"attribution_pct\": { ");
    let mut first = true;
    for (phase, ns) in &phase_ns {
        if !first {
            json.push_str(", ");
        }
        first = false;
        let pct = if busy_ns > 0 { *ns as f64 / busy_ns as f64 * 100.0 } else { 0.0 };
        let _ = write!(json, "\"{phase}\": {pct:.1}");
    }
    json.push_str(" }\n  }");
    json
}

/// Wrap the throughput table with the telemetry snapshot accumulated
/// over the runs — where the benchmarked wall-clock actually went —
/// plus the paired profiler-overhead measurement.
fn emit_telemetry_json(throughput: &str, profiler: &str) -> String {
    let snap = spectral_telemetry::snapshot();
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"telemetry_compiled_in\": {},", spectral_telemetry::compiled_in());
    let _ = writeln!(json, "  \"throughput\": {},", throughput.trim_end());
    let _ = writeln!(json, "  \"profiler\": {},", profiler.trim_end());
    let _ = writeln!(json, "  \"metrics\": {}", snap.to_json());
    json.push_str("}\n");
    json
}

/// Append one `kind: "bench"` record per measured (stage, workers) cell
/// to the cross-run registry when `SPECTRAL_REGISTRY` names one, so the
/// scaling trajectory is queryable with `spectral-doctor trend`
/// alongside the experiment runs.
fn append_registry_records(c: &Criterion) {
    let registry = match spectral_registry::Registry::from_env() {
        Ok(Some(r)) => r,
        Ok(None) => return,
        Err(e) => {
            eprintln!("could not open SPECTRAL_REGISTRY registry: {e}");
            return;
        }
    };
    let host = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    for r in c.results() {
        let rate = match r.throughput {
            Some(Throughput::Elements(n)) => n as f64 / r.median_s,
            Some(Throughput::Bytes(n)) => n as f64 / r.median_s,
            None => 1.0 / r.median_s,
        };
        // Ids are "<stage>/<workers>"; the stage becomes the benchmark
        // label so each (stage, workers) cell forms its own trend
        // series.
        let (stage, workers) = match r.id.split_once('/') {
            Some((s, w)) => (s.to_owned(), w.parse().unwrap_or(0)),
            None => (r.id.clone(), 0),
        };
        let mut record =
            spectral_registry::RunRecord::new("bench", "scaling", stage, "8-wide", workers);
        record.run_id =
            spectral_telemetry::derive_run_id(&r.id, spectral_telemetry::next_run_seq());
        record.points_processed = Some(POINTS);
        record.run_secs = Some(r.median_s);
        record.run_rate = Some(rate);
        record.notes.push(("host_parallelism".to_owned(), host.to_string()));
        if let Err(e) = registry.append(&record) {
            eprintln!("could not append bench record to registry: {e}");
            return;
        }
    }
    println!("appended {} bench records to {}", c.results().len(), registry.dir().display());
}

fn main() {
    let mut criterion = Criterion::default();
    bench_scaling(&mut criterion);
    append_registry_records(&criterion);
    let json = emit_json(&criterion);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_parallel.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => eprintln!("\ncould not write {path}: {e}"),
    }
    let profiler = profiler_overhead_json();
    let tlm = emit_telemetry_json(&json, &profiler);
    let tlm_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_telemetry.json");
    match std::fs::write(tlm_path, &tlm) {
        Ok(()) => println!("wrote {tlm_path}"),
        Err(e) => eprintln!("could not write {tlm_path}: {e}"),
    }
}
