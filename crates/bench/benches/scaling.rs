//! Worker-scaling benchmark for the parallel live-point pipeline:
//! library creation, sharded online runs, and decode-once design-space
//! sweeps at 1/2/4/8 workers. Worker counts exceeding the host's actual
//! core count are skipped (with a logged note and a JSON record) —
//! oversubscribed numbers measure scheduler interleaving, not scaling.
//!
//! Besides the usual console report, this target writes
//! `BENCH_parallel.json` at the workspace root with the measured
//! throughput (live-points per second) at each worker count, plus the
//! host parallelism the numbers were collected under — wall-clock
//! speedup over the 1-worker row requires a host that actually exposes
//! multiple cores. It also writes `BENCH_telemetry.json`: the same
//! throughput table wrapped with the full telemetry metrics snapshot
//! accumulated over the benchmark runs (decode vs simulate time,
//! compression ratios, merge lock waits, …) — empty when built with
//! telemetry disabled, which is itself the no-overhead check.

use std::fmt::Write as _;

use criterion::{BenchmarkId, Criterion, Throughput};
use spectral_bench::fixture_benchmark;
use spectral_core::{CreationConfig, LivePointLibrary, OnlineRunner, RunPolicy, SweepRunner};
use spectral_uarch::MachineConfig;

const WORKERS: [usize; 4] = [1, 2, 4, 8];
const POINTS: u64 = 24;

/// Worker counts the host can actually run concurrently. Benchmarking
/// more workers than cores only measures scheduler interleaving, so
/// oversubscribed counts are skipped with a note rather than reported
/// as if they were real scaling data.
fn honest_workers() -> Vec<usize> {
    let host = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let (run, skipped): (Vec<usize>, Vec<usize>) = WORKERS.iter().partition(|&&w| w <= host);
    if !skipped.is_empty() {
        eprintln!(
            "warning: host exposes only {host} core(s); skipping oversubscribed worker counts \
             {skipped:?} — scaling numbers from this host are DEGRADED (the JSON output carries \
             \"degraded\": true)"
        );
    }
    run
}

fn bench_scaling(c: &mut Criterion) {
    let workers = honest_workers();
    let program = fixture_benchmark().build();
    let machine = MachineConfig::eight_way();
    let cfg = CreationConfig::for_machine(&machine).with_sample_size(POINTS);
    let library = LivePointLibrary::create(&program, &cfg).expect("fixture library");
    let points = library.len() as u64;
    let exhaustive =
        RunPolicy { target_rel_err: 1e-12, trajectory_stride: 0, ..RunPolicy::default() };

    let mut group = c.benchmark_group("create");
    group.sample_size(10).throughput(Throughput::Elements(points));
    for &threads in &workers {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            b.iter(|| LivePointLibrary::create_parallel(&program, &cfg, t).expect("create"));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("run");
    group.sample_size(10).throughput(Throughput::Elements(points));
    let runner = OnlineRunner::new(&library, machine.clone());
    for &threads in &workers {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            b.iter(|| runner.run_parallel(&program, &exhaustive, t).expect("run"));
        });
    }
    group.finish();

    let machines = vec![
        machine.clone(),
        machine.clone().with_mem_latency(200),
        machine.clone().with_queues(64, 32),
    ];
    let sweep = SweepRunner::new(&library, machines);
    let mut group = c.benchmark_group("sweep3");
    group.sample_size(10).throughput(Throughput::Elements(points));
    for &threads in &workers {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            b.iter(|| sweep.run_parallel(&program, &exhaustive, t).expect("sweep"));
        });
    }
    group.finish();
}

/// Render the collected results as a small JSON document: per-stage
/// points-per-second at each worker count.
fn emit_json(c: &Criterion) -> String {
    let host = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let skipped: Vec<usize> = WORKERS.iter().copied().filter(|&w| w > host).collect();
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"host_parallelism\": {host},");
    // A host too narrow for the full worker ladder produces scaling
    // numbers that are not comparable with a full run; flag them so
    // downstream dashboards can segregate (or drop) the record.
    let _ = writeln!(json, "  \"degraded\": {},", !skipped.is_empty());
    let _ = writeln!(
        json,
        "  \"workers_skipped_oversubscribed\": [{}],",
        skipped.iter().map(|w| w.to_string()).collect::<Vec<_>>().join(", ")
    );
    let _ = writeln!(json, "  \"points\": {POINTS},");
    json.push_str("  \"throughput_points_per_s\": {\n");
    let mut first = true;
    for r in c.results() {
        let rate = match r.throughput {
            Some(Throughput::Elements(n)) => n as f64 / r.median_s,
            Some(Throughput::Bytes(n)) => n as f64 / r.median_s,
            None => 1.0 / r.median_s,
        };
        if !first {
            json.push_str(",\n");
        }
        first = false;
        let _ = write!(json, "    \"{}\": {rate:.1}", r.id);
    }
    json.push_str("\n  }\n}\n");
    json
}

/// Wrap the throughput table with the telemetry snapshot accumulated
/// over the runs: where the benchmarked wall-clock actually went.
fn emit_telemetry_json(throughput: &str) -> String {
    let snap = spectral_telemetry::snapshot();
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"telemetry_compiled_in\": {},", spectral_telemetry::compiled_in());
    let _ = writeln!(json, "  \"throughput\": {},", throughput.trim_end());
    let _ = writeln!(json, "  \"metrics\": {}", snap.to_json());
    json.push_str("}\n");
    json
}

/// Append one `kind: "bench"` record per measured (stage, workers) cell
/// to the cross-run registry when `SPECTRAL_REGISTRY` names one, so the
/// scaling trajectory is queryable with `spectral-doctor trend`
/// alongside the experiment runs.
fn append_registry_records(c: &Criterion) {
    let registry = match spectral_registry::Registry::from_env() {
        Ok(Some(r)) => r,
        Ok(None) => return,
        Err(e) => {
            eprintln!("could not open SPECTRAL_REGISTRY registry: {e}");
            return;
        }
    };
    let host = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    for r in c.results() {
        let rate = match r.throughput {
            Some(Throughput::Elements(n)) => n as f64 / r.median_s,
            Some(Throughput::Bytes(n)) => n as f64 / r.median_s,
            None => 1.0 / r.median_s,
        };
        // Ids are "<stage>/<workers>"; the stage becomes the benchmark
        // label so each (stage, workers) cell forms its own trend
        // series.
        let (stage, workers) = match r.id.split_once('/') {
            Some((s, w)) => (s.to_owned(), w.parse().unwrap_or(0)),
            None => (r.id.clone(), 0),
        };
        let mut record =
            spectral_registry::RunRecord::new("bench", "scaling", stage, "8-wide", workers);
        record.run_id =
            spectral_telemetry::derive_run_id(&r.id, spectral_telemetry::next_run_seq());
        record.points_processed = Some(POINTS);
        record.run_secs = Some(r.median_s);
        record.run_rate = Some(rate);
        record.notes.push(("host_parallelism".to_owned(), host.to_string()));
        if let Err(e) = registry.append(&record) {
            eprintln!("could not append bench record to registry: {e}");
            return;
        }
    }
    println!("appended {} bench records to {}", c.results().len(), registry.dir().display());
}

fn main() {
    let mut criterion = Criterion::default();
    bench_scaling(&mut criterion);
    append_registry_records(&criterion);
    let json = emit_json(&criterion);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_parallel.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => eprintln!("\ncould not write {path}: {e}"),
    }
    let tlm = emit_telemetry_json(&json);
    let tlm_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_telemetry.json");
    match std::fs::write(tlm_path, &tlm) {
        Ok(()) => println!("wrote {tlm_path}"),
        Err(e) => eprintln!("could not write {tlm_path}: {e}"),
    }
}
