//! Scheduler benchmark: static striding vs the dynamic chunk-claiming
//! scheduler on a deliberately cost-skewed workload.
//!
//! The fixture is a phased benchmark whose first half streams cheaply
//! and whose second half pointer-chases — live-points drawn from the
//! two phases differ sharply in simulation cost, which is exactly the
//! skew static index striding cannot rebalance. Both scheduling modes
//! run the identical exhaustive online estimate (the differential suite
//! pins them bit-identical), so every wall-clock difference here is
//! scheduling, not work.
//!
//! Writes `BENCH_sched.json` at the workspace root: per-mode throughput
//! at each honest worker count plus the dynamic-vs-static speedup map
//! the CI perf-smoke gate consumes. Worker counts beyond the host's
//! cores are skipped and the record is flagged `"degraded": true` —
//! single-core speedups measure interleaving, not scheduling, and the
//! gate must not fail on them. Set `SPECTRAL_BENCH_QUICK=1` for the CI
//! smoke run (fewer samples, smaller library).

use std::collections::BTreeMap;
use std::fmt::Write as _;

use criterion::{BenchmarkId, Criterion, Throughput};
use spectral_core::{CreationConfig, LivePointLibrary, OnlineRunner, RunPolicy, SchedMode};
use spectral_uarch::MachineConfig;
use spectral_workloads::{Benchmark, Kernel, Schedule};

// The 1-worker row measures pure scheduler overhead (no contention, no
// stealing) and keeps degraded single-core hosts producing data; real
// scheduling comparisons start at 2.
const WORKERS: [usize; 4] = [1, 2, 4, 8];

fn quick() -> bool {
    std::env::var_os("SPECTRAL_BENCH_QUICK").is_some_and(|v| v != "0" && !v.is_empty())
}

fn points() -> u64 {
    if quick() {
        16
    } else {
        32
    }
}

/// Phased cheap/expensive mix: streaming first half, pointer-chasing
/// second half. Phased scheduling (not interleaved) is what makes the
/// per-point cost distribution bimodal.
fn skewed_benchmark() -> Benchmark {
    Benchmark::new(
        "sched-skew",
        "phased cheap-stream / expensive-chase mix for scheduler benchmarks",
        vec![Kernel::StreamSum { words: 256 }, Kernel::PointerChase { nodes: 1 << 16, hops: 800 }],
        Schedule::Phased,
        150_000,
        3,
    )
}

/// Worker counts the host can actually run concurrently (see the
/// scaling bench for the rationale).
fn honest_workers() -> Vec<usize> {
    let host = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let (run, skipped): (Vec<usize>, Vec<usize>) = WORKERS.iter().partition(|&&w| w <= host);
    if !skipped.is_empty() {
        eprintln!(
            "warning: host exposes only {host} core(s); skipping oversubscribed worker counts \
             {skipped:?} — sched numbers from this host are DEGRADED (the JSON output carries \
             \"degraded\": true)"
        );
    }
    run
}

fn policy(sched: SchedMode) -> RunPolicy {
    RunPolicy { target_rel_err: 1e-12, trajectory_stride: 0, sched, ..RunPolicy::default() }
}

fn bench_sched(c: &mut Criterion) {
    let workers = honest_workers();
    let program = skewed_benchmark().build();
    let machine = MachineConfig::eight_way();
    let cfg = CreationConfig::for_machine(&machine).with_sample_size(points());
    let library = LivePointLibrary::create(&program, &cfg).expect("skewed library");
    let n_points = library.len() as u64;
    let runner = OnlineRunner::new(&library, machine);
    let samples = if quick() { 5 } else { 10 };

    for (name, sched) in
        [("sched_static", SchedMode::StaticStride), ("sched_dynamic", SchedMode::DynamicChunk)]
    {
        let policy = policy(sched);
        let mut group = c.benchmark_group(name);
        group.sample_size(samples).throughput(Throughput::Elements(n_points));
        for &threads in &workers {
            group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
                b.iter(|| runner.run_parallel(&program, &policy, t).expect("run"));
            });
        }
        group.finish();
    }
}

/// Render the result table plus the dynamic-vs-static speedup map the
/// CI gate consumes.
fn emit_json(c: &Criterion) -> String {
    let host = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let skipped: Vec<usize> = WORKERS.iter().copied().filter(|&w| w > host).collect();
    let medians: BTreeMap<&str, f64> =
        c.results().iter().map(|r| (r.id.as_str(), r.median_s)).collect();

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"host_parallelism\": {host},");
    let _ = writeln!(json, "  \"degraded\": {},", !skipped.is_empty());
    let _ = writeln!(
        json,
        "  \"workers_skipped_oversubscribed\": [{}],",
        skipped.iter().map(|w| w.to_string()).collect::<Vec<_>>().join(", ")
    );
    let _ = writeln!(json, "  \"quick\": {},", quick());
    let _ = writeln!(json, "  \"points\": {},", points());
    json.push_str("  \"throughput_points_per_s\": {\n");
    let mut first = true;
    for r in c.results() {
        let rate = match r.throughput {
            Some(Throughput::Elements(n)) => n as f64 / r.median_s,
            Some(Throughput::Bytes(n)) => n as f64 / r.median_s,
            None => 1.0 / r.median_s,
        };
        if !first {
            json.push_str(",\n");
        }
        first = false;
        let _ = write!(json, "    \"{}\": {rate:.1}", r.id);
    }
    json.push_str("\n  },\n");
    // speedup > 1 means the dynamic scheduler beat static striding.
    json.push_str("  \"speedup_dynamic_vs_static\": {\n");
    let mut first = true;
    for &threads in WORKERS.iter().filter(|&&w| w <= host) {
        let stat = medians.get(format!("sched_static/{threads}").as_str()).copied();
        let dynm = medians.get(format!("sched_dynamic/{threads}").as_str()).copied();
        if let (Some(s), Some(d)) = (stat, dynm) {
            if !first {
                json.push_str(",\n");
            }
            first = false;
            let _ = write!(json, "    \"{threads}\": {:.4}", s / d);
        }
    }
    json.push_str("\n  }\n}\n");
    json
}

fn main() {
    let mut criterion = Criterion::default();
    bench_sched(&mut criterion);
    let json = emit_json(&criterion);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sched.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => eprintln!("\ncould not write {path}: {e}"),
    }
}
