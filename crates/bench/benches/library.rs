//! Library container benchmark: monolithic v1 stream vs paged v2.
//!
//! The fixture is a ~3000-point library grown by self-merging a real
//! 24-point tiny-benchmark library (quick mode stays at ~768 points),
//! persisted three ways: v1, v2 without dictionaries, and v2 with
//! block-shared LZSS dictionaries. Three claims are measured:
//!
//! 1. **Open latency** — v2 reads header + footer only, so open cost
//!    is (near) independent of point count, while v1 parses the whole
//!    stream before the first record is reachable.
//! 2. **Random-access single-point read** — cold `open` + `get(i)`:
//!    the v2 path is one positioned read of one record.
//! 3. **Compressed bytes/point** — block-shared dictionaries must not
//!    lose to the plain per-record LZSS framing.
//!
//! Plus the decoded-point LRU: an exhaustive online run repeated on the
//! same library, where the second pass should hit the cache on every
//! point.
//!
//! Writes `BENCH_library.json` at the workspace root; the CI perf-smoke
//! gate checks the open/read speedups against the committed baseline
//! (>20% regression fails) and the dictionary bytes/point against v1.
//! Set `SPECTRAL_BENCH_QUICK=1` for the CI smoke run.

use std::fmt::Write as _;
use std::path::PathBuf;

use criterion::{black_box, Criterion, Throughput};
use spectral_core::{CreationConfig, LivePointLibrary, OnlineRunner, RunPolicy, V2WriteOptions};
use spectral_uarch::MachineConfig;
use spectral_workloads::tiny;

fn quick() -> bool {
    std::env::var_os("SPECTRAL_BENCH_QUICK").is_some_and(|v| v != "0" && !v.is_empty())
}

/// Self-merge doublings on the 24-point base: 7 → ~3072 points (the
/// acceptance target), quick 5 → ~768.
fn doublings() -> u32 {
    if quick() {
        5
    } else {
        7
    }
}

fn temp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("spectral_benchlib_{}_{name}", std::process::id()))
}

struct Fixture {
    /// The small (24-point) source library, for the cache-reuse run.
    small: LivePointLibrary,
    program: spectral_isa::Program,
    points: usize,
    v1_path: PathBuf,
    v2_plain_path: PathBuf,
    v2_dict_path: PathBuf,
    v1_bytes_per_point: u64,
    v2_plain_bytes_per_point: u64,
    v2_dict_bytes_per_point: u64,
}

fn build_fixture() -> Fixture {
    let program = tiny().build();
    let machine = MachineConfig::eight_way();
    let cfg = CreationConfig::for_machine(&machine).with_sample_size(24);
    let small = LivePointLibrary::create(&program, &cfg).expect("base library");

    // Grow by self-merge: same records repeated (and re-shuffled), which
    // preserves the realistic per-record sizes without paying thousands
    // of real creation windows.
    let mut big = small.clone();
    for round in 0..doublings() {
        let copy = big.clone();
        big.merge(copy, 1000 + u64::from(round)).expect("self-merge");
    }

    let v1_path = temp("v1.splp");
    let v2_plain_path = temp("v2_plain.splp");
    let v2_dict_path = temp("v2_dict.splp");
    big.save(&v1_path).expect("save v1");
    let plain = big
        .save_v2(&v2_plain_path, &V2WriteOptions { dict: false, ..V2WriteOptions::default() })
        .expect("save v2 plain");
    let dict = big.save_v2(&v2_dict_path, &V2WriteOptions::default()).expect("save v2 dict");

    let points = big.len();
    Fixture {
        small,
        program,
        points,
        v1_path,
        v2_plain_path,
        v2_dict_path,
        v1_bytes_per_point: big.total_compressed_bytes() / points as u64,
        v2_plain_bytes_per_point: plain.record_bytes / u64::from(plain.count.max(1)),
        v2_dict_bytes_per_point: dict.record_bytes / u64::from(dict.count.max(1)),
    }
}

fn bench_open_and_read(c: &mut Criterion, fx: &Fixture) {
    let samples = if quick() { 5 } else { 10 };

    let mut group = c.benchmark_group("library_open");
    group.sample_size(samples);
    group.bench_function("v1", |b| {
        b.iter(|| black_box(LivePointLibrary::open(&fx.v1_path).expect("open v1")));
    });
    group.bench_function("v2", |b| {
        b.iter(|| black_box(LivePointLibrary::open(&fx.v2_dict_path).expect("open v2")));
    });
    group.bench_function("v2_header_only", |b| {
        b.iter(|| black_box(LivePointLibrary::open_header(&fx.v2_dict_path).expect("header")));
    });
    group.finish();

    // Cold single-point random access: open + one get. The index walks
    // a fixed pseudo-random sequence so both formats touch the same
    // spread of records.
    let mut group = c.benchmark_group("library_read");
    group.sample_size(samples).throughput(Throughput::Elements(1));
    let points = fx.points as u64;
    let mut state = 0x9E37_79B9u64;
    let mut next_index = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((state >> 33) % points) as usize
    };
    let mut idx = next_index;
    group.bench_function("v1_load_get", |b| {
        b.iter(|| {
            let lib = LivePointLibrary::open(&fx.v1_path).expect("open v1");
            black_box(lib.get(idx()).expect("get"))
        });
    });
    let mut idx = next_index;
    group.bench_function("v2_open_get", |b| {
        b.iter(|| {
            let lib = LivePointLibrary::open(&fx.v2_dict_path).expect("open v2");
            black_box(lib.get(idx()).expect("get"))
        });
    });
    // Warm random access: library already open, repeated gets.
    let v2 = LivePointLibrary::open(&fx.v2_dict_path).expect("open v2");
    group.bench_function("v2_warm_get", |b| {
        b.iter(|| black_box(v2.get(next_index()).expect("get")));
    });
    group.finish();
}

/// Decode-cache reuse: exhaustive run twice on the same library; the
/// second pass should find every point pre-decoded. Returns
/// (hits, misses) deltas across the paired runs.
fn cache_reuse(fx: &Fixture) -> (u64, u64) {
    let machine = MachineConfig::eight_way();
    let path = temp("reuse.splp");
    fx.small.save_v2(&path, &V2WriteOptions::default()).expect("save reuse");
    let lib = LivePointLibrary::open(&path).expect("open reuse");
    let runner = OnlineRunner::new(&lib, machine);
    let policy = RunPolicy { target_rel_err: 1e-12, trajectory_stride: 0, ..RunPolicy::default() };

    spectral_core::set_decode_cache_capacity(4096);
    spectral_core::clear_decode_cache();
    let before = spectral_telemetry::snapshot();
    runner.run(&fx.program, &policy).expect("first pass");
    runner.run(&fx.program, &policy).expect("second pass");
    let after = spectral_telemetry::snapshot();
    std::fs::remove_file(&path).ok();

    let delta = |name: &str| {
        after.counter(name).unwrap_or(0).saturating_sub(before.counter(name).unwrap_or(0))
    };
    (delta("core.lib.cache_hits"), delta("core.lib.cache_misses"))
}

fn emit_json(c: &Criterion, fx: &Fixture, hits: u64, misses: u64) -> String {
    let median =
        |id: &str| c.results().iter().find(|r| r.id == id).map(|r| r.median_s).unwrap_or(f64::NAN);
    let v1_open = median("library_open/v1");
    let v2_open = median("library_open/v2");
    let header_open = median("library_open/v2_header_only");
    let v1_read = median("library_read/v1_load_get");
    let v2_read = median("library_read/v2_open_get");
    let v2_warm = median("library_read/v2_warm_get");
    let hit_rate = hits as f64 / (hits + misses).max(1) as f64;

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"quick\": {},", quick());
    let _ = writeln!(json, "  \"points\": {},", fx.points);
    let _ = writeln!(json, "  \"v1_open_ms\": {:.4},", v1_open * 1e3);
    let _ = writeln!(json, "  \"v2_open_ms\": {:.4},", v2_open * 1e3);
    let _ = writeln!(json, "  \"v2_header_open_ms\": {:.4},", header_open * 1e3);
    let _ = writeln!(json, "  \"open_speedup_v2_vs_v1\": {:.4},", v1_open / v2_open);
    let _ = writeln!(json, "  \"v1_load_get_per_s\": {:.1},", 1.0 / v1_read);
    let _ = writeln!(json, "  \"v2_open_get_per_s\": {:.1},", 1.0 / v2_read);
    let _ = writeln!(json, "  \"v2_warm_get_per_s\": {:.1},", 1.0 / v2_warm);
    let _ = writeln!(json, "  \"read_speedup_v2_vs_v1\": {:.4},", v1_read / v2_read);
    json.push_str("  \"bytes_per_point\": {\n");
    let _ = writeln!(json, "    \"v1\": {},", fx.v1_bytes_per_point);
    let _ = writeln!(json, "    \"v2_plain\": {},", fx.v2_plain_bytes_per_point);
    let _ = writeln!(json, "    \"v2_dict\": {}", fx.v2_dict_bytes_per_point);
    json.push_str("  },\n");
    json.push_str("  \"decode_cache\": {\n");
    let _ = writeln!(json, "    \"hits\": {hits},");
    let _ = writeln!(json, "    \"misses\": {misses},");
    let _ = writeln!(json, "    \"reuse_hit_rate\": {hit_rate:.4}");
    json.push_str("  }\n}\n");
    json
}

fn main() {
    let fx = build_fixture();
    let mut criterion = Criterion::default();
    bench_open_and_read(&mut criterion, &fx);
    let (hits, misses) = cache_reuse(&fx);
    let json = emit_json(&criterion, &fx, hits, misses);
    for path in [&fx.v1_path, &fx.v2_plain_path, &fx.v2_dict_path] {
        std::fs::remove_file(path).ok();
    }
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_library.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => eprintln!("\ncould not write {path}: {e}"),
    }
}
