//! Codec throughput: the paper claims ASN.1 DER + gzip "incur minimal
//! storage and processing time overhead" (§3). These benches quantify
//! our DER subset and LZSS stand-in on a real live-point payload.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use spectral_bench::{fixture_benchmark, fixture_library};
use spectral_codec::{lzss, DerReader, DerWriter};

fn bench_codec(c: &mut Criterion) {
    let program = fixture_benchmark().build();
    let library = fixture_library(&program, 6);
    // Reconstruct the raw DER for a representative point.
    let lp = library.get(0).expect("decode");
    let der = lp.to_der();
    let compressed = lzss::compress(&der);

    let mut group = c.benchmark_group("codec");
    group.sample_size(20);
    group.throughput(Throughput::Bytes(der.len() as u64));
    group.bench_function("lzss_compress_livepoint", |b| {
        b.iter(|| lzss::compress(&der));
    });
    group.bench_function("lzss_decompress_livepoint", |b| {
        b.iter(|| lzss::decompress(&compressed).expect("roundtrip"));
    });
    group.finish();

    let mut g2 = c.benchmark_group("der");
    g2.sample_size(30);
    let words: Vec<u64> = (0..4096u64).map(|i| i.wrapping_mul(0x9E3779B9)).collect();
    g2.bench_function("der_encode_4k_words", |b| {
        b.iter(|| {
            let mut w = DerWriter::new();
            w.seq(|w| {
                w.u64_array(&words);
            });
            w.finish()
        });
    });
    let mut w = DerWriter::new();
    w.seq(|w| {
        w.u64_array(&words);
    });
    let encoded = w.finish();
    g2.bench_function("der_decode_4k_words", |b| {
        b.iter(|| {
            let mut r = DerReader::new(&encoded);
            r.seq().expect("seq").u64_array().expect("array")
        });
    });
    g2.bench_function("livepoint_to_der", |b| {
        b.iter(|| lp.to_der());
    });
    g2.bench_function("livepoint_from_der", |b| {
        b.iter(|| spectral_core::LivePoint::from_der(&der).expect("decode"));
    });
    g2.finish();
}

criterion_group!(benches, bench_codec);
criterion_main!(benches);
