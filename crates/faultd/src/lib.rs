//! Fault-injection harness and crash-safe I/O helpers.
//!
//! Every state-mutating I/O path in the workspace funnels through this
//! crate: [`write_atomic`] (temp file + fsync + atomic rename),
//! [`append_durable`] (`O_APPEND` single-write + fsync), and [`retry`]
//! (bounded retry with linear backoff on transient errors). Each helper
//! probes a named *fault site* first, so an external harness can inject
//! I/O errors, short writes, or process death at any of them without
//! touching the code under test.
//!
//! # Arming faults
//!
//! Injection is armed purely through the environment (parsed once, on
//! first probe):
//!
//! | Variable | Meaning |
//! |---|---|
//! | `SPECTRAL_FAULT_SITES` | `site:prob[,site:prob…]` — fail the probe with a *hard* I/O error at the given probability |
//! | `SPECTRAL_FAULT_TRANSIENT` | same syntax — fail with a *transient* (retryable) error |
//! | `SPECTRAL_FAULT_SHORT` | same syntax — truncate the next durable write at the site, then fail it |
//! | `SPECTRAL_FAULT_KILL` | `site[:nth]` — abort the process at the *nth* probe of `site` (default 1), simulating SIGKILL |
//! | `SPECTRAL_FAULT_SEED` | seed for the deterministic probe RNG (default `0xC0FFEE`) |
//! | `SPECTRAL_FAULT_RETRIES` | max attempts in [`retry`] (default 3) |
//! | `SPECTRAL_FAULT_BACKOFF_MS` | base backoff in milliseconds between attempts (default 1) |
//!
//! A site name in the spec may end with `*` to prefix-match (e.g.
//! `registry.*:1.0`). With the `inject` feature disabled (default-on)
//! every probe compiles to `Ok(())` and the parser is never built; the
//! durable-write helpers keep their crash-safety protocol either way.
//!
//! # Crash-safety contract
//!
//! [`write_atomic`] guarantees that a reader observes either the old
//! file contents or the complete new contents, never a torn mix: bytes
//! land in a sibling temp file, are fsynced, and only then renamed over
//! the destination (the directory is fsynced afterwards, best-effort).
//! [`append_durable`] appends one buffer with a single `write` call and
//! fsyncs; a crash can tear at most the final record, which readers
//! must tolerate (the registry index reader does).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fs;
use std::io::{self, Write as _};
use std::path::Path;

/// Default maximum attempts for [`retry`].
pub const DEFAULT_RETRIES: u32 = 3;
/// Default base backoff between [`retry`] attempts, in milliseconds.
pub const DEFAULT_BACKOFF_MS: u64 = 1;

/// Marker prefix carried by every injected error's message.
///
/// Lets integration tests distinguish injected faults from real I/O
/// failures: `e.to_string().starts_with(INJECTED_PREFIX)`.
pub const INJECTED_PREFIX: &str = "injected fault";

#[cfg(feature = "inject")]
mod armed {
    use super::INJECTED_PREFIX;
    use std::collections::HashMap;
    use std::io;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Mutex, OnceLock};

    /// One `site:prob` arm from an env spec.
    #[derive(Debug, Clone)]
    struct Arm {
        site: String,
        prefix: bool,
        prob: f64,
    }

    #[derive(Debug, Default)]
    pub(super) struct Config {
        hard: Vec<Arm>,
        transient: Vec<Arm>,
        short: Vec<Arm>,
        kill_site: Option<(String, bool, u64)>,
        seed: u64,
    }

    fn parse_arms(spec: &str) -> Vec<Arm> {
        spec.split(',')
            .filter_map(|part| {
                let part = part.trim();
                let (site, prob) = part.rsplit_once(':')?;
                let prob: f64 = prob.parse().ok()?;
                let (site, prefix) = match site.strip_suffix('*') {
                    Some(stem) => (stem, true),
                    None => (site, false),
                };
                Some(Arm { site: site.to_string(), prefix, prob })
            })
            .collect()
    }

    fn config() -> &'static Config {
        static CONFIG: OnceLock<Config> = OnceLock::new();
        CONFIG.get_or_init(|| {
            let get = |k: &str| std::env::var(k).unwrap_or_default();
            let kill_spec = get("SPECTRAL_FAULT_KILL");
            let kill_site = if kill_spec.is_empty() {
                None
            } else {
                let (site, nth) = match kill_spec.rsplit_once(':') {
                    Some((s, n)) => (s.to_string(), n.parse().unwrap_or(1)),
                    None => (kill_spec.clone(), 1),
                };
                let (site, prefix) = match site.strip_suffix('*') {
                    Some(stem) => (stem.to_string(), true),
                    None => (site, false),
                };
                Some((site, prefix, nth.max(1)))
            };
            Config {
                hard: parse_arms(&get("SPECTRAL_FAULT_SITES")),
                transient: parse_arms(&get("SPECTRAL_FAULT_TRANSIENT")),
                short: parse_arms(&get("SPECTRAL_FAULT_SHORT")),
                kill_site,
                seed: std::env::var("SPECTRAL_FAULT_SEED")
                    .ok()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or(0xC0FFEE),
            }
        })
    }

    fn matches(arm_site: &str, prefix: bool, site: &str) -> bool {
        if prefix {
            site.starts_with(arm_site)
        } else {
            site == arm_site
        }
    }

    /// Deterministic xorshift64* stream shared by every probe.
    fn chance(prob: f64) -> bool {
        if prob >= 1.0 {
            return true;
        }
        if prob <= 0.0 {
            return false;
        }
        static STATE: AtomicU64 = AtomicU64::new(0);
        let mut cur = STATE.load(Ordering::Relaxed);
        loop {
            let seeded = if cur == 0 { config().seed | 1 } else { cur };
            let mut x = seeded;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            match STATE.compare_exchange_weak(cur, x, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => {
                    let unit =
                        (x.wrapping_mul(0x2545F4914F6CDD1D) >> 11) as f64 / (1u64 << 53) as f64;
                    return unit < prob;
                }
                Err(seen) => cur = seen,
            }
        }
    }

    fn hit(arms: &[Arm], site: &str) -> bool {
        arms.iter().any(|a| matches(&a.site, a.prefix, site) && chance(a.prob))
    }

    static INJECTED: AtomicU64 = AtomicU64::new(0);

    pub(super) fn injected_count() -> u64 {
        INJECTED.load(Ordering::Relaxed)
    }

    pub(super) fn probe(site: &str) -> io::Result<()> {
        let cfg = config();
        kill_point(site);
        if hit(&cfg.hard, site) {
            INJECTED.fetch_add(1, Ordering::Relaxed);
            return Err(io::Error::other(format!("{INJECTED_PREFIX} at {site}")));
        }
        if hit(&cfg.transient, site) {
            INJECTED.fetch_add(1, Ordering::Relaxed);
            return Err(io::Error::new(
                io::ErrorKind::Interrupted,
                format!("{INJECTED_PREFIX} (transient) at {site}"),
            ));
        }
        Ok(())
    }

    pub(super) fn short_write_len(site: &str, len: usize) -> Option<usize> {
        if hit(&config().short, site) {
            INJECTED.fetch_add(1, Ordering::Relaxed);
            Some(len / 2)
        } else {
            None
        }
    }

    pub(super) fn kill_point(site: &str) {
        let Some((kill, prefix, nth)) = &config().kill_site else {
            return;
        };
        if !matches(kill, *prefix, site) {
            return;
        }
        static COUNTS: OnceLock<Mutex<HashMap<String, u64>>> = OnceLock::new();
        let mut counts = COUNTS
            .get_or_init(|| Mutex::new(HashMap::new()))
            .lock()
            .expect("fault-site counter lock poisoned");
        let n = counts.entry(site.to_string()).or_insert(0);
        *n += 1;
        if *n == *nth {
            // Simulate SIGKILL: no unwinding, no destructors, no
            // buffered-writer flushes.
            eprintln!("spectral-faultd: killing process at fault site '{site}' (probe #{n})");
            std::process::abort();
        }
    }
}

#[cfg(not(feature = "inject"))]
mod armed {
    use std::io;

    pub(super) fn injected_count() -> u64 {
        0
    }

    pub(super) fn probe(_site: &str) -> io::Result<()> {
        Ok(())
    }

    pub(super) fn short_write_len(_site: &str, _len: usize) -> Option<usize> {
        None
    }

    pub(super) fn kill_point(_site: &str) {}
}

/// Probe a named fault site.
///
/// Returns an injected error when the environment arms this site (see
/// the crate docs), aborts the process when a kill is armed here, and
/// is a no-op (`Ok`) otherwise — a single relaxed atomic load plus a
/// site-name comparison when armed, nothing at all when the `inject`
/// feature is off.
pub fn probe(site: &str) -> io::Result<()> {
    armed::probe(site)
}

/// Abort the process if a kill is armed at `site` (no error path).
///
/// Use at pure kill-points that have no natural `Result` to thread an
/// injected error through, e.g. "between fsync and rename".
pub fn kill_point(site: &str) {
    armed::kill_point(site)
}

/// Total faults injected so far in this process (0 when unarmed).
pub fn injected_count() -> u64 {
    armed::injected_count()
}

/// Whether `e` is transient and worth retrying.
///
/// Covers `Interrupted`/`WouldBlock`/`TimedOut` — the kinds used both
/// by real kernels for retryable conditions and by this crate's
/// transient injection.
pub fn is_transient(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::Interrupted | io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

fn retry_budget() -> (u32, u64) {
    let attempts = std::env::var("SPECTRAL_FAULT_RETRIES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_RETRIES)
        .max(1);
    let backoff = std::env::var("SPECTRAL_FAULT_BACKOFF_MS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_BACKOFF_MS);
    (attempts, backoff)
}

/// Run `op` with bounded retry and linear backoff on transient errors.
///
/// `op` is attempted up to `SPECTRAL_FAULT_RETRIES` times (default 3);
/// between attempts the thread sleeps `attempt * SPECTRAL_FAULT_BACKOFF_MS`
/// milliseconds (default 1 ms). Hard errors and the final transient
/// error propagate unchanged. `site` names the operation for the probe
/// that guards the first attempt.
pub fn retry<T>(site: &str, mut op: impl FnMut() -> io::Result<T>) -> io::Result<T> {
    let (attempts, backoff_ms) = retry_budget();
    let mut attempt = 0u32;
    loop {
        attempt += 1;
        let result = probe(site).and_then(|()| op());
        match result {
            Ok(v) => return Ok(v),
            Err(e) if is_transient(&e) && attempt < attempts => {
                std::thread::sleep(std::time::Duration::from_millis(
                    backoff_ms.saturating_mul(attempt as u64),
                ));
            }
            Err(e) => return Err(e),
        }
    }
}

/// Fsync `path`'s parent directory so a completed rename survives a
/// crash. Best-effort: directory fsync is not supported everywhere.
fn sync_parent_dir(path: &Path) {
    if let Some(dir) = path.parent() {
        let dir = if dir.as_os_str().is_empty() { Path::new(".") } else { dir };
        if let Ok(d) = fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
}

/// Write `bytes` to `path` atomically: temp file, fsync, rename.
///
/// A crash (or injected kill) at any instant leaves either the old
/// contents of `path` or the complete new contents — never a torn
/// file. A stale `.tmp` sibling may survive a crash; it is overwritten
/// by the next successful write. Short-write injection at `site`
/// truncates the temp file and fails before the rename, so the
/// destination is still intact.
pub fn write_atomic(site: &str, path: &Path, bytes: &[u8]) -> io::Result<()> {
    probe(site)?;
    let tmp = tmp_sibling(path);
    let write_result = (|| -> io::Result<()> {
        let mut f = fs::File::create(&tmp)?;
        match armed::short_write_len(site, bytes.len()) {
            Some(n) => {
                f.write_all(&bytes[..n])?;
                f.sync_all()?;
                return Err(io::Error::other(format!(
                    "{INJECTED_PREFIX} (short write, {n}/{} bytes) at {site}",
                    bytes.len()
                )));
            }
            None => f.write_all(bytes)?,
        }
        f.sync_all()
    })();
    if let Err(e) = write_result {
        let _ = fs::remove_file(&tmp);
        return Err(e);
    }
    // The classic torn-state window: data is durable in the temp file
    // but the destination still holds the old version.
    kill_point(&format!("{site}.rename"));
    fs::rename(&tmp, path)?;
    sync_parent_dir(path);
    Ok(())
}

/// Append `bytes` to `path` durably with one `O_APPEND` write + fsync.
///
/// The single-write discipline means a crash can tear at most the
/// final record; readers of append-only files must tolerate (and
/// discard) one trailing partial record. Short-write injection at
/// `site` deliberately leaves such a torn tail.
pub fn append_durable(site: &str, path: &Path, bytes: &[u8]) -> io::Result<()> {
    probe(site)?;
    let mut f = fs::OpenOptions::new().create(true).append(true).open(path)?;
    match armed::short_write_len(site, bytes.len()) {
        Some(n) => {
            f.write_all(&bytes[..n])?;
            let _ = f.sync_all();
            return Err(io::Error::other(format!(
                "{INJECTED_PREFIX} (short append, {n}/{} bytes) at {site}",
                bytes.len()
            )));
        }
        None => f.write_all(bytes)?,
    }
    f.sync_all()?;
    kill_point(&format!("{site}.post"));
    Ok(())
}

fn tmp_sibling(path: &Path) -> std::path::PathBuf {
    let mut name = path.file_name().map(|n| n.to_os_string()).unwrap_or_default();
    name.push(format!(".tmp.{}", std::process::id()));
    path.with_file_name(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unarmed_probe_is_ok() {
        assert!(probe("test.site").is_ok());
        kill_point("test.site");
    }

    #[test]
    fn write_atomic_round_trips() {
        let dir = std::env::temp_dir().join(format!("faultd-test-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.json");
        write_atomic("test.write", &path, b"old").unwrap();
        write_atomic("test.write", &path, b"new contents").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"new contents");
        assert!(fs::read_dir(&dir).unwrap().count() == 1, "no temp litter after successful writes");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn append_durable_appends() {
        let dir = std::env::temp_dir().join(format!("faultd-append-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("index.jsonl");
        append_durable("test.append", &path, b"a\n").unwrap();
        append_durable("test.append", &path, b"b\n").unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "a\nb\n");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn retry_recovers_from_transients() {
        let mut failures = 2;
        let out = retry("test.retry", || {
            if failures > 0 {
                failures -= 1;
                Err(io::Error::new(io::ErrorKind::Interrupted, "flaky"))
            } else {
                Ok(42)
            }
        })
        .unwrap();
        assert_eq!(out, 42);
    }

    #[test]
    fn retry_propagates_hard_errors() {
        let err = retry("test.retry.hard", || -> io::Result<()> {
            Err(io::Error::other("disk on fire"))
        })
        .unwrap_err();
        assert_eq!(err.to_string(), "disk on fire");
    }

    #[test]
    fn transient_classification() {
        assert!(is_transient(&io::Error::new(io::ErrorKind::Interrupted, "x")));
        assert!(!is_transient(&io::Error::other("x")));
    }
}
