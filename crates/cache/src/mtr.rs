//! Memory Timestamp Record (MTR) — unbounded adaptable warm state
//! (Barr et al., ISPASS 2005; paper §4.3).

use crate::cache::CacheState;
use crate::config::CacheConfig;
use crate::error::CacheError;
use std::collections::HashMap;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct MtrEntry {
    last_access: u64,
    dirty: bool,
}

/// A *Memory Timestamp Record*: the last-access time of every touched
/// block at a minimum granularity.
///
/// Unlike the [`Csr`](crate::Csr), an MTR can reconstruct caches of
/// **arbitrary** size and associativity (line size any multiple of the
/// recorded granularity), but its storage grows with the application's
/// memory footprint — the reason the paper prefers the bounded CSR inside
/// live-points and reports MTR only as the unbounded alternative.
///
/// Reconstruction is exact for contents and LRU order under true-LRU
/// replacement: a line's recency in any cache equals the most recent
/// access to any of its sub-blocks.
#[derive(Debug, Clone)]
pub struct Mtr {
    granule_bytes: u64,
    clock: u64,
    map: HashMap<u64, MtrEntry>,
}

impl Mtr {
    /// Create an empty record at `granule_bytes` granularity (the lower
    /// bound on reconstructable line sizes).
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::BadGeometry`] if `granule_bytes` is zero or
    /// not a power of two.
    pub fn new(granule_bytes: u64) -> Result<Self, CacheError> {
        if granule_bytes == 0 || !granule_bytes.is_power_of_two() {
            return Err(CacheError::BadGeometry { what: "granule_bytes" });
        }
        Ok(Mtr { granule_bytes, clock: 0, map: HashMap::new() })
    }

    /// The recorded granularity in bytes.
    pub fn granule_bytes(&self) -> u64 {
        self.granule_bytes
    }

    /// Record an access to the granule containing `addr`.
    pub fn record(&mut self, addr: u64, write: bool) {
        self.clock += 1;
        let g = addr / self.granule_bytes;
        let e = self.map.entry(g).or_insert(MtrEntry { last_access: 0, dirty: false });
        e.last_access = self.clock;
        e.dirty |= write;
    }

    /// Number of touched granules (storage is proportional to this).
    pub fn entry_count(&self) -> usize {
        self.map.len()
    }

    /// Logical time of the most recent recorded access.
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// Reconstruct warm state for any cache whose line size is a multiple
    /// of the recorded granularity.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::LineMismatch`] if `target.line_bytes()` is
    /// smaller than, or not a multiple of, the recorded granularity.
    pub fn reconstruct(&self, target: &CacheConfig) -> Result<CacheState, CacheError> {
        if target.line_bytes() < self.granule_bytes
            || !target.line_bytes().is_multiple_of(self.granule_bytes)
        {
            return Err(CacheError::LineMismatch {
                recorded: self.granule_bytes,
                requested: target.line_bytes(),
            });
        }
        let per_line = target.line_bytes() / self.granule_bytes;
        // Merge granules into target blocks: recency = max over sub-blocks.
        let mut blocks: HashMap<u64, MtrEntry> = HashMap::new();
        for (&g, &e) in &self.map {
            let block = g / per_line;
            let slot = blocks.entry(block).or_insert(MtrEntry { last_access: 0, dirty: false });
            slot.last_access = slot.last_access.max(e.last_access);
            slot.dirty |= e.dirty;
        }
        let t_sets = target.num_sets();
        let t_assoc = target.assoc() as usize;
        let mut sets: Vec<Vec<(u64, MtrEntry)>> = vec![Vec::new(); t_sets as usize];
        for (block, e) in blocks {
            sets[(block % t_sets) as usize].push((block, e));
        }
        let sets = sets
            .into_iter()
            .map(|mut v| {
                v.sort_by_key(|e| std::cmp::Reverse(e.1.last_access));
                v.truncate(t_assoc);
                v.into_iter().map(|(b, e)| (b, e.dirty)).collect()
            })
            .collect();
        Ok(CacheState { sets })
    }

    /// Export `(granule, last_access, dirty)` triples for serialization,
    /// sorted by granule for determinism.
    pub fn to_entries(&self) -> Vec<(u64, u64, bool)> {
        let mut v: Vec<_> = self.map.iter().map(|(&g, &e)| (g, e.last_access, e.dirty)).collect();
        v.sort_unstable();
        v
    }

    /// Rebuild a record from serialized entries.
    pub fn from_entries(
        granule_bytes: u64,
        entries: impl IntoIterator<Item = (u64, u64, bool)>,
    ) -> Result<Self, CacheError> {
        let mut mtr = Mtr::new(granule_bytes)?;
        for (g, ts, dirty) in entries {
            mtr.map.insert(g, MtrEntry { last_access: ts, dirty });
            mtr.clock = mtr.clock.max(ts);
        }
        Ok(mtr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::Cache;

    fn cfg(size: u64, assoc: u32, line: u64) -> CacheConfig {
        CacheConfig::new(size, assoc, line).unwrap()
    }

    fn check_equivalence(granule: u64, target: CacheConfig, stream: &[(u64, bool)]) {
        let mut mtr = Mtr::new(granule).unwrap();
        let mut direct = Cache::new(target);
        for &(addr, write) in stream {
            mtr.record(addr, write);
            direct.access(addr, write);
        }
        let rec = mtr.reconstruct(&target).unwrap();
        let blocks = |s: &CacheState| -> Vec<Vec<u64>> {
            s.sets.iter().map(|v| v.iter().map(|&(b, _)| b).collect()).collect()
        };
        assert_eq!(blocks(&rec), blocks(&direct.to_state()));
    }

    #[test]
    fn exact_for_same_granularity() {
        let stream: Vec<(u64, bool)> =
            (0..2000u64).map(|i| (i.wrapping_mul(0x9E3779B9) % (1 << 16), i % 7 == 0)).collect();
        check_equivalence(32, cfg(4096, 2, 32), &stream);
        check_equivalence(32, cfg(1 << 14, 8, 32), &stream);
    }

    #[test]
    fn exact_for_larger_lines() {
        let stream: Vec<(u64, bool)> =
            (0..2000u64).map(|i| (i.wrapping_mul(2654435761) % (1 << 16), false)).collect();
        check_equivalence(32, cfg(8192, 4, 128), &stream);
    }

    #[test]
    fn arbitrary_geometry_unlike_csr() {
        // MTR can go *bigger* than anything pre-declared.
        let mut mtr = Mtr::new(32).unwrap();
        for i in 0..1000u64 {
            mtr.record(i * 64, false);
        }
        assert!(mtr.reconstruct(&cfg(1 << 24, 16, 64)).is_ok());
    }

    #[test]
    fn rejects_smaller_line() {
        let mtr = Mtr::new(64).unwrap();
        assert!(matches!(mtr.reconstruct(&cfg(4096, 2, 32)), Err(CacheError::LineMismatch { .. })));
    }

    #[test]
    fn storage_grows_with_footprint() {
        let mut mtr = Mtr::new(32).unwrap();
        for i in 0..5000u64 {
            mtr.record(i * 32, false);
        }
        assert_eq!(mtr.entry_count(), 5000);
    }

    #[test]
    fn entries_roundtrip() {
        let mut mtr = Mtr::new(32).unwrap();
        for i in 0..50u64 {
            mtr.record(i * 40, i % 2 == 0);
        }
        let entries = mtr.to_entries();
        let restored = Mtr::from_entries(32, entries.clone()).unwrap();
        assert_eq!(restored.to_entries(), entries);
        assert_eq!(restored.clock(), mtr.clock());
    }
}
