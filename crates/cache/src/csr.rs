//! Cache Set Record (CSR) — adaptable warm cache state bounded by a
//! maximum configuration (Barr et al., ISPASS 2005; paper §4.3).

use crate::cache::{Cache, CacheState, Line};
use crate::config::CacheConfig;
use crate::error::CacheError;

/// One recorded line: block number, last-access time, dirty flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CsrEntry {
    /// Block number (address / line size).
    pub block: u64,
    /// Logical time (access counter) of the most recent access.
    pub last_access: u64,
    /// Whether the block has been written while resident.
    pub dirty: bool,
}

/// A *Cache Set Record*: a timestamp-annotated tag array for a
/// user-selected **maximum** cache configuration, recorded during
/// functional warming.
///
/// From a CSR one can exactly reconstruct the contents and LRU order of
/// any cache whose geometry the maximum [covers](CacheConfig::covers)
/// (same line size, sets dividing the recorded sets, associativity no
/// larger). This is the mechanism that lets a single live-point library
/// serve many cache configurations while costing only the *tag-array*
/// storage of the maximum configuration — the key storage-vs-reusability
/// trade of checkpointed warming.
///
/// Dirty flags are carried through reconstruction as an approximation:
/// the target cache's fill times are unknowable from recency alone, so a
/// block is marked dirty in the target if it was dirty under the maximum
/// configuration. Contents and LRU order are exact.
///
/// # Example
///
/// ```
/// use spectral_cache::{Csr, Cache, CacheConfig};
///
/// let max = CacheConfig::new(1 << 20, 4, 32)?;   // record up to 1MB/4-way
/// let mut csr = Csr::new(max);
/// for addr in (0..10_000u64).map(|i| i * 64) {
///     csr.record(addr, false);
/// }
/// let small = CacheConfig::new(32 << 10, 2, 32)?; // simulate 32KB/2-way
/// let state = csr.reconstruct(&small)?;
/// let cache = Cache::from_state(small, &state);
/// assert!(cache.occupancy() > 0);
/// # Ok::<(), spectral_cache::CacheError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Csr {
    max: CacheConfig,
    clock: u64,
    sets: Vec<Vec<CsrEntry>>, // MRU-first, bounded by max assoc
}

impl Csr {
    /// Create an empty record bounded by `max`.
    pub fn new(max: CacheConfig) -> Self {
        let n = max.num_sets() as usize;
        Csr { max, clock: 0, sets: vec![Vec::new(); n] }
    }

    /// The maximum configuration this record can reconstruct up to.
    pub fn max_config(&self) -> &CacheConfig {
        &self.max
    }

    /// Record an access to the line containing `addr`, exactly as the
    /// maximum-configuration cache would process it.
    pub fn record(&mut self, addr: u64, write: bool) {
        self.clock += 1;
        let block = self.max.block_of(addr);
        let set_idx = (block % self.max.num_sets()) as usize;
        let assoc = self.max.assoc() as usize;
        let set = &mut self.sets[set_idx];
        if let Some(pos) = set.iter().position(|e| e.block == block) {
            let mut e = set.remove(pos);
            e.last_access = self.clock;
            e.dirty |= write;
            set.insert(0, e);
        } else {
            if set.len() == assoc {
                set.pop();
            }
            set.insert(0, CsrEntry { block, last_access: self.clock, dirty: write });
        }
    }

    /// Number of recorded lines.
    pub fn entry_count(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// Logical time of the most recent recorded access.
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// Reconstruct the warm state of a cache with geometry `target`.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::LineMismatch`] for a different line size and
    /// [`CacheError::TargetExceedsBounds`] when the target is larger or
    /// more associative than the recorded maximum (or its set count does
    /// not divide the maximum's).
    pub fn reconstruct(&self, target: &CacheConfig) -> Result<CacheState, CacheError> {
        self.check_target(target)?;
        let t_sets = target.num_sets();
        let t_assoc = target.assoc() as usize;
        let mut out = vec![Vec::new(); t_sets as usize];
        // Fold: max-set s contributes to target set s % t_sets.
        for (s, set) in self.sets.iter().enumerate() {
            let t = (s as u64 % t_sets) as usize;
            out[t].extend(set.iter().copied());
        }
        let sets = out
            .into_iter()
            .map(|mut entries| {
                entries.sort_by_key(|e| std::cmp::Reverse(e.last_access));
                entries.truncate(t_assoc);
                entries.into_iter().map(|e| (e.block, e.dirty)).collect()
            })
            .collect();
        Ok(CacheState { sets })
    }

    /// Reconstruct a warm [`Cache`] with geometry `target` directly —
    /// contents, LRU order, and dirty flags identical to
    /// `Cache::from_state(target, &self.reconstruct(target)?)`, without
    /// materializing the intermediate [`CacheState`]. When the target
    /// set count equals the recorded maximum's (no folding), per-set
    /// work runs through one reused scratch buffer, so reconstruction
    /// allocates only the final per-set line lists. This is the hot path
    /// of per-point hierarchy reconstruction.
    ///
    /// # Errors
    ///
    /// Same conditions as [`reconstruct`](Self::reconstruct).
    pub fn reconstruct_cache(&self, target: &CacheConfig) -> Result<Cache, CacheError> {
        self.check_target(target)?;
        let t_sets = target.num_sets();
        let t_assoc = target.assoc() as usize;
        let mut sets: Vec<Vec<Line>> = Vec::with_capacity(t_sets as usize);
        if t_sets as usize == self.sets.len() {
            // Identity fold: each recorded set maps to exactly one
            // target set.
            let mut scratch: Vec<CsrEntry> = Vec::new();
            for set in &self.sets {
                scratch.clear();
                scratch.extend_from_slice(set);
                scratch.sort_by_key(|e| std::cmp::Reverse(e.last_access));
                scratch.truncate(t_assoc);
                sets.push(
                    scratch.iter().map(|e| Line { block: e.block, dirty: e.dirty }).collect(),
                );
            }
        } else {
            let mut out = vec![Vec::new(); t_sets as usize];
            for (s, set) in self.sets.iter().enumerate() {
                out[(s as u64 % t_sets) as usize].extend(set.iter().copied());
            }
            for mut entries in out {
                entries.sort_by_key(|e| std::cmp::Reverse(e.last_access));
                entries.truncate(t_assoc);
                sets.push(
                    entries.iter().map(|e| Line { block: e.block, dirty: e.dirty }).collect(),
                );
            }
        }
        Ok(Cache::from_line_sets(*target, sets))
    }

    fn check_target(&self, target: &CacheConfig) -> Result<(), CacheError> {
        if target.line_bytes() != self.max.line_bytes() {
            return Err(CacheError::LineMismatch {
                recorded: self.max.line_bytes(),
                requested: target.line_bytes(),
            });
        }
        if !self.max.covers(target) {
            return Err(CacheError::TargetExceedsBounds { what: "size or associativity" });
        }
        Ok(())
    }

    /// Export the raw per-set entries (MRU-first) for serialization.
    pub fn to_entries(&self) -> Vec<Vec<CsrEntry>> {
        self.sets.clone()
    }

    /// Rebuild a record from serialized entries.
    ///
    /// Entries beyond the maximum associativity are truncated; the clock
    /// resumes past the largest recorded timestamp.
    pub fn from_entries(max: CacheConfig, entries: Vec<Vec<CsrEntry>>) -> Self {
        let n = max.num_sets() as usize;
        let assoc = max.assoc() as usize;
        let mut sets = vec![Vec::new(); n];
        let mut clock = 0;
        for (i, mut src) in entries.into_iter().enumerate().take(n) {
            src.truncate(assoc);
            for e in &src {
                clock = clock.max(e.last_access);
            }
            sets[i] = src;
        }
        Csr { max, clock, sets }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::Cache;

    fn cfg(size: u64, assoc: u32, line: u64) -> CacheConfig {
        CacheConfig::new(size, assoc, line).unwrap()
    }

    /// Drive a CSR and a directly-simulated cache with the same stream;
    /// reconstruction must match content and LRU order exactly.
    fn check_equivalence(max: CacheConfig, target: CacheConfig, stream: &[(u64, bool)]) {
        let mut csr = Csr::new(max);
        let mut direct = Cache::new(target);
        for &(addr, write) in stream {
            csr.record(addr, write);
            direct.access(addr, write);
        }
        let reconstructed = csr.reconstruct(&target).unwrap();
        let direct_state = direct.to_state();
        let blocks = |s: &CacheState| -> Vec<Vec<u64>> {
            s.sets.iter().map(|v| v.iter().map(|&(b, _)| b).collect()).collect()
        };
        assert_eq!(blocks(&reconstructed), blocks(&direct_state));
    }

    #[test]
    fn reconstruct_same_config_is_identity() {
        let max = cfg(4096, 4, 32);
        let stream: Vec<(u64, bool)> =
            (0..500u64).map(|i| (i.wrapping_mul(2654435761) % 65536, i % 4 == 0)).collect();
        check_equivalence(max, max, &stream);
    }

    #[test]
    fn reconstruct_smaller_and_less_associative() {
        let max = cfg(1 << 16, 4, 32);
        let stream: Vec<(u64, bool)> =
            (0..3000u64).map(|i| (i.wrapping_mul(0x9E3779B9) % (1 << 18), i % 5 == 0)).collect();
        check_equivalence(max, cfg(1 << 13, 2, 32), &stream);
        check_equivalence(max, cfg(1 << 12, 1, 32), &stream);
        // Same set count as max (1<<15 / 2-way = 512 sets), lower assoc.
        check_equivalence(max, cfg(1 << 15, 2, 32), &stream);
    }

    #[test]
    fn rejects_larger_target() {
        let csr = Csr::new(cfg(4096, 2, 32));
        assert!(matches!(
            csr.reconstruct(&cfg(8192, 2, 32)),
            Err(CacheError::TargetExceedsBounds { .. })
        ));
        assert!(matches!(
            csr.reconstruct(&cfg(4096, 4, 32)),
            Err(CacheError::TargetExceedsBounds { .. })
        ));
    }

    #[test]
    fn rejects_line_mismatch() {
        let csr = Csr::new(cfg(4096, 2, 32));
        assert!(matches!(csr.reconstruct(&cfg(2048, 2, 64)), Err(CacheError::LineMismatch { .. })));
    }

    #[test]
    fn entries_roundtrip() {
        let max = cfg(4096, 2, 32);
        let mut csr = Csr::new(max);
        for i in 0..100u64 {
            csr.record(i * 96, i % 2 == 0);
        }
        let entries = csr.to_entries();
        let restored = Csr::from_entries(max, entries.clone());
        assert_eq!(restored.to_entries(), entries);
        assert_eq!(restored.clock(), csr.clock());
        assert_eq!(restored.reconstruct(&max).unwrap(), csr.reconstruct(&max).unwrap());
    }

    #[test]
    fn bounded_storage() {
        let max = cfg(4096, 2, 32); // 128 lines max
        let mut csr = Csr::new(max);
        for i in 0..10_000u64 {
            csr.record(i * 32, false);
        }
        assert!(csr.entry_count() <= 128);
    }
}
