//! # spectral-cache — cache/TLB models and reconstructable warm state
//!
//! Substrate crate for the Spectral live-points framework (reproduction of
//! *Simulation Sampling with Live-points*, ISPASS 2006). It provides:
//!
//! * [`Cache`] — a set-associative, LRU, tag-only cache model (functional
//!   warming and timing need tags and recency, never data),
//! * [`Tlb`] — the same structure at page granularity,
//! * [`CacheHierarchy`] — the paper's L1I/L1D/unified-L2 + ITLB/DTLB
//!   arrangement (Table 1), reporting which level served each access,
//! * [`Csr`] — Barr et al.'s *Cache Set Record*: warmed state for a
//!   user-selected **maximum** cache configuration from which any smaller
//!   and/or less-associative cache can be reconstructed exactly
//!   (the paper's "storing adaptable warmed state", §4.3),
//! * [`Mtr`] — Barr et al.'s *Memory Timestamp Record*: per-block access
//!   timestamps supporting reconstruction of **arbitrary** geometries at
//!   a storage cost proportional to the touched footprint.
//!
//! The CSR is what live-points store; the MTR is retained for comparison
//! and ablation (its footprint-proportional cost is the reason the paper
//! bounds the maximum cache size instead).
//!
//! ## Example
//!
//! ```
//! use spectral_cache::{Cache, CacheConfig};
//!
//! let cfg = CacheConfig::new(32 * 1024, 2, 32)?;
//! let mut l1 = Cache::new(cfg);
//! assert!(!l1.access(0x1000, false)); // cold miss
//! assert!(l1.access(0x1000, false));  // now a hit
//! # Ok::<(), spectral_cache::CacheError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod config;
mod csr;
mod error;
mod hierarchy;
mod mtr;
mod tlb;

pub use cache::{Cache, CacheState, Eviction};
pub use config::CacheConfig;
pub use csr::{Csr, CsrEntry};
pub use error::CacheError;
pub use hierarchy::{
    AccessKind, AccessOutcome, CacheHierarchy, HierarchyConfig, HierarchySnapshot, HitLevel,
};
pub use mtr::Mtr;
pub use tlb::{Tlb, TlbConfig, TlbState};
