//! The paper's memory hierarchy: split L1 I/D, unified L2, split TLBs.

use crate::cache::{Cache, CacheState};
use crate::config::CacheConfig;
use crate::error::CacheError;
use crate::tlb::{Tlb, TlbConfig, TlbState};

/// What kind of access is being performed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Instruction fetch (L1I + ITLB path).
    Fetch,
    /// Data read (L1D + DTLB path).
    Read,
    /// Data write (L1D + DTLB path).
    Write,
}

/// Which level of the hierarchy served an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum HitLevel {
    /// Served by the first-level cache.
    L1,
    /// Missed L1, served by the unified L2.
    L2,
    /// Missed both caches; served by main memory.
    Memory,
}

/// Result of one hierarchy access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Deepest level consulted.
    pub level: HitLevel,
    /// Whether the TLB missed (adds a fixed penalty in the timing model).
    pub tlb_miss: bool,
    /// Whether a dirty line was evicted somewhere along the fill path.
    pub writeback: bool,
}

/// Geometry of the full hierarchy (one column of the paper's Table 1
/// memory system).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HierarchyConfig {
    /// L1 instruction cache geometry.
    pub l1i: CacheConfig,
    /// L1 data cache geometry.
    pub l1d: CacheConfig,
    /// Unified L2 geometry.
    pub l2: CacheConfig,
    /// Instruction TLB geometry.
    pub itlb: TlbConfig,
    /// Data TLB geometry.
    pub dtlb: TlbConfig,
}

impl HierarchyConfig {
    /// The paper's 8-way baseline memory system (Table 1): 32KB 2-way
    /// L1I/D with 32-byte lines, 1MB 4-way L2 with 128-byte lines,
    /// 4-way 128-entry ITLB and 4-way 256-entry DTLB.
    pub fn baseline_8way() -> Self {
        HierarchyConfig {
            l1i: CacheConfig::new(32 << 10, 2, 32).expect("valid"),
            l1d: CacheConfig::new(32 << 10, 2, 32).expect("valid"),
            l2: CacheConfig::new(1 << 20, 4, 128).expect("valid"),
            itlb: TlbConfig::new(128, 4, 4096).expect("valid"),
            dtlb: TlbConfig::new(256, 4, 4096).expect("valid"),
        }
    }

    /// The paper's aggressive 16-way memory system (Table 1): 64KB 2-way
    /// L1I/D, 4MB 8-way L2, same TLBs.
    pub fn aggressive_16way() -> Self {
        HierarchyConfig {
            l1i: CacheConfig::new(64 << 10, 2, 32).expect("valid"),
            l1d: CacheConfig::new(64 << 10, 2, 32).expect("valid"),
            l2: CacheConfig::new(4 << 20, 8, 128).expect("valid"),
            itlb: TlbConfig::new(128, 4, 4096).expect("valid"),
            dtlb: TlbConfig::new(256, 4, 4096).expect("valid"),
        }
    }
}

/// Warm state of the whole hierarchy, as stored in live-points when a
/// fixed configuration snapshot (rather than a CSR) is used.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct HierarchySnapshot {
    /// L1I warm state.
    pub l1i: CacheState,
    /// L1D warm state.
    pub l1d: CacheState,
    /// L2 warm state.
    pub l2: CacheState,
    /// ITLB warm state.
    pub itlb: TlbState,
    /// DTLB warm state.
    pub dtlb: TlbState,
}

/// A functional model of the two-level hierarchy with split TLBs.
///
/// The same model serves functional warming (driven by the committed
/// stream) and the timing model (which adds latencies, ports, and MSHRs
/// on top of the [`AccessOutcome`]s reported here).
#[derive(Debug, Clone)]
pub struct CacheHierarchy {
    config: HierarchyConfig,
    l1i: Cache,
    l1d: Cache,
    l2: Cache,
    itlb: Tlb,
    dtlb: Tlb,
}

impl CacheHierarchy {
    /// Create a cold hierarchy.
    pub fn new(config: HierarchyConfig) -> Self {
        CacheHierarchy {
            config,
            l1i: Cache::new(config.l1i),
            l1d: Cache::new(config.l1d),
            l2: Cache::new(config.l2),
            itlb: Tlb::new(config.itlb),
            dtlb: Tlb::new(config.dtlb),
        }
    }

    /// The hierarchy's geometry.
    pub fn config(&self) -> &HierarchyConfig {
        &self.config
    }

    /// Perform one access, updating all levels (allocate-on-miss in both
    /// caches; dirty L1 victims mark the corresponding L2 line dirty).
    pub fn access(&mut self, kind: AccessKind, addr: u64) -> AccessOutcome {
        let (l1, tlb) = match kind {
            AccessKind::Fetch => (&mut self.l1i, &mut self.itlb),
            AccessKind::Read | AccessKind::Write => (&mut self.l1d, &mut self.dtlb),
        };
        let write = kind == AccessKind::Write;
        let tlb_miss = !tlb.access(addr);
        let (l1_hit, l1_evict) = l1.access_full(addr, write);
        let mut writeback = false;
        let level = if l1_hit {
            HitLevel::L1
        } else {
            // Dirty L1 victim writes through to L2 (mark dirty if present).
            if let Some(ev) = l1_evict {
                if ev.dirty {
                    writeback = true;
                    let victim_addr = ev.block * self.config_line(kind);
                    if self.l2.probe(victim_addr) {
                        self.l2.access(victim_addr, true);
                    }
                }
            }
            let (l2_hit, l2_evict) = self.l2.access_full(addr, false);
            if let Some(ev) = l2_evict {
                writeback |= ev.dirty;
            }
            if l2_hit {
                HitLevel::L2
            } else {
                HitLevel::Memory
            }
        };
        AccessOutcome { level, tlb_miss, writeback }
    }

    fn config_line(&self, kind: AccessKind) -> u64 {
        match kind {
            AccessKind::Fetch => self.config.l1i.line_bytes(),
            _ => self.config.l1d.line_bytes(),
        }
    }

    /// Probe without perturbing state: returns the level that *would*
    /// serve an access to `addr`, or `None` for an unknown TLB/cache path.
    ///
    /// Used by the wrong-path approximation (paper §5: wrong-path load
    /// latency comes from cache *tag* state).
    pub fn probe(&self, kind: AccessKind, addr: u64) -> HitLevel {
        let l1 = match kind {
            AccessKind::Fetch => &self.l1i,
            _ => &self.l1d,
        };
        if l1.probe(addr) {
            HitLevel::L1
        } else if self.l2.probe(addr) {
            HitLevel::L2
        } else {
            HitLevel::Memory
        }
    }

    /// Shared view of the L1 instruction cache.
    pub fn l1i(&self) -> &Cache {
        &self.l1i
    }

    /// Shared view of the L1 data cache.
    pub fn l1d(&self) -> &Cache {
        &self.l1d
    }

    /// Shared view of the unified L2.
    pub fn l2(&self) -> &Cache {
        &self.l2
    }

    /// Shared view of the instruction TLB.
    pub fn itlb(&self) -> &Tlb {
        &self.itlb
    }

    /// Shared view of the data TLB.
    pub fn dtlb(&self) -> &Tlb {
        &self.dtlb
    }

    /// Zero all statistics counters.
    pub fn reset_stats(&mut self) {
        self.l1i.reset_stats();
        self.l1d.reset_stats();
        self.l2.reset_stats();
        self.itlb.reset_stats();
        self.dtlb.reset_stats();
    }

    /// Export the warm state of every structure.
    pub fn snapshot(&self) -> HierarchySnapshot {
        HierarchySnapshot {
            l1i: self.l1i.to_state(),
            l1d: self.l1d.to_state(),
            l2: self.l2.to_state(),
            itlb: self.itlb.to_state(),
            dtlb: self.dtlb.to_state(),
        }
    }

    /// Assemble a hierarchy from already-warm structures (the direct
    /// CSR-reconstruction path; each structure's geometry must match
    /// `config`).
    pub fn from_parts(
        config: HierarchyConfig,
        l1i: Cache,
        l1d: Cache,
        l2: Cache,
        itlb: Tlb,
        dtlb: Tlb,
    ) -> Self {
        debug_assert_eq!(*l1i.config(), config.l1i);
        debug_assert_eq!(*l1d.config(), config.l1d);
        debug_assert_eq!(*l2.config(), config.l2);
        CacheHierarchy { config, l1i, l1d, l2, itlb, dtlb }
    }

    /// Build a warm hierarchy from a snapshot.
    pub fn from_snapshot(config: HierarchyConfig, snap: &HierarchySnapshot) -> Self {
        CacheHierarchy {
            config,
            l1i: Cache::from_state(config.l1i, &snap.l1i),
            l1d: Cache::from_state(config.l1d, &snap.l1d),
            l2: Cache::from_state(config.l2, &snap.l2),
            itlb: Tlb::from_state(config.itlb, &snap.itlb),
            dtlb: Tlb::from_state(config.dtlb, &snap.dtlb),
        }
    }

    /// Validate that this hierarchy's geometry fits under `max` bounds
    /// (each cache covered by the corresponding maximum geometry).
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::TargetExceedsBounds`] naming the offending
    /// structure.
    pub fn check_within(config: &HierarchyConfig, max: &HierarchyConfig) -> Result<(), CacheError> {
        if !max.l1i.covers(&config.l1i) {
            return Err(CacheError::TargetExceedsBounds { what: "l1i" });
        }
        if !max.l1d.covers(&config.l1d) {
            return Err(CacheError::TargetExceedsBounds { what: "l1d" });
        }
        if !max.l2.covers(&config.l2) {
            return Err(CacheError::TargetExceedsBounds { what: "l2" });
        }
        if max.itlb.entries() < config.itlb.entries() || max.itlb.assoc() < config.itlb.assoc() {
            return Err(CacheError::TargetExceedsBounds { what: "itlb" });
        }
        if max.dtlb.entries() < config.dtlb.entries() || max.dtlb.assoc() < config.dtlb.assoc() {
            return Err(CacheError::TargetExceedsBounds { what: "dtlb" });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_configs() {
        let b = HierarchyConfig::baseline_8way();
        assert_eq!(b.l1d.size_bytes(), 32 << 10);
        assert_eq!(b.l2.size_bytes(), 1 << 20);
        assert_eq!(b.l2.assoc(), 4);
        assert_eq!(b.l2.line_bytes(), 128);
        assert_eq!(b.dtlb.entries(), 256);
        let a = HierarchyConfig::aggressive_16way();
        assert_eq!(a.l2.size_bytes(), 4 << 20);
        assert_eq!(a.l2.assoc(), 8);
        assert_eq!(a.l1i.size_bytes(), 64 << 10);
    }

    #[test]
    fn miss_fills_both_levels() {
        let mut h = CacheHierarchy::new(HierarchyConfig::baseline_8way());
        let out = h.access(AccessKind::Read, 0x1_0000);
        assert_eq!(out.level, HitLevel::Memory);
        assert!(out.tlb_miss);
        let out = h.access(AccessKind::Read, 0x1_0000);
        assert_eq!(out.level, HitLevel::L1);
        assert!(!out.tlb_miss);
    }

    #[test]
    fn l2_hit_after_l1_eviction() {
        let mut h = CacheHierarchy::new(HierarchyConfig::baseline_8way());
        // Fill one L1D set (2-way, 512 sets, 32B lines): stride 512*32.
        let stride = 512 * 32;
        h.access(AccessKind::Read, 0);
        h.access(AccessKind::Read, stride);
        h.access(AccessKind::Read, 2 * stride); // evicts block 0 from L1
        let out = h.access(AccessKind::Read, 0);
        assert_eq!(out.level, HitLevel::L2, "L2 retains what L1 evicted");
    }

    #[test]
    fn fetch_and_data_paths_are_split() {
        let mut h = CacheHierarchy::new(HierarchyConfig::baseline_8way());
        h.access(AccessKind::Fetch, 0x40_0000);
        assert_eq!(h.l1i().occupancy(), 1);
        assert_eq!(h.l1d().occupancy(), 0);
        h.access(AccessKind::Read, 0x40_0000);
        assert_eq!(h.l1d().occupancy(), 1);
    }

    #[test]
    fn probe_is_side_effect_free() {
        let mut h = CacheHierarchy::new(HierarchyConfig::baseline_8way());
        h.access(AccessKind::Read, 0x2000);
        let snap = h.snapshot();
        assert_eq!(h.probe(AccessKind::Read, 0x2000), HitLevel::L1);
        assert_eq!(h.probe(AccessKind::Read, 0x9_9999), HitLevel::Memory);
        assert_eq!(h.snapshot(), snap);
    }

    #[test]
    fn snapshot_roundtrip() {
        let cfg = HierarchyConfig::baseline_8way();
        let mut h = CacheHierarchy::new(cfg);
        for i in 0..5000u64 {
            h.access(AccessKind::Read, i.wrapping_mul(0x9E3779B9) % (1 << 22));
            h.access(AccessKind::Fetch, 0x40_0000 + (i % 4096) * 4);
        }
        let snap = h.snapshot();
        let restored = CacheHierarchy::from_snapshot(cfg, &snap);
        assert_eq!(restored.snapshot(), snap);
    }

    #[test]
    fn check_within_bounds() {
        let small = HierarchyConfig::baseline_8way();
        let big = HierarchyConfig::aggressive_16way();
        assert!(CacheHierarchy::check_within(&small, &big).is_ok());
        assert!(CacheHierarchy::check_within(&big, &small).is_err());
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut h = CacheHierarchy::new(HierarchyConfig::baseline_8way());
        let stride = 512 * 32;
        h.access(AccessKind::Write, 0); // dirty in L1
        h.access(AccessKind::Read, stride);
        let out = h.access(AccessKind::Read, 2 * stride); // evicts dirty block 0
        assert!(out.writeback);
    }
}
