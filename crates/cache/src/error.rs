//! Error type for cache-model construction and reconstruction.

use std::error::Error;
use std::fmt;

/// Errors from invalid cache/TLB geometry or unsupported reconstruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CacheError {
    /// A geometry parameter was zero or not a power of two.
    BadGeometry {
        /// Human-readable description of the offending parameter.
        what: &'static str,
    },
    /// Requested size is smaller than `assoc * line` (fewer than one set).
    TooSmall,
    /// A reconstruction target exceeds the bounds recorded at warm time.
    TargetExceedsBounds {
        /// Which bound was exceeded.
        what: &'static str,
    },
    /// A reconstruction target uses a different line size than recorded.
    LineMismatch {
        /// Line size the record was built with.
        recorded: u64,
        /// Line size requested.
        requested: u64,
    },
}

impl fmt::Display for CacheError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CacheError::BadGeometry { what } => {
                write!(f, "cache geometry parameter {what} must be a nonzero power of two")
            }
            CacheError::TooSmall => {
                write!(f, "cache size yields fewer than one set")
            }
            CacheError::TargetExceedsBounds { what } => {
                write!(f, "reconstruction target exceeds recorded bound: {what}")
            }
            CacheError::LineMismatch { recorded, requested } => {
                write!(f, "reconstruction line size {requested} differs from recorded {recorded}")
            }
        }
    }
}

impl Error for CacheError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_render() {
        for e in [
            CacheError::BadGeometry { what: "assoc" },
            CacheError::TooSmall,
            CacheError::TargetExceedsBounds { what: "size" },
            CacheError::LineMismatch { recorded: 32, requested: 64 },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
