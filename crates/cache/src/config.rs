//! Cache geometry configuration.

use crate::error::CacheError;
use std::fmt;

/// Geometry of a set-associative cache: total size, associativity, and
/// line size. All three must be powers of two.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheConfig {
    size_bytes: u64,
    assoc: u32,
    line_bytes: u64,
}

impl CacheConfig {
    /// Create a validated geometry.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::BadGeometry`] if any parameter is zero or
    /// not a power of two, and [`CacheError::TooSmall`] if the size does
    /// not accommodate at least one full set.
    pub fn new(size_bytes: u64, assoc: u32, line_bytes: u64) -> Result<Self, CacheError> {
        if size_bytes == 0 || !size_bytes.is_power_of_two() {
            return Err(CacheError::BadGeometry { what: "size_bytes" });
        }
        if assoc == 0 || !assoc.is_power_of_two() {
            return Err(CacheError::BadGeometry { what: "assoc" });
        }
        if line_bytes == 0 || !line_bytes.is_power_of_two() {
            return Err(CacheError::BadGeometry { what: "line_bytes" });
        }
        if size_bytes < assoc as u64 * line_bytes {
            return Err(CacheError::TooSmall);
        }
        Ok(CacheConfig { size_bytes, assoc, line_bytes })
    }

    /// Total capacity in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.size_bytes
    }

    /// Ways per set.
    pub fn assoc(&self) -> u32 {
        self.assoc
    }

    /// Line (block) size in bytes.
    pub fn line_bytes(&self) -> u64 {
        self.line_bytes
    }

    /// Number of sets.
    pub fn num_sets(&self) -> u64 {
        self.size_bytes / (self.assoc as u64 * self.line_bytes)
    }

    /// Number of lines (blocks) in the cache.
    pub fn num_lines(&self) -> u64 {
        self.size_bytes / self.line_bytes
    }

    /// Block number of `addr` (address divided by line size).
    #[inline]
    pub fn block_of(&self, addr: u64) -> u64 {
        addr / self.line_bytes
    }

    /// Set index for `addr`.
    #[inline]
    pub fn set_of(&self, addr: u64) -> u64 {
        self.block_of(addr) % self.num_sets()
    }

    /// Whether `target` can be exactly reconstructed from warm state
    /// recorded at `self` as the maximum configuration: same line size,
    /// associativity and set count no larger, and target sets dividing
    /// the recorded sets (so folding is well defined).
    pub fn covers(&self, target: &CacheConfig) -> bool {
        self.line_bytes == target.line_bytes
            && target.assoc <= self.assoc
            && target.num_sets() <= self.num_sets()
            && self.num_sets().is_multiple_of(target.num_sets())
    }
}

impl fmt::Display for CacheConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let size = self.size_bytes;
        if size >= 1 << 20 && size.is_multiple_of(1 << 20) {
            write!(f, "{}MB {}-way {}B-line", size >> 20, self.assoc, self.line_bytes)
        } else if size >= 1 << 10 {
            write!(f, "{}KB {}-way {}B-line", size >> 10, self.assoc, self.line_bytes)
        } else {
            write!(f, "{}B {}-way {}B-line", size, self.assoc, self.line_bytes)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_geometry() {
        let c = CacheConfig::new(32 * 1024, 2, 32).unwrap();
        assert_eq!(c.num_sets(), 512);
        assert_eq!(c.num_lines(), 1024);
    }

    #[test]
    fn rejects_non_power_of_two() {
        assert!(CacheConfig::new(3000, 2, 32).is_err());
        assert!(CacheConfig::new(4096, 3, 32).is_err());
        assert!(CacheConfig::new(4096, 2, 48).is_err());
        assert!(CacheConfig::new(0, 2, 32).is_err());
    }

    #[test]
    fn rejects_too_small() {
        assert_eq!(CacheConfig::new(64, 4, 32), Err(CacheError::TooSmall));
    }

    #[test]
    fn set_index_and_block() {
        let c = CacheConfig::new(1024, 2, 32).unwrap(); // 16 sets
        assert_eq!(c.block_of(0x40), 2);
        assert_eq!(c.set_of(0x40), 2);
        assert_eq!(c.set_of(0x40 + 16 * 32), 2, "wraps around sets");
    }

    #[test]
    fn covers_relation() {
        let max = CacheConfig::new(1 << 20, 4, 32).unwrap();
        let small = CacheConfig::new(1 << 15, 2, 32).unwrap();
        assert!(max.covers(&small));
        assert!(max.covers(&max));
        assert!(!small.covers(&max));
        let wrong_line = CacheConfig::new(1 << 15, 2, 64).unwrap();
        assert!(!max.covers(&wrong_line));
        // More sets than max even though smaller overall: 1MB direct-mapped
        // has 32768 sets vs max's 8192 — not coverable.
        let direct = CacheConfig::new(1 << 20, 1, 32).unwrap();
        assert!(!max.covers(&direct));
    }

    #[test]
    fn display_human_units() {
        assert_eq!(CacheConfig::new(1 << 20, 4, 128).unwrap().to_string(), "1MB 4-way 128B-line");
        assert_eq!(CacheConfig::new(32 << 10, 2, 32).unwrap().to_string(), "32KB 2-way 32B-line");
    }
}
