//! Set-associative, LRU, tag-only cache model.

use crate::config::CacheConfig;

/// A line evicted by an allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Eviction {
    /// Block number (address / line size) of the victim.
    pub block: u64,
    /// Whether the victim was dirty (would cause a writeback).
    pub dirty: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Line {
    pub(crate) block: u64,
    pub(crate) dirty: bool,
}

/// Serializable warm state of a cache: per-set lines in MRU-first order.
///
/// This is the representation embedded in live-points for structures
/// stored at a fixed configuration, and the output of
/// [`Csr::reconstruct`](crate::Csr::reconstruct).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CacheState {
    /// For each set, `(block_number, dirty)` in MRU-first order.
    pub sets: Vec<Vec<(u64, bool)>>,
}

impl CacheState {
    /// Total number of valid lines across all sets.
    pub fn line_count(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }
}

/// A set-associative cache with true-LRU replacement, modelling tags and
/// recency only (no data array — warming and timing never need values).
///
/// Statistics (hits/misses) accumulate until [`reset_stats`](Self::reset_stats).
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    /// MRU-first per-set recency lists.
    sets: Vec<Vec<Line>>,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Create an empty (cold) cache with the given geometry.
    pub fn new(config: CacheConfig) -> Self {
        let n = config.num_sets() as usize;
        Cache { config, sets: vec![Vec::new(); n], hits: 0, misses: 0 }
    }

    /// The cache's geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Access the line containing `addr`; returns `true` on hit.
    ///
    /// Misses allocate (any victim is silently dropped); use
    /// [`access_full`](Self::access_full) when the eviction matters.
    #[inline]
    pub fn access(&mut self, addr: u64, write: bool) -> bool {
        self.access_full(addr, write).0
    }

    /// Access the line containing `addr`; returns `(hit, eviction)`.
    pub fn access_full(&mut self, addr: u64, write: bool) -> (bool, Option<Eviction>) {
        let block = self.config.block_of(addr);
        let set_idx = (block % self.config.num_sets()) as usize;
        let assoc = self.config.assoc() as usize;
        let set = &mut self.sets[set_idx];

        if let Some(pos) = set.iter().position(|l| l.block == block) {
            let mut line = set.remove(pos);
            line.dirty |= write;
            set.insert(0, line);
            self.hits += 1;
            return (true, None);
        }

        self.misses += 1;
        let evicted = if set.len() == assoc {
            set.pop().map(|l| Eviction { block: l.block, dirty: l.dirty })
        } else {
            None
        };
        set.insert(0, Line { block, dirty: write });
        (false, evicted)
    }

    /// Probe without updating recency or allocating; `true` if resident.
    ///
    /// Used by the timing model's wrong-path approximation, which must
    /// consult tags without perturbing state it does not own, and by
    /// tests.
    pub fn probe(&self, addr: u64) -> bool {
        let block = self.config.block_of(addr);
        let set_idx = (block % self.config.num_sets()) as usize;
        self.sets[set_idx].iter().any(|l| l.block == block)
    }

    /// Invalidate the line containing `addr` if resident; returns whether
    /// a line was removed.
    pub fn invalidate(&mut self, addr: u64) -> bool {
        let block = self.config.block_of(addr);
        let set_idx = (block % self.config.num_sets()) as usize;
        let set = &mut self.sets[set_idx];
        match set.iter().position(|l| l.block == block) {
            Some(pos) => {
                set.remove(pos);
                true
            }
            None => false,
        }
    }

    /// Number of resident lines.
    pub fn occupancy(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// Lifetime hit count.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lifetime miss count.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Zero the hit/miss counters (state is untouched).
    pub fn reset_stats(&mut self) {
        self.hits = 0;
        self.misses = 0;
    }

    /// Drop all lines (cold cache) and keep statistics.
    pub fn flush(&mut self) {
        for s in &mut self.sets {
            s.clear();
        }
    }

    /// Export the warm state (tags + recency + dirty bits).
    pub fn to_state(&self) -> CacheState {
        CacheState {
            sets: self
                .sets
                .iter()
                .map(|s| s.iter().map(|l| (l.block, l.dirty)).collect())
                .collect(),
        }
    }

    /// Build a cache with geometry `config` holding exactly `state`.
    ///
    /// Entries beyond the associativity and sets beyond the geometry are
    /// truncated; this makes loading a state saved from the same geometry
    /// lossless while remaining total on malformed input.
    pub fn from_state(config: CacheConfig, state: &CacheState) -> Self {
        let n = config.num_sets() as usize;
        let assoc = config.assoc() as usize;
        let mut sets = vec![Vec::new(); n];
        for (i, src) in state.sets.iter().enumerate().take(n) {
            sets[i] = src.iter().take(assoc).map(|&(block, dirty)| Line { block, dirty }).collect();
        }
        Cache { config, sets, hits: 0, misses: 0 }
    }

    /// Assemble a cache directly from per-set MRU-first line lists (the
    /// allocation-lean path used by [`Csr::reconstruct_cache`]
    /// (crate::Csr::reconstruct_cache)). `sets` must already be sized to
    /// the geometry and truncated to the associativity.
    pub(crate) fn from_line_sets(config: CacheConfig, sets: Vec<Vec<Line>>) -> Self {
        debug_assert_eq!(sets.len(), config.num_sets() as usize);
        Cache { config, sets, hits: 0, misses: 0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(size: u64, assoc: u32, line: u64) -> CacheConfig {
        CacheConfig::new(size, assoc, line).unwrap()
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = Cache::new(cfg(1024, 2, 32));
        assert!(!c.access(0x100, false));
        assert!(c.access(0x100, false));
        assert!(c.access(0x104, false), "same line");
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        // 2-way, everything maps to one set: use stride = sets*line.
        let c_cfg = cfg(1024, 2, 32); // 16 sets
        let stride = 16 * 32;
        let mut c = Cache::new(c_cfg);
        c.access(0, false); // A
        c.access(stride, false); // B  (set now B,A)
        c.access(0, false); // A hit (A,B)
        let (hit, ev) = c.access_full(2 * stride, false); // C evicts B
        assert!(!hit);
        assert_eq!(ev, Some(Eviction { block: c_cfg.block_of(stride), dirty: false }));
        assert!(c.probe(0));
        assert!(!c.probe(stride));
    }

    #[test]
    fn dirty_tracked_through_eviction() {
        let c_cfg = cfg(64, 1, 32); // 2 sets, direct mapped
        let mut c = Cache::new(c_cfg);
        c.access(0, true); // dirty write
        let (_, ev) = c.access_full(64, false); // same set (2 sets * 32B = 64)
        assert!(ev.unwrap().dirty);
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut c = Cache::new(cfg(64, 1, 32));
        c.access(0, false);
        c.access(0, true); // hit, marks dirty
        let (_, ev) = c.access_full(64, false);
        assert!(ev.unwrap().dirty);
    }

    #[test]
    fn probe_does_not_perturb() {
        let mut c = Cache::new(cfg(1024, 2, 32));
        let stride = 16 * 32;
        c.access(0, false);
        c.access(stride, false);
        // Probing A must not refresh it:
        assert!(c.probe(0));
        let (_, ev) = c.access_full(2 * stride, false);
        // LRU victim is A (block 0) because probe didn't touch recency.
        assert_eq!(ev.unwrap().block, 0);
    }

    #[test]
    fn invalidate_removes() {
        let mut c = Cache::new(cfg(1024, 2, 32));
        c.access(0x40, false);
        assert!(c.invalidate(0x40));
        assert!(!c.probe(0x40));
        assert!(!c.invalidate(0x40));
    }

    #[test]
    fn state_roundtrip_preserves_recency_and_dirty() {
        let c_cfg = cfg(2048, 4, 32);
        let mut c = Cache::new(c_cfg);
        for i in 0..200u64 {
            c.access(i * 40, i % 3 == 0);
        }
        let state = c.to_state();
        let restored = Cache::from_state(c_cfg, &state);
        assert_eq!(restored.to_state(), state);
        assert_eq!(restored.occupancy(), c.occupancy());
    }

    #[test]
    fn flush_empties() {
        let mut c = Cache::new(cfg(1024, 2, 32));
        c.access(0, false);
        c.flush();
        assert_eq!(c.occupancy(), 0);
        assert!(!c.probe(0));
    }
}
