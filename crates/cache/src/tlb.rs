//! TLB model — a set-associative structure at page granularity.

use crate::cache::{Cache, CacheState};
use crate::config::CacheConfig;
use crate::error::CacheError;

/// Geometry of a TLB: entry count, associativity, and page size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TlbConfig {
    entries: u32,
    assoc: u32,
    page_bytes: u64,
}

impl TlbConfig {
    /// Create a validated TLB geometry.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError`] if any parameter is zero or not a power of
    /// two, or if `assoc > entries`.
    pub fn new(entries: u32, assoc: u32, page_bytes: u64) -> Result<Self, CacheError> {
        if entries == 0 || !entries.is_power_of_two() {
            return Err(CacheError::BadGeometry { what: "entries" });
        }
        if assoc == 0 || !assoc.is_power_of_two() {
            return Err(CacheError::BadGeometry { what: "assoc" });
        }
        if page_bytes == 0 || !page_bytes.is_power_of_two() {
            return Err(CacheError::BadGeometry { what: "page_bytes" });
        }
        if assoc > entries {
            return Err(CacheError::TooSmall);
        }
        Ok(TlbConfig { entries, assoc, page_bytes })
    }

    /// Total entry count.
    pub fn entries(&self) -> u32 {
        self.entries
    }

    /// Ways per set.
    pub fn assoc(&self) -> u32 {
        self.assoc
    }

    /// Page size in bytes.
    pub fn page_bytes(&self) -> u64 {
        self.page_bytes
    }

    fn as_cache_config(&self) -> CacheConfig {
        // A TLB is a cache of page translations: size = entries * page.
        CacheConfig::new(self.entries as u64 * self.page_bytes, self.assoc, self.page_bytes)
            .expect("validated TLB geometry maps to a valid cache geometry")
    }
}

/// Serializable warm TLB state (per-set MRU-ordered page numbers).
pub type TlbState = CacheState;

/// A set-associative, LRU TLB.
///
/// Internally a [`Cache`] whose "line size" is the page size, which gives
/// TLBs the same warm-state snapshot/restore and CSR-reconstruction
/// machinery as caches (the paper treats TLBs as cache-like structures
/// with adaptable stored state).
#[derive(Debug, Clone)]
pub struct Tlb {
    config: TlbConfig,
    inner: Cache,
}

impl Tlb {
    /// Create an empty (cold) TLB.
    pub fn new(config: TlbConfig) -> Self {
        Tlb { config, inner: Cache::new(config.as_cache_config()) }
    }

    /// The TLB's geometry.
    pub fn config(&self) -> &TlbConfig {
        &self.config
    }

    /// Look up the page containing `addr`; returns `true` on TLB hit and
    /// installs the translation on miss.
    #[inline]
    pub fn access(&mut self, addr: u64) -> bool {
        self.inner.access(addr, false)
    }

    /// Probe without perturbing recency.
    pub fn probe(&self, addr: u64) -> bool {
        self.inner.probe(addr)
    }

    /// Lifetime hit count.
    pub fn hits(&self) -> u64 {
        self.inner.hits()
    }

    /// Lifetime miss count.
    pub fn misses(&self) -> u64 {
        self.inner.misses()
    }

    /// Zero the statistics counters.
    pub fn reset_stats(&mut self) {
        self.inner.reset_stats();
    }

    /// Number of resident translations.
    pub fn occupancy(&self) -> usize {
        self.inner.occupancy()
    }

    /// Export warm state.
    pub fn to_state(&self) -> TlbState {
        self.inner.to_state()
    }

    /// Restore warm state into a fresh TLB of geometry `config`.
    pub fn from_state(config: TlbConfig, state: &TlbState) -> Self {
        Tlb { config, inner: Cache::from_state(config.as_cache_config(), state) }
    }

    /// Wrap an already-warm page-granularity cache as a TLB (the direct
    /// CSR-reconstruction path).
    ///
    /// # Panics
    ///
    /// Panics when `inner`'s geometry is not `config`'s cache view.
    pub fn from_warm_cache(config: TlbConfig, inner: Cache) -> Self {
        assert_eq!(
            *inner.config(),
            config.as_cache_config(),
            "warm cache geometry must match the TLB's cache view"
        );
        Tlb { config, inner }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_dtlb_geometry() {
        // Table 1: 4-way 256-entry DTLB.
        let t = TlbConfig::new(256, 4, 4096).unwrap();
        assert_eq!(t.entries(), 256);
        let tlb = Tlb::new(t);
        assert_eq!(tlb.occupancy(), 0);
    }

    #[test]
    fn miss_then_hit_same_page() {
        let mut tlb = Tlb::new(TlbConfig::new(16, 4, 4096).unwrap());
        assert!(!tlb.access(0x1000));
        assert!(tlb.access(0x1FF8), "same page");
        assert!(!tlb.access(0x2000), "next page");
        assert_eq!(tlb.hits(), 1);
        assert_eq!(tlb.misses(), 2);
    }

    #[test]
    fn rejects_assoc_beyond_entries() {
        assert!(TlbConfig::new(4, 8, 4096).is_err());
    }

    #[test]
    fn state_roundtrip() {
        let cfg = TlbConfig::new(32, 4, 4096).unwrap();
        let mut tlb = Tlb::new(cfg);
        for i in 0..100u64 {
            tlb.access(i * 8192);
        }
        let state = tlb.to_state();
        let restored = Tlb::from_state(cfg, &state);
        assert_eq!(restored.to_state(), state);
    }
}
