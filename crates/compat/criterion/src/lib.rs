//! Offline drop-in for the subset of the `criterion` crate this
//! workspace uses.
//!
//! The build environment has no registry access, so the workspace
//! path-patches `criterion` to this crate. Benches run a calibration
//! pass, then time `sample_size` batches and report min/median/max
//! per-iteration wall-clock. Measured medians are kept on the
//! [`Criterion`] instance ([`Criterion::results`]) so custom bench
//! mains can export machine-readable summaries.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::Instant;

pub use std::hint::black_box;

/// One completed measurement.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// `group/benchmark` identifier.
    pub id: String,
    /// Fastest per-iteration seconds observed.
    pub min_s: f64,
    /// Median per-iteration seconds.
    pub median_s: f64,
    /// Slowest per-iteration seconds observed.
    pub max_s: f64,
    /// Declared per-iteration throughput, if any.
    pub throughput: Option<Throughput>,
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    results: Vec<BenchResult>,
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), sample_size: 20, throughput: None }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let mut group = self.benchmark_group(id.to_owned());
        group.bench_function("single", f);
        self
    }

    /// All measurements completed so far.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }
}

/// Per-iteration throughput declaration.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Identifier rendered from a parameter value.
    pub fn from_parameter(p: impl fmt::Display) -> Self {
        BenchmarkId(p.to_string())
    }

    /// Identifier from a function name and a parameter value.
    pub fn new(name: impl Into<String>, p: impl fmt::Display) -> Self {
        BenchmarkId(format!("{}/{}", name.into(), p))
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_owned())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// A group of benchmarks sharing a name prefix and sampling settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of timed batches per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Declare per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Measure one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher { sample_size: self.sample_size, samples: Vec::new() };
        f(&mut b);
        self.record(id, b);
        self
    }

    /// Measure one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher { sample_size: self.sample_size, samples: Vec::new() };
        f(&mut b, input);
        self.record(id, b);
        self
    }

    fn record(&mut self, id: BenchmarkId, b: Bencher) {
        let mut samples = b.samples;
        if samples.is_empty() {
            return;
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
        let result = BenchResult {
            id: format!("{}/{}", self.name, id.0),
            min_s: samples[0],
            median_s: samples[samples.len() / 2],
            max_s: *samples.last().expect("nonempty"),
            throughput: self.throughput,
        };
        let rate = match self.throughput {
            Some(Throughput::Bytes(n)) => {
                format!("  {:>10}/s", fmt_bytes((n as f64 / result.median_s) as u64))
            }
            Some(Throughput::Elements(n)) => {
                format!("  {:>10.0} elem/s", n as f64 / result.median_s)
            }
            None => String::new(),
        };
        println!(
            "{:<48} time: [{} {} {}]{}",
            result.id,
            fmt_time(result.min_s),
            fmt_time(result.median_s),
            fmt_time(result.max_s),
            rate
        );
        self.criterion.results.push(result);
    }

    /// End the group (measurements are recorded as they run).
    pub fn finish(self) {}
}

/// Passed to benchmark closures to time the measured routine.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    samples: Vec<f64>,
}

impl Bencher {
    /// Time `f`, batching iterations so each sample spans enough
    /// wall-clock to be measurable.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let calibrate = Instant::now();
        black_box(f());
        let once = calibrate.elapsed().as_secs_f64();
        // Target ~25 ms per sample, 1..=1e6 iterations.
        let iters = (0.025 / once.max(1e-9)).ceil().clamp(1.0, 1e6) as u64;
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            self.samples.push(t.elapsed().as_secs_f64() / iters as f64);
        }
    }
}

fn fmt_time(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} µs", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

fn fmt_bytes(b: u64) -> String {
    if b >= 1 << 30 {
        format!("{:.2} GB", b as f64 / (1u64 << 30) as f64)
    } else if b >= 1 << 20 {
        format!("{:.2} MB", b as f64 / (1u64 << 20) as f64)
    } else if b >= 1 << 10 {
        format!("{:.2} KB", b as f64 / 1024.0)
    } else {
        format!("{b} B")
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate a `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_records() {
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("unit");
            g.sample_size(3);
            g.bench_function("spin", |b| {
                b.iter(|| (0..1000u64).sum::<u64>());
            });
            g.finish();
        }
        assert_eq!(c.results().len(), 1);
        let r = &c.results()[0];
        assert_eq!(r.id, "unit/spin");
        assert!(r.min_s <= r.median_s && r.median_s <= r.max_s);
        assert!(r.median_s > 0.0);
    }
}
