//! Offline drop-in for the subset of the `rand` crate this workspace
//! uses: a seedable deterministic generator ([`rngs::StdRng`]) and
//! Fisher–Yates shuffling ([`seq::SliceRandom`]).
//!
//! The build environment has no registry access, so the workspace
//! path-patches `rand` to this crate. Determinism is the only contract
//! the workspace relies on (seeded shuffles must be reproducible); the
//! stream itself is xoshiro256**, not the upstream `StdRng` stream.

#![forbid(unsafe_code)]

/// Core generator interface: a source of uniformly-distributed bits.
pub trait RngCore {
    /// The next 64 uniformly-distributed bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly-distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Generators constructible from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256** seeded via
    /// SplitMix64 (the reference seeding procedure).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::RngCore;

    /// Shuffling for slices.
    pub trait SliceRandom {
        /// Shuffle in place (Fisher–Yates), deterministic in the
        /// generator's stream.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                // Modulo bias is irrelevant at workspace scales (≤ a few
                // thousand elements against a 64-bit stream).
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{RngCore, SeedableRng};

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut v: Vec<u32> = (0..100).collect();
        let mut rng = StdRng::seed_from_u64(7);
        v.shuffle(&mut rng);
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "must actually move elements");
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }
}
