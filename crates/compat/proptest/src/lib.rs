//! Offline drop-in for the subset of the `proptest` crate this
//! workspace uses.
//!
//! The build environment has no registry access, so the workspace
//! path-patches `proptest` to this crate. It implements deterministic
//! random-input testing with the same surface the workspace's property
//! tests are written against — [`Strategy`] with `prop_map`, [`any`],
//! range and tuple strategies, [`collection::vec`] /
//! [`collection::btree_map`], string char-class patterns, and the
//! [`proptest!`] / `prop_assert*` / `prop_assume!` macros — but without
//! upstream's shrinking: a failing case panics with its seed so the run
//! is reproducible.

#![forbid(unsafe_code)]

use std::marker::PhantomData;
use std::ops::Range;

/// Deterministic case generator (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Create a generator for one test case.
    pub fn new(seed: u64) -> Self {
        TestRng(seed)
    }

    /// Next 64 uniformly-distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// Uniform value in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A generator of test-case values.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { strategy: self, map: f }
    }
}

/// Strategy adapter created by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    strategy: S,
    map: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.map)(self.strategy.new_value(rng))
    }
}

/// Types with a canonical full-range strategy (see [`any`]).
pub trait Arbitrary {
    /// Generate one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {
        $(impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        })*
    };
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite values spanning a wide magnitude range.
        (rng.unit_f64() - 0.5) * 2e12
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> [T; N] {
        std::array::from_fn(|_| T::arbitrary(rng))
    }
}

/// Full-range strategy for `T` (`any::<u64>()`, `any::<bool>()`, …).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {
        $(impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                assert!(span > 0, "empty range strategy");
                (self.start as u64).wrapping_add(rng.below(span)) as $t
            }
        })*
    };
}
range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty),*) => {
        $(impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                assert!(span > 0, "empty range strategy");
                ((self.start as i64).wrapping_add(rng.below(span) as i64)) as $t
            }
        })*
    };
}
signed_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn new_value(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

/// String strategies from char-class patterns: a `&str` of the form
/// `"[class]{min,max}"` (e.g. `"[a-zA-Z0-9 ]{0,64}"`) is a strategy
/// producing strings of `min..=max` characters drawn from the class.
impl Strategy for &str {
    type Value = String;

    fn new_value(&self, rng: &mut TestRng) -> String {
        let (alphabet, min, max) = parse_char_class_pattern(self)
            .unwrap_or_else(|| panic!("unsupported string pattern {self:?}"));
        let len = min + rng.below((max - min + 1) as u64) as usize;
        (0..len).map(|_| alphabet[rng.below(alphabet.len() as u64) as usize]).collect()
    }
}

/// Parse `[chars]{min,max}` into (alphabet, min, max). Supports literal
/// characters and `a-z` ranges inside the class.
fn parse_char_class_pattern(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pattern.strip_prefix('[')?;
    let close = rest.find(']')?;
    let class: Vec<char> = rest[..close].chars().collect();
    let counts = rest[close + 1..].strip_prefix('{')?.strip_suffix('}')?;
    let (min, max) = match counts.split_once(',') {
        Some((a, b)) => (a.parse().ok()?, b.parse().ok()?),
        None => {
            let n = counts.parse().ok()?;
            (n, n)
        }
    };
    let mut alphabet = Vec::new();
    let mut i = 0;
    while i < class.len() {
        if i + 2 < class.len() && class[i + 1] == '-' {
            let (lo, hi) = (class[i] as u32, class[i + 2] as u32);
            for c in lo..=hi {
                alphabet.push(char::from_u32(c)?);
            }
            i += 3;
        } else {
            alphabet.push(class[i]);
            i += 1;
        }
    }
    if alphabet.is_empty() || max < min {
        return None;
    }
    Some((alphabet, min, max))
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);
tuple_strategy!(A, B, C, D, E, F, G, H, I);
tuple_strategy!(A, B, C, D, E, F, G, H, I, J);

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::BTreeMap;
    use std::ops::Range;

    /// Element-count bounds for collection strategies.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        /// Exclusive upper bound.
        max: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.end > r.start, "empty size range");
            SizeRange { min: r.start, max: r.end }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { min: n, max: n + 1 }
        }
    }

    impl SizeRange {
        fn sample(&self, rng: &mut TestRng) -> usize {
            self.min + rng.below((self.max - self.min) as u64) as usize
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// Strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// Strategy for `BTreeMap<K::Value, V::Value>` with *up to* `size`
    /// entries (duplicate keys collapse, as upstream).
    pub fn btree_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        size: impl Into<SizeRange>,
    ) -> BTreeMapStrategy<K, V> {
        BTreeMapStrategy { key, value, size: size.into() }
    }

    /// Strategy returned by [`btree_map`].
    #[derive(Debug, Clone)]
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;

        fn new_value(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
            let n = self.size.sample(rng);
            (0..n).map(|_| (self.key.new_value(rng), self.value.new_value(rng))).collect()
        }
    }
}

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// The common imports property tests use.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        ProptestConfig, Strategy,
    };
}

#[doc(hidden)]
pub fn __fnv1a(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Define property tests: each `#[test] fn name(arg in strategy, …)`
/// item becomes a `#[test]` running `cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr); $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let __seed = $crate::__fnv1a(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__cfg.cases {
                    let __case_seed = __seed ^ (__case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                    let mut __rng = $crate::TestRng::new(__case_seed);
                    $(let $arg = $crate::Strategy::new_value(&$strat, &mut __rng);)*
                    // `prop_assume!` skips a case by returning from this
                    // closure; assertion failures panic with the case
                    // seed for reproducibility.
                    let __run = || { $body };
                    __run();
                }
            }
        )*
    };
}

/// Assert inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Assert equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Assert inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Skip the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::TestRng::new(1);
        for _ in 0..1000 {
            let v = crate::Strategy::new_value(&(3u64..17), &mut rng);
            assert!((3..17).contains(&v));
            let s = crate::Strategy::new_value(&(-5i64..5), &mut rng);
            assert!((-5..5).contains(&s));
            let f = crate::Strategy::new_value(&(0.25f64..0.5), &mut rng);
            assert!((0.25..0.5).contains(&f));
        }
    }

    #[test]
    fn string_pattern_respects_class_and_length() {
        let mut rng = crate::TestRng::new(2);
        for _ in 0..200 {
            let s = crate::Strategy::new_value(&"[a-c9 ]{2,6}", &mut rng);
            assert!(s.chars().count() >= 2 && s.chars().count() <= 6);
            assert!(s.chars().all(|c| "abc9 ".contains(c)), "{s:?}");
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let strat = crate::collection::vec(any::<u64>(), 0..8);
        let a: Vec<_> = (0..20)
            .map(|i| crate::Strategy::new_value(&strat, &mut crate::TestRng::new(i)))
            .collect();
        let b: Vec<_> = (0..20)
            .map(|i| crate::Strategy::new_value(&strat, &mut crate::TestRng::new(i)))
            .collect();
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_generates_and_assumes(v in crate::collection::vec(any::<u8>(), 0..32), n in 1usize..8) {
            prop_assume!(!v.is_empty());
            prop_assert!(v.len() < 32);
            prop_assert_eq!(n.min(8), n);
        }
    }
}
