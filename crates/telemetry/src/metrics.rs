//! Lock-free metrics: sharded counters, gauges, and log₂ histograms.
//!
//! Each metric is declared as a `static` at its instrumentation site and
//! registers itself with the process-wide registry on first touch, so
//! [`snapshot`] sees exactly the metrics the run exercised. Counter and
//! histogram cells are sharded across cache-line-padded atomics indexed
//! by a per-thread id, so concurrent workers (e.g. `run_parallel`
//! shards) increment disjoint lines; a snapshot sums the shards.

use std::fmt::Write as _;

/// Number of log₂ buckets in a [`Histogram`]: bucket 0 holds zeros,
/// bucket `i ≥ 1` holds values in `[2^(i-1), 2^i)`, bucket 64 holds
/// `[2^63, u64::MAX]`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// The log₂ bucket a value falls into.
fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// An immutable, mergeable histogram snapshot.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (see [`HISTOGRAM_BUCKETS`]).
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values (wrapping on overflow).
    pub sum: u64,
}

impl HistogramSnapshot {
    /// An empty snapshot.
    pub fn new() -> Self {
        HistogramSnapshot { buckets: vec![0; HISTOGRAM_BUCKETS], count: 0, sum: 0 }
    }

    /// The bucket a value would land in (exposed for tests and
    /// summarization).
    pub fn bucket_of(value: u64) -> usize {
        bucket_index(value)
    }

    /// The inclusive value range `[lo, hi]` of bucket `i`.
    pub fn bucket_range(i: usize) -> (u64, u64) {
        match i {
            0 => (0, 0),
            64 => (1 << 63, u64::MAX),
            _ => (1 << (i - 1), (1 << i) - 1),
        }
    }

    /// Record one observation (snapshots are plain data; this supports
    /// building expected values in tests and offline aggregation).
    pub fn record(&mut self, value: u64) {
        self.buckets[bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.wrapping_add(value);
    }

    /// Element-wise merge: `(a ⊕ b) ⊕ c == a ⊕ (b ⊕ c)` and
    /// `a ⊕ b == b ⊕ a` — shard aggregation is order-independent.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
    }

    /// Mean observed value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The bucket index and 1-based rank of the `q`-quantile
    /// (`0.0 ..= 1.0`); `None` when empty.
    fn quantile_bucket(&self, q: f64) -> Option<(usize, u64)> {
        if self.count == 0 {
            return None;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some((i, rank));
            }
        }
        Some((HISTOGRAM_BUCKETS - 1, rank))
    }

    /// Upper bound of the bucket containing the `q`-quantile
    /// (`0.0 ..= 1.0`) of the recorded distribution; `None` when empty.
    ///
    /// Log₂ buckets are wide, so this bound can overstate the true
    /// quantile by up to 2×; use [`quantile`](Self::quantile) for an
    /// interpolated estimate.
    pub fn quantile_bound(&self, q: f64) -> Option<u64> {
        self.quantile_bucket(q).map(|(i, _)| Self::bucket_range(i).1)
    }

    /// The `q`-quantile (`0.0 ..= 1.0`), linearly interpolated within
    /// its log₂ bucket by rank position; `None` when empty.
    ///
    /// With all observations in one bucket the estimate walks from the
    /// bucket's lower edge to its upper edge as `q` goes to 1, instead
    /// of pinning every quantile to the upper edge the way
    /// [`quantile_bound`](Self::quantile_bound) does.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let (i, rank) = self.quantile_bucket(q)?;
        let in_bucket = self.buckets[i];
        let before: u64 = self.buckets[..i].iter().sum();
        let (lo, hi) = Self::bucket_range(i);
        if in_bucket == 0 {
            return Some(hi as f64);
        }
        let position = (rank - before) as f64 / in_bucket as f64;
        Some(lo as f64 + (hi - lo) as f64 * position)
    }
}

/// A point-in-time copy of every registered metric, sorted by name.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Counter totals.
    pub counters: Vec<(String, u64)>,
    /// Gauge values.
    pub gauges: Vec<(String, i64)>,
    /// Histogram snapshots.
    pub histograms: Vec<(String, HistogramSnapshot)>,
    /// Span aggregates: `(name, close_count, total_ns)`.
    pub spans: Vec<(String, u64, u64)>,
}

impl MetricsSnapshot {
    /// Look up a counter total by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Look up a histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|(n, _)| n == name).map(|(_, h)| h)
    }

    /// Merge `other` into `self`, by metric name. The per-kind contract:
    ///
    /// * **counters** — totals add (commutative and associative, like
    ///   shard aggregation).
    /// * **gauges** — *last-write-wins*: when both snapshots define a
    ///   gauge, `other`'s value replaces `self`'s. A gauge is a level,
    ///   not a flow — summing two observations of the same level would
    ///   double it. This makes gauge merge associative but **not**
    ///   commutative: `a ⊕ b ⊕ c` keeps the right-most observation,
    ///   whatever the grouping, so merge in chronological order.
    /// * **histograms** — element-wise bucket addition
    ///   ([`HistogramSnapshot::merge`]).
    /// * **spans** — close counts and total nanoseconds add.
    ///
    /// The result is deterministic: entries are re-sorted by name, so
    /// the output order never depends on which side a name came from.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        fn merge_by_name<V: Clone>(
            dst: &mut Vec<(String, V)>,
            src: &[(String, V)],
            mut combine: impl FnMut(&mut V, &V),
        ) {
            for (name, v) in src {
                match dst.iter_mut().find(|(n, _)| n == name) {
                    Some((_, existing)) => combine(existing, v),
                    None => dst.push((name.clone(), v.clone())),
                }
            }
            dst.sort_by(|a, b| a.0.cmp(&b.0));
        }
        merge_by_name(&mut self.counters, &other.counters, |a, b| *a += b);
        merge_by_name(&mut self.gauges, &other.gauges, |a, b| *a = *b);
        merge_by_name(&mut self.histograms, &other.histograms, |a, b| a.merge(b));
        let spans: Vec<(String, (u64, u64))> =
            self.spans.iter().map(|(n, c, t)| (n.clone(), (*c, *t))).collect();
        let other_spans: Vec<(String, (u64, u64))> =
            other.spans.iter().map(|(n, c, t)| (n.clone(), (*c, *t))).collect();
        let mut merged = spans;
        merge_by_name(&mut merged, &other_spans, |a, b| {
            a.0 += b.0;
            a.1 += b.1;
        });
        self.spans = merged.into_iter().map(|(n, (c, t))| (n, c, t)).collect();
    }

    /// Serialize as a JSON object: `{"counters": {...}, "gauges": {...},
    /// "histograms": {name: {count, sum, mean, p50, p99, p50_ub, p99_ub,
    /// buckets}}, "spans": {name: {count, total_ns}}}`. `p50`/`p99` are
    /// within-bucket interpolated quantiles ([`HistogramSnapshot::quantile`]);
    /// `p50_ub`/`p99_ub` are the raw bucket upper bounds the pre-v2
    /// `p50`/`p99` fields used to report. Histogram `buckets` is a
    /// sparse `{"<index>": count}` map of non-empty buckets.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{");
        s.push_str("\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "{}:{v}", crate::json::quote(name));
        }
        s.push_str("},\"gauges\":{");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "{}:{v}", crate::json::quote(name));
        }
        s.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{}:{{\"count\":{},\"sum\":{},\"mean\":{},\"p50\":{},\"p99\":{},\
                 \"p50_ub\":{},\"p99_ub\":{},\"buckets\":{{",
                crate::json::quote(name),
                h.count,
                h.sum,
                crate::json::number(h.mean()),
                crate::json::number(h.quantile(0.50).unwrap_or(0.0)),
                crate::json::number(h.quantile(0.99).unwrap_or(0.0)),
                h.quantile_bound(0.50).unwrap_or(0),
                h.quantile_bound(0.99).unwrap_or(0),
            );
            let mut first = true;
            for (b, &c) in h.buckets.iter().enumerate() {
                if c > 0 {
                    if !first {
                        s.push(',');
                    }
                    first = false;
                    let _ = write!(s, "\"{b}\":{c}");
                }
            }
            s.push_str("}}");
        }
        s.push_str("},\"spans\":{");
        for (i, (name, count, ns)) in self.spans.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ =
                write!(s, "{}:{{\"count\":{count},\"total_ns\":{ns}}}", crate::json::quote(name));
        }
        s.push_str("}}");
        s
    }
}

#[cfg(feature = "enabled")]
mod imp {
    use super::{bucket_index, HistogramSnapshot, MetricsSnapshot, HISTOGRAM_BUCKETS};
    use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
    use std::sync::{Mutex, Once};
    use std::time::Instant;

    /// Shards per metric: enough to keep an 8–16-worker run off shared
    /// cache lines without bloating every counter.
    const SHARDS: usize = 16;

    /// One cache line per cell so two workers' increments never share a
    /// line.
    #[repr(align(64))]
    #[derive(Debug)]
    struct Cell(AtomicU64);

    impl Cell {
        const fn new() -> Self {
            Cell(AtomicU64::new(0))
        }
    }

    static NEXT_THREAD: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static THREAD_SHARD: usize = NEXT_THREAD.fetch_add(1, Ordering::Relaxed) % SHARDS;
    }

    fn shard() -> usize {
        THREAD_SHARD.with(|s| *s)
    }

    struct Registry {
        counters: Mutex<Vec<&'static Counter>>,
        gauges: Mutex<Vec<&'static Gauge>>,
        histograms: Mutex<Vec<&'static Histogram>>,
    }

    static REGISTRY: Registry = Registry {
        counters: Mutex::new(Vec::new()),
        gauges: Mutex::new(Vec::new()),
        histograms: Mutex::new(Vec::new()),
    };

    /// A monotone event counter, sharded across padded atomic cells.
    #[derive(Debug)]
    pub struct Counter {
        name: &'static str,
        registered: Once,
        cells: [Cell; SHARDS],
    }

    impl Counter {
        /// Declare a counter (use in a `static`).
        pub const fn new(name: &'static str) -> Self {
            Counter { name, registered: Once::new(), cells: [const { Cell::new() }; SHARDS] }
        }

        /// Add `n` to the calling thread's shard.
        #[inline]
        pub fn add(&'static self, n: u64) {
            self.registered.call_once(|| {
                REGISTRY.counters.lock().expect("registry lock").push(self);
            });
            self.cells[shard()].0.fetch_add(n, Ordering::Relaxed);
        }

        /// Increment by one.
        #[inline]
        pub fn inc(&'static self) {
            self.add(1);
        }

        /// Sum over all shards.
        pub fn get(&self) -> u64 {
            self.cells.iter().map(|c| c.0.load(Ordering::Relaxed)).sum()
        }

        fn reset(&self) {
            for c in &self.cells {
                c.0.store(0, Ordering::Relaxed);
            }
        }
    }

    /// A last-value-wins instantaneous value.
    #[derive(Debug)]
    pub struct Gauge {
        name: &'static str,
        registered: Once,
        value: AtomicI64,
    }

    impl Gauge {
        /// Declare a gauge (use in a `static`).
        pub const fn new(name: &'static str) -> Self {
            Gauge { name, registered: Once::new(), value: AtomicI64::new(0) }
        }

        /// Set the value.
        #[inline]
        pub fn set(&'static self, v: i64) {
            self.registered.call_once(|| {
                REGISTRY.gauges.lock().expect("registry lock").push(self);
            });
            self.value.store(v, Ordering::Relaxed);
        }

        /// Current value.
        pub fn get(&self) -> i64 {
            self.value.load(Ordering::Relaxed)
        }
    }

    /// A log₂-bucketed histogram with sharded count/sum accumulators.
    #[derive(Debug)]
    pub struct Histogram {
        name: &'static str,
        registered: Once,
        buckets: [AtomicU64; HISTOGRAM_BUCKETS],
        count: [Cell; SHARDS],
        sum: [Cell; SHARDS],
    }

    impl Histogram {
        /// Declare a histogram (use in a `static`).
        pub const fn new(name: &'static str) -> Self {
            Histogram {
                name,
                registered: Once::new(),
                buckets: [const { AtomicU64::new(0) }; HISTOGRAM_BUCKETS],
                count: [const { Cell::new() }; SHARDS],
                sum: [const { Cell::new() }; SHARDS],
            }
        }

        /// Record one observation.
        #[inline]
        pub fn record(&'static self, value: u64) {
            self.registered.call_once(|| {
                REGISTRY.histograms.lock().expect("registry lock").push(self);
            });
            self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
            let s = shard();
            self.count[s].0.fetch_add(1, Ordering::Relaxed);
            self.sum[s].0.fetch_add(value, Ordering::Relaxed);
        }

        /// Copy out a mergeable snapshot.
        pub fn snapshot(&self) -> HistogramSnapshot {
            HistogramSnapshot {
                buckets: self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
                count: self.count.iter().map(|c| c.0.load(Ordering::Relaxed)).sum(),
                sum: self.sum.iter().fold(0u64, |a, c| a.wrapping_add(c.0.load(Ordering::Relaxed))),
            }
        }

        fn reset(&self) {
            for b in &self.buckets {
                b.store(0, Ordering::Relaxed);
            }
            for c in self.count.iter().chain(&self.sum) {
                c.0.store(0, Ordering::Relaxed);
            }
        }
    }

    /// A wall-clock stopwatch; pairs with counter `_ns` metrics.
    #[derive(Debug)]
    pub struct Stopwatch(Instant);

    impl Stopwatch {
        /// Start timing.
        #[inline]
        pub fn start() -> Self {
            Stopwatch(Instant::now())
        }

        /// Elapsed nanoseconds (saturating at `u64::MAX`).
        #[inline]
        pub fn ns(&self) -> u64 {
            u64::try_from(self.0.elapsed().as_nanos()).unwrap_or(u64::MAX)
        }
    }

    /// Snapshot every registered metric, sorted by name.
    pub fn snapshot() -> MetricsSnapshot {
        let mut snap = MetricsSnapshot {
            counters: REGISTRY
                .counters
                .lock()
                .expect("registry lock")
                .iter()
                .map(|c| (c.name.to_owned(), c.get()))
                .collect(),
            gauges: REGISTRY
                .gauges
                .lock()
                .expect("registry lock")
                .iter()
                .map(|g| (g.name.to_owned(), g.get()))
                .collect(),
            histograms: REGISTRY
                .histograms
                .lock()
                .expect("registry lock")
                .iter()
                .map(|h| (h.name.to_owned(), h.snapshot()))
                .collect(),
            spans: crate::span::aggregates(),
        };
        snap.counters.sort();
        snap.gauges.sort();
        snap.histograms.sort_by(|a, b| a.0.cmp(&b.0));
        snap.spans.sort();
        snap
    }

    /// Zero every registered metric and span aggregate (benchmark /
    /// test isolation; concurrent recorders may land increments after
    /// the reset).
    pub fn reset() {
        for c in REGISTRY.counters.lock().expect("registry lock").iter() {
            c.reset();
        }
        for g in REGISTRY.gauges.lock().expect("registry lock").iter() {
            g.value.store(0, Ordering::Relaxed);
        }
        for h in REGISTRY.histograms.lock().expect("registry lock").iter() {
            h.reset();
        }
        crate::span::reset_aggregates();
    }
}

#[cfg(not(feature = "enabled"))]
mod imp {
    use super::{HistogramSnapshot, MetricsSnapshot};

    /// Disabled-build counter: every operation is an inlined no-op.
    #[derive(Debug)]
    pub struct Counter;

    impl Counter {
        /// No-op.
        pub const fn new(_name: &'static str) -> Self {
            Counter
        }

        /// No-op.
        #[inline(always)]
        pub fn add(&self, _n: u64) {}

        /// No-op.
        #[inline(always)]
        pub fn inc(&self) {}

        /// Always zero.
        #[inline(always)]
        pub fn get(&self) -> u64 {
            0
        }
    }

    /// Disabled-build gauge.
    #[derive(Debug)]
    pub struct Gauge;

    impl Gauge {
        /// No-op.
        pub const fn new(_name: &'static str) -> Self {
            Gauge
        }

        /// No-op.
        #[inline(always)]
        pub fn set(&self, _v: i64) {}

        /// Always zero.
        #[inline(always)]
        pub fn get(&self) -> i64 {
            0
        }
    }

    /// Disabled-build histogram.
    #[derive(Debug)]
    pub struct Histogram;

    impl Histogram {
        /// No-op.
        pub const fn new(_name: &'static str) -> Self {
            Histogram
        }

        /// No-op.
        #[inline(always)]
        pub fn record(&self, _value: u64) {}

        /// Always empty.
        pub fn snapshot(&self) -> HistogramSnapshot {
            HistogramSnapshot::new()
        }
    }

    /// Disabled-build stopwatch: no clock read.
    #[derive(Debug)]
    pub struct Stopwatch;

    impl Stopwatch {
        /// No-op.
        #[inline(always)]
        pub fn start() -> Self {
            Stopwatch
        }

        /// Always zero.
        #[inline(always)]
        pub fn ns(&self) -> u64 {
            0
        }
    }

    /// Always empty.
    pub fn snapshot() -> MetricsSnapshot {
        MetricsSnapshot::default()
    }

    /// No-op.
    pub fn reset() {}
}

pub use imp::{reset, snapshot, Counter, Gauge, Histogram, Stopwatch};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_ranges_cover() {
        assert_eq!(HistogramSnapshot::bucket_of(0), 0);
        assert_eq!(HistogramSnapshot::bucket_of(1), 1);
        assert_eq!(HistogramSnapshot::bucket_of(2), 2);
        assert_eq!(HistogramSnapshot::bucket_of(3), 2);
        assert_eq!(HistogramSnapshot::bucket_of(4), 3);
        assert_eq!(HistogramSnapshot::bucket_of(u64::MAX), 64);
        for i in 0..HISTOGRAM_BUCKETS {
            let (lo, hi) = HistogramSnapshot::bucket_range(i);
            assert_eq!(HistogramSnapshot::bucket_of(lo), i);
            assert_eq!(HistogramSnapshot::bucket_of(hi), i);
        }
    }

    #[test]
    fn quantile_interpolates_within_bucket() {
        let mut h = HistogramSnapshot::new();
        // 100 observations, all in bucket [512, 1023]: the raw bucket
        // bound pins every quantile to 1023, overstating by up to 2x.
        for _ in 0..100 {
            h.record(700);
        }
        assert_eq!(h.quantile_bound(0.50), Some(1023));
        let p50 = h.quantile(0.50).unwrap();
        assert!((p50 - 767.5).abs() < 1e-9, "rank 50/100 sits mid-bucket, got {p50}");
        let p99 = h.quantile(0.99).unwrap();
        assert!(p50 < p99 && p99 < 1023.0, "p99 {p99} interpolates below the bucket edge");
        assert_eq!(h.quantile(1.0), Some(1023.0), "p100 is the bucket's upper edge");
    }

    #[test]
    fn quantile_walks_buckets() {
        let mut h = HistogramSnapshot::new();
        for v in [1u64, 2, 4, 8, 16, 32, 64, 128, 256, 512] {
            h.record(v);
        }
        // Ten singleton buckets: each decile exhausts its bucket, so the
        // estimate is that bucket's upper edge, and deciles are strictly
        // increasing across buckets.
        assert_eq!(h.quantile(0.1), Some(1.0));
        assert_eq!(h.quantile(0.5), Some(31.0), "rank 5 exhausts the [16,31] bucket");
        assert_eq!(h.quantile(1.0), Some(1023.0));
        let deciles: Vec<f64> = (1..=10).map(|d| h.quantile(d as f64 / 10.0).unwrap()).collect();
        assert!(deciles.windows(2).all(|w| w[0] < w[1]), "monotonic deciles {deciles:?}");
    }

    #[test]
    fn quantile_empty_and_zero() {
        let h = HistogramSnapshot::new();
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.quantile_bound(0.5), None);
        let mut h = HistogramSnapshot::new();
        h.record(0);
        assert_eq!(h.quantile(0.99), Some(0.0));
        assert_eq!(h.quantile_bound(0.99), Some(0));
    }

    #[test]
    fn snapshot_json_reports_both_quantile_forms() {
        let mut h = HistogramSnapshot::new();
        for _ in 0..10 {
            h.record(700);
        }
        let snap = MetricsSnapshot {
            histograms: vec![("test.hist".into(), h)],
            ..MetricsSnapshot::default()
        };
        let doc = crate::json::JsonValue::parse(&snap.to_json()).expect("valid JSON");
        let hist = doc.get("histograms").and_then(|o| o.get("test.hist")).expect("histogram");
        let p50 = hist.get("p50").and_then(crate::json::JsonValue::as_f64).unwrap();
        assert!(p50 < 1023.0, "p50 {p50} must be interpolated");
        assert_eq!(hist.get("p50_ub").and_then(crate::json::JsonValue::as_u64), Some(1023));
        assert_eq!(hist.get("p99_ub").and_then(crate::json::JsonValue::as_u64), Some(1023));
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn counter_shards_sum() {
        static C: Counter = Counter::new("test.metrics.counter_shards_sum");
        C.add(3);
        C.add(4);
        assert_eq!(C.get(), 7);
        assert!(snapshot().counter("test.metrics.counter_shards_sum").unwrap() >= 7);
    }

    #[cfg(not(feature = "enabled"))]
    #[test]
    fn disabled_ops_are_noops() {
        static C: Counter = Counter::new("noop");
        static H: Histogram = Histogram::new("noop");
        static G: Gauge = Gauge::new("noop");
        C.add(10);
        H.record(10);
        G.set(10);
        assert_eq!(C.get(), 0);
        assert_eq!(H.snapshot().count, 0);
        assert_eq!(G.get(), 0);
        assert_eq!(Stopwatch::start().ns(), 0);
        assert!(snapshot().counters.is_empty());
    }
}
