//! Lock-free metrics: sharded counters, gauges, and log₂ histograms.
//!
//! Each metric is declared as a `static` at its instrumentation site and
//! registers itself with the process-wide registry on first touch, so
//! [`snapshot`] sees exactly the metrics the run exercised. Counter and
//! histogram cells are sharded across cache-line-padded atomics indexed
//! by a per-thread id, so concurrent workers (e.g. `run_parallel`
//! shards) increment disjoint lines; a snapshot sums the shards.

use std::fmt::Write as _;

/// Number of log₂ buckets in a [`Histogram`]: bucket 0 holds zeros,
/// bucket `i ≥ 1` holds values in `[2^(i-1), 2^i)`, bucket 64 holds
/// `[2^63, u64::MAX]`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// The log₂ bucket a value falls into.
fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// An immutable, mergeable histogram snapshot.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (see [`HISTOGRAM_BUCKETS`]).
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values (wrapping on overflow).
    pub sum: u64,
}

impl HistogramSnapshot {
    /// An empty snapshot.
    pub fn new() -> Self {
        HistogramSnapshot { buckets: vec![0; HISTOGRAM_BUCKETS], count: 0, sum: 0 }
    }

    /// The bucket a value would land in (exposed for tests and
    /// summarization).
    pub fn bucket_of(value: u64) -> usize {
        bucket_index(value)
    }

    /// The inclusive value range `[lo, hi]` of bucket `i`.
    pub fn bucket_range(i: usize) -> (u64, u64) {
        match i {
            0 => (0, 0),
            64 => (1 << 63, u64::MAX),
            _ => (1 << (i - 1), (1 << i) - 1),
        }
    }

    /// Record one observation (snapshots are plain data; this supports
    /// building expected values in tests and offline aggregation).
    pub fn record(&mut self, value: u64) {
        self.buckets[bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.wrapping_add(value);
    }

    /// Element-wise merge: `(a ⊕ b) ⊕ c == a ⊕ (b ⊕ c)` and
    /// `a ⊕ b == b ⊕ a` — shard aggregation is order-independent.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
    }

    /// Mean observed value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the bucket containing the `q`-quantile
    /// (`0.0 ..= 1.0`) of the recorded distribution; `None` when empty.
    pub fn quantile_bound(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(Self::bucket_range(i).1);
            }
        }
        Some(u64::MAX)
    }
}

/// A point-in-time copy of every registered metric, sorted by name.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Counter totals.
    pub counters: Vec<(String, u64)>,
    /// Gauge values.
    pub gauges: Vec<(String, i64)>,
    /// Histogram snapshots.
    pub histograms: Vec<(String, HistogramSnapshot)>,
    /// Span aggregates: `(name, close_count, total_ns)`.
    pub spans: Vec<(String, u64, u64)>,
}

impl MetricsSnapshot {
    /// Look up a counter total by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Look up a histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|(n, _)| n == name).map(|(_, h)| h)
    }

    /// Serialize as a JSON object: `{"counters": {...}, "gauges": {...},
    /// "histograms": {name: {count, sum, mean, p50, p99, buckets}},
    /// "spans": {name: {count, total_ns}}}`. Histogram `buckets` is a
    /// sparse `{"<index>": count}` map of non-empty buckets.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{");
        s.push_str("\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "{}:{v}", crate::json::quote(name));
        }
        s.push_str("},\"gauges\":{");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "{}:{v}", crate::json::quote(name));
        }
        s.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{}:{{\"count\":{},\"sum\":{},\"mean\":{},\"p50\":{},\"p99\":{},\"buckets\":{{",
                crate::json::quote(name),
                h.count,
                h.sum,
                crate::json::number(h.mean()),
                h.quantile_bound(0.50).unwrap_or(0),
                h.quantile_bound(0.99).unwrap_or(0),
            );
            let mut first = true;
            for (b, &c) in h.buckets.iter().enumerate() {
                if c > 0 {
                    if !first {
                        s.push(',');
                    }
                    first = false;
                    let _ = write!(s, "\"{b}\":{c}");
                }
            }
            s.push_str("}}");
        }
        s.push_str("},\"spans\":{");
        for (i, (name, count, ns)) in self.spans.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ =
                write!(s, "{}:{{\"count\":{count},\"total_ns\":{ns}}}", crate::json::quote(name));
        }
        s.push_str("}}");
        s
    }
}

#[cfg(feature = "enabled")]
mod imp {
    use super::{bucket_index, HistogramSnapshot, MetricsSnapshot, HISTOGRAM_BUCKETS};
    use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
    use std::sync::{Mutex, Once};
    use std::time::Instant;

    /// Shards per metric: enough to keep an 8–16-worker run off shared
    /// cache lines without bloating every counter.
    const SHARDS: usize = 16;

    /// One cache line per cell so two workers' increments never share a
    /// line.
    #[repr(align(64))]
    #[derive(Debug)]
    struct Cell(AtomicU64);

    impl Cell {
        const fn new() -> Self {
            Cell(AtomicU64::new(0))
        }
    }

    static NEXT_THREAD: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static THREAD_SHARD: usize = NEXT_THREAD.fetch_add(1, Ordering::Relaxed) % SHARDS;
    }

    fn shard() -> usize {
        THREAD_SHARD.with(|s| *s)
    }

    struct Registry {
        counters: Mutex<Vec<&'static Counter>>,
        gauges: Mutex<Vec<&'static Gauge>>,
        histograms: Mutex<Vec<&'static Histogram>>,
    }

    static REGISTRY: Registry = Registry {
        counters: Mutex::new(Vec::new()),
        gauges: Mutex::new(Vec::new()),
        histograms: Mutex::new(Vec::new()),
    };

    /// A monotone event counter, sharded across padded atomic cells.
    #[derive(Debug)]
    pub struct Counter {
        name: &'static str,
        registered: Once,
        cells: [Cell; SHARDS],
    }

    impl Counter {
        /// Declare a counter (use in a `static`).
        pub const fn new(name: &'static str) -> Self {
            Counter { name, registered: Once::new(), cells: [const { Cell::new() }; SHARDS] }
        }

        /// Add `n` to the calling thread's shard.
        #[inline]
        pub fn add(&'static self, n: u64) {
            self.registered.call_once(|| {
                REGISTRY.counters.lock().expect("registry lock").push(self);
            });
            self.cells[shard()].0.fetch_add(n, Ordering::Relaxed);
        }

        /// Increment by one.
        #[inline]
        pub fn inc(&'static self) {
            self.add(1);
        }

        /// Sum over all shards.
        pub fn get(&self) -> u64 {
            self.cells.iter().map(|c| c.0.load(Ordering::Relaxed)).sum()
        }

        fn reset(&self) {
            for c in &self.cells {
                c.0.store(0, Ordering::Relaxed);
            }
        }
    }

    /// A last-value-wins instantaneous value.
    #[derive(Debug)]
    pub struct Gauge {
        name: &'static str,
        registered: Once,
        value: AtomicI64,
    }

    impl Gauge {
        /// Declare a gauge (use in a `static`).
        pub const fn new(name: &'static str) -> Self {
            Gauge { name, registered: Once::new(), value: AtomicI64::new(0) }
        }

        /// Set the value.
        #[inline]
        pub fn set(&'static self, v: i64) {
            self.registered.call_once(|| {
                REGISTRY.gauges.lock().expect("registry lock").push(self);
            });
            self.value.store(v, Ordering::Relaxed);
        }

        /// Current value.
        pub fn get(&self) -> i64 {
            self.value.load(Ordering::Relaxed)
        }
    }

    /// A log₂-bucketed histogram with sharded count/sum accumulators.
    #[derive(Debug)]
    pub struct Histogram {
        name: &'static str,
        registered: Once,
        buckets: [AtomicU64; HISTOGRAM_BUCKETS],
        count: [Cell; SHARDS],
        sum: [Cell; SHARDS],
    }

    impl Histogram {
        /// Declare a histogram (use in a `static`).
        pub const fn new(name: &'static str) -> Self {
            Histogram {
                name,
                registered: Once::new(),
                buckets: [const { AtomicU64::new(0) }; HISTOGRAM_BUCKETS],
                count: [const { Cell::new() }; SHARDS],
                sum: [const { Cell::new() }; SHARDS],
            }
        }

        /// Record one observation.
        #[inline]
        pub fn record(&'static self, value: u64) {
            self.registered.call_once(|| {
                REGISTRY.histograms.lock().expect("registry lock").push(self);
            });
            self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
            let s = shard();
            self.count[s].0.fetch_add(1, Ordering::Relaxed);
            self.sum[s].0.fetch_add(value, Ordering::Relaxed);
        }

        /// Copy out a mergeable snapshot.
        pub fn snapshot(&self) -> HistogramSnapshot {
            HistogramSnapshot {
                buckets: self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
                count: self.count.iter().map(|c| c.0.load(Ordering::Relaxed)).sum(),
                sum: self.sum.iter().fold(0u64, |a, c| a.wrapping_add(c.0.load(Ordering::Relaxed))),
            }
        }

        fn reset(&self) {
            for b in &self.buckets {
                b.store(0, Ordering::Relaxed);
            }
            for c in self.count.iter().chain(&self.sum) {
                c.0.store(0, Ordering::Relaxed);
            }
        }
    }

    /// A wall-clock stopwatch; pairs with counter `_ns` metrics.
    #[derive(Debug)]
    pub struct Stopwatch(Instant);

    impl Stopwatch {
        /// Start timing.
        #[inline]
        pub fn start() -> Self {
            Stopwatch(Instant::now())
        }

        /// Elapsed nanoseconds (saturating at `u64::MAX`).
        #[inline]
        pub fn ns(&self) -> u64 {
            u64::try_from(self.0.elapsed().as_nanos()).unwrap_or(u64::MAX)
        }
    }

    /// Snapshot every registered metric, sorted by name.
    pub fn snapshot() -> MetricsSnapshot {
        let mut snap = MetricsSnapshot {
            counters: REGISTRY
                .counters
                .lock()
                .expect("registry lock")
                .iter()
                .map(|c| (c.name.to_owned(), c.get()))
                .collect(),
            gauges: REGISTRY
                .gauges
                .lock()
                .expect("registry lock")
                .iter()
                .map(|g| (g.name.to_owned(), g.get()))
                .collect(),
            histograms: REGISTRY
                .histograms
                .lock()
                .expect("registry lock")
                .iter()
                .map(|h| (h.name.to_owned(), h.snapshot()))
                .collect(),
            spans: crate::span::aggregates(),
        };
        snap.counters.sort();
        snap.gauges.sort();
        snap.histograms.sort_by(|a, b| a.0.cmp(&b.0));
        snap.spans.sort();
        snap
    }

    /// Zero every registered metric and span aggregate (benchmark /
    /// test isolation; concurrent recorders may land increments after
    /// the reset).
    pub fn reset() {
        for c in REGISTRY.counters.lock().expect("registry lock").iter() {
            c.reset();
        }
        for g in REGISTRY.gauges.lock().expect("registry lock").iter() {
            g.value.store(0, Ordering::Relaxed);
        }
        for h in REGISTRY.histograms.lock().expect("registry lock").iter() {
            h.reset();
        }
        crate::span::reset_aggregates();
    }
}

#[cfg(not(feature = "enabled"))]
mod imp {
    use super::{HistogramSnapshot, MetricsSnapshot};

    /// Disabled-build counter: every operation is an inlined no-op.
    #[derive(Debug)]
    pub struct Counter;

    impl Counter {
        /// No-op.
        pub const fn new(_name: &'static str) -> Self {
            Counter
        }

        /// No-op.
        #[inline(always)]
        pub fn add(&self, _n: u64) {}

        /// No-op.
        #[inline(always)]
        pub fn inc(&self) {}

        /// Always zero.
        #[inline(always)]
        pub fn get(&self) -> u64 {
            0
        }
    }

    /// Disabled-build gauge.
    #[derive(Debug)]
    pub struct Gauge;

    impl Gauge {
        /// No-op.
        pub const fn new(_name: &'static str) -> Self {
            Gauge
        }

        /// No-op.
        #[inline(always)]
        pub fn set(&self, _v: i64) {}

        /// Always zero.
        #[inline(always)]
        pub fn get(&self) -> i64 {
            0
        }
    }

    /// Disabled-build histogram.
    #[derive(Debug)]
    pub struct Histogram;

    impl Histogram {
        /// No-op.
        pub const fn new(_name: &'static str) -> Self {
            Histogram
        }

        /// No-op.
        #[inline(always)]
        pub fn record(&self, _value: u64) {}

        /// Always empty.
        pub fn snapshot(&self) -> HistogramSnapshot {
            HistogramSnapshot::new()
        }
    }

    /// Disabled-build stopwatch: no clock read.
    #[derive(Debug)]
    pub struct Stopwatch;

    impl Stopwatch {
        /// No-op.
        #[inline(always)]
        pub fn start() -> Self {
            Stopwatch
        }

        /// Always zero.
        #[inline(always)]
        pub fn ns(&self) -> u64 {
            0
        }
    }

    /// Always empty.
    pub fn snapshot() -> MetricsSnapshot {
        MetricsSnapshot::default()
    }

    /// No-op.
    pub fn reset() {}
}

pub use imp::{reset, snapshot, Counter, Gauge, Histogram, Stopwatch};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_ranges_cover() {
        assert_eq!(HistogramSnapshot::bucket_of(0), 0);
        assert_eq!(HistogramSnapshot::bucket_of(1), 1);
        assert_eq!(HistogramSnapshot::bucket_of(2), 2);
        assert_eq!(HistogramSnapshot::bucket_of(3), 2);
        assert_eq!(HistogramSnapshot::bucket_of(4), 3);
        assert_eq!(HistogramSnapshot::bucket_of(u64::MAX), 64);
        for i in 0..HISTOGRAM_BUCKETS {
            let (lo, hi) = HistogramSnapshot::bucket_range(i);
            assert_eq!(HistogramSnapshot::bucket_of(lo), i);
            assert_eq!(HistogramSnapshot::bucket_of(hi), i);
        }
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn counter_shards_sum() {
        static C: Counter = Counter::new("test.metrics.counter_shards_sum");
        C.add(3);
        C.add(4);
        assert_eq!(C.get(), 7);
        assert!(snapshot().counter("test.metrics.counter_shards_sum").unwrap() >= 7);
    }

    #[cfg(not(feature = "enabled"))]
    #[test]
    fn disabled_ops_are_noops() {
        static C: Counter = Counter::new("noop");
        static H: Histogram = Histogram::new("noop");
        static G: Gauge = Gauge::new("noop");
        C.add(10);
        H.record(10);
        G.set(10);
        assert_eq!(C.get(), 0);
        assert_eq!(H.snapshot().count, 0);
        assert_eq!(G.get(), 0);
        assert_eq!(Stopwatch::start().ns(), 0);
        assert!(snapshot().counters.is_empty());
    }
}
