//! Perfetto / Chrome `trace_event` export: convert the JSONL span trace
//! (and, when interleaved, sampling-health events) into a JSON document
//! that opens directly in <https://ui.perfetto.dev> or
//! `chrome://tracing`.
//!
//! Mapping:
//!
//! * `span` records become complete events (`"ph":"X"`) with the span's
//!   open offset and duration, one track per recorded thread ordinal;
//! * `progress` records become counter events (`"ph":"C"`) charting the
//!   relative CI half-width and merged point count over time;
//! * `anomaly` records become instant events (`"ph":"i"`) on the
//!   emitting worker's track, carrying the point id and fired tests;
//! * `sched` records (the `core.sched.*` samples: claimed chunk size,
//!   cumulative steals, prefetch-ring occupancy) become per-worker
//!   counter tracks (`"ph":"C"`, one track per quantity per worker,
//!   named after the metric: `"core.sched.chunk_points w3"`), so the
//!   dynamic scheduler's adaptive chunk shrinking and steal traffic are
//!   visible alongside the spans they explain;
//! * `profile_*` records (the worker-timeline profiler) become a
//!   second process group (`pid` 2): each `profile_phase` interval is a
//!   complete event on its worker's track, each `profile_worker`
//!   summary is a complete event spanning the worker's lifetime, and
//!   the `profile_run` bracket spans the whole run on its own track —
//!   so per-worker wall-clock attribution lines up visually under the
//!   span timeline.
//!
//! This module is a pure transformation over artifacts on disk, so it
//! is compiled in both telemetry build modes (like the manifest and
//! JSON layers, it is never hot).

use std::fmt::Write as _;

use crate::json::{quote, JsonError, JsonValue};

/// Convert one JSONL trace/event stream into a Chrome `trace_event`
/// JSON document (the `{"traceEvents": [...]}` object form).
///
/// Lines that are not JSON objects or carry an unknown `type` are
/// skipped, so mixed or partially-written streams still convert; a line
/// that fails to parse at all is an error carrying its line number.
///
/// # Errors
///
/// Returns [`JsonError`] (offset = 1-based line number) when a
/// non-empty line is not valid JSON.
pub fn chrome_trace(jsonl: &str) -> Result<String, JsonError> {
    let mut out = String::from("{\"traceEvents\":[\n");
    let mut first = true;
    for (lineno, line) in jsonl.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let doc = JsonValue::parse(line).map_err(|e| JsonError {
            offset: lineno + 1,
            message: format!("line {}: {}", lineno + 1, e.message),
        })?;
        let events = match doc.get("type").and_then(JsonValue::as_str) {
            Some("span") => span_event(&doc).into_iter().collect(),
            Some("progress") => progress_event(&doc).into_iter().collect(),
            Some("anomaly") => anomaly_event(&doc).into_iter().collect(),
            Some("sched") => sched_events(&doc),
            Some("profile_phase") => profile_phase_event(&doc).into_iter().collect(),
            Some("profile_worker") => profile_worker_event(&doc).into_iter().collect(),
            Some("profile_run") => profile_run_event(&doc).into_iter().collect(),
            _ => Vec::new(),
        };
        for event in events {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            out.push_str(&event);
        }
    }
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    Ok(out)
}

fn u64_field(doc: &JsonValue, key: &str) -> u64 {
    doc.get(key).and_then(JsonValue::as_u64).unwrap_or(0)
}

fn f64_field(doc: &JsonValue, key: &str) -> f64 {
    doc.get(key).and_then(JsonValue::as_f64).unwrap_or(0.0)
}

fn span_event(doc: &JsonValue) -> Option<String> {
    let name = doc.get("name").and_then(JsonValue::as_str)?;
    Some(format!(
        "{{\"name\":{},\"cat\":\"span\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\
         \"tid\":{},\"args\":{{\"depth\":{}}}}}",
        quote(name),
        u64_field(doc, "t_us"),
        u64_field(doc, "dur_us"),
        u64_field(doc, "tid"),
        u64_field(doc, "depth"),
    ))
}

fn progress_event(doc: &JsonValue) -> Option<String> {
    let run = doc.get("run").and_then(JsonValue::as_str)?;
    let config = doc.get("config").and_then(JsonValue::as_u64);
    let mut series = format!("{run} rel_half_width");
    if let Some(c) = config {
        let _ = write!(series, " [config {c}]");
    }
    // Counter events chart the convergence trajectory on its own track.
    Some(format!(
        "{{\"name\":{},\"cat\":\"health\",\"ph\":\"C\",\"ts\":{},\"pid\":1,\
         \"args\":{{\"rel_half_width\":{},\"n\":{}}}}}",
        quote(&series),
        u64_field(doc, "t_us"),
        crate::json::number(f64_field(doc, "rel_half_width")),
        u64_field(doc, "n"),
    ))
}

fn anomaly_event(doc: &JsonValue) -> Option<String> {
    let run = doc.get("run").and_then(JsonValue::as_str)?;
    let kinds: Vec<&str> = doc
        .get("kinds")
        .and_then(JsonValue::as_arr)
        .map(|a| a.iter().filter_map(JsonValue::as_str).collect())
        .unwrap_or_default();
    Some(format!(
        "{{\"name\":{},\"cat\":\"health\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\"pid\":1,\
         \"tid\":{},\"args\":{{\"point\":{},\"cpi\":{},\"sigmas\":{}}}}}",
        quote(&format!("{run} anomaly: {}", kinds.join("+"))),
        u64_field(doc, "t_us"),
        u64_field(doc, "worker"),
        u64_field(doc, "point"),
        crate::json::number(f64_field(doc, "cpi")),
        crate::json::number(f64_field(doc, "sigmas")),
    ))
}

/// One counter event per quantity carried by the sched record, each on
/// its own per-worker track named after the `core.sched.*` metric it
/// samples (`"core.sched.chunk_points w3"`), so Perfetto charts them as
/// separate series that cross-reference the metrics registry.
fn sched_events(doc: &JsonValue) -> Vec<String> {
    let worker = u64_field(doc, "worker");
    let ts = u64_field(doc, "t_us");
    ["chunk_points", "steals", "prefetch_occupancy"]
        .iter()
        .filter_map(|key| {
            let v = doc.get(key).and_then(JsonValue::as_u64)?;
            Some(format!(
                "{{\"name\":{},\"cat\":\"sched\",\"ph\":\"C\",\"ts\":{ts},\"pid\":1,\
                 \"args\":{{{}:{v}}}}}",
                quote(&format!("core.sched.{key} w{worker}")),
                quote(key),
            ))
        })
        .collect()
}

/// Profile tracks live in their own process group so worker ordinals
/// never collide with the span trace's thread ordinals on `pid` 1.
const PROFILE_PID: u64 = 2;

/// The `profile_run` bracket's synthetic track id, far above any worker
/// ordinal.
const PROFILE_RUN_TID: u64 = 1_000_000;

/// One retained phase interval as a complete event on its worker's
/// profile track.
fn profile_phase_event(doc: &JsonValue) -> Option<String> {
    let phase = doc.get("phase").and_then(JsonValue::as_str)?;
    Some(format!(
        "{{\"name\":{},\"cat\":\"profile\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
         \"pid\":{PROFILE_PID},\"tid\":{},\"args\":{{\"worker\":{}}}}}",
        quote(phase),
        u64_field(doc, "t_us"),
        u64_field(doc, "dur_us"),
        u64_field(doc, "worker"),
        u64_field(doc, "worker"),
    ))
}

/// A worker's lifetime summary as a complete event under its phase
/// intervals, carrying the interval counts.
fn profile_worker_event(doc: &JsonValue) -> Option<String> {
    let run = doc.get("run").and_then(JsonValue::as_str)?;
    let worker = u64_field(doc, "worker");
    Some(format!(
        "{{\"name\":{},\"cat\":\"profile\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
         \"pid\":{PROFILE_PID},\"tid\":{worker},\"args\":{{\"recorded\":{},\"kept\":{}}}}}",
        quote(&format!("{run} worker {worker}")),
        u64_field(doc, "t_us"),
        u64_field(doc, "dur_us"),
        u64_field(doc, "recorded"),
        u64_field(doc, "kept"),
    ))
}

/// The run bracket as a complete event on its own track above the
/// workers.
fn profile_run_event(doc: &JsonValue) -> Option<String> {
    let run = doc.get("run").and_then(JsonValue::as_str)?;
    Some(format!(
        "{{\"name\":{},\"cat\":\"profile\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
         \"pid\":{PROFILE_PID},\"tid\":{PROFILE_RUN_TID},\"args\":{{\"workers\":{}}}}}",
        quote(&format!("{run} run")),
        u64_field(doc, "t_us"),
        u64_field(doc, "dur_us"),
        u64_field(doc, "workers"),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    const TRACE: &str = concat!(
        "{\"type\":\"span\",\"name\":\"run.online\",\"tid\":2,\"depth\":1,",
        "\"t_us\":1234,\"dur_us\":56}\n",
        "\n",
        "{\"type\":\"progress\",\"run\":\"online\",\"metric\":\"cpi\",\"t_us\":1300,",
        "\"worker\":0,\"config\":null,\"n\":40,\"mean\":1.3,\"half_width\":0.1,",
        "\"rel_half_width\":0.07,\"target_rel_err\":0.03,\"eligible\":false,",
        "\"rel_half_width_95\":0.05,\"eligible_95\":false,\"shard_points\":40}\n",
        "{\"type\":\"anomaly\",\"run\":\"online\",\"t_us\":1400,\"worker\":1,",
        "\"point\":17,\"detail_start\":1,\"measure_start\":2,",
        "\"kinds\":[\"cpi_outlier\"],\"cpi\":2.3,\"mean\":1.3,\"std_dev\":0.2,",
        "\"sigmas\":5.0,\"decode_ns\":100,\"simulate_ns\":200}\n",
        "{\"type\":\"unknown_future_record\"}\n",
        "{\"type\":\"sched\",\"t_us\":1500,\"worker\":3,\"chunk_points\":16,\"steals\":2}\n",
        "{\"type\":\"sched\",\"t_us\":1600,\"worker\":0,\"prefetch_occupancy\":5}\n",
    );

    #[test]
    fn converts_all_record_types() {
        let chrome = chrome_trace(TRACE).expect("valid stream");
        let doc = JsonValue::parse(&chrome).expect("output is valid JSON");
        let events = doc.get("traceEvents").and_then(JsonValue::as_arr).expect("traceEvents");
        assert_eq!(events.len(), 6, "unknown record types are skipped");
        assert_eq!(events[0].get("ph").and_then(JsonValue::as_str), Some("X"));
        assert_eq!(events[0].get("ts").and_then(JsonValue::as_u64), Some(1234));
        assert_eq!(events[0].get("dur").and_then(JsonValue::as_u64), Some(56));
        assert_eq!(events[1].get("ph").and_then(JsonValue::as_str), Some("C"));
        assert_eq!(
            events[1].get("args").and_then(|a| a.get("rel_half_width")).and_then(JsonValue::as_f64),
            Some(0.07)
        );
        assert_eq!(events[2].get("ph").and_then(JsonValue::as_str), Some("i"));
        assert_eq!(
            events[2].get("name").and_then(JsonValue::as_str),
            Some("online anomaly: cpi_outlier")
        );
        // Sched samples fan out into one counter event per quantity,
        // tracked per worker.
        assert_eq!(events[3].get("ph").and_then(JsonValue::as_str), Some("C"));
        assert_eq!(
            events[3].get("name").and_then(JsonValue::as_str),
            Some("core.sched.chunk_points w3")
        );
        assert_eq!(
            events[3].get("args").and_then(|a| a.get("chunk_points")).and_then(JsonValue::as_u64),
            Some(16)
        );
        assert_eq!(events[4].get("name").and_then(JsonValue::as_str), Some("core.sched.steals w3"));
        assert_eq!(
            events[5].get("name").and_then(JsonValue::as_str),
            Some("core.sched.prefetch_occupancy w0")
        );
        assert_eq!(
            events[5]
                .get("args")
                .and_then(|a| a.get("prefetch_occupancy"))
                .and_then(JsonValue::as_u64),
            Some(5)
        );
    }

    const PROFILE_TRACE: &str = concat!(
        "{\"type\":\"profile_worker\",\"run_id\":\"x-1\",\"seq\":1,\"run\":\"online\",",
        "\"worker\":0,\"t_us\":10,\"dur_us\":5000,\"recorded\":3,\"kept\":3,",
        "\"phases\":{\"decode\":{\"count\":1,\"ns\":800000},",
        "\"simulate\":{\"count\":2,\"ns\":3000000}}}\n",
        "{\"type\":\"profile_phase\",\"run_id\":\"x-1\",\"seq\":1,\"run\":\"online\",",
        "\"worker\":0,\"phase\":\"decode\",\"t_us\":20,\"dur_us\":800}\n",
        "{\"type\":\"profile_phase\",\"run_id\":\"x-1\",\"seq\":1,\"run\":\"online\",",
        "\"worker\":0,\"phase\":\"simulate\",\"t_us\":900,\"dur_us\":1500}\n",
        "{\"type\":\"profile_run\",\"run_id\":\"x-1\",\"seq\":1,\"run\":\"online\",",
        "\"workers\":2,\"t_us\":0,\"dur_us\":6000}\n",
    );

    #[test]
    fn profile_records_become_per_worker_tracks() {
        let chrome = chrome_trace(PROFILE_TRACE).expect("valid stream");
        let doc = JsonValue::parse(&chrome).expect("output is valid JSON");
        let events = doc.get("traceEvents").and_then(JsonValue::as_arr).expect("traceEvents");
        assert_eq!(events.len(), 4);
        for e in events {
            assert_eq!(e.get("ph").and_then(JsonValue::as_str), Some("X"));
            assert_eq!(e.get("pid").and_then(JsonValue::as_u64), Some(PROFILE_PID));
        }
        assert_eq!(events[0].get("name").and_then(JsonValue::as_str), Some("online worker 0"));
        assert_eq!(
            events[0].get("args").and_then(|a| a.get("recorded")).and_then(JsonValue::as_u64),
            Some(3)
        );
        assert_eq!(events[1].get("name").and_then(JsonValue::as_str), Some("decode"));
        assert_eq!(events[1].get("tid").and_then(JsonValue::as_u64), Some(0));
        assert_eq!(events[2].get("dur").and_then(JsonValue::as_u64), Some(1500));
        assert_eq!(events[3].get("name").and_then(JsonValue::as_str), Some("online run"));
        assert_eq!(events[3].get("tid").and_then(JsonValue::as_u64), Some(PROFILE_RUN_TID));
    }

    /// Track identity for monotonicity purposes: counter tracks are
    /// per-name, duration/instant tracks are per `(pid, tid)`.
    fn track_key(event: &JsonValue) -> String {
        let pid = event.get("pid").and_then(JsonValue::as_u64).unwrap_or(0);
        match event.get("ph").and_then(JsonValue::as_str) {
            Some("C") => {
                format!("C:{pid}:{}", event.get("name").and_then(JsonValue::as_str).unwrap_or(""))
            }
            _ => format!("{pid}:{}", event.get("tid").and_then(JsonValue::as_u64).unwrap_or(0)),
        }
    }

    #[test]
    fn ts_values_are_monotonic_non_negative_per_track() {
        let combined = format!("{TRACE}{PROFILE_TRACE}");
        let chrome = chrome_trace(&combined).expect("valid stream");
        let doc = JsonValue::parse(&chrome).expect("output is valid JSON");
        let events = doc.get("traceEvents").and_then(JsonValue::as_arr).expect("traceEvents");
        assert!(!events.is_empty());
        let mut last_ts: std::collections::BTreeMap<String, i64> = Default::default();
        for e in events {
            let ts = e.get("ts").and_then(JsonValue::as_f64).expect("every event carries ts");
            assert!(ts >= 0.0, "negative ts {ts}");
            let key = track_key(e);
            let prev = last_ts.entry(key.clone()).or_insert(i64::MIN);
            assert!(ts as i64 >= *prev, "track {key}: ts {ts} went backwards from {prev}");
            *prev = ts as i64;
        }
    }

    #[test]
    fn counter_tracks_carry_core_sched_names() {
        let chrome = chrome_trace(TRACE).expect("valid stream");
        let doc = JsonValue::parse(&chrome).expect("output is valid JSON");
        let events = doc.get("traceEvents").and_then(JsonValue::as_arr).expect("traceEvents");
        let sched_counters: Vec<&str> = events
            .iter()
            .filter(|e| e.get("cat").and_then(JsonValue::as_str) == Some("sched"))
            .filter_map(|e| e.get("name").and_then(JsonValue::as_str))
            .collect();
        assert!(!sched_counters.is_empty());
        for name in sched_counters {
            assert!(name.starts_with("core.sched."), "sched counter track {name}");
        }
    }

    #[test]
    fn empty_stream_is_valid() {
        let chrome = chrome_trace("").expect("empty stream");
        let doc = JsonValue::parse(&chrome).expect("valid JSON");
        assert!(doc.get("traceEvents").and_then(JsonValue::as_arr).unwrap().is_empty());
    }

    #[test]
    fn bad_line_reports_line_number() {
        let e = chrome_trace(
            "{\"type\":\"span\",\"name\":\"a\",\"t_us\":1,\"dur_us\":1,\
                              \"tid\":0,\"depth\":0}\nnot json\n",
        )
        .unwrap_err();
        assert_eq!(e.offset, 2);
        assert!(e.message.contains("line 2"), "{}", e.message);
    }
}
