//! Perfetto / Chrome `trace_event` export: convert the JSONL span trace
//! (and, when interleaved, sampling-health events) into a JSON document
//! that opens directly in <https://ui.perfetto.dev> or
//! `chrome://tracing`.
//!
//! Mapping:
//!
//! * `span` records become complete events (`"ph":"X"`) with the span's
//!   open offset and duration, one track per recorded thread ordinal;
//! * `progress` records become counter events (`"ph":"C"`) charting the
//!   relative CI half-width and merged point count over time;
//! * `anomaly` records become instant events (`"ph":"i"`) on the
//!   emitting worker's track, carrying the point id and fired tests;
//! * `sched` records (the `core.sched.*` samples: claimed chunk size,
//!   cumulative steals, prefetch-ring occupancy) become per-worker
//!   counter tracks (`"ph":"C"`, one track per quantity per worker), so
//!   the dynamic scheduler's adaptive chunk shrinking and steal traffic
//!   are visible alongside the spans they explain.
//!
//! This module is a pure transformation over artifacts on disk, so it
//! is compiled in both telemetry build modes (like the manifest and
//! JSON layers, it is never hot).

use std::fmt::Write as _;

use crate::json::{quote, JsonError, JsonValue};

/// Convert one JSONL trace/event stream into a Chrome `trace_event`
/// JSON document (the `{"traceEvents": [...]}` object form).
///
/// Lines that are not JSON objects or carry an unknown `type` are
/// skipped, so mixed or partially-written streams still convert; a line
/// that fails to parse at all is an error carrying its line number.
///
/// # Errors
///
/// Returns [`JsonError`] (offset = 1-based line number) when a
/// non-empty line is not valid JSON.
pub fn chrome_trace(jsonl: &str) -> Result<String, JsonError> {
    let mut out = String::from("{\"traceEvents\":[\n");
    let mut first = true;
    for (lineno, line) in jsonl.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let doc = JsonValue::parse(line).map_err(|e| JsonError {
            offset: lineno + 1,
            message: format!("line {}: {}", lineno + 1, e.message),
        })?;
        let events = match doc.get("type").and_then(JsonValue::as_str) {
            Some("span") => span_event(&doc).into_iter().collect(),
            Some("progress") => progress_event(&doc).into_iter().collect(),
            Some("anomaly") => anomaly_event(&doc).into_iter().collect(),
            Some("sched") => sched_events(&doc),
            _ => Vec::new(),
        };
        for event in events {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            out.push_str(&event);
        }
    }
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    Ok(out)
}

fn u64_field(doc: &JsonValue, key: &str) -> u64 {
    doc.get(key).and_then(JsonValue::as_u64).unwrap_or(0)
}

fn f64_field(doc: &JsonValue, key: &str) -> f64 {
    doc.get(key).and_then(JsonValue::as_f64).unwrap_or(0.0)
}

fn span_event(doc: &JsonValue) -> Option<String> {
    let name = doc.get("name").and_then(JsonValue::as_str)?;
    Some(format!(
        "{{\"name\":{},\"cat\":\"span\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\
         \"tid\":{},\"args\":{{\"depth\":{}}}}}",
        quote(name),
        u64_field(doc, "t_us"),
        u64_field(doc, "dur_us"),
        u64_field(doc, "tid"),
        u64_field(doc, "depth"),
    ))
}

fn progress_event(doc: &JsonValue) -> Option<String> {
    let run = doc.get("run").and_then(JsonValue::as_str)?;
    let config = doc.get("config").and_then(JsonValue::as_u64);
    let mut series = format!("{run} rel_half_width");
    if let Some(c) = config {
        let _ = write!(series, " [config {c}]");
    }
    // Counter events chart the convergence trajectory on its own track.
    Some(format!(
        "{{\"name\":{},\"cat\":\"health\",\"ph\":\"C\",\"ts\":{},\"pid\":1,\
         \"args\":{{\"rel_half_width\":{},\"n\":{}}}}}",
        quote(&series),
        u64_field(doc, "t_us"),
        crate::json::number(f64_field(doc, "rel_half_width")),
        u64_field(doc, "n"),
    ))
}

fn anomaly_event(doc: &JsonValue) -> Option<String> {
    let run = doc.get("run").and_then(JsonValue::as_str)?;
    let kinds: Vec<&str> = doc
        .get("kinds")
        .and_then(JsonValue::as_arr)
        .map(|a| a.iter().filter_map(JsonValue::as_str).collect())
        .unwrap_or_default();
    Some(format!(
        "{{\"name\":{},\"cat\":\"health\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\"pid\":1,\
         \"tid\":{},\"args\":{{\"point\":{},\"cpi\":{},\"sigmas\":{}}}}}",
        quote(&format!("{run} anomaly: {}", kinds.join("+"))),
        u64_field(doc, "t_us"),
        u64_field(doc, "worker"),
        u64_field(doc, "point"),
        crate::json::number(f64_field(doc, "cpi")),
        crate::json::number(f64_field(doc, "sigmas")),
    ))
}

/// One counter event per quantity carried by the sched record, each on
/// its own per-worker track (`"sched chunk_points w3"`), so Perfetto
/// charts them as separate series.
fn sched_events(doc: &JsonValue) -> Vec<String> {
    let worker = u64_field(doc, "worker");
    let ts = u64_field(doc, "t_us");
    ["chunk_points", "steals", "prefetch_occupancy"]
        .iter()
        .filter_map(|key| {
            let v = doc.get(key).and_then(JsonValue::as_u64)?;
            Some(format!(
                "{{\"name\":{},\"cat\":\"sched\",\"ph\":\"C\",\"ts\":{ts},\"pid\":1,\
                 \"args\":{{{}:{v}}}}}",
                quote(&format!("sched {key} w{worker}")),
                quote(key),
            ))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const TRACE: &str = concat!(
        "{\"type\":\"span\",\"name\":\"run.online\",\"tid\":2,\"depth\":1,",
        "\"t_us\":1234,\"dur_us\":56}\n",
        "\n",
        "{\"type\":\"progress\",\"run\":\"online\",\"metric\":\"cpi\",\"t_us\":1300,",
        "\"worker\":0,\"config\":null,\"n\":40,\"mean\":1.3,\"half_width\":0.1,",
        "\"rel_half_width\":0.07,\"target_rel_err\":0.03,\"eligible\":false,",
        "\"rel_half_width_95\":0.05,\"eligible_95\":false,\"shard_points\":40}\n",
        "{\"type\":\"anomaly\",\"run\":\"online\",\"t_us\":1400,\"worker\":1,",
        "\"point\":17,\"detail_start\":1,\"measure_start\":2,",
        "\"kinds\":[\"cpi_outlier\"],\"cpi\":2.3,\"mean\":1.3,\"std_dev\":0.2,",
        "\"sigmas\":5.0,\"decode_ns\":100,\"simulate_ns\":200}\n",
        "{\"type\":\"unknown_future_record\"}\n",
        "{\"type\":\"sched\",\"t_us\":1500,\"worker\":3,\"chunk_points\":16,\"steals\":2}\n",
        "{\"type\":\"sched\",\"t_us\":1600,\"worker\":0,\"prefetch_occupancy\":5}\n",
    );

    #[test]
    fn converts_all_record_types() {
        let chrome = chrome_trace(TRACE).expect("valid stream");
        let doc = JsonValue::parse(&chrome).expect("output is valid JSON");
        let events = doc.get("traceEvents").and_then(JsonValue::as_arr).expect("traceEvents");
        assert_eq!(events.len(), 6, "unknown record types are skipped");
        assert_eq!(events[0].get("ph").and_then(JsonValue::as_str), Some("X"));
        assert_eq!(events[0].get("ts").and_then(JsonValue::as_u64), Some(1234));
        assert_eq!(events[0].get("dur").and_then(JsonValue::as_u64), Some(56));
        assert_eq!(events[1].get("ph").and_then(JsonValue::as_str), Some("C"));
        assert_eq!(
            events[1].get("args").and_then(|a| a.get("rel_half_width")).and_then(JsonValue::as_f64),
            Some(0.07)
        );
        assert_eq!(events[2].get("ph").and_then(JsonValue::as_str), Some("i"));
        assert_eq!(
            events[2].get("name").and_then(JsonValue::as_str),
            Some("online anomaly: cpi_outlier")
        );
        // Sched samples fan out into one counter event per quantity,
        // tracked per worker.
        assert_eq!(events[3].get("ph").and_then(JsonValue::as_str), Some("C"));
        assert_eq!(
            events[3].get("name").and_then(JsonValue::as_str),
            Some("sched chunk_points w3")
        );
        assert_eq!(
            events[3].get("args").and_then(|a| a.get("chunk_points")).and_then(JsonValue::as_u64),
            Some(16)
        );
        assert_eq!(events[4].get("name").and_then(JsonValue::as_str), Some("sched steals w3"));
        assert_eq!(
            events[5].get("name").and_then(JsonValue::as_str),
            Some("sched prefetch_occupancy w0")
        );
        assert_eq!(
            events[5]
                .get("args")
                .and_then(|a| a.get("prefetch_occupancy"))
                .and_then(JsonValue::as_u64),
            Some(5)
        );
    }

    #[test]
    fn empty_stream_is_valid() {
        let chrome = chrome_trace("").expect("empty stream");
        let doc = JsonValue::parse(&chrome).expect("valid JSON");
        assert!(doc.get("traceEvents").and_then(JsonValue::as_arr).unwrap().is_empty());
    }

    #[test]
    fn bad_line_reports_line_number() {
        let e = chrome_trace(
            "{\"type\":\"span\",\"name\":\"a\",\"t_us\":1,\"dur_us\":1,\
                              \"tid\":0,\"depth\":0}\nnot json\n",
        )
        .unwrap_err();
        assert_eq!(e.offset, 2);
        assert!(e.message.contains("line 2"), "{}", e.message);
    }
}
