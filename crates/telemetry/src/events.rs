//! Sampling-health event stream: structured JSONL records of a run's
//! *statistical* health, complementing the mechanical span trace.
//!
//! Two record types share one sink:
//!
//! ```json
//! {"type":"progress","seq":1,"run":"online","metric":"cpi","t_us":512,
//!  "worker":0,"config":null,"n":40,"mean":1.372,"half_width":0.041,
//!  "rel_half_width":0.0299,"target_rel_err":0.03,"eligible":true,
//!  "rel_half_width_95":0.0195,"eligible_95":true,"shard_points":40,
//!  "shard_busy_ns":81234567,"overshoot":0}
//! {"type":"anomaly","seq":1,"run":"online","t_us":498,"worker":0,"point":17,
//!  "detail_start":123000,"measure_start":125000,"kinds":["cpi_outlier"],
//!  "cpi":2.31,"mean":1.37,"std_dev":0.21,"sigmas":4.5,
//!  "decode_ns":52000,"simulate_ns":410000}
//! ```
//!
//! `seq` is a process-wide run ordinal (from [`next_run_seq`]): one
//! binary often performs several runs back to back into the same sink,
//! and the ordinal is what lets a consumer separate their record
//! streams.
//!
//! * **progress** — emitted by the runners at every merge stride: the
//!   running mean, CI half-width, relative error, early-termination
//!   eligibility at the policy confidence *and* at the paper's ±ε@95%
//!   rule, plus the emitting worker's own point count (`shard_points`,
//!   the per-shard lag signal), its cumulative decode+simulate time
//!   (`shard_busy_ns`, the per-shard load signal), and — on a run's
//!   closing record — the exact early-termination overshoot
//!   (`overshoot`).
//! * **anomaly** — one record per anomalous live-point: which tests
//!   fired (`kinds`: `cpi_outlier`, `slow_decode`, `slow_simulate`),
//!   the point's library index and window provenance, and the running
//!   estimate it deviated from.
//!
//! The sink is installed by [`set_events_path`] (the experiment
//! binaries' `--events` flag) or the `TELEMETRY_EVENTS` environment
//! variable. When no sink is installed, [`events_on`] is a single
//! relaxed atomic load and the emitters return immediately; when the
//! crate is built without the `enabled` feature, everything here is an
//! inlined no-op.

/// One merge-stride progress record (see the module docs for the JSON
/// shape). Plain data in both build modes; only
/// [`emit`](ProgressEvent::emit) differs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProgressEvent<'a> {
    /// Process-wide run ordinal (see [`next_run_seq`]).
    pub seq: u64,
    /// Run kind: `online`, `matched`, or `sweep`.
    pub run: &'a str,
    /// What the mean estimates: `cpi` or `delta_cpi`.
    pub metric: &'a str,
    /// Emitting worker ordinal (0 for serial runs).
    pub worker: usize,
    /// Sweep configuration index; `None` for single-config runs.
    pub config: Option<usize>,
    /// Points merged into the estimate so far.
    pub n: u64,
    /// Running mean.
    pub mean: f64,
    /// CI half-width at the policy confidence.
    pub half_width: f64,
    /// Relative error at the policy confidence (half-width over the
    /// comparison mean — the base-machine mean for matched runs).
    pub rel_half_width: f64,
    /// The policy's relative-error target ε.
    pub target_rel_err: f64,
    /// Early-termination eligibility at the policy confidence.
    pub eligible: bool,
    /// Relative error at 95% confidence.
    pub rel_half_width_95: f64,
    /// The paper's ±ε@95% early-termination rule.
    pub eligible_95: bool,
    /// The emitting worker's own processed-point count (per-shard lag).
    pub shard_points: u64,
    /// The emitting worker's cumulative decode + simulate wall-clock
    /// (per-shard busy time, for imbalance analysis).
    pub shard_busy_ns: u64,
    /// Exact early-termination overshoot: points processed past the
    /// count at which the run first became eligible to stop. Zero on
    /// mid-run records; the run's closing record carries the total.
    pub overshoot: u64,
}

impl ProgressEvent<'_> {
    /// Append this record to the event sink (no-op when unsubscribed).
    pub fn emit(&self) {
        imp::emit_progress(self);
    }
}

/// One anomalous live-point record (see the module docs for the JSON
/// shape).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnomalyEvent<'a> {
    /// Process-wide run ordinal (see [`next_run_seq`]).
    pub seq: u64,
    /// Run kind: `online`, `matched`, or `sweep`.
    pub run: &'a str,
    /// Emitting worker ordinal (0 for serial runs).
    pub worker: usize,
    /// Library index of the live-point.
    pub point: u64,
    /// Window provenance: sequence number where detailed warming begins.
    pub detail_start: u64,
    /// Window provenance: sequence number where measurement begins.
    pub measure_start: u64,
    /// Which tests fired: `cpi_outlier`, `slow_decode`, `slow_simulate`.
    pub kinds: &'a [&'a str],
    /// The point's measured CPI.
    pub cpi: f64,
    /// Running CPI mean at observation time.
    pub mean: f64,
    /// Running CPI standard deviation at observation time.
    pub std_dev: f64,
    /// Deviation in standard deviations (0 when only a time test fired).
    pub sigmas: f64,
    /// Decode (decompress + DER) wall-clock for this point.
    pub decode_ns: u64,
    /// Detailed-simulation wall-clock for this point.
    pub simulate_ns: u64,
}

impl AnomalyEvent<'_> {
    /// Append this record to the event sink (no-op when unsubscribed).
    pub fn emit(&self) {
        imp::emit_anomaly(self);
    }
}

#[cfg(feature = "enabled")]
mod imp {
    use std::fs::File;
    use std::io::{BufWriter, Write};
    use std::path::Path;
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::Mutex;

    use super::{AnomalyEvent, ProgressEvent};
    use crate::json::number;

    static EVENTS_ON: AtomicBool = AtomicBool::new(false);
    static EVENTS_SINK: Mutex<Option<BufWriter<File>>> = Mutex::new(None);
    static RUN_SEQ: AtomicU64 = AtomicU64::new(0);

    /// Allocate the next process-wide run ordinal (1, 2, …). Runners
    /// call this once per run and stamp every event they emit with it.
    pub fn next_run_seq() -> u64 {
        RUN_SEQ.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Whether a sampling-health event sink is installed.
    #[inline]
    pub fn events_on() -> bool {
        EVENTS_ON.load(Ordering::Relaxed)
    }

    /// Install (or replace) the JSONL event sink at `path`.
    pub fn set_events_path(path: impl AsRef<Path>) -> std::io::Result<()> {
        let file = File::create(path)?;
        *EVENTS_SINK.lock().expect("event sink lock") = Some(BufWriter::new(file));
        EVENTS_ON.store(true, Ordering::Relaxed);
        Ok(())
    }

    /// Install the event sink from the `TELEMETRY_EVENTS` environment
    /// variable (a file path) if set; returns whether events are now on.
    pub fn events_from_env() -> std::io::Result<bool> {
        if events_on() {
            return Ok(true);
        }
        match std::env::var_os("TELEMETRY_EVENTS") {
            Some(path) if !path.is_empty() => {
                set_events_path(path)?;
                Ok(true)
            }
            _ => Ok(false),
        }
    }

    /// Flush buffered events to the sink.
    pub fn flush_events() {
        if let Some(w) = EVENTS_SINK.lock().expect("event sink lock").as_mut() {
            let _ = w.flush();
        }
    }

    fn write_line(line: &str) {
        if let Some(w) = EVENTS_SINK.lock().expect("event sink lock").as_mut() {
            let _ = writeln!(w, "{line}");
        }
    }

    pub(super) fn emit_progress(e: &ProgressEvent<'_>) {
        if !events_on() {
            return;
        }
        let config = match e.config {
            Some(c) => c.to_string(),
            None => "null".to_owned(),
        };
        write_line(&format!(
            "{{\"type\":\"progress\",\"seq\":{},\"run\":{},\"metric\":{},\"t_us\":{},\
             \"worker\":{},\"config\":{config},\"n\":{},\"mean\":{},\"half_width\":{},\
             \"rel_half_width\":{},\"target_rel_err\":{},\"eligible\":{},\
             \"rel_half_width_95\":{},\"eligible_95\":{},\"shard_points\":{},\
             \"shard_busy_ns\":{},\"overshoot\":{}}}",
            e.seq,
            crate::json::quote(e.run),
            crate::json::quote(e.metric),
            crate::span::now_us(),
            e.worker,
            e.n,
            number(e.mean),
            number(e.half_width),
            number(e.rel_half_width),
            number(e.target_rel_err),
            e.eligible,
            number(e.rel_half_width_95),
            e.eligible_95,
            e.shard_points,
            e.shard_busy_ns,
            e.overshoot,
        ));
    }

    pub(super) fn emit_anomaly(e: &AnomalyEvent<'_>) {
        if !events_on() {
            return;
        }
        let kinds: Vec<String> = e.kinds.iter().map(|k| crate::json::quote(k)).collect();
        write_line(&format!(
            "{{\"type\":\"anomaly\",\"seq\":{},\"run\":{},\"t_us\":{},\"worker\":{},\
             \"point\":{},\"detail_start\":{},\"measure_start\":{},\"kinds\":[{}],\"cpi\":{},\
             \"mean\":{},\"std_dev\":{},\"sigmas\":{},\"decode_ns\":{},\"simulate_ns\":{}}}",
            e.seq,
            crate::json::quote(e.run),
            crate::span::now_us(),
            e.worker,
            e.point,
            e.detail_start,
            e.measure_start,
            kinds.join(","),
            number(e.cpi),
            number(e.mean),
            number(e.std_dev),
            number(e.sigmas),
            e.decode_ns,
            e.simulate_ns,
        ));
    }
}

#[cfg(not(feature = "enabled"))]
mod imp {
    use std::path::Path;

    use super::{AnomalyEvent, ProgressEvent};

    /// Always false (telemetry compiled out).
    #[inline(always)]
    pub fn events_on() -> bool {
        false
    }

    /// No-op (telemetry compiled out).
    pub fn set_events_path(_path: impl AsRef<Path>) -> std::io::Result<()> {
        Ok(())
    }

    /// Always `Ok(false)`.
    pub fn events_from_env() -> std::io::Result<bool> {
        Ok(false)
    }

    /// No-op.
    pub fn flush_events() {}

    /// Always 0 (telemetry compiled out; no events carry it anywhere).
    #[inline(always)]
    pub fn next_run_seq() -> u64 {
        0
    }

    #[inline(always)]
    pub(super) fn emit_progress(_e: &ProgressEvent<'_>) {}

    #[inline(always)]
    pub(super) fn emit_anomaly(_e: &AnomalyEvent<'_>) {}
}

pub use imp::{events_from_env, events_on, flush_events, next_run_seq, set_events_path};

#[cfg(all(test, feature = "enabled"))]
mod tests {
    use super::*;
    use crate::json::JsonValue;

    fn sample_progress<'a>() -> ProgressEvent<'a> {
        ProgressEvent {
            seq: 1,
            run: "online",
            metric: "cpi",
            worker: 0,
            config: None,
            n: 40,
            mean: 1.372,
            half_width: 0.041,
            rel_half_width: 0.0299,
            target_rel_err: 0.03,
            eligible: true,
            rel_half_width_95: 0.0195,
            eligible_95: true,
            shard_points: 40,
            shard_busy_ns: 81_234_567,
            overshoot: 0,
        }
    }

    #[test]
    fn events_round_trip_as_json_lines() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("spectral_events_test_{}.jsonl", std::process::id()));
        set_events_path(&path).expect("temp event sink");
        assert!(events_on());

        sample_progress().emit();
        ProgressEvent { config: Some(2), metric: "delta_cpi", ..sample_progress() }.emit();
        AnomalyEvent {
            seq: 2,
            run: "online",
            worker: 3,
            point: 17,
            detail_start: 123_000,
            measure_start: 125_000,
            kinds: &["cpi_outlier", "slow_simulate"],
            cpi: 2.31,
            mean: 1.37,
            std_dev: 0.21,
            sigmas: 4.5,
            decode_ns: 52_000,
            simulate_ns: 410_000,
        }
        .emit();
        // Non-finite CI fields must degrade to valid JSON numbers.
        ProgressEvent { rel_half_width: f64::INFINITY, mean: f64::NAN, ..sample_progress() }.emit();
        flush_events();

        let text = std::fs::read_to_string(&path).expect("read events back");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        let docs: Vec<JsonValue> =
            lines.iter().map(|l| JsonValue::parse(l).expect("valid JSON line")).collect();
        assert_eq!(docs[0].get("type").and_then(JsonValue::as_str), Some("progress"));
        assert_eq!(docs[0].get("seq").and_then(JsonValue::as_u64), Some(1));
        assert_eq!(docs[0].get("n").and_then(JsonValue::as_u64), Some(40));
        assert_eq!(docs[0].get("config"), Some(&JsonValue::Null));
        assert_eq!(docs[0].get("shard_busy_ns").and_then(JsonValue::as_u64), Some(81_234_567));
        assert_eq!(docs[0].get("overshoot").and_then(JsonValue::as_u64), Some(0));
        assert_eq!(docs[1].get("config").and_then(JsonValue::as_u64), Some(2));
        assert_eq!(docs[1].get("metric").and_then(JsonValue::as_str), Some("delta_cpi"));
        assert_eq!(docs[2].get("type").and_then(JsonValue::as_str), Some("anomaly"));
        assert_eq!(docs[2].get("seq").and_then(JsonValue::as_u64), Some(2));
        assert_eq!(docs[2].get("point").and_then(JsonValue::as_u64), Some(17));
        let kinds = docs[2].get("kinds").and_then(JsonValue::as_arr).expect("kinds array");
        assert_eq!(kinds.len(), 2);
        assert_eq!(kinds[0].as_str(), Some("cpi_outlier"));
        // Guarded non-finite floats parse as 0.
        assert_eq!(docs[3].get("rel_half_width").and_then(JsonValue::as_f64), Some(0.0));
        assert_eq!(docs[3].get("mean").and_then(JsonValue::as_f64), Some(0.0));

        let _ = std::fs::remove_file(&path);
    }
}
