//! Sampling-health event stream: structured JSONL records of a run's
//! *statistical* health, complementing the mechanical span trace.
//!
//! Two record types share one sink:
//!
//! ```json
//! {"type":"progress","run_id":"9f2a41c07d3be581-1","seq":1,"run":"online",
//!  "metric":"cpi","t_us":512,"worker":0,"config":null,"n":40,"mean":1.372,
//!  "half_width":0.041,"rel_half_width":0.0299,"target_rel_err":0.03,
//!  "eligible":true,"rel_half_width_95":0.0195,"eligible_95":true,
//!  "shard_points":40,"shard_busy_ns":81234567,"overshoot":0}
//! {"type":"anomaly","run_id":"9f2a41c07d3be581-1","seq":1,"run":"online",
//!  "t_us":498,"worker":0,"point":17,"detail_start":123000,
//!  "measure_start":125000,"kinds":["cpi_outlier"],"cpi":2.31,"mean":1.37,
//!  "std_dev":0.21,"sigmas":4.5,"decode_ns":52000,"simulate_ns":410000}
//! ```
//!
//! ## Run identity
//!
//! `seq` is a process-wide run ordinal (from [`next_run_seq`]): one
//! binary often performs several runs back to back into the same sink,
//! and the ordinal is what lets a consumer separate their record
//! streams. The ordinal alone is **not** collision-resistant — two
//! separate processes both start at `seq = 1`, so merged logs (or a
//! shared registry) would conflate their runs. Every record therefore
//! also carries a `run_id`: a per-process random-ish 64-bit token
//! (hashed from argv, the pid, and the wall clock — see
//! [`process_token`]) joined with the ordinal as
//! `"{token:016x}-{seq}"`. [`derive_run_id`] additionally folds in a
//! caller-supplied seed text (the experiment binaries hash the rendered
//! `RunManifest`, tying the id to the run's configuration content).
//!
//! * **progress** — emitted by the runners at every merge stride: the
//!   running mean, CI half-width, relative error, early-termination
//!   eligibility at the policy confidence *and* at the paper's ±ε@95%
//!   rule, plus the emitting worker's own point count (`shard_points`,
//!   the per-shard lag signal), its cumulative decode+simulate time
//!   (`shard_busy_ns`, the per-shard load signal), and — on a run's
//!   closing record — the exact early-termination overshoot
//!   (`overshoot`).
//! * **anomaly** — one record per anomalous live-point: which tests
//!   fired (`kinds`: `cpi_outlier`, `slow_decode`, `slow_simulate`),
//!   the point's library index and window provenance, and the running
//!   estimate it deviated from.
//!
//! The sink is installed by [`set_events_path`] (the experiment
//! binaries' `--events` flag) or the `TELEMETRY_EVENTS` environment
//! variable. When no sink is installed, [`events_on`] is a single
//! relaxed atomic load and the emitters return immediately; when the
//! crate is built without the `enabled` feature, everything here is an
//! inlined no-op.
//!
//! ## In-process run summaries
//!
//! Independent of the JSONL sink, [`enable_run_summaries`] turns on an
//! in-process tally that distills the progress/anomaly stream into one
//! [`RunSummary`] per `(seq, run, metric, config)` series — final n /
//! mean / CI, the first point count at which the run became eligible to
//! stop, the exact overshoot, anomaly count, and per-shard spread.
//! `spectral-registry` uses this to persist a convergence summary
//! without requiring an events file on disk.

/// FNV-1a 64-bit hash — the repo's standard cheap content hash for
/// identifiers (collision resistance adequate for run labeling, not
/// cryptography).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The process-wide run-identity token: FNV-1a over argv, the pid, and
/// the wall clock at first use. Stable for the life of the process,
/// collision-resistant across processes (unlike the `seq` ordinal).
pub fn process_token() -> u64 {
    use std::sync::OnceLock;
    static TOKEN: OnceLock<u64> = OnceLock::new();
    *TOKEN.get_or_init(|| {
        let mut buf: Vec<u8> = Vec::new();
        for arg in std::env::args_os() {
            buf.extend_from_slice(arg.to_string_lossy().as_bytes());
            buf.push(0);
        }
        buf.extend_from_slice(&std::process::id().to_le_bytes());
        if let Ok(d) = std::time::SystemTime::now().duration_since(std::time::UNIX_EPOCH) {
            buf.extend_from_slice(&d.as_secs().to_le_bytes());
            buf.extend_from_slice(&d.subsec_nanos().to_le_bytes());
        }
        fnv1a64(&buf)
    })
}

/// The collision-resistant run id for the run with ordinal `seq`:
/// `"{process_token:016x}-{seq}"`. Every emitted event record carries
/// this; doctor splits merged logs on it.
pub fn run_id(seq: u64) -> String {
    format!("{:016x}-{seq}", process_token())
}

/// A run id additionally seeded from caller content (the experiment
/// binaries pass the rendered `RunManifest`, so the id is tied to the
/// run's configuration): `"{token ^ fnv1a64(seed_text):016x}-{seq}"`.
pub fn derive_run_id(seed_text: &str, seq: u64) -> String {
    format!("{:016x}-{seq}", process_token() ^ fnv1a64(seed_text.as_bytes()))
}

/// One merge-stride progress record (see the module docs for the JSON
/// shape). Plain data in both build modes; only
/// [`emit`](ProgressEvent::emit) differs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProgressEvent<'a> {
    /// Process-wide run ordinal (see [`next_run_seq`]).
    pub seq: u64,
    /// Run kind: `online`, `matched`, or `sweep`.
    pub run: &'a str,
    /// What the mean estimates: `cpi` or `delta_cpi`.
    pub metric: &'a str,
    /// Emitting worker ordinal (0 for serial runs).
    pub worker: usize,
    /// Sweep configuration index; `None` for single-config runs.
    pub config: Option<usize>,
    /// Points merged into the estimate so far.
    pub n: u64,
    /// Running mean.
    pub mean: f64,
    /// CI half-width at the policy confidence.
    pub half_width: f64,
    /// Relative error at the policy confidence (half-width over the
    /// comparison mean — the base-machine mean for matched runs).
    pub rel_half_width: f64,
    /// The policy's relative-error target ε.
    pub target_rel_err: f64,
    /// Early-termination eligibility at the policy confidence.
    pub eligible: bool,
    /// Relative error at 95% confidence.
    pub rel_half_width_95: f64,
    /// The paper's ±ε@95% early-termination rule.
    pub eligible_95: bool,
    /// The emitting worker's own processed-point count (per-shard lag).
    pub shard_points: u64,
    /// The emitting worker's cumulative decode + simulate wall-clock
    /// (per-shard busy time, for imbalance analysis).
    pub shard_busy_ns: u64,
    /// Exact early-termination overshoot: points processed past the
    /// count at which the run first became eligible to stop. Zero on
    /// mid-run records; the run's closing record carries the total.
    pub overshoot: u64,
}

impl ProgressEvent<'_> {
    /// Append this record to the event sink (no-op when unsubscribed).
    pub fn emit(&self) {
        imp::emit_progress(self);
    }
}

/// One anomalous live-point record (see the module docs for the JSON
/// shape).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnomalyEvent<'a> {
    /// Process-wide run ordinal (see [`next_run_seq`]).
    pub seq: u64,
    /// Run kind: `online`, `matched`, or `sweep`.
    pub run: &'a str,
    /// Emitting worker ordinal (0 for serial runs).
    pub worker: usize,
    /// Library index of the live-point.
    pub point: u64,
    /// Window provenance: sequence number where detailed warming begins.
    pub detail_start: u64,
    /// Window provenance: sequence number where measurement begins.
    pub measure_start: u64,
    /// Which tests fired: `cpi_outlier`, `slow_decode`, `slow_simulate`.
    pub kinds: &'a [&'a str],
    /// The point's measured CPI.
    pub cpi: f64,
    /// Running CPI mean at observation time.
    pub mean: f64,
    /// Running CPI standard deviation at observation time.
    pub std_dev: f64,
    /// Deviation in standard deviations (0 when only a time test fired).
    pub sigmas: f64,
    /// Decode (decompress + DER) wall-clock for this point.
    pub decode_ns: u64,
    /// Detailed-simulation wall-clock for this point.
    pub simulate_ns: u64,
}

impl AnomalyEvent<'_> {
    /// Append this record to the event sink (no-op when unsubscribed).
    pub fn emit(&self) {
        imp::emit_anomaly(self);
    }
}

/// One checkpoint-written record: a run flushed its crash-recovery
/// sidecar. Plain data in both build modes; only
/// [`emit`](CheckpointEvent::emit) differs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointEvent<'a> {
    /// The checkpoint sidecar file that was atomically replaced.
    pub path: &'a str,
    /// Live-points recorded in the checkpoint at flush time.
    pub points: u64,
}

impl CheckpointEvent<'_> {
    /// Append this record to the event sink (no-op when unsubscribed).
    pub fn emit(&self) {
        imp::emit_checkpoint(self);
    }
}

/// The distilled convergence summary of one run series, produced by the
/// in-process tally (see [`enable_run_summaries`] /
/// [`take_run_summaries`]). Plain data in both build modes.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunSummary {
    /// Collision-resistant run id (`"{token:016x}-{seq}"`).
    pub run_id: String,
    /// Process-wide run ordinal.
    pub seq: u64,
    /// Run kind: `online`, `matched`, or `sweep`.
    pub run: String,
    /// Estimated metric: `cpi` or `delta_cpi`.
    pub metric: String,
    /// Sweep configuration index; `None` for single-config runs.
    pub config: Option<usize>,
    /// Points merged at the final observed stride.
    pub n: u64,
    /// Final running mean.
    pub mean: f64,
    /// Final CI half-width at the policy confidence.
    pub half_width: f64,
    /// Final relative error at the policy confidence.
    pub rel_half_width: f64,
    /// The policy's relative-error target ε.
    pub target_rel_err: f64,
    /// Whether the final stride met the early-termination rule.
    pub eligible: bool,
    /// Point count at which the run first became eligible to stop.
    pub first_eligible_n: Option<u64>,
    /// Exact early-termination overshoot reported on the closing record.
    pub overshoot: u64,
    /// Number of anomaly records attributed to this run.
    pub anomalies: u64,
    /// Distinct workers that reported progress.
    pub workers: usize,
    /// Smallest per-shard point count at the final stride.
    pub min_shard_points: u64,
    /// Largest per-shard point count at the final stride.
    pub max_shard_points: u64,
    /// Smallest per-shard cumulative busy time (ns).
    pub min_shard_busy_ns: u64,
    /// Largest per-shard cumulative busy time (ns).
    pub max_shard_busy_ns: u64,
}

impl RunSummary {
    /// Busy-time spread across shards: `(max - min) / max`, the same
    /// imbalance figure `spectral-doctor` reports. Zero for serial runs.
    pub fn busy_spread(&self) -> f64 {
        if self.max_shard_busy_ns == 0 {
            return 0.0;
        }
        (self.max_shard_busy_ns - self.min_shard_busy_ns) as f64 / self.max_shard_busy_ns as f64
    }
}

#[cfg(feature = "enabled")]
mod imp {
    use std::collections::BTreeMap;
    use std::fs::File;
    use std::io::{BufWriter, Write};
    use std::path::Path;
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::Mutex;

    use super::{AnomalyEvent, ProgressEvent, RunSummary};
    use crate::json::number;

    static EVENTS_ON: AtomicBool = AtomicBool::new(false);
    static EVENTS_SINK: Mutex<Option<BufWriter<File>>> = Mutex::new(None);
    static RUN_SEQ: AtomicU64 = AtomicU64::new(0);
    static TALLY_ON: AtomicBool = AtomicBool::new(false);

    type TallyKey = (u64, String, String, Option<usize>);
    #[derive(Default)]
    struct Tally {
        series: BTreeMap<TallyKey, SeriesTally>,
        anomalies: BTreeMap<(u64, String), u64>,
    }
    struct SeriesTally {
        last: RunSummary,
        shards: BTreeMap<usize, (u64, u64)>,
    }
    static TALLY: Mutex<Option<Tally>> = Mutex::new(None);

    /// Allocate the next process-wide run ordinal (1, 2, …). Runners
    /// call this once per run and stamp every event they emit with it.
    pub fn next_run_seq() -> u64 {
        RUN_SEQ.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Whether a sampling-health event sink is installed.
    #[inline]
    pub fn events_on() -> bool {
        EVENTS_ON.load(Ordering::Relaxed)
    }

    /// Install (or replace) the JSONL event sink at `path`.
    pub fn set_events_path(path: impl AsRef<Path>) -> std::io::Result<()> {
        let file = File::create(path)?;
        *EVENTS_SINK.lock().expect("event sink lock") = Some(BufWriter::new(file));
        EVENTS_ON.store(true, Ordering::Relaxed);
        Ok(())
    }

    /// Install the event sink from the `TELEMETRY_EVENTS` environment
    /// variable (a file path) if set; returns whether events are now on.
    pub fn events_from_env() -> std::io::Result<bool> {
        if events_on() {
            return Ok(true);
        }
        match std::env::var_os("TELEMETRY_EVENTS") {
            Some(path) if !path.is_empty() => {
                set_events_path(path)?;
                Ok(true)
            }
            _ => Ok(false),
        }
    }

    /// Flush buffered events to the sink.
    pub fn flush_events() {
        if let Some(w) = EVENTS_SINK.lock().expect("event sink lock").as_mut() {
            let _ = w.flush();
        }
    }

    /// Turn on the in-process run-summary tally. Runners check this (in
    /// addition to [`events_on`]) when deciding whether to observe
    /// sampling health, so summaries work without a JSONL sink.
    pub fn enable_run_summaries() {
        let mut guard = TALLY.lock().expect("tally lock");
        if guard.is_none() {
            *guard = Some(Tally::default());
        }
        TALLY_ON.store(true, Ordering::Relaxed);
    }

    /// Whether the in-process run-summary tally is on.
    #[inline]
    pub fn run_summaries_on() -> bool {
        TALLY_ON.load(Ordering::Relaxed)
    }

    /// Drain the tally: one [`RunSummary`] per observed
    /// `(seq, run, metric, config)` series, ordered by that key. The
    /// tally restarts empty (summaries are per-drain, so back-to-back
    /// runs in one process don't bleed into each other's records).
    pub fn take_run_summaries() -> Vec<RunSummary> {
        let mut guard = TALLY.lock().expect("tally lock");
        let Some(tally) = guard.as_mut() else {
            return Vec::new();
        };
        let series = std::mem::take(&mut tally.series);
        let anomalies = std::mem::take(&mut tally.anomalies);
        series
            .into_values()
            .map(|s| {
                let mut out = s.last;
                out.workers = s.shards.len();
                out.min_shard_points = s.shards.values().map(|v| v.0).min().unwrap_or(0);
                out.max_shard_points = s.shards.values().map(|v| v.0).max().unwrap_or(0);
                out.min_shard_busy_ns = s.shards.values().map(|v| v.1).min().unwrap_or(0);
                out.max_shard_busy_ns = s.shards.values().map(|v| v.1).max().unwrap_or(0);
                out.anomalies = anomalies.get(&(out.seq, out.run.clone())).copied().unwrap_or(0);
                out
            })
            .collect()
    }

    fn tally_progress(e: &ProgressEvent<'_>) {
        let mut guard = TALLY.lock().expect("tally lock");
        let Some(tally) = guard.as_mut() else {
            return;
        };
        let key = (e.seq, e.run.to_owned(), e.metric.to_owned(), e.config);
        let entry = tally.series.entry(key).or_insert_with(|| SeriesTally {
            last: RunSummary {
                run_id: super::run_id(e.seq),
                seq: e.seq,
                run: e.run.to_owned(),
                metric: e.metric.to_owned(),
                config: e.config,
                ..RunSummary::default()
            },
            shards: BTreeMap::new(),
        });
        // Records race in from all workers; the one with the largest
        // merged count is the freshest view of the global estimate.
        if e.n >= entry.last.n {
            entry.last.n = e.n;
            entry.last.mean = e.mean;
            entry.last.half_width = e.half_width;
            entry.last.rel_half_width = e.rel_half_width;
            entry.last.target_rel_err = e.target_rel_err;
            entry.last.eligible = e.eligible;
        }
        if e.eligible {
            match entry.last.first_eligible_n {
                Some(n) if n <= e.n => {}
                _ => entry.last.first_eligible_n = Some(e.n),
            }
        }
        entry.last.overshoot = entry.last.overshoot.max(e.overshoot);
        let shard = entry.shards.entry(e.worker).or_insert((0, 0));
        shard.0 = shard.0.max(e.shard_points);
        shard.1 = shard.1.max(e.shard_busy_ns);
    }

    fn tally_anomaly(e: &AnomalyEvent<'_>) {
        let mut guard = TALLY.lock().expect("tally lock");
        let Some(tally) = guard.as_mut() else {
            return;
        };
        *tally.anomalies.entry((e.seq, e.run.to_owned())).or_insert(0) += 1;
    }

    fn write_line(line: &str) {
        if let Some(w) = EVENTS_SINK.lock().expect("event sink lock").as_mut() {
            let _ = writeln!(w, "{line}");
        }
    }

    pub(super) fn emit_progress(e: &ProgressEvent<'_>) {
        if run_summaries_on() {
            tally_progress(e);
        }
        if !events_on() {
            return;
        }
        let config = match e.config {
            Some(c) => c.to_string(),
            None => "null".to_owned(),
        };
        write_line(&format!(
            "{{\"type\":\"progress\",\"run_id\":{},\"seq\":{},\"run\":{},\"metric\":{},\
             \"t_us\":{},\"worker\":{},\"config\":{config},\"n\":{},\"mean\":{},\
             \"half_width\":{},\"rel_half_width\":{},\"target_rel_err\":{},\"eligible\":{},\
             \"rel_half_width_95\":{},\"eligible_95\":{},\"shard_points\":{},\
             \"shard_busy_ns\":{},\"overshoot\":{}}}",
            crate::json::quote(&super::run_id(e.seq)),
            e.seq,
            crate::json::quote(e.run),
            crate::json::quote(e.metric),
            crate::span::now_us(),
            e.worker,
            e.n,
            number(e.mean),
            number(e.half_width),
            number(e.rel_half_width),
            number(e.target_rel_err),
            e.eligible,
            number(e.rel_half_width_95),
            e.eligible_95,
            e.shard_points,
            e.shard_busy_ns,
            e.overshoot,
        ));
    }

    pub(super) fn emit_anomaly(e: &AnomalyEvent<'_>) {
        if run_summaries_on() {
            tally_anomaly(e);
        }
        if !events_on() {
            return;
        }
        let kinds: Vec<String> = e.kinds.iter().map(|k| crate::json::quote(k)).collect();
        write_line(&format!(
            "{{\"type\":\"anomaly\",\"run_id\":{},\"seq\":{},\"run\":{},\"t_us\":{},\
             \"worker\":{},\"point\":{},\"detail_start\":{},\"measure_start\":{},\
             \"kinds\":[{}],\"cpi\":{},\"mean\":{},\"std_dev\":{},\"sigmas\":{},\
             \"decode_ns\":{},\"simulate_ns\":{}}}",
            crate::json::quote(&super::run_id(e.seq)),
            e.seq,
            crate::json::quote(e.run),
            crate::span::now_us(),
            e.worker,
            e.point,
            e.detail_start,
            e.measure_start,
            kinds.join(","),
            number(e.cpi),
            number(e.mean),
            number(e.std_dev),
            number(e.sigmas),
            e.decode_ns,
            e.simulate_ns,
        ));
    }

    pub(super) fn emit_checkpoint(e: &super::CheckpointEvent<'_>) {
        if !events_on() {
            return;
        }
        write_line(&format!(
            "{{\"type\":\"checkpoint\",\"t_us\":{},\"path\":{},\"points\":{}}}",
            crate::span::now_us(),
            crate::json::quote(e.path),
            e.points,
        ));
    }
}

#[cfg(not(feature = "enabled"))]
mod imp {
    use std::path::Path;

    use super::{AnomalyEvent, ProgressEvent, RunSummary};

    /// Always false (telemetry compiled out).
    #[inline(always)]
    pub fn events_on() -> bool {
        false
    }

    /// No-op (telemetry compiled out).
    pub fn set_events_path(_path: impl AsRef<Path>) -> std::io::Result<()> {
        Ok(())
    }

    /// Always `Ok(false)`.
    pub fn events_from_env() -> std::io::Result<bool> {
        Ok(false)
    }

    /// No-op.
    pub fn flush_events() {}

    /// Always 0 (telemetry compiled out; no events carry it anywhere).
    #[inline(always)]
    pub fn next_run_seq() -> u64 {
        0
    }

    /// No-op (telemetry compiled out).
    pub fn enable_run_summaries() {}

    /// Always false (telemetry compiled out).
    #[inline(always)]
    pub fn run_summaries_on() -> bool {
        false
    }

    /// Always empty (telemetry compiled out).
    pub fn take_run_summaries() -> Vec<RunSummary> {
        Vec::new()
    }

    #[inline(always)]
    pub(super) fn emit_progress(_e: &ProgressEvent<'_>) {}

    #[inline(always)]
    pub(super) fn emit_anomaly(_e: &AnomalyEvent<'_>) {}

    #[inline(always)]
    pub(super) fn emit_checkpoint(_e: &super::CheckpointEvent<'_>) {}
}

pub use imp::{
    enable_run_summaries, events_from_env, events_on, flush_events, next_run_seq, run_summaries_on,
    set_events_path, take_run_summaries,
};

#[cfg(all(test, feature = "enabled"))]
mod tests {
    use super::*;
    use crate::json::JsonValue;

    fn sample_progress<'a>() -> ProgressEvent<'a> {
        ProgressEvent {
            seq: 1,
            run: "online",
            metric: "cpi",
            worker: 0,
            config: None,
            n: 40,
            mean: 1.372,
            half_width: 0.041,
            rel_half_width: 0.0299,
            target_rel_err: 0.03,
            eligible: true,
            rel_half_width_95: 0.0195,
            eligible_95: true,
            shard_points: 40,
            shard_busy_ns: 81_234_567,
            overshoot: 0,
        }
    }

    #[test]
    fn events_round_trip_as_json_lines() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("spectral_events_test_{}.jsonl", std::process::id()));
        set_events_path(&path).expect("temp event sink");
        assert!(events_on());

        sample_progress().emit();
        ProgressEvent { config: Some(2), metric: "delta_cpi", ..sample_progress() }.emit();
        AnomalyEvent {
            seq: 2,
            run: "online",
            worker: 3,
            point: 17,
            detail_start: 123_000,
            measure_start: 125_000,
            kinds: &["cpi_outlier", "slow_simulate"],
            cpi: 2.31,
            mean: 1.37,
            std_dev: 0.21,
            sigmas: 4.5,
            decode_ns: 52_000,
            simulate_ns: 410_000,
        }
        .emit();
        // Non-finite CI fields must degrade to valid JSON numbers.
        ProgressEvent { rel_half_width: f64::INFINITY, mean: f64::NAN, ..sample_progress() }.emit();
        flush_events();

        let text = std::fs::read_to_string(&path).expect("read events back");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        let docs: Vec<JsonValue> =
            lines.iter().map(|l| JsonValue::parse(l).expect("valid JSON line")).collect();
        assert_eq!(docs[0].get("type").and_then(JsonValue::as_str), Some("progress"));
        assert_eq!(docs[0].get("seq").and_then(JsonValue::as_u64), Some(1));
        assert_eq!(docs[0].get("run_id").and_then(JsonValue::as_str), Some(run_id(1).as_str()));
        assert_eq!(docs[0].get("n").and_then(JsonValue::as_u64), Some(40));
        assert_eq!(docs[0].get("config"), Some(&JsonValue::Null));
        assert_eq!(docs[0].get("shard_busy_ns").and_then(JsonValue::as_u64), Some(81_234_567));
        assert_eq!(docs[0].get("overshoot").and_then(JsonValue::as_u64), Some(0));
        assert_eq!(docs[1].get("config").and_then(JsonValue::as_u64), Some(2));
        assert_eq!(docs[1].get("metric").and_then(JsonValue::as_str), Some("delta_cpi"));
        assert_eq!(docs[2].get("type").and_then(JsonValue::as_str), Some("anomaly"));
        assert_eq!(docs[2].get("seq").and_then(JsonValue::as_u64), Some(2));
        assert_eq!(docs[2].get("run_id").and_then(JsonValue::as_str), Some(run_id(2).as_str()));
        assert_eq!(docs[2].get("point").and_then(JsonValue::as_u64), Some(17));
        let kinds = docs[2].get("kinds").and_then(JsonValue::as_arr).expect("kinds array");
        assert_eq!(kinds.len(), 2);
        assert_eq!(kinds[0].as_str(), Some("cpi_outlier"));
        // Guarded non-finite floats parse as 0.
        assert_eq!(docs[3].get("rel_half_width").and_then(JsonValue::as_f64), Some(0.0));
        assert_eq!(docs[3].get("mean").and_then(JsonValue::as_f64), Some(0.0));

        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn run_ids_are_stable_within_a_process_and_embed_seq() {
        assert_eq!(run_id(3), run_id(3));
        assert_ne!(run_id(3), run_id(4));
        assert!(run_id(7).ends_with("-7"));
        // A derived id folds the seed text into the token half.
        let a = derive_run_id("config-a", 1);
        let b = derive_run_id("config-b", 1);
        assert_ne!(a, b);
        assert!(a.ends_with("-1") && b.ends_with("-1"));
    }

    #[test]
    fn run_summary_tally_distills_the_progress_stream() {
        enable_run_summaries();
        assert!(run_summaries_on());
        let _ = take_run_summaries(); // start from a clean tally

        // Two workers of seq 91 interleave; worker 1 lags.
        ProgressEvent {
            seq: 91,
            worker: 0,
            n: 8,
            eligible: false,
            shard_points: 8,
            shard_busy_ns: 1_000,
            ..sample_progress()
        }
        .emit();
        ProgressEvent {
            seq: 91,
            worker: 1,
            n: 12,
            eligible: false,
            shard_points: 4,
            shard_busy_ns: 600,
            ..sample_progress()
        }
        .emit();
        ProgressEvent {
            seq: 91,
            worker: 0,
            n: 20,
            mean: 1.5,
            eligible: true,
            shard_points: 14,
            shard_busy_ns: 2_000,
            overshoot: 6,
            ..sample_progress()
        }
        .emit();
        // A second series (different config) and one anomaly.
        ProgressEvent { seq: 91, config: Some(1), n: 5, ..sample_progress() }.emit();
        AnomalyEvent {
            seq: 91,
            run: "online",
            worker: 0,
            point: 3,
            detail_start: 0,
            measure_start: 0,
            kinds: &["cpi_outlier"],
            cpi: 9.0,
            mean: 1.5,
            std_dev: 0.1,
            sigmas: 75.0,
            decode_ns: 1,
            simulate_ns: 1,
        }
        .emit();

        let summaries = take_run_summaries();
        assert_eq!(summaries.len(), 2);
        let s = &summaries[0];
        assert_eq!((s.seq, s.config), (91, None));
        assert_eq!(s.run_id, run_id(91));
        assert_eq!(s.n, 20);
        assert_eq!(s.mean, 1.5);
        assert_eq!(s.first_eligible_n, Some(20));
        assert_eq!(s.overshoot, 6);
        assert_eq!(s.workers, 2);
        assert_eq!((s.min_shard_points, s.max_shard_points), (4, 14));
        assert_eq!((s.min_shard_busy_ns, s.max_shard_busy_ns), (600, 2_000));
        assert!((s.busy_spread() - 0.7).abs() < 1e-12);
        assert_eq!(s.anomalies, 1);
        assert_eq!(summaries[1].config, Some(1));
        // Drained: the next take sees nothing.
        assert!(take_run_summaries().is_empty());
    }

    #[test]
    fn fnv1a64_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }
}
