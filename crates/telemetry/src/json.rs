//! Minimal JSON writer helpers and reader.
//!
//! The workspace is dependency-free, so manifests and snapshots are
//! serialized with small hand-rolled helpers ([`quote`], [`number`]) and
//! read back (for round-trip tests and tooling) with a strict
//! recursive-descent parser into [`JsonValue`].

use std::collections::BTreeMap;
use std::fmt;

/// Escape `s` as a JSON string literal, including the surrounding quotes.
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Format `v` as a JSON number token; non-finite values become `0`.
pub fn number(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // `{}` on f64 never prints exponent-free integers as "1.0", so
        // "1" round-trips as a JSON number either way.
        s
    } else {
        "0".to_owned()
    }
}

/// Error from [`JsonValue::parse`]: byte offset plus a short message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset in the input where parsing failed.
    pub offset: usize,
    /// What was expected or found.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// A parsed JSON document node.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object; key order is not preserved.
    Obj(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// Parse a complete JSON document; trailing non-whitespace is an error.
    pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
        let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing data after document"));
        }
        Ok(v)
    }

    /// Object member lookup; `None` for non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as an exact non-negative integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The object members, if this is an object.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, JsonValue>> {
        match self {
            JsonValue::Obj(m) => Some(m),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError { offset: self.pos, message: message.into() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => self.string().map(JsonValue::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected byte '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut members = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogates degrade to the replacement char;
                            // the writer never emits them.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number token is ascii");
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| self.err(format!("bad number '{text}'")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quote_escapes() {
        assert_eq!(quote("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(quote("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn number_formats() {
        assert_eq!(number(1.5), "1.5");
        assert_eq!(number(3.0), "3");
        assert_eq!(number(f64::NAN), "0");
    }

    #[test]
    fn non_finite_numbers_are_pinned_to_zero_and_round_trip() {
        // The writer's `is_finite` gate is a deliberate contract, not an
        // accident: JSON has no NaN/Inf tokens, and a registry record
        // with a NaN CI half-width must still parse everywhere. Pin the
        // full family and the round-trip.
        for v in [f64::NAN, -f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let token = number(v);
            assert_eq!(token, "0", "{v} must serialize as 0");
            assert_eq!(JsonValue::parse(&token).unwrap().as_f64(), Some(0.0));
        }
        // Finite extremes survive untouched (no accidental clamping).
        for v in [f64::MAX, f64::MIN, f64::MIN_POSITIVE, -0.0] {
            let token = number(v);
            let back = JsonValue::parse(&token).unwrap().as_f64().unwrap();
            assert_eq!(back, v, "finite {v} must round-trip exactly");
        }
        // Embedded in a document: the object still parses and the field
        // reads back as a plain zero.
        let doc = format!("{{\"half_width\":{}}}", number(f64::NAN));
        let v = JsonValue::parse(&doc).unwrap();
        assert_eq!(v.get("half_width").and_then(JsonValue::as_f64), Some(0.0));
    }

    #[test]
    fn parse_round_trip() {
        let doc = r#"{"a": [1, 2.5, -3e2], "b": {"s": "hi\n", "t": true, "n": null}}"#;
        let v = JsonValue::parse(doc).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[1].as_f64(), Some(2.5));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[2].as_f64(), Some(-300.0));
        assert_eq!(v.get("b").unwrap().get("s").unwrap().as_str(), Some("hi\n"));
        assert_eq!(v.get("b").unwrap().get("t").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("b").unwrap().get("n"), Some(&JsonValue::Null));
    }

    #[test]
    fn parse_rejects_trailing() {
        assert!(JsonValue::parse("{} x").is_err());
        assert!(JsonValue::parse("[1,]").is_err());
        assert!(JsonValue::parse("\"unterminated").is_err());
    }

    #[test]
    fn u64_exactness() {
        let v = JsonValue::parse("18446744073709551615").unwrap();
        // Above 2^53 exactness is lost in f64, but within-range integers work.
        assert!(v.as_f64().is_some());
        let small = JsonValue::parse("42").unwrap();
        assert_eq!(small.as_u64(), Some(42));
        assert_eq!(JsonValue::parse("-1").unwrap().as_u64(), None);
        assert_eq!(JsonValue::parse("1.5").unwrap().as_u64(), None);
    }
}
