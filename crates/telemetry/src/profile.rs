//! Worker-timeline profiler: per-worker rings of phase intervals with a
//! dedicated JSONL sink.
//!
//! The paper's value proposition is wall-clock, so every second a
//! runner worker spends *not* simulating (claiming chunks, decoding,
//! waiting on the merge lock, idling at the termination barrier)
//! erodes the reproduced speedup. This module records where each
//! worker's wall-clock went as a stream of phase intervals:
//!
//! ```json
//! {"type":"profile_run","run_id":"9f2a…-1","seq":1,"run":"online",
//!  "workers":4,"t_us":120,"dur_us":81234}
//! {"type":"profile_worker","run_id":"9f2a…-1","seq":1,"run":"online",
//!  "worker":0,"t_us":130,"dur_us":80410,"recorded":412,"kept":412,
//!  "phases":{"claim":{"count":9,"ns":4100},"decode":{"count":96,"ns":…}}}
//! {"type":"profile_phase","run_id":"9f2a…-1","seq":1,"run":"online",
//!  "worker":0,"phase":"simulate","t_us":1520,"dur_us":910}
//! ```
//!
//! Recording is designed to stay out of the measured path:
//!
//! * When no sink is installed ([`profiling`] is false — a single
//!   relaxed load) every [`WorkerTimeline`] operation is an inert
//!   branch: no clock reads, no allocation, no locks.
//! * When on, intervals land in a **per-worker ring** owned by the
//!   worker itself ([`WorkerTimeline`]) — no cross-thread
//!   synchronization per interval. Exact per-phase aggregates
//!   `(count, total_ns)` are kept for *every* recorded interval; the
//!   ring additionally retains the most recent
//!   [`PROFILE_RING_CAPACITY`] intervals for fine-grained timeline
//!   rendering. The sink lock is taken once, when the timeline drops.
//! * Wherever the runner has already measured a duration (decode and
//!   simulate times feed the health layer anyway), the timeline reuses
//!   it via [`WorkerTimeline::note`] instead of reading the clock
//!   again; only the phases without an existing measurement (claim,
//!   merge-wait, merge) pay for their own RAII guard
//!   ([`WorkerTimeline::enter`]).
//!
//! The sink is installed by [`set_profile_path`] (the experiment
//! binaries' `--profile` flag) or the `SPECTRAL_PROFILE` environment
//! variable. `spectral-doctor profile` ingests the stream and computes
//! wall-clock attribution, contention and straggler analyses, and the
//! profiler's own overhead estimate (`recorded × per-record cost`).

/// The phases a runner worker's wall-clock is attributed to.
///
/// `Idle` is never recorded directly — it is the remainder of a
/// worker's wall-clock after all recorded phases, computed by
/// consumers — but it participates in the wire format and rendering as
/// a first-class phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ProfilePhase {
    /// Claiming the next index chunk (scheduler atomics / stride math).
    Claim,
    /// Decode the simulator actually stalled on: the prefetch ring was
    /// empty, so detailed simulation waited for this decode.
    PrefetchWait,
    /// Decode-ahead work: topping the prefetch ring up past the point
    /// the simulator is about to consume.
    Decode,
    /// Detailed simulation (warming + measurement), the paid-for work.
    Simulate,
    /// Waiting to acquire the shared progress lock at a merge point.
    MergeWait,
    /// Merging the thread-local batch under the progress lock.
    Merge,
    /// Wall-clock not covered by any recorded phase.
    Idle,
}

impl ProfilePhase {
    /// Every phase, in canonical rendering order.
    pub const ALL: [ProfilePhase; 7] = [
        ProfilePhase::Claim,
        ProfilePhase::PrefetchWait,
        ProfilePhase::Decode,
        ProfilePhase::Simulate,
        ProfilePhase::MergeWait,
        ProfilePhase::Merge,
        ProfilePhase::Idle,
    ];

    /// The stable wire name carried by `profile_*` JSONL records.
    pub fn name(self) -> &'static str {
        match self {
            ProfilePhase::Claim => "claim",
            ProfilePhase::PrefetchWait => "prefetch_wait",
            ProfilePhase::Decode => "decode",
            ProfilePhase::Simulate => "simulate",
            ProfilePhase::MergeWait => "merge_wait",
            ProfilePhase::Merge => "merge",
            ProfilePhase::Idle => "idle",
        }
    }

    #[cfg_attr(not(feature = "enabled"), allow(dead_code))]
    fn index(self) -> usize {
        match self {
            ProfilePhase::Claim => 0,
            ProfilePhase::PrefetchWait => 1,
            ProfilePhase::Decode => 2,
            ProfilePhase::Simulate => 3,
            ProfilePhase::MergeWait => 4,
            ProfilePhase::Merge => 5,
            ProfilePhase::Idle => 6,
        }
    }
}

/// Most recent intervals retained per worker for timeline rendering
/// (aggregates cover every interval regardless).
pub const PROFILE_RING_CAPACITY: usize = 4096;

#[cfg(feature = "enabled")]
mod imp {
    use std::collections::VecDeque;
    use std::fmt::Write as _;
    use std::fs::File;
    use std::io::{BufWriter, Write};
    use std::path::Path;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Mutex;
    use std::time::Instant;

    use super::{ProfilePhase, PROFILE_RING_CAPACITY};

    static PROFILE_ON: AtomicBool = AtomicBool::new(false);
    static PROFILE_SINK: Mutex<Option<BufWriter<File>>> = Mutex::new(None);

    /// Whether a profile sink is installed.
    #[inline]
    pub fn profiling() -> bool {
        PROFILE_ON.load(Ordering::Relaxed)
    }

    /// Install (or replace) the JSONL profile sink at `path`.
    pub fn set_profile_path(path: impl AsRef<Path>) -> std::io::Result<()> {
        let file = File::create(path)?;
        *PROFILE_SINK.lock().expect("profile sink lock") = Some(BufWriter::new(file));
        PROFILE_ON.store(true, Ordering::Relaxed);
        Ok(())
    }

    /// Install the profile sink from the `SPECTRAL_PROFILE` environment
    /// variable (a file path) if set; returns whether profiling is now
    /// on.
    pub fn profile_from_env() -> std::io::Result<bool> {
        if profiling() {
            return Ok(true);
        }
        match std::env::var_os("SPECTRAL_PROFILE") {
            Some(path) if !path.is_empty() => {
                set_profile_path(path)?;
                Ok(true)
            }
            _ => Ok(false),
        }
    }

    /// Flush buffered profile records to the sink.
    pub fn flush_profile() {
        if let Some(w) = PROFILE_SINK.lock().expect("profile sink lock").as_mut() {
            let _ = w.flush();
        }
    }

    fn write_lines(lines: &str) {
        if let Some(w) = PROFILE_SINK.lock().expect("profile sink lock").as_mut() {
            let _ = w.write_all(lines.as_bytes());
        }
    }

    /// One run's wall-clock bracket: emits a `profile_run` record
    /// covering the whole run (serial body or parallel region +
    /// deterministic replay) when dropped. The doctor attributes worker
    /// phases against this duration.
    #[derive(Debug)]
    pub struct RunScope {
        on: bool,
        seq: u64,
        run: &'static str,
        workers: usize,
        open_us: u64,
        started: Option<Instant>,
    }

    /// Open the run-level profile bracket for run ordinal `seq` of kind
    /// `run` over `workers` workers. Inert when no sink is installed.
    pub fn run_scope(seq: u64, run: &'static str, workers: usize) -> RunScope {
        let on = profiling();
        RunScope {
            on,
            seq,
            run,
            workers,
            open_us: if on { crate::span::now_us() } else { 0 },
            started: on.then(Instant::now),
        }
    }

    impl Drop for RunScope {
        fn drop(&mut self) {
            let Some(started) = self.started else { return };
            if !self.on {
                return;
            }
            let dur_us = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
            write_lines(&format!(
                "{{\"type\":\"profile_run\",\"run_id\":{},\"seq\":{},\"run\":{},\
                 \"workers\":{},\"t_us\":{},\"dur_us\":{dur_us}}}\n",
                crate::json::quote(&crate::events::run_id(self.seq)),
                self.seq,
                crate::json::quote(self.run),
                self.workers,
                self.open_us,
            ));
        }
    }

    /// One worker's timeline: exact per-phase aggregates over every
    /// recorded interval plus a bounded ring of the most recent
    /// intervals. Owned by the worker thread — recording never crosses
    /// a thread boundary; serialization happens once, on drop.
    #[derive(Debug)]
    pub struct WorkerTimeline {
        on: bool,
        seq: u64,
        run: &'static str,
        worker: usize,
        open_us: u64,
        started: Option<Instant>,
        recorded: u64,
        /// `(count, total_ns)` per phase, indexed by `ProfilePhase::index`.
        aggregates: [(u64, u64); 7],
        /// `(phase, t_us, dur_ns)`, most recent `PROFILE_RING_CAPACITY`.
        ring: VecDeque<(ProfilePhase, u64, u64)>,
    }

    impl WorkerTimeline {
        /// A timeline for worker `worker` of run ordinal `seq`, kind
        /// `run`. Samples [`profiling`] once: when no sink is installed
        /// every later operation is a dead branch.
        pub fn new(seq: u64, run: &'static str, worker: usize) -> Self {
            let on = profiling();
            WorkerTimeline {
                on,
                seq,
                run,
                worker,
                open_us: if on { crate::span::now_us() } else { 0 },
                started: on.then(Instant::now),
                recorded: 0,
                aggregates: [(0, 0); 7],
                ring: VecDeque::new(),
            }
        }

        /// An inert timeline that never records (tests, non-run call
        /// sites).
        pub fn disabled() -> Self {
            WorkerTimeline {
                on: false,
                seq: 0,
                run: "",
                worker: 0,
                open_us: 0,
                started: None,
                recorded: 0,
                aggregates: [(0, 0); 7],
                ring: VecDeque::new(),
            }
        }

        /// Whether this timeline is recording.
        #[inline]
        pub fn is_on(&self) -> bool {
            self.on
        }

        fn record(&mut self, phase: ProfilePhase, dur_ns: u64) {
            self.recorded += 1;
            let a = &mut self.aggregates[phase.index()];
            a.0 += 1;
            a.1 = a.1.wrapping_add(dur_ns);
            if self.ring.len() == PROFILE_RING_CAPACITY {
                self.ring.pop_front();
            }
            let t_us = crate::span::now_us().saturating_sub(dur_ns / 1000);
            self.ring.push_back((phase, t_us, dur_ns));
        }

        /// Record an interval of `phase` that ended just now and lasted
        /// `dur_ns` — for call sites that already measured the duration
        /// (decode/simulate feed the health layer anyway), so profiling
        /// adds no clock read of its own to the measured work.
        #[inline]
        pub fn note(&mut self, phase: ProfilePhase, dur_ns: u64) {
            if self.on {
                self.record(phase, dur_ns);
            }
        }

        /// Open an RAII guard timing `phase`; the interval is recorded
        /// when the guard drops (or [`switch`](PhaseGuard::switch)es).
        #[inline]
        pub fn enter(&mut self, phase: ProfilePhase) -> PhaseGuard<'_> {
            let started = self.on.then(Instant::now);
            PhaseGuard { tl: self, phase, started }
        }
    }

    impl Drop for WorkerTimeline {
        fn drop(&mut self) {
            let Some(started) = self.started else { return };
            if !self.on {
                return;
            }
            let dur_us = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
            let run_id = crate::json::quote(&crate::events::run_id(self.seq));
            let run = crate::json::quote(self.run);
            let mut out = String::with_capacity(256 + 96 * self.ring.len());
            let _ = write!(
                out,
                "{{\"type\":\"profile_worker\",\"run_id\":{run_id},\"seq\":{},\"run\":{run},\
                 \"worker\":{},\"t_us\":{},\"dur_us\":{dur_us},\"recorded\":{},\"kept\":{},\
                 \"phases\":{{",
                self.seq,
                self.worker,
                self.open_us,
                self.recorded,
                self.ring.len(),
            );
            let mut first = true;
            for phase in ProfilePhase::ALL {
                let (count, ns) = self.aggregates[phase.index()];
                if count == 0 {
                    continue;
                }
                if !first {
                    out.push(',');
                }
                first = false;
                let _ = write!(out, "\"{}\":{{\"count\":{count},\"ns\":{ns}}}", phase.name());
            }
            out.push_str("}}\n");
            for &(phase, t_us, dur_ns) in &self.ring {
                let _ = writeln!(
                    out,
                    "{{\"type\":\"profile_phase\",\"run_id\":{run_id},\"seq\":{},\"run\":{run},\
                     \"worker\":{},\"phase\":\"{}\",\"t_us\":{t_us},\"dur_us\":{}}}",
                    self.seq,
                    self.worker,
                    phase.name(),
                    dur_ns / 1000,
                );
            }
            write_lines(&out);
        }
    }

    /// An open phase interval; records into its timeline on drop.
    #[derive(Debug)]
    pub struct PhaseGuard<'a> {
        tl: &'a mut WorkerTimeline,
        phase: ProfilePhase,
        started: Option<Instant>,
    }

    impl PhaseGuard<'_> {
        /// Close the current interval and immediately open one for
        /// `phase` — e.g. merge-wait becomes merge the instant the lock
        /// is acquired.
        pub fn switch(&mut self, phase: ProfilePhase) {
            if let Some(started) = self.started.take() {
                let ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
                self.tl.record(self.phase, ns);
                self.started = Some(Instant::now());
            }
            self.phase = phase;
        }
    }

    impl Drop for PhaseGuard<'_> {
        fn drop(&mut self) {
            if let Some(started) = self.started {
                let ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
                self.tl.record(self.phase, ns);
            }
        }
    }
}

#[cfg(not(feature = "enabled"))]
mod imp {
    use std::path::Path;

    use super::ProfilePhase;

    /// Always false (telemetry compiled out).
    #[inline(always)]
    pub fn profiling() -> bool {
        false
    }

    /// No-op (telemetry compiled out).
    pub fn set_profile_path(_path: impl AsRef<Path>) -> std::io::Result<()> {
        Ok(())
    }

    /// Always `Ok(false)`.
    pub fn profile_from_env() -> std::io::Result<bool> {
        Ok(false)
    }

    /// No-op.
    pub fn flush_profile() {}

    /// Disabled-build run bracket: zero-sized, drop does nothing.
    #[derive(Debug)]
    pub struct RunScope;

    /// No-op.
    #[inline(always)]
    pub fn run_scope(_seq: u64, _run: &'static str, _workers: usize) -> RunScope {
        RunScope
    }

    /// Disabled-build worker timeline: zero-sized, every method inlines
    /// to nothing.
    #[derive(Debug)]
    pub struct WorkerTimeline;

    impl WorkerTimeline {
        /// No-op.
        #[inline(always)]
        pub fn new(_seq: u64, _run: &'static str, _worker: usize) -> Self {
            WorkerTimeline
        }

        /// No-op.
        #[inline(always)]
        pub fn disabled() -> Self {
            WorkerTimeline
        }

        /// Always false.
        #[inline(always)]
        pub fn is_on(&self) -> bool {
            false
        }

        /// No-op.
        #[inline(always)]
        pub fn note(&mut self, _phase: ProfilePhase, _dur_ns: u64) {}

        /// No-op.
        #[inline(always)]
        pub fn enter(&mut self, _phase: ProfilePhase) -> PhaseGuard<'_> {
            PhaseGuard(std::marker::PhantomData)
        }
    }

    /// Disabled-build phase guard: zero-sized, drop does nothing.
    #[derive(Debug)]
    pub struct PhaseGuard<'a>(std::marker::PhantomData<&'a ()>);

    impl PhaseGuard<'_> {
        /// No-op.
        #[inline(always)]
        pub fn switch(&mut self, _phase: ProfilePhase) {}
    }
}

pub use imp::{
    flush_profile, profile_from_env, profiling, run_scope, set_profile_path, PhaseGuard, RunScope,
    WorkerTimeline,
};

#[cfg(all(test, feature = "enabled"))]
mod tests {
    use super::*;
    use crate::json::JsonValue;

    #[test]
    fn timeline_records_through_the_sink() {
        let path = std::env::temp_dir()
            .join(format!("spectral_profile_test_{}.jsonl", std::process::id()));
        set_profile_path(&path).expect("temp profile sink");
        assert!(profiling());
        {
            let _run = run_scope(7, "online", 2);
            let mut tl = WorkerTimeline::new(7, "online", 1);
            assert!(tl.is_on());
            tl.note(ProfilePhase::Decode, 1_500_000);
            tl.note(ProfilePhase::Simulate, 4_000_000);
            {
                let mut g = tl.enter(ProfilePhase::MergeWait);
                std::thread::sleep(std::time::Duration::from_millis(1));
                g.switch(ProfilePhase::Merge);
            }
            let _claim = tl.enter(ProfilePhase::Claim);
        }
        flush_profile();
        let text = std::fs::read_to_string(&path).expect("profile file");
        let _ = std::fs::remove_file(&path);
        let records: Vec<JsonValue> =
            text.lines().map(|l| JsonValue::parse(l).expect("valid JSONL")).collect();
        // Worker drops before the run scope: worker + phases, then run.
        let worker = records
            .iter()
            .find(|r| r.get("type").and_then(JsonValue::as_str) == Some("profile_worker"))
            .expect("worker record");
        assert_eq!(worker.get("seq").and_then(JsonValue::as_u64), Some(7));
        assert_eq!(worker.get("worker").and_then(JsonValue::as_u64), Some(1));
        assert_eq!(worker.get("recorded").and_then(JsonValue::as_u64), Some(5));
        assert_eq!(worker.get("kept").and_then(JsonValue::as_u64), Some(5));
        let phases = worker.get("phases").expect("phase aggregates");
        let decode = phases.get("decode").expect("decode aggregate");
        assert_eq!(decode.get("count").and_then(JsonValue::as_u64), Some(1));
        assert_eq!(decode.get("ns").and_then(JsonValue::as_u64), Some(1_500_000));
        let wait_ns =
            phases.get("merge_wait").and_then(|p| p.get("ns")).and_then(JsonValue::as_u64).unwrap();
        assert!(wait_ns >= 1_000_000, "guard slept ≥1ms, got {wait_ns} ns");
        assert!(phases.get("merge").is_some(), "switch opened a merge interval");
        assert!(phases.get("claim").is_some(), "plain guard recorded on drop");
        let intervals: Vec<&JsonValue> = records
            .iter()
            .filter(|r| r.get("type").and_then(JsonValue::as_str) == Some("profile_phase"))
            .collect();
        assert_eq!(intervals.len(), 5);
        for i in intervals {
            assert!(i.get("t_us").and_then(JsonValue::as_u64).is_some());
            assert!(i.get("phase").and_then(JsonValue::as_str).is_some());
        }
        let run = records
            .iter()
            .find(|r| r.get("type").and_then(JsonValue::as_str) == Some("profile_run"))
            .expect("run record");
        assert_eq!(run.get("workers").and_then(JsonValue::as_u64), Some(2));
        assert_eq!(run.get("run").and_then(JsonValue::as_str), Some("online"));
        assert!(run.get("dur_us").and_then(JsonValue::as_u64).unwrap() >= 1_000);
    }

    #[test]
    fn phase_names_round_trip_canonical_order() {
        let names: Vec<&str> = ProfilePhase::ALL.iter().map(|p| p.name()).collect();
        assert_eq!(
            names,
            ["claim", "prefetch_wait", "decode", "simulate", "merge_wait", "merge", "idle"]
        );
    }

    #[test]
    fn disabled_timeline_never_records() {
        let mut tl = WorkerTimeline::disabled();
        assert!(!tl.is_on());
        tl.note(ProfilePhase::Decode, 10);
        let mut g = tl.enter(ProfilePhase::Claim);
        g.switch(ProfilePhase::Merge);
        drop(g);
        // Dropping an inert timeline writes nothing (no sink interaction
        // to assert on beyond not panicking).
    }
}
