//! Run manifests: a structured, comparable record of one experiment run.
//!
//! A [`RunManifest`] captures what was run (binary, benchmark, machine,
//! thread count, seed), against which library (id hash, point count),
//! how long each phase took, how many points were processed, and the
//! final estimate ± half-width. [`RunManifest::write`] serializes it to
//! JSON with the full metrics snapshot embedded, giving every run an
//! auditable artifact (`--metrics-out`) that diffs cleanly against
//! `BENCH_*.json` baselines.

use std::path::Path;

use crate::json::{self, JsonValue};
use crate::metrics::MetricsSnapshot;

/// Schema version stamped into every manifest.
pub const MANIFEST_VERSION: u32 = 1;

/// One named phase of a run and its wall-clock duration.
#[derive(Debug, Clone, PartialEq)]
pub struct Phase {
    /// Phase name, e.g. `create_library`, `run`, `report`.
    pub name: String,
    /// Wall-clock seconds spent in the phase.
    pub secs: f64,
}

/// Final estimate of a run, as mean ± half-width.
#[derive(Debug, Clone, PartialEq)]
pub struct EstimateSummary {
    /// Point estimate (e.g. CPI).
    pub mean: f64,
    /// Confidence-interval half-width at the run's confidence level.
    pub half_width: f64,
    /// `half_width / mean`.
    pub relative_half_width: f64,
    /// Whether the run reached its target precision before exhausting
    /// the library.
    pub reached_target: bool,
}

/// A structured record of one run, serialized to JSON via [`write`].
///
/// [`write`]: RunManifest::write
#[derive(Debug, Clone, PartialEq)]
pub struct RunManifest {
    /// Manifest schema version: [`MANIFEST_VERSION`] for manifests
    /// written by this build. Readers are tolerant — manifests that
    /// predate the field parse with version 1.
    pub schema_version: u32,
    /// Collision-resistant run identifier (see
    /// [`derive_run_id`](crate::derive_run_id)); `None` until stamped by
    /// the harness. Pre-PR-7 manifests parse with `None`.
    pub run_id: Option<String>,
    /// Name of the experiment binary (e.g. `online`).
    pub binary: String,
    /// Benchmark / workload identifier.
    pub benchmark: String,
    /// Machine configuration label.
    pub machine: String,
    /// Worker thread count (0 = sequential path).
    pub threads: usize,
    /// RNG seed for the run, if one applies.
    pub seed: Option<u64>,
    /// Content hash of the live-point library (CRC32 of records), if known.
    pub library_id: Option<String>,
    /// Container format version of the library (1 = monolithic stream,
    /// 2 = paged), if known.
    pub library_format: Option<u64>,
    /// Number of live-points in the library, if known.
    pub library_points: Option<u64>,
    /// Live-points actually processed before termination.
    pub points_processed: Option<u64>,
    /// Named phases with wall-clock seconds, in execution order.
    pub phases: Vec<Phase>,
    /// Final estimate ± half-width, when the run produces one.
    pub estimate: Option<EstimateSummary>,
    /// Free-form key/value annotations.
    pub notes: Vec<(String, String)>,
}

impl RunManifest {
    /// Start a manifest for `binary` running `benchmark` on `machine`
    /// with `threads` workers.
    pub fn new(
        binary: impl Into<String>,
        benchmark: impl Into<String>,
        machine: impl Into<String>,
        threads: usize,
    ) -> Self {
        RunManifest {
            schema_version: MANIFEST_VERSION,
            run_id: None,
            binary: binary.into(),
            benchmark: benchmark.into(),
            machine: machine.into(),
            threads,
            seed: None,
            library_id: None,
            library_format: None,
            library_points: None,
            points_processed: None,
            phases: Vec::new(),
            estimate: None,
            notes: Vec::new(),
        }
    }

    /// Record a completed phase.
    pub fn phase(&mut self, name: impl Into<String>, secs: f64) -> &mut Self {
        self.phases.push(Phase { name: name.into(), secs });
        self
    }

    /// Attach a free-form annotation.
    pub fn note(&mut self, key: impl Into<String>, value: impl Into<String>) -> &mut Self {
        self.notes.push((key.into(), value.into()));
        self
    }

    /// Record the final estimate.
    pub fn set_estimate(&mut self, mean: f64, half_width: f64, reached_target: bool) -> &mut Self {
        let relative_half_width = if mean != 0.0 { half_width / mean } else { 0.0 };
        self.estimate =
            Some(EstimateSummary { mean, half_width, relative_half_width, reached_target });
        self
    }

    /// Serialize to JSON without a metrics section.
    pub fn to_json(&self) -> String {
        self.render(None)
    }

    /// Serialize to JSON with `metrics` embedded under `"metrics"`.
    pub fn to_json_with_metrics(&self, metrics: &MetricsSnapshot) -> String {
        self.render(Some(metrics))
    }

    fn render(&self, metrics: Option<&MetricsSnapshot>) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\n");
        out.push_str(&format!("  \"version\": {MANIFEST_VERSION},\n"));
        out.push_str(&format!("  \"schema_version\": {},\n", self.schema_version));
        match &self.run_id {
            Some(id) => out.push_str(&format!("  \"run_id\": {},\n", json::quote(id))),
            None => out.push_str("  \"run_id\": null,\n"),
        }
        out.push_str(&format!("  \"binary\": {},\n", json::quote(&self.binary)));
        out.push_str(&format!("  \"benchmark\": {},\n", json::quote(&self.benchmark)));
        out.push_str(&format!("  \"machine\": {},\n", json::quote(&self.machine)));
        out.push_str(&format!("  \"threads\": {},\n", self.threads));
        out.push_str(&format!("  \"telemetry_compiled_in\": {},\n", crate::compiled_in()));
        match self.seed {
            Some(s) => out.push_str(&format!("  \"seed\": {s},\n")),
            None => out.push_str("  \"seed\": null,\n"),
        }
        match &self.library_id {
            Some(id) => out.push_str(&format!("  \"library_id\": {},\n", json::quote(id))),
            None => out.push_str("  \"library_id\": null,\n"),
        }
        match self.library_format {
            Some(v) => out.push_str(&format!("  \"library_format\": {v},\n")),
            None => out.push_str("  \"library_format\": null,\n"),
        }
        match self.library_points {
            Some(n) => out.push_str(&format!("  \"library_points\": {n},\n")),
            None => out.push_str("  \"library_points\": null,\n"),
        }
        match self.points_processed {
            Some(n) => out.push_str(&format!("  \"points_processed\": {n},\n")),
            None => out.push_str("  \"points_processed\": null,\n"),
        }
        out.push_str("  \"phases\": [");
        for (i, p) in self.phases.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"name\": {}, \"secs\": {}}}",
                json::quote(&p.name),
                json::number(p.secs)
            ));
        }
        if !self.phases.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n");
        match &self.estimate {
            Some(e) => out.push_str(&format!(
                "  \"estimate\": {{\"mean\": {}, \"half_width\": {}, \
                 \"relative_half_width\": {}, \"reached_target\": {}}},\n",
                json::number(e.mean),
                json::number(e.half_width),
                json::number(e.relative_half_width),
                e.reached_target
            )),
            None => out.push_str("  \"estimate\": null,\n"),
        }
        out.push_str("  \"notes\": {");
        for (i, (k, v)) in self.notes.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("{}: {}", json::quote(k), json::quote(v)));
        }
        out.push_str("},\n");
        match metrics {
            Some(m) => {
                out.push_str("  \"metrics\": ");
                out.push_str(&m.to_json());
                out.push('\n');
            }
            None => out.push_str("  \"metrics\": null\n"),
        }
        out.push('}');
        out
    }

    /// Parse a manifest back from JSON (the `metrics` section, if any,
    /// is not reconstructed — use [`JsonValue::parse`] for tooling that
    /// needs it).
    pub fn from_json(text: &str) -> Result<RunManifest, crate::json::JsonError> {
        let doc = JsonValue::parse(text)?;
        let err = |message: &str| crate::json::JsonError { offset: 0, message: message.into() };
        let str_field = |key: &str| -> Result<String, crate::json::JsonError> {
            doc.get(key)
                .and_then(JsonValue::as_str)
                .map(str::to_owned)
                .ok_or_else(|| err(&format!("missing string field '{key}'")))
        };
        let mut m = RunManifest::new(
            str_field("binary")?,
            str_field("benchmark")?,
            str_field("machine")?,
            doc.get("threads")
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| err("missing 'threads'"))? as usize,
        );
        // Tolerant reader: manifests that predate `schema_version` fall
        // back to the legacy `version` stamp, then to 1.
        m.schema_version = doc
            .get("schema_version")
            .or_else(|| doc.get("version"))
            .and_then(JsonValue::as_u64)
            .unwrap_or(1) as u32;
        m.run_id = doc.get("run_id").and_then(JsonValue::as_str).map(str::to_owned);
        m.seed = doc.get("seed").and_then(JsonValue::as_u64);
        m.library_id = doc.get("library_id").and_then(JsonValue::as_str).map(str::to_owned);
        m.library_format = doc.get("library_format").and_then(JsonValue::as_u64);
        m.library_points = doc.get("library_points").and_then(JsonValue::as_u64);
        m.points_processed = doc.get("points_processed").and_then(JsonValue::as_u64);
        if let Some(phases) = doc.get("phases").and_then(JsonValue::as_arr) {
            for p in phases {
                let name = p
                    .get("name")
                    .and_then(JsonValue::as_str)
                    .ok_or_else(|| err("phase missing 'name'"))?;
                let secs = p
                    .get("secs")
                    .and_then(JsonValue::as_f64)
                    .ok_or_else(|| err("phase missing 'secs'"))?;
                m.phase(name, secs);
            }
        }
        if let Some(e) = doc.get("estimate") {
            if let (Some(mean), Some(half_width)) = (
                e.get("mean").and_then(JsonValue::as_f64),
                e.get("half_width").and_then(JsonValue::as_f64),
            ) {
                let reached = e.get("reached_target").and_then(JsonValue::as_bool).unwrap_or(false);
                m.set_estimate(mean, half_width, reached);
            }
        }
        if let Some(notes) = doc.get("notes").and_then(JsonValue::as_obj) {
            for (k, v) in notes {
                if let Some(s) = v.as_str() {
                    m.note(k.clone(), s);
                }
            }
        }
        Ok(m)
    }

    /// Write the manifest (with `metrics` embedded when `Some`) to
    /// `path` atomically: temp file + fsync + rename (fault site
    /// `telemetry.manifest.write`), so a crash mid-write leaves the
    /// previous manifest or the new one, never a torn JSON document.
    pub fn write(
        &self,
        path: impl AsRef<Path>,
        metrics: Option<&MetricsSnapshot>,
    ) -> std::io::Result<()> {
        let mut bytes = self.render(metrics).into_bytes();
        bytes.push(b'\n');
        spectral_faultd::retry("telemetry.manifest.write", || {
            spectral_faultd::write_atomic("telemetry.manifest.write", path.as_ref(), &bytes)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunManifest {
        let mut m = RunManifest::new("online", "gcc", "mach0", 8);
        m.run_id = Some("00decafc0ffee123-1".into());
        m.seed = Some(42);
        m.library_id = Some("crc32:deadbeef".into());
        m.library_format = Some(2);
        m.library_points = Some(1000);
        m.points_processed = Some(640);
        m.phase("create_library", 1.25).phase("run", 0.5);
        m.set_estimate(1.37, 0.04, true);
        m.note("quick", "true");
        m
    }

    #[test]
    fn round_trip() {
        let m = sample();
        let text = m.to_json();
        let back = RunManifest::from_json(&text).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn round_trip_with_metrics_is_valid_json() {
        let m = sample();
        let snap = crate::snapshot();
        let text = m.to_json_with_metrics(&snap);
        let doc = JsonValue::parse(&text).unwrap();
        assert!(doc.get("metrics").is_some());
        assert_eq!(doc.get("binary").unwrap().as_str(), Some("online"));
        // Manifest fields survive even with metrics embedded.
        let back = RunManifest::from_json(&text).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn manifest_without_schema_version_parses_tolerantly() {
        // Old manifests carry neither `schema_version` nor (earliest
        // ones) a usable `version`: both still parse, defaulting to 1.
        let m = sample();
        let text = m
            .to_json()
            .replace("  \"schema_version\": 1,\n", "")
            .replace("  \"version\": 1,\n", "");
        let back = RunManifest::from_json(&text).expect("tolerant reader");
        assert_eq!(back.schema_version, 1);
        assert_eq!(back.benchmark, m.benchmark);
        // With only the legacy `version` stamp, that value is adopted.
        let text = m.to_json().replace("  \"schema_version\": 1,\n", "");
        assert_eq!(RunManifest::from_json(&text).unwrap().schema_version, MANIFEST_VERSION);
    }

    #[test]
    fn manifest_without_run_id_parses_as_none() {
        // Pre-registry manifests have no run_id key at all.
        let mut m = sample();
        m.run_id = None;
        let text = m.to_json().replace("  \"run_id\": null,\n", "");
        let back = RunManifest::from_json(&text).unwrap();
        assert_eq!(back.run_id, None);
        assert_eq!(back.benchmark, m.benchmark);
    }

    #[test]
    fn non_finite_estimate_fields_round_trip_as_zero() {
        // A NaN/Inf half-width must not corrupt the JSON artifact: the
        // writer pins non-finite numbers to 0 and the parser reads them
        // back as plain zeros.
        let mut m = RunManifest::new("x", "y", "z", 1);
        m.set_estimate(f64::NAN, f64::INFINITY, false);
        m.phase("run", f64::NEG_INFINITY);
        let text = m.to_json();
        let doc = JsonValue::parse(&text).expect("writer never emits invalid JSON");
        let e = doc.get("estimate").unwrap();
        assert_eq!(e.get("mean").and_then(JsonValue::as_f64), Some(0.0));
        assert_eq!(e.get("half_width").and_then(JsonValue::as_f64), Some(0.0));
        let back = RunManifest::from_json(&text).unwrap();
        let est = back.estimate.unwrap();
        assert_eq!((est.mean, est.half_width), (0.0, 0.0));
        assert_eq!(back.phases[0].secs, 0.0);
    }

    #[test]
    fn relative_half_width_guards_zero_mean() {
        let mut m = RunManifest::new("x", "y", "z", 1);
        m.set_estimate(0.0, 0.1, false);
        assert_eq!(m.estimate.unwrap().relative_half_width, 0.0);
    }
}
