//! RAII span timing with a thread-local depth stack and an optional
//! JSONL structured-event sink.
//!
//! Every closed span aggregates `(count, total_ns)` under its name —
//! surfaced in [`MetricsSnapshot`](crate::MetricsSnapshot) — and, when a
//! trace sink is installed, appends one JSON line:
//!
//! ```json
//! {"type":"span","name":"run.online","tid":2,"depth":1,"t_us":1234,"dur_us":56}
//! ```
//!
//! `t_us` is the span-open offset from the first telemetry event in the
//! process; `tid` is a small per-thread ordinal. The sink is enabled by
//! [`set_trace_path`] (the experiment binaries' `--trace` flag) or the
//! `TELEMETRY` environment variable holding a path.

#[cfg(feature = "enabled")]
mod imp {
    use std::cell::Cell;
    use std::collections::BTreeMap;
    use std::fs::File;
    use std::io::{BufWriter, Write};
    use std::path::Path;
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use std::sync::{Mutex, OnceLock};
    use std::time::Instant;

    static TRACE_ON: AtomicBool = AtomicBool::new(false);
    static TRACE_SINK: Mutex<Option<BufWriter<File>>> = Mutex::new(None);
    static AGGREGATES: Mutex<BTreeMap<&'static str, (u64, u64)>> = Mutex::new(BTreeMap::new());
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    static NEXT_TID: AtomicUsize = AtomicUsize::new(0);

    thread_local! {
        static TID: usize = NEXT_TID.fetch_add(1, Ordering::Relaxed);
        static DEPTH: Cell<u32> = const { Cell::new(0) };
    }

    fn epoch() -> Instant {
        *EPOCH.get_or_init(Instant::now)
    }

    /// Microseconds since the first telemetry event in the process —
    /// the shared timebase of the span trace and the sampling-health
    /// event stream.
    pub(crate) fn now_us() -> u64 {
        u64::try_from(epoch().elapsed().as_micros()).unwrap_or(u64::MAX)
    }

    /// Whether a JSONL trace sink is installed.
    #[inline]
    pub fn tracing() -> bool {
        TRACE_ON.load(Ordering::Relaxed)
    }

    /// Install (or replace) the JSONL trace sink at `path`.
    pub fn set_trace_path(path: impl AsRef<Path>) -> std::io::Result<()> {
        let file = File::create(path)?;
        *TRACE_SINK.lock().expect("trace sink lock") = Some(BufWriter::new(file));
        TRACE_ON.store(true, Ordering::Relaxed);
        Ok(())
    }

    /// Install the trace sink from the `TELEMETRY` environment variable
    /// (a file path) if set; returns whether tracing is now on.
    pub fn trace_from_env() -> std::io::Result<bool> {
        if tracing() {
            return Ok(true);
        }
        match std::env::var_os("TELEMETRY") {
            Some(path) if !path.is_empty() => {
                set_trace_path(path)?;
                Ok(true)
            }
            _ => Ok(false),
        }
    }

    /// Flush buffered trace events to the sink.
    pub fn flush_trace() {
        if let Some(w) = TRACE_SINK.lock().expect("trace sink lock").as_mut() {
            let _ = w.flush();
        }
    }

    /// An open span; closes (and records) on drop.
    #[derive(Debug)]
    pub struct Span {
        name: &'static str,
        open_us: u64,
        started: Instant,
        depth: u32,
    }

    /// Open a span named `name`.
    pub fn span(name: &'static str) -> Span {
        let started = Instant::now();
        let open_us =
            u64::try_from(started.duration_since(epoch()).as_micros()).unwrap_or(u64::MAX);
        let depth = DEPTH.with(|d| {
            let v = d.get();
            d.set(v + 1);
            v
        });
        Span { name, open_us, started, depth }
    }

    impl Drop for Span {
        fn drop(&mut self) {
            let ns = u64::try_from(self.started.elapsed().as_nanos()).unwrap_or(u64::MAX);
            DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
            {
                let mut agg = AGGREGATES.lock().expect("span aggregates lock");
                let e = agg.entry(self.name).or_insert((0, 0));
                e.0 += 1;
                e.1 = e.1.wrapping_add(ns);
            }
            if tracing() {
                if let Some(w) = TRACE_SINK.lock().expect("trace sink lock").as_mut() {
                    let tid = TID.with(|t| *t);
                    let _ = writeln!(
                        w,
                        "{{\"type\":\"span\",\"name\":{},\"tid\":{tid},\"depth\":{},\
                         \"t_us\":{},\"dur_us\":{}}}",
                        crate::json::quote(self.name),
                        self.depth,
                        self.open_us,
                        ns / 1000,
                    );
                }
            }
        }
    }

    /// Append one scheduler sample to the trace sink:
    ///
    /// ```json
    /// {"type":"sched","t_us":1234,"worker":3,"chunk_points":16,"steals":2}
    /// ```
    ///
    /// Only the `Some` quantities are written. No-op (a single relaxed
    /// load) when no trace sink is installed — call sites may also gate
    /// on [`tracing`] to skip argument construction. The perfetto
    /// exporter turns these into per-worker counter tracks.
    pub fn trace_sched(
        worker: usize,
        chunk_points: Option<u64>,
        steals: Option<u64>,
        prefetch_occupancy: Option<u64>,
    ) {
        if !tracing() {
            return;
        }
        let mut line = format!("{{\"type\":\"sched\",\"t_us\":{},\"worker\":{worker}", now_us());
        if let Some(v) = chunk_points {
            line.push_str(&format!(",\"chunk_points\":{v}"));
        }
        if let Some(v) = steals {
            line.push_str(&format!(",\"steals\":{v}"));
        }
        if let Some(v) = prefetch_occupancy {
            line.push_str(&format!(",\"prefetch_occupancy\":{v}"));
        }
        line.push('}');
        if let Some(w) = TRACE_SINK.lock().expect("trace sink lock").as_mut() {
            let _ = writeln!(w, "{line}");
        }
    }

    /// Span aggregates as `(name, count, total_ns)` rows.
    pub(crate) fn aggregates() -> Vec<(String, u64, u64)> {
        AGGREGATES
            .lock()
            .expect("span aggregates lock")
            .iter()
            .map(|(name, &(count, ns))| ((*name).to_owned(), count, ns))
            .collect()
    }

    pub(crate) fn reset_aggregates() {
        AGGREGATES.lock().expect("span aggregates lock").clear();
    }
}

#[cfg(not(feature = "enabled"))]
mod imp {
    use std::path::Path;

    /// Disabled-build span: zero-sized, drop does nothing.
    #[derive(Debug)]
    pub struct Span;

    /// No-op.
    #[inline(always)]
    pub fn span(_name: &'static str) -> Span {
        Span
    }

    /// Always false.
    #[inline(always)]
    pub fn tracing() -> bool {
        false
    }

    /// No-op (telemetry compiled out).
    pub fn set_trace_path(_path: impl AsRef<Path>) -> std::io::Result<()> {
        Ok(())
    }

    /// Always `Ok(false)`.
    pub fn trace_from_env() -> std::io::Result<bool> {
        Ok(false)
    }

    /// No-op.
    pub fn flush_trace() {}

    /// No-op (telemetry compiled out).
    #[inline(always)]
    pub fn trace_sched(
        _worker: usize,
        _chunk_points: Option<u64>,
        _steals: Option<u64>,
        _prefetch_occupancy: Option<u64>,
    ) {
    }
}

pub use imp::{flush_trace, set_trace_path, span, trace_from_env, trace_sched, tracing, Span};

#[cfg(feature = "enabled")]
pub(crate) use imp::{aggregates, now_us, reset_aggregates};

#[cfg(all(test, feature = "enabled"))]
mod tests {
    use super::*;

    #[test]
    fn spans_aggregate_and_nest() {
        {
            let _outer = span("test.span.outer");
            let _inner = span("test.span.inner");
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let agg = imp::aggregates();
        let outer = agg.iter().find(|(n, _, _)| n == "test.span.outer").unwrap();
        assert!(outer.1 >= 1);
        assert!(outer.2 >= 1_000_000, "outer span slept ≥1ms, got {} ns", outer.2);
    }
}
