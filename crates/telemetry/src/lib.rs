//! # spectral-telemetry — observability for the live-point pipeline
//!
//! The paper's headline claims are throughput numbers: live-point
//! processing rate, checkpoint bytes, warming cost, CPI confidence
//! trajectories. This crate gives every run an auditable account of
//! where time and bytes go, in three layers:
//!
//! * **Metrics** ([`Counter`], [`Gauge`], [`Histogram`]) — process-wide,
//!   lock-free, sharded over cache-line-padded atomic cells so
//!   `run_parallel`'s workers never contend on a counter line. Metrics
//!   register themselves on first touch; [`snapshot`] collects every
//!   registered metric into a mergeable, JSON-serializable
//!   [`MetricsSnapshot`].
//! * **Spans** ([`span`]) — RAII wall-clock timing with a thread-local
//!   depth stack. Every span aggregates into per-name totals (visible in
//!   snapshots); when a trace sink is installed ([`set_trace_path`] or
//!   the `TELEMETRY` environment variable) each span close also appends
//!   one JSONL event to the sink.
//! * **Run manifests** ([`RunManifest`]) — a structured record of one
//!   run: binary, benchmark, machine, thread count, library id/hash,
//!   seed, per-phase wall-clock, points processed, and the final
//!   estimate ± half-width, serialized to JSON (with the full metrics
//!   snapshot embedded) for `BENCH_*.json`-style comparison.
//! * **Sampling-health events** ([`ProgressEvent`], [`AnomalyEvent`]) —
//!   a JSONL stream of the run's *statistical* health: merge-stride
//!   convergence records (running mean, CI half-width, early-termination
//!   eligibility, per-shard lag) and per-point anomaly records. The sink
//!   is installed by [`set_events_path`] (the `--events` flag) or the
//!   `TELEMETRY_EVENTS` environment variable; `spectral-doctor` ingests
//!   the stream. [`chrome_trace`] converts span/event JSONL into a
//!   Chrome `trace_event` document for <https://ui.perfetto.dev>.
//! * **Worker-timeline profiles** ([`WorkerTimeline`], [`run_scope`]) —
//!   per-worker rings of phase intervals (claim / prefetch-wait /
//!   decode / simulate / merge-wait / merge / idle) attributing every
//!   worker's wall-clock. The sink is installed by [`set_profile_path`]
//!   (the `--profile` flag) or the `SPECTRAL_PROFILE` environment
//!   variable; `spectral-doctor profile` computes the attribution,
//!   contention, and straggler analyses.
//!
//! ## Zero cost when disabled
//!
//! Everything is behind the `enabled` feature (on by default). Built
//! with `--no-default-features`, every metric and span operation is an
//! inlined empty function on unit types: instrumented hot paths carry
//! no atomics, no clock reads, and no branches. The manifest and JSON
//! layers remain available in both modes (they are never hot).
//!
//! ## Naming scheme
//!
//! Metric names are dot-separated `crate.subsystem.quantity[_unit]`:
//! `core.run.decode_ns`, `codec.lzss.compress_in_bytes`,
//! `uarch.commit.insts`. Span names are `subsystem.phase`:
//! `create.library`, `run.online`, `run.point`. See DESIGN.md's
//! Observability section for the full taxonomy.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod events;
mod json;
mod manifest;
mod metrics;
mod perfetto;
mod profile;
mod span;

pub use events::{
    derive_run_id, enable_run_summaries, events_from_env, events_on, flush_events, fnv1a64,
    next_run_seq, process_token, run_id, run_summaries_on, set_events_path, take_run_summaries,
    AnomalyEvent, CheckpointEvent, ProgressEvent, RunSummary,
};
pub use json::{number as json_number, quote as json_quote, JsonError, JsonValue};
pub use manifest::{EstimateSummary, Phase, RunManifest, MANIFEST_VERSION};
pub use metrics::{
    reset, snapshot, Counter, Gauge, Histogram, HistogramSnapshot, MetricsSnapshot, Stopwatch,
    HISTOGRAM_BUCKETS,
};
pub use perfetto::chrome_trace;
pub use profile::{
    flush_profile, profile_from_env, profiling, run_scope, set_profile_path, PhaseGuard,
    ProfilePhase, RunScope, WorkerTimeline, PROFILE_RING_CAPACITY,
};
pub use span::{flush_trace, set_trace_path, span, trace_from_env, trace_sched, tracing, Span};

/// Whether telemetry was compiled in (the `enabled` feature).
pub const fn compiled_in() -> bool {
    cfg!(feature = "enabled")
}
