//! Concurrency and merge-order guarantees: sharded counters lose no
//! increments under thread contention, histogram snapshots merge
//! associatively, and a snapshot taken mid-run is a valid partial view.

#![cfg(feature = "enabled")]

use std::thread;

use spectral_telemetry::{snapshot, Counter, Histogram, HistogramSnapshot, MetricsSnapshot};

static HAMMERED: Counter = Counter::new("test.concurrent.hammered");
static DIST: Histogram = Histogram::new("test.concurrent.dist");

#[test]
fn counter_exact_under_contention() {
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 50_000;
    let before = HAMMERED.get();
    thread::scope(|s| {
        for _ in 0..THREADS {
            s.spawn(|| {
                for _ in 0..PER_THREAD {
                    HAMMERED.inc();
                }
            });
        }
    });
    assert_eq!(HAMMERED.get() - before, THREADS * PER_THREAD);
    assert_eq!(snapshot().counter("test.concurrent.hammered"), Some(HAMMERED.get()));
}

#[test]
fn histogram_complete_under_contention() {
    const THREADS: usize = 8;
    const PER_THREAD: usize = 20_000;
    let before = DIST.snapshot().count;
    thread::scope(|s| {
        for t in 0..THREADS {
            s.spawn(move || {
                for i in 0..PER_THREAD {
                    DIST.record((t * PER_THREAD + i) as u64);
                }
            });
        }
    });
    let snap = DIST.snapshot();
    assert_eq!(snap.count - before, (THREADS * PER_THREAD) as u64);
    // Every recorded value also landed in a bucket.
    assert_eq!(snap.buckets.iter().sum::<u64>(), snap.count);
}

#[test]
fn merge_is_associative_and_commutative() {
    let mut a = HistogramSnapshot::new();
    let mut b = HistogramSnapshot::new();
    let mut c = HistogramSnapshot::new();
    for v in [0u64, 1, 2, 3, 100, 1 << 20] {
        a.record(v);
    }
    for v in [5u64, 5, 5, u64::MAX] {
        b.record(v);
    }
    for v in [7u64, 1 << 40, 1 << 63] {
        c.record(v);
    }

    // (a + b) + c
    let mut left = a.clone();
    left.merge(&b);
    left.merge(&c);
    // a + (b + c)
    let mut right_inner = b.clone();
    right_inner.merge(&c);
    let mut right = a.clone();
    right.merge(&right_inner);
    // (c + b) + a
    let mut swapped = c.clone();
    swapped.merge(&b);
    swapped.merge(&a);

    assert_eq!(left.count, right.count);
    assert_eq!(left.sum, right.sum);
    assert_eq!(left.buckets, right.buckets);
    assert_eq!(left.buckets, swapped.buckets);
    assert_eq!(left.count, 13);
}

#[test]
fn snapshot_merge_is_associative_and_name_sorted() {
    fn hist(values: &[u64]) -> HistogramSnapshot {
        let mut h = HistogramSnapshot::new();
        for &v in values {
            h.record(v);
        }
        h
    }
    let a = MetricsSnapshot {
        counters: vec![("x.count".into(), 10), ("z.count".into(), 1)],
        gauges: vec![("x.level".into(), 5)],
        histograms: vec![("x.dist".into(), hist(&[1, 2, 3]))],
        spans: vec![("x.span".into(), 2, 100)],
    };
    let b = MetricsSnapshot {
        counters: vec![("a.count".into(), 7), ("x.count".into(), 5)],
        gauges: vec![("x.level".into(), 9), ("y.level".into(), -2)],
        histograms: vec![("x.dist".into(), hist(&[100])), ("y.dist".into(), hist(&[7]))],
        spans: vec![("x.span".into(), 1, 50)],
    };
    let c = MetricsSnapshot {
        counters: vec![("x.count".into(), 1)],
        gauges: vec![("x.level".into(), -3)],
        histograms: vec![("x.dist".into(), hist(&[9]))],
        spans: vec![("y.span".into(), 4, 400)],
    };

    // (a ⊕ b) ⊕ c
    let mut left = a.clone();
    left.merge(&b);
    left.merge(&c);
    // a ⊕ (b ⊕ c)
    let mut inner = b.clone();
    inner.merge(&c);
    let mut right = a.clone();
    right.merge(&inner);

    assert_eq!(left.counters, right.counters);
    assert_eq!(left.gauges, right.gauges);
    assert_eq!(left.histograms, right.histograms);
    assert_eq!(left.spans, right.spans);

    // Counters add; gauges keep the right-most (chronologically last)
    // observation — the documented last-write-wins contract.
    assert_eq!(
        left.counters,
        vec![("a.count".into(), 7), ("x.count".into(), 16), ("z.count".into(), 1)]
    );
    assert_eq!(left.gauges, vec![("x.level".into(), -3), ("y.level".into(), -2)]);
    // Output is name-sorted regardless of input interleaving.
    let names: Vec<&str> = left.counters.iter().map(|(n, _)| n.as_str()).collect();
    let mut sorted = names.clone();
    sorted.sort_unstable();
    assert_eq!(names, sorted);
    // Histograms merged element-wise, spans summed.
    assert_eq!(left.histograms[0].1.count, 5);
    assert_eq!(left.spans, vec![("x.span".into(), 3, 150), ("y.span".into(), 4, 400)]);
}

#[test]
fn snapshot_while_writers_run_is_consistent() {
    static LIVE: Counter = Counter::new("test.concurrent.live");
    thread::scope(|s| {
        let writer = s.spawn(|| {
            for _ in 0..100_000 {
                LIVE.inc();
            }
        });
        // Snapshots taken mid-run must never exceed the final total and
        // must be monotonically readable.
        let mut last = 0;
        while !writer.is_finished() {
            let now = snapshot().counter("test.concurrent.live").unwrap_or(0);
            assert!(now >= last, "snapshot went backwards: {last} -> {now}");
            last = now;
        }
    });
    assert!(LIVE.get() >= 100_000);
}
