//! Concurrency and merge-order guarantees: sharded counters lose no
//! increments under thread contention, histogram snapshots merge
//! associatively, and a snapshot taken mid-run is a valid partial view.

#![cfg(feature = "enabled")]

use std::thread;

use spectral_telemetry::{snapshot, Counter, Histogram, HistogramSnapshot};

static HAMMERED: Counter = Counter::new("test.concurrent.hammered");
static DIST: Histogram = Histogram::new("test.concurrent.dist");

#[test]
fn counter_exact_under_contention() {
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 50_000;
    let before = HAMMERED.get();
    thread::scope(|s| {
        for _ in 0..THREADS {
            s.spawn(|| {
                for _ in 0..PER_THREAD {
                    HAMMERED.inc();
                }
            });
        }
    });
    assert_eq!(HAMMERED.get() - before, THREADS * PER_THREAD);
    assert_eq!(snapshot().counter("test.concurrent.hammered"), Some(HAMMERED.get()));
}

#[test]
fn histogram_complete_under_contention() {
    const THREADS: usize = 8;
    const PER_THREAD: usize = 20_000;
    let before = DIST.snapshot().count;
    thread::scope(|s| {
        for t in 0..THREADS {
            s.spawn(move || {
                for i in 0..PER_THREAD {
                    DIST.record((t * PER_THREAD + i) as u64);
                }
            });
        }
    });
    let snap = DIST.snapshot();
    assert_eq!(snap.count - before, (THREADS * PER_THREAD) as u64);
    // Every recorded value also landed in a bucket.
    assert_eq!(snap.buckets.iter().sum::<u64>(), snap.count);
}

#[test]
fn merge_is_associative_and_commutative() {
    let mut a = HistogramSnapshot::new();
    let mut b = HistogramSnapshot::new();
    let mut c = HistogramSnapshot::new();
    for v in [0u64, 1, 2, 3, 100, 1 << 20] {
        a.record(v);
    }
    for v in [5u64, 5, 5, u64::MAX] {
        b.record(v);
    }
    for v in [7u64, 1 << 40, 1 << 63] {
        c.record(v);
    }

    // (a + b) + c
    let mut left = a.clone();
    left.merge(&b);
    left.merge(&c);
    // a + (b + c)
    let mut right_inner = b.clone();
    right_inner.merge(&c);
    let mut right = a.clone();
    right.merge(&right_inner);
    // (c + b) + a
    let mut swapped = c.clone();
    swapped.merge(&b);
    swapped.merge(&a);

    assert_eq!(left.count, right.count);
    assert_eq!(left.sum, right.sum);
    assert_eq!(left.buckets, right.buckets);
    assert_eq!(left.buckets, swapped.buckets);
    assert_eq!(left.count, 13);
}

#[test]
fn snapshot_while_writers_run_is_consistent() {
    static LIVE: Counter = Counter::new("test.concurrent.live");
    thread::scope(|s| {
        let writer = s.spawn(|| {
            for _ in 0..100_000 {
                LIVE.inc();
            }
        });
        // Snapshots taken mid-run must never exceed the final total and
        // must be monotonically readable.
        let mut last = 0;
        while !writer.is_finished() {
            let now = snapshot().counter("test.concurrent.live").unwrap_or(0);
            assert!(now >= last, "snapshot went backwards: {last} -> {now}");
            last = now;
        }
    });
    assert!(LIVE.get() >= 100_000);
}
