//! Diagnosis construction: convergence series, anomaly triage, shard
//! balance, and the two-run regression diff.

use std::collections::BTreeMap;

use crate::{AnomalyRecord, DoctorError, RunArtifacts};

/// One sample of a series' merged convergence trajectory.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrajectoryPoint {
    /// Points merged into the estimate.
    pub n: u64,
    /// Running mean.
    pub mean: f64,
    /// Relative CI half-width at the policy confidence.
    pub rel_half_width: f64,
    /// Eligibility at the policy confidence.
    pub eligible: bool,
    /// Eligibility at the paper's ±ε@95% rule.
    pub eligible_95: bool,
}

/// Convergence diagnosis of one estimated series (one `(seq, run_id,
/// run, metric, config)` group of progress records — binaries often
/// perform several runs into one sink, and the `seq` ordinal keeps them
/// apart; the `run_id` additionally separates different *processes*
/// appending to a shared sink, whose `seq` ordinals collide).
#[derive(Debug, Clone)]
pub struct SeriesDiagnosis {
    /// Process-wide run ordinal (0 for pre-`seq` streams).
    pub seq: u64,
    /// Collision-resistant run identifier (empty for pre-`run_id`
    /// streams).
    pub run_id: String,
    /// Run kind the series came from.
    pub run: String,
    /// What the mean estimates.
    pub metric: String,
    /// Sweep configuration index, if any.
    pub config: Option<usize>,
    /// The policy's relative-error target ε.
    pub target_rel_err: f64,
    /// Merged trajectory, sorted by `n` (duplicates collapsed, last
    /// record per `n` wins).
    pub trajectory: Vec<TrajectoryPoint>,
    /// Index into [`trajectory`](Self::trajectory) of the first sample
    /// eligible at the policy confidence — the early-termination stride.
    pub first_eligible: Option<usize>,
    /// Same, at the paper's ±ε@95% rule.
    pub first_eligible_95: Option<usize>,
    /// Whether the final sample was eligible at the policy confidence.
    pub converged: bool,
    /// Points processed after the series first became eligible. Exact
    /// when the stream carries the runner's closing `overshoot` field;
    /// otherwise approximated at trajectory-sample granularity.
    pub wasted_points: u64,
    /// Whether [`wasted_points`](Self::wasted_points) came from the
    /// runner's exact overshoot accounting rather than the trajectory.
    pub wasted_exact: bool,
    /// Shard balance over this series' workers.
    pub shards: ShardReport,
}

impl SeriesDiagnosis {
    /// The final trajectory sample, if the series has any.
    pub fn last(&self) -> Option<&TrajectoryPoint> {
        self.trajectory.last()
    }

    /// Wasted points as a fraction of the total (0 when nothing was
    /// wasted or the series is empty).
    pub fn wasted_fraction(&self) -> f64 {
        match self.last() {
            Some(last) if last.n > 0 => self.wasted_points as f64 / last.n as f64,
            _ => 0.0,
        }
    }
}

/// Per-worker point counts and busy time from the progress stream.
#[derive(Debug, Clone, Default)]
pub struct ShardReport {
    /// `(worker, points)` rows, sorted by worker ordinal. Each worker's
    /// count is the maximum `shard_points` it reported.
    pub workers: Vec<(usize, u64)>,
    /// `(max − min) / max` over worker point counts (0 with fewer than
    /// two workers).
    pub imbalance: f64,
    /// `(worker, busy_ns)` rows, sorted by worker ordinal. Each worker's
    /// time is the maximum `shard_busy_ns` it reported. Empty for
    /// streams that predate busy-time accounting.
    pub busy: Vec<(usize, u64)>,
    /// `(max − min) / max` over worker busy times (0 with fewer than
    /// two busy workers). The scheduler-quality signal: point counts can
    /// balance while busy time doesn't when point costs are skewed.
    pub busy_imbalance: f64,
}

/// The full diagnosis of one event stream's artifacts.
#[derive(Debug, Clone, Default)]
pub struct Diagnosis {
    /// Convergence per estimated series, ordered by (seq, run, metric,
    /// config) — i.e. run order.
    pub series: Vec<SeriesDiagnosis>,
    /// Every anomaly across all runs, sorted most-severe first (CPI
    /// deviation, then processing cost).
    pub anomalies: Vec<AnomalyRecord>,
}

impl Diagnosis {
    /// The primary series: the first one (single-config runs have
    /// exactly one; sweeps put the baseline first).
    pub fn primary(&self) -> Option<&SeriesDiagnosis> {
        self.series.first()
    }

    /// The `count` most severe anomalies.
    pub fn top_anomalies(&self, count: usize) -> &[AnomalyRecord] {
        &self.anomalies[..count.min(self.anomalies.len())]
    }
}

/// Shard balance over one group of progress records.
fn shard_report(records: &[&crate::ProgressRecord]) -> ShardReport {
    fn spread(rows: &[(usize, u64)]) -> f64 {
        match (rows.iter().map(|&(_, n)| n).max(), rows.iter().map(|&(_, n)| n).min()) {
            (Some(max), Some(min)) if rows.len() > 1 && max > 0 => (max - min) as f64 / max as f64,
            _ => 0.0,
        }
    }
    let mut per_worker: BTreeMap<usize, u64> = BTreeMap::new();
    let mut per_worker_busy: BTreeMap<usize, u64> = BTreeMap::new();
    for p in records {
        let e = per_worker.entry(p.worker).or_default();
        *e = (*e).max(p.shard_points);
        if p.shard_busy_ns > 0 {
            let b = per_worker_busy.entry(p.worker).or_default();
            *b = (*b).max(p.shard_busy_ns);
        }
    }
    let workers: Vec<(usize, u64)> = per_worker.into_iter().collect();
    let busy: Vec<(usize, u64)> = per_worker_busy.into_iter().collect();
    let imbalance = spread(&workers);
    let busy_imbalance = spread(&busy);
    ShardReport { workers, imbalance, busy, busy_imbalance }
}

/// Build a [`Diagnosis`] from a run's artifacts.
pub fn analyze(artifacts: &RunArtifacts) -> Diagnosis {
    type SeriesKey = (u64, String, String, String, Option<usize>);
    let mut groups: BTreeMap<SeriesKey, Vec<&crate::ProgressRecord>> = BTreeMap::new();
    for p in &artifacts.progress {
        groups
            .entry((p.seq, p.run_id.clone(), p.run.clone(), p.metric.clone(), p.config))
            .or_default()
            .push(p);
    }
    let series = groups
        .into_iter()
        .map(|((seq, run_id, run, metric, config), records)| {
            let shards = shard_report(&records);
            let target_rel_err = records.last().map_or(0.0, |r| r.target_rel_err);
            // Collapse to one sample per n (parallel workers race to
            // report overlapping prefixes of the merged estimate).
            let mut by_n: BTreeMap<u64, TrajectoryPoint> = BTreeMap::new();
            for r in &records {
                by_n.insert(
                    r.n,
                    TrajectoryPoint {
                        n: r.n,
                        mean: r.mean,
                        rel_half_width: r.rel_half_width,
                        eligible: r.eligible,
                        eligible_95: r.eligible_95,
                    },
                );
            }
            let trajectory: Vec<TrajectoryPoint> = by_n.into_values().collect();
            let first_eligible = trajectory.iter().position(|t| t.eligible);
            let first_eligible_95 = trajectory.iter().position(|t| t.eligible_95);
            let converged = trajectory.last().is_some_and(|t| t.eligible);
            // The runner's closing record carries the exact count of
            // points processed past the stop condition; fall back to
            // trajectory-sample granularity for streams without it.
            let exact_overshoot = records.iter().filter_map(|r| r.overshoot).max();
            let (wasted_points, wasted_exact) = match exact_overshoot {
                Some(o) => (o, true),
                None => (
                    match (first_eligible, trajectory.last()) {
                        (Some(i), Some(last)) => last.n.saturating_sub(trajectory[i].n),
                        _ => 0,
                    },
                    false,
                ),
            };
            SeriesDiagnosis {
                seq,
                run_id,
                run,
                metric,
                config,
                target_rel_err,
                trajectory,
                first_eligible,
                first_eligible_95,
                converged,
                wasted_points,
                wasted_exact,
                shards,
            }
        })
        .collect();

    let mut anomalies = artifacts.anomalies.clone();
    anomalies.sort_by(|a, b| {
        b.severity().partial_cmp(&a.severity()).unwrap_or(std::cmp::Ordering::Equal)
    });

    Diagnosis { series, anomalies }
}

/// Whether a manifest records a run that exhausted its library without
/// converging — the condition the CI gate (`--check`) fails on. `false`
/// when the manifest lacks the point counts or an estimate.
pub fn exhausted_without_convergence(manifest: &spectral_telemetry::RunManifest) -> bool {
    match (manifest.points_processed, manifest.library_points, &manifest.estimate) {
        (Some(processed), Some(library), Some(e)) => {
            library > 0 && processed >= library && !e.reached_target
        }
        _ => false,
    }
}

/// A matched-pair-style comparison of two runs' final estimates.
#[derive(Debug, Clone, PartialEq)]
pub struct RunDiff {
    /// Current mean − baseline mean.
    pub mean_delta: f64,
    /// `sqrt(hw_current² + hw_baseline²)` — the combined uncertainty of
    /// the comparison.
    pub combined_half_width: f64,
    /// Whether `|mean_delta|` exceeds the combined half-width — the
    /// movement is distinguishable from sampling noise.
    pub significant: bool,
    /// Current − baseline processed-point counts, when both manifests
    /// record them.
    pub points_delta: Option<i64>,
    /// Current − baseline total phase wall-clock seconds, when both
    /// manifests record phases.
    pub secs_delta: Option<f64>,
}

/// Diff two runs' manifests (current vs baseline).
///
/// # Errors
///
/// Returns a diagnostic when either run lacks a manifest with a final
/// estimate — there is nothing statistical to compare.
pub fn diff_runs(current: &RunArtifacts, baseline: &RunArtifacts) -> Result<RunDiff, DoctorError> {
    let need = |a: &RunArtifacts, who: &str| {
        a.manifest
            .as_ref()
            .and_then(|m| m.estimate.as_ref().map(|e| (m.clone(), e.clone())))
            .ok_or_else(|| {
                DoctorError::msg(format!("{who} run has no manifest estimate to compare"))
            })
    };
    let (cur_m, cur_e) = need(current, "current")?;
    let (base_m, base_e) = need(baseline, "baseline")?;
    let mean_delta = cur_e.mean - base_e.mean;
    let combined_half_width =
        (cur_e.half_width * cur_e.half_width + base_e.half_width * base_e.half_width).sqrt();
    let points_delta = match (cur_m.points_processed, base_m.points_processed) {
        (Some(c), Some(b)) => Some(c as i64 - b as i64),
        _ => None,
    };
    let total_secs =
        |m: &spectral_telemetry::RunManifest| m.phases.iter().map(|p| p.secs).sum::<f64>();
    let secs_delta = if cur_m.phases.is_empty() || base_m.phases.is_empty() {
        None
    } else {
        Some(total_secs(&cur_m) - total_secs(&base_m))
    };
    Ok(RunDiff {
        mean_delta,
        combined_half_width,
        significant: mean_delta.abs() > combined_half_width,
        points_delta,
        secs_delta,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ProgressRecord;
    use spectral_telemetry::RunManifest;

    fn progress(worker: usize, n: u64, rel: f64, shard_points: u64) -> ProgressRecord {
        ProgressRecord {
            t_us: n,
            run_id: String::new(),
            seq: 1,
            run: "online".into(),
            metric: "cpi".into(),
            worker,
            config: None,
            n,
            mean: 1.4,
            half_width: rel * 1.4,
            rel_half_width: rel,
            target_rel_err: 0.1,
            eligible: n >= 30 && rel <= 0.1,
            rel_half_width_95: rel * 0.65,
            eligible_95: n >= 30 && rel * 0.65 <= 0.1,
            shard_points,
            shard_busy_ns: 0,
            overshoot: None,
        }
    }

    #[test]
    fn convergence_and_waste() {
        let artifacts = RunArtifacts {
            manifest: None,
            progress: vec![
                progress(0, 8, 0.5, 8),
                progress(0, 16, 0.3, 16),
                progress(0, 32, 0.08, 32),
                progress(0, 40, 0.06, 40),
            ],
            anomalies: Vec::new(),
        };
        let d = analyze(&artifacts);
        let s = d.primary().expect("one series");
        assert!(s.converged);
        assert_eq!(s.first_eligible, Some(2), "first eligible sample is n=32");
        assert_eq!(s.wasted_points, 8, "40 - 32 points past convergence");
        assert!((s.wasted_fraction() - 0.2).abs() < 1e-12);
        // The 95% rule fires at the same stride here (0.3*0.65 > 0.1).
        assert_eq!(s.first_eligible_95, Some(2));
    }

    #[test]
    fn never_eligible_reports_no_waste() {
        let artifacts = RunArtifacts {
            manifest: None,
            progress: vec![progress(0, 8, 0.5, 8), progress(0, 16, 0.4, 16)],
            anomalies: Vec::new(),
        };
        let s = analyze(&artifacts).series.remove(0);
        assert!(!s.converged);
        assert_eq!(s.first_eligible, None);
        assert_eq!(s.wasted_points, 0);
    }

    #[test]
    fn exact_overshoot_overrides_trajectory_waste() {
        let mut closing = progress(0, 40, 0.06, 40);
        closing.overshoot = Some(3);
        let artifacts = RunArtifacts {
            manifest: None,
            progress: vec![progress(0, 8, 0.5, 8), progress(0, 32, 0.08, 32), closing],
            anomalies: Vec::new(),
        };
        let s = analyze(&artifacts).series.remove(0);
        assert!(s.wasted_exact, "closing overshoot makes the count exact");
        assert_eq!(s.wasted_points, 3, "not the trajectory-granular 40-32");
    }

    #[test]
    fn busy_time_spread_is_tracked_separately() {
        let busy = |worker: usize, n: u64, shard_points: u64, busy_ns: u64| {
            let mut p = progress(worker, n, 0.5, shard_points);
            p.shard_busy_ns = busy_ns;
            p
        };
        let artifacts = RunArtifacts {
            manifest: None,
            progress: vec![busy(0, 8, 8, 400), busy(0, 24, 12, 1_000), busy(1, 16, 12, 250)],
            anomalies: Vec::new(),
        };
        let shards = analyze(&artifacts).series.remove(0).shards;
        assert!((shards.imbalance - 0.0).abs() < 1e-12, "point counts balance (12/12)");
        assert_eq!(shards.busy, vec![(0, 1_000), (1, 250)]);
        assert!((shards.busy_imbalance - 0.75).abs() < 1e-12, "(1000-250)/1000");
    }

    #[test]
    fn shard_imbalance_from_worker_counts() {
        let artifacts = RunArtifacts {
            manifest: None,
            progress: vec![
                progress(0, 8, 0.5, 5),
                progress(0, 24, 0.2, 10),
                progress(1, 16, 0.3, 8),
            ],
            anomalies: Vec::new(),
        };
        let d = analyze(&artifacts);
        let shards = &d.primary().expect("one series").shards;
        assert_eq!(shards.workers, vec![(0, 10), (1, 8)]);
        assert!((shards.imbalance - 0.2).abs() < 1e-12, "(10-8)/10");
    }

    #[test]
    fn back_to_back_runs_stay_separate_series() {
        let mut second = progress(0, 16, 0.4, 16);
        second.seq = 2;
        second.target_rel_err = 0.5;
        let artifacts = RunArtifacts {
            manifest: None,
            progress: vec![progress(0, 8, 0.5, 8), progress(0, 40, 0.06, 40), second],
            anomalies: Vec::new(),
        };
        let d = analyze(&artifacts);
        assert_eq!(d.series.len(), 2, "one series per run ordinal");
        assert_eq!((d.series[0].seq, d.series[1].seq), (1, 2));
        assert!(d.series[0].converged);
        assert!(!d.series[1].converged, "the second run's records don't pollute the first");
        assert!((d.series[1].target_rel_err - 0.5).abs() < 1e-12);
    }

    #[test]
    fn shared_sink_processes_split_by_run_id() {
        // Two processes appending to one events file both start at seq
        // 1; only the run_id keeps their streams apart.
        let mut a = progress(0, 8, 0.5, 8);
        a.run_id = "aaaa000000000001-1".into();
        let mut a2 = progress(0, 40, 0.06, 40);
        a2.run_id = "aaaa000000000001-1".into();
        let mut b = progress(0, 16, 0.4, 16);
        b.run_id = "bbbb000000000001-1".into();
        let artifacts =
            RunArtifacts { manifest: None, progress: vec![a, b, a2], anomalies: Vec::new() };
        let d = analyze(&artifacts);
        assert_eq!(d.series.len(), 2, "one series per run_id despite equal seq");
        assert_eq!(d.series[0].run_id, "aaaa000000000001-1");
        assert!(d.series[0].converged);
        assert!(!d.series[1].converged);
    }

    #[test]
    fn anomalies_sorted_by_severity() {
        let a = |point: u64, sigmas: f64, ns: u64| crate::AnomalyRecord {
            t_us: 0,
            run_id: String::new(),
            seq: 1,
            run: "online".into(),
            worker: 0,
            point,
            detail_start: 0,
            measure_start: 0,
            kinds: vec!["cpi_outlier".into()],
            cpi: 2.0,
            mean: 1.0,
            std_dev: 0.1,
            sigmas,
            decode_ns: ns,
            simulate_ns: 0,
        };
        let artifacts = RunArtifacts {
            manifest: None,
            progress: Vec::new(),
            anomalies: vec![a(1, 3.5, 10), a(2, 8.0, 10), a(3, 3.5, 99)],
        };
        let d = analyze(&artifacts);
        let order: Vec<u64> = d.anomalies.iter().map(|x| x.point).collect();
        assert_eq!(order, vec![2, 3, 1], "sigmas first, processing cost breaks ties");
        assert_eq!(d.top_anomalies(2).len(), 2);
        assert_eq!(d.top_anomalies(10).len(), 3, "top-N clamps to the total");
    }

    #[test]
    fn check_gate_conditions() {
        let mut m = RunManifest::new("online", "b", "8", 1);
        assert!(!exhausted_without_convergence(&m), "no counts, no verdict");
        m.library_points = Some(100);
        m.points_processed = Some(100);
        m.set_estimate(1.0, 0.5, false);
        assert!(exhausted_without_convergence(&m));
        m.set_estimate(1.0, 0.01, true);
        assert!(!exhausted_without_convergence(&m), "converged runs pass");
        m.points_processed = Some(60);
        m.set_estimate(1.0, 0.5, false);
        assert!(!exhausted_without_convergence(&m), "early-stopped runs pass");
    }

    #[test]
    fn diff_flags_significant_movement() {
        let with_estimate = |mean: f64, hw: f64, points: u64| {
            let mut m = RunManifest::new("online", "b", "8", 1);
            m.points_processed = Some(points);
            m.phase("run", 1.0);
            m.set_estimate(mean, hw, true);
            RunArtifacts { manifest: Some(m), progress: Vec::new(), anomalies: Vec::new() }
        };
        let base = with_estimate(1.0, 0.03, 100);
        let moved = with_estimate(1.2, 0.04, 120);
        let d = diff_runs(&moved, &base).expect("both have estimates");
        assert!((d.mean_delta - 0.2).abs() < 1e-12);
        assert!(d.significant, "0.2 delta vs 0.05 combined half-width");
        assert_eq!(d.points_delta, Some(20));
        let same = diff_runs(&base, &base).expect("self diff");
        assert!(!same.significant);
        assert!(
            diff_runs(&RunArtifacts::default(), &base).is_err(),
            "missing manifest is an error"
        );
    }
}
