//! `doctor profile`: wall-clock attribution over a worker-timeline
//! profile stream (the experiment binaries' `--profile` sink).
//!
//! The stream carries three record types per run: one `profile_run`
//! bracket (the run's own wall-clock), one `profile_worker` record per
//! worker (exact per-phase `(count, ns)` aggregates over *every*
//! recorded interval), and up to `PROFILE_RING_CAPACITY` retained
//! `profile_phase` intervals per worker for fine-grained timelines.
//!
//! The analysis answers the questions the paper's speedup claim hangs
//! on:
//!
//! * **Attribution** — what fraction of each worker's wall-clock went
//!   to claim / prefetch-wait / decode / simulate / merge-wait / merge,
//!   with *idle* as the explicit remainder, so per-worker percentages
//!   always sum to the worker's wall.
//! * **Contention** — the merge-lock wait distribution (count, mean,
//!   p50/p95/max over retained intervals).
//! * **Prefetch health** — decode the simulator stalled on
//!   (`prefetch_wait`) versus decode-ahead that was hidden (`decode`).
//! * **Stragglers** — per-worker end gap against the run bracket and
//!   the summed barrier waste.
//! * **Critical path** — run wall minus the work that could have
//!   overlapped (total busy minus the busiest worker), a lower bound on
//!   the serial residue.
//! * **Profiler overhead** — `recorded × per-record cost`, with the
//!   per-record cost measured by a clock probe at analysis time (or
//!   pinned via `--record-cost-ns` for reproducible reports).

use std::collections::BTreeMap;
use std::fmt::Write as _;

use spectral_telemetry::{json_number, json_quote, JsonValue, ProfilePhase};

use crate::{str_field, u64_field, DoctorError};

/// Exact aggregate for one phase of one worker: every recorded interval
/// counts here, even after the retained ring wraps.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseTotal {
    /// Recorded intervals of this phase.
    pub count: u64,
    /// Total duration of this phase in nanoseconds.
    pub ns: u64,
}

/// One retained fine-grained interval from a worker's ring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileInterval {
    /// Wire phase name (`claim`, `prefetch_wait`, …).
    pub phase: String,
    /// Interval start, microseconds since the run's telemetry epoch.
    pub t_us: u64,
    /// Interval duration in microseconds.
    pub dur_us: u64,
}

/// One worker's parsed timeline.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WorkerProfile {
    /// Worker ordinal.
    pub worker: usize,
    /// Timeline start, microseconds since the run's telemetry epoch.
    pub t_us: u64,
    /// Worker wall-clock in microseconds (timeline construction to
    /// drop).
    pub dur_us: u64,
    /// Intervals recorded in total (aggregates cover all of them).
    pub recorded: u64,
    /// Intervals retained in the ring (≤ `recorded`).
    pub kept: u64,
    /// Exact per-phase aggregates, keyed by wire phase name.
    pub phases: BTreeMap<String, PhaseTotal>,
    /// Retained intervals, in stream order.
    pub intervals: Vec<ProfileInterval>,
}

impl WorkerProfile {
    /// Total nanoseconds attributed to recorded phases.
    pub fn busy_ns(&self) -> u64 {
        self.phases.values().map(|p| p.ns).sum()
    }
}

/// One run's parsed profile: the run bracket plus every worker that
/// reported.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProfileRun {
    /// Collision-resistant run identifier.
    pub run_id: String,
    /// Process-wide run ordinal.
    pub seq: u64,
    /// Run kind: `online`, `matched`, or `sweep`.
    pub run: String,
    /// Worker count declared by the run bracket (0 when the bracket is
    /// missing from a truncated stream).
    pub declared_workers: usize,
    /// Run bracket start, microseconds since the telemetry epoch.
    pub t_us: u64,
    /// Run wall-clock in microseconds. Synthesized from the workers'
    /// envelope when the `profile_run` record is missing.
    pub dur_us: u64,
    /// Per-worker timelines, ordered by worker ordinal.
    pub workers: Vec<WorkerProfile>,
}

/// Parse a profile JSONL stream into per-run structures, grouped by
/// `(run_id, seq)` in first-seen order. Unknown record types are
/// skipped (the stream may share a file with other sinks); a run whose
/// `profile_run` bracket is missing (truncated stream) gets a window
/// synthesized from its workers' envelope.
///
/// # Errors
///
/// Returns a diagnostic (with its 1-based line number) when a non-empty
/// line is not valid JSON.
pub fn parse_profile(text: &str) -> Result<Vec<ProfileRun>, DoctorError> {
    let mut order: Vec<(String, u64)> = Vec::new();
    let mut runs: BTreeMap<(String, u64), ProfileRun> = BTreeMap::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let doc = JsonValue::parse(line)
            .map_err(|e| DoctorError::msg(format!("line {}: {}", lineno + 1, e.message)))?;
        let ty = doc.get("type").and_then(JsonValue::as_str);
        if !matches!(ty, Some("profile_run" | "profile_worker" | "profile_phase")) {
            continue;
        }
        let key = (str_field(&doc, "run_id"), u64_field(&doc, "seq"));
        if !runs.contains_key(&key) {
            order.push(key.clone());
        }
        let entry = runs.entry(key.clone()).or_insert_with(|| ProfileRun {
            run_id: key.0.clone(),
            seq: key.1,
            run: str_field(&doc, "run"),
            ..ProfileRun::default()
        });
        match ty {
            Some("profile_run") => {
                entry.declared_workers = u64_field(&doc, "workers") as usize;
                entry.t_us = u64_field(&doc, "t_us");
                entry.dur_us = u64_field(&doc, "dur_us");
            }
            Some("profile_worker") => {
                let worker = worker_entry(entry, u64_field(&doc, "worker") as usize);
                worker.t_us = u64_field(&doc, "t_us");
                worker.dur_us = u64_field(&doc, "dur_us");
                worker.recorded = u64_field(&doc, "recorded");
                worker.kept = u64_field(&doc, "kept");
                if let Some(phases) = doc.get("phases").and_then(JsonValue::as_obj) {
                    for (name, agg) in phases {
                        worker.phases.insert(
                            name.clone(),
                            PhaseTotal {
                                count: agg.get("count").and_then(JsonValue::as_u64).unwrap_or(0),
                                ns: agg.get("ns").and_then(JsonValue::as_u64).unwrap_or(0),
                            },
                        );
                    }
                }
            }
            Some("profile_phase") => {
                let interval = ProfileInterval {
                    phase: str_field(&doc, "phase"),
                    t_us: u64_field(&doc, "t_us"),
                    dur_us: u64_field(&doc, "dur_us"),
                };
                worker_entry(entry, u64_field(&doc, "worker") as usize).intervals.push(interval);
            }
            _ => unreachable!("filtered above"),
        }
    }
    let mut out: Vec<ProfileRun> = Vec::with_capacity(order.len());
    for key in order {
        let mut run = runs.remove(&key).expect("keyed by first-seen order");
        run.workers.sort_by_key(|w| w.worker);
        if run.dur_us == 0 && !run.workers.is_empty() {
            // Truncated stream: no run bracket. Use the workers'
            // envelope so attribution still has a denominator.
            run.t_us = run.workers.iter().map(|w| w.t_us).min().unwrap_or(0);
            let end = run.workers.iter().map(|w| w.t_us + w.dur_us).max().unwrap_or(0);
            run.dur_us = end.saturating_sub(run.t_us);
            run.declared_workers = run.declared_workers.max(run.workers.len());
        }
        out.push(run);
    }
    Ok(out)
}

fn worker_entry(run: &mut ProfileRun, worker: usize) -> &mut WorkerProfile {
    if let Some(i) = run.workers.iter().position(|w| w.worker == worker) {
        &mut run.workers[i]
    } else {
        run.workers.push(WorkerProfile { worker, ..WorkerProfile::default() });
        run.workers.last_mut().expect("just pushed")
    }
}

/// One phase's share of a wall-clock budget.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseAttribution {
    /// Wire phase name (`idle` for the computed remainder).
    pub phase: String,
    /// Recorded intervals (0 for `idle`).
    pub count: u64,
    /// Attributed nanoseconds.
    pub ns: u64,
    /// Percentage of the budget (worker wall for per-worker rows,
    /// summed worker wall for the aggregate).
    pub pct: f64,
}

/// Merge-lock wait distribution: counts and totals from the exact
/// aggregates, percentiles from the retained intervals.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WaitStats {
    /// Waits recorded (exact).
    pub count: u64,
    /// Total wait nanoseconds (exact).
    pub total_ns: u64,
    /// Mean wait nanoseconds (exact).
    pub mean_ns: f64,
    /// Median retained wait, microseconds.
    pub p50_us: u64,
    /// 95th-percentile retained wait, microseconds.
    pub p95_us: u64,
    /// Longest retained wait, microseconds.
    pub max_us: u64,
}

/// The profiler's own cost estimate.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OverheadEstimate {
    /// Intervals recorded across all workers.
    pub recorded: u64,
    /// Per-record cost in nanoseconds (clock probe or
    /// `--record-cost-ns`).
    pub record_cost_ns: u64,
    /// Total overhead across all workers, nanoseconds.
    pub total_ns: u64,
    /// Worst single worker's overhead, nanoseconds — the wall-clock
    /// impact bound, since workers record concurrently.
    pub max_worker_ns: u64,
    /// `max_worker_ns` as a percentage of the run wall.
    pub pct_of_wall: f64,
}

/// Per-worker attribution report.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerReport {
    /// Worker ordinal.
    pub worker: usize,
    /// Worker wall-clock, microseconds.
    pub wall_us: u64,
    /// Nanoseconds attributed to recorded phases.
    pub busy_ns: u64,
    /// Wall-clock remainder (idle at the barrier, spawn/join skew).
    pub idle_ns: u64,
    /// End gap against the run bracket, microseconds (straggler /
    /// barrier waste).
    pub end_gap_us: u64,
    /// Phase shares of this worker's wall, `idle` last.
    pub attribution: Vec<PhaseAttribution>,
}

/// The full analysis of one profiled run.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileReport {
    /// Collision-resistant run identifier.
    pub run_id: String,
    /// Process-wide run ordinal.
    pub seq: u64,
    /// Run kind.
    pub run: String,
    /// Workers declared by the run bracket.
    pub workers: usize,
    /// Run wall-clock, microseconds.
    pub run_wall_us: u64,
    /// Σ (run end − worker start) / (workers × run wall), percent —
    /// how much of the run's wall-clock budget the per-worker
    /// attributions cover. A worker's share spans from its first
    /// instant to the run bracket closing: the tail after the worker
    /// exits is explicitly attributed as straggler/barrier waste, so
    /// only the spawn latency before the worker exists is
    /// unattributed.
    pub attributed_pct: f64,
    /// Phase shares of the summed worker wall, `idle` last.
    pub aggregate: Vec<PhaseAttribution>,
    /// Per-worker reports, ordered by worker ordinal.
    pub worker_reports: Vec<WorkerReport>,
    /// Merge-lock contention.
    pub merge_wait: WaitStats,
    /// Decode the simulator stalled on, nanoseconds.
    pub prefetch_stall_ns: u64,
    /// Decode-ahead that was hidden behind simulation, nanoseconds.
    pub decode_ahead_ns: u64,
    /// Σ per-worker end gaps, microseconds.
    pub straggler_us: u64,
    /// Run wall minus overlappable work (total busy minus the busiest
    /// worker), microseconds, clamped at zero.
    pub critical_path_us: u64,
    /// The profiler's own cost.
    pub overhead: OverheadEstimate,
}

/// Measure the per-record cost of the profiler's hot path with a clock
/// probe: a recorded interval costs about two monotonic clock reads
/// plus a ring push, so the probe times a batch of `Instant::now`
/// calls and doubles the per-call cost.
pub fn measure_record_cost_ns() -> u64 {
    const PROBES: u32 = 10_000;
    let started = std::time::Instant::now();
    for _ in 0..PROBES {
        std::hint::black_box(std::time::Instant::now());
    }
    let per_call = started.elapsed().as_nanos() / u128::from(PROBES);
    u64::try_from(per_call * 2).unwrap_or(u64::MAX).max(1)
}

/// Analyze one parsed run. `record_cost_ns` prices the profiler's own
/// overhead (see [`measure_record_cost_ns`]).
pub fn analyze_profile(run: &ProfileRun, record_cost_ns: u64) -> ProfileReport {
    let run_wall_ns = run.dur_us.saturating_mul(1_000);
    let run_end_us = run.t_us + run.dur_us;
    let mut worker_reports = Vec::with_capacity(run.workers.len());
    let mut aggregate: BTreeMap<&str, PhaseTotal> = BTreeMap::new();
    let mut summed_wall_ns: u64 = 0;
    let mut covered_wall_us: u64 = 0;
    let (mut total_busy_ns, mut max_busy_ns) = (0u64, 0u64);
    let (mut recorded_total, mut recorded_max) = (0u64, 0u64);
    let mut wait_intervals_us: Vec<u64> = Vec::new();
    let mut merge_wait = WaitStats::default();
    let (mut stall_ns, mut ahead_ns) = (0u64, 0u64);
    let mut straggler_us = 0u64;

    for w in &run.workers {
        let wall_ns = w.dur_us.saturating_mul(1_000);
        let busy_ns = w.busy_ns();
        let idle_ns = wall_ns.saturating_sub(busy_ns);
        summed_wall_ns += wall_ns;
        // Coverage runs from the worker's first instant to the run
        // bracket closing: the worker-exit-to-run-end tail is reported
        // as straggler/barrier waste (an attribution in its own
        // right), so only pre-spawn latency stays unattributed.
        covered_wall_us += run_end_us.saturating_sub(w.t_us).min(run.dur_us);
        total_busy_ns += busy_ns;
        max_busy_ns = max_busy_ns.max(busy_ns);
        recorded_total += w.recorded;
        recorded_max = recorded_max.max(w.recorded);
        let end_gap_us = run_end_us.saturating_sub(w.t_us + w.dur_us).min(run.dur_us);
        straggler_us += end_gap_us;

        let mut attribution = Vec::new();
        for phase in ProfilePhase::ALL {
            let name = phase.name();
            let total = match phase {
                ProfilePhase::Idle => PhaseTotal { count: 0, ns: idle_ns },
                _ => w.phases.get(name).copied().unwrap_or_default(),
            };
            if total.count == 0 && total.ns == 0 && phase != ProfilePhase::Idle {
                continue;
            }
            let agg = aggregate.entry(name).or_default();
            agg.count += total.count;
            agg.ns += total.ns;
            attribution.push(PhaseAttribution {
                phase: name.to_owned(),
                count: total.count,
                ns: total.ns,
                pct: pct(total.ns, wall_ns),
            });
            match phase {
                ProfilePhase::PrefetchWait => stall_ns += total.ns,
                ProfilePhase::Decode => ahead_ns += total.ns,
                ProfilePhase::MergeWait => {
                    merge_wait.count += total.count;
                    merge_wait.total_ns += total.ns;
                }
                _ => {}
            }
        }
        wait_intervals_us
            .extend(w.intervals.iter().filter(|i| i.phase == "merge_wait").map(|i| i.dur_us));
        worker_reports.push(WorkerReport {
            worker: w.worker,
            wall_us: w.dur_us,
            busy_ns,
            idle_ns,
            end_gap_us,
            attribution,
        });
    }

    if merge_wait.count > 0 {
        merge_wait.mean_ns = merge_wait.total_ns as f64 / merge_wait.count as f64;
    }
    wait_intervals_us.sort_unstable();
    merge_wait.p50_us = percentile(&wait_intervals_us, 50);
    merge_wait.p95_us = percentile(&wait_intervals_us, 95);
    merge_wait.max_us = wait_intervals_us.last().copied().unwrap_or(0);

    let aggregate = ProfilePhase::ALL
        .iter()
        .filter_map(|p| {
            let total = aggregate.get(p.name()).copied()?;
            Some(PhaseAttribution {
                phase: p.name().to_owned(),
                count: total.count,
                ns: total.ns,
                pct: pct(total.ns, summed_wall_ns),
            })
        })
        .collect();

    let overlappable_us = total_busy_ns.saturating_sub(max_busy_ns) / 1_000;
    let max_worker_overhead_ns = recorded_max.saturating_mul(record_cost_ns);
    ProfileReport {
        run_id: run.run_id.clone(),
        seq: run.seq,
        run: run.run.clone(),
        workers: run.declared_workers.max(run.workers.len()),
        run_wall_us: run.dur_us,
        attributed_pct: pct(
            covered_wall_us,
            run.dur_us.saturating_mul(run.workers.len().max(1) as u64),
        ),
        aggregate,
        worker_reports,
        merge_wait,
        prefetch_stall_ns: stall_ns,
        decode_ahead_ns: ahead_ns,
        straggler_us,
        critical_path_us: run.dur_us.saturating_sub(overlappable_us),
        overhead: OverheadEstimate {
            recorded: recorded_total,
            record_cost_ns,
            total_ns: recorded_total.saturating_mul(record_cost_ns),
            max_worker_ns: max_worker_overhead_ns,
            pct_of_wall: pct(max_worker_overhead_ns, run_wall_ns),
        },
    }
}

fn pct(part: u64, whole: u64) -> f64 {
    if whole == 0 {
        0.0
    } else {
        part as f64 * 100.0 / whole as f64
    }
}

/// Nearest-rank percentile over a sorted slice (0 when empty).
fn percentile(sorted: &[u64], p: u64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (sorted.len() as u64 * p).div_ceil(100).max(1) as usize;
    sorted[rank.min(sorted.len()) - 1]
}

const TIMELINE_COLS: usize = 60;

fn phase_glyph(phase: &str) -> char {
    match phase {
        "claim" => 'c',
        "prefetch_wait" => 'P',
        "decode" => 'd',
        "simulate" => '#',
        "merge_wait" => 'W',
        "merge" => 'm',
        _ => '?',
    }
}

/// Render one worker's retained intervals as a fixed-width timeline bar
/// over the run window: each column shows the dominant phase, `.` for
/// in-span wall with no retained interval (idle or aggregated-out), and
/// a space outside the worker's span.
fn timeline_bar(run: &ProfileRun, w: &WorkerProfile) -> String {
    let mut bar = String::with_capacity(TIMELINE_COLS);
    let span_us = run.dur_us.max(1);
    for col in 0..TIMELINE_COLS {
        let col_start = run.t_us + span_us * col as u64 / TIMELINE_COLS as u64;
        let col_end = run.t_us + span_us * (col as u64 + 1) / TIMELINE_COLS as u64;
        let mut best: Option<(&str, u64)> = None;
        let mut weights: BTreeMap<&str, u64> = BTreeMap::new();
        for i in &w.intervals {
            let overlap =
                (i.t_us + i.dur_us.max(1)).min(col_end).saturating_sub(i.t_us.max(col_start));
            if overlap > 0 {
                let e = weights.entry(i.phase.as_str()).or_default();
                *e += overlap;
                if best.is_none_or(|(_, b)| *e > b) {
                    best = Some((i.phase.as_str(), *e));
                }
            }
        }
        bar.push(match best {
            Some((phase, _)) => phase_glyph(phase),
            None if col_start >= w.t_us && col_end <= w.t_us + w.dur_us => '.',
            None => ' ',
        });
    }
    bar
}

fn fmt_us(us: u64) -> String {
    if us >= 1_000_000 {
        format!("{:.3} s", us as f64 / 1e6)
    } else if us >= 1_000 {
        format!("{:.3} ms", us as f64 / 1e3)
    } else {
        format!("{us} µs")
    }
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000 {
        fmt_us(ns / 1_000)
    } else {
        format!("{ns} ns")
    }
}

/// Render a profiled run as the text report.
pub fn render_profile_text(run: &ProfileRun, report: &ProfileReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "profile {} {} #{} — {} worker{}, wall {} ({:.1}% attributed)",
        report.run_id,
        report.run,
        report.seq,
        report.workers,
        if report.workers == 1 { "" } else { "s" },
        fmt_us(report.run_wall_us),
        report.attributed_pct,
    );
    let _ = writeln!(out, "  aggregate attribution (of summed worker wall):");
    for a in &report.aggregate {
        let _ = writeln!(
            out,
            "    {:<13} {:>6} × {:>12}  {:>5.1}%",
            a.phase,
            a.count,
            fmt_ns(a.ns),
            a.pct
        );
    }
    for (w, wp) in report.worker_reports.iter().zip(&run.workers) {
        let _ = writeln!(
            out,
            "  worker {:<2} wall {} busy {} idle {} end-gap {}",
            w.worker,
            fmt_us(w.wall_us),
            fmt_ns(w.busy_ns),
            fmt_ns(w.idle_ns),
            fmt_us(w.end_gap_us),
        );
        let _ = writeln!(out, "    [{}]", timeline_bar(run, wp));
    }
    let _ = writeln!(
        out,
        "  legend: c=claim P=prefetch-wait d=decode #=simulate W=merge-wait m=merge \
         .=idle/unretained"
    );
    let mw = &report.merge_wait;
    let _ = writeln!(
        out,
        "  merge-lock wait: {} waits, total {}, mean {}, p50 {}, p95 {}, max {}",
        mw.count,
        fmt_ns(mw.total_ns),
        fmt_ns(mw.mean_ns as u64),
        fmt_us(mw.p50_us),
        fmt_us(mw.p95_us),
        fmt_us(mw.max_us),
    );
    let stall_share =
        pct(report.prefetch_stall_ns, report.prefetch_stall_ns + report.decode_ahead_ns);
    let _ = writeln!(
        out,
        "  prefetch: stalled {} vs decode-ahead {} ({:.1}% stalled)",
        fmt_ns(report.prefetch_stall_ns),
        fmt_ns(report.decode_ahead_ns),
        stall_share,
    );
    let _ = writeln!(
        out,
        "  stragglers: {} barrier waste ({:.2}% of worker wall budget)",
        fmt_us(report.straggler_us),
        pct(report.straggler_us, report.run_wall_us * report.workers.max(1) as u64),
    );
    let _ = writeln!(
        out,
        "  critical path ≥ {} (run wall minus overlappable work)",
        fmt_us(report.critical_path_us)
    );
    let o = &report.overhead;
    let _ = writeln!(
        out,
        "  profiler overhead: {} intervals × {} ns ≈ {} total, {:.3}% of run wall",
        o.recorded,
        o.record_cost_ns,
        fmt_ns(o.total_ns),
        o.pct_of_wall,
    );
    out
}

fn attribution_json(rows: &[PhaseAttribution]) -> String {
    let entries: Vec<String> = rows
        .iter()
        .map(|a| {
            format!(
                "{{\"phase\":{},\"count\":{},\"ns\":{},\"pct\":{}}}",
                json_quote(&a.phase),
                a.count,
                a.ns,
                json_number(a.pct)
            )
        })
        .collect();
    format!("[{}]", entries.join(","))
}

/// Render the analyses of every profiled run as one JSON document.
pub fn render_profile_json(reports: &[ProfileReport]) -> String {
    let runs: Vec<String> = reports
        .iter()
        .map(|r| {
            let workers: Vec<String> = r
                .worker_reports
                .iter()
                .map(|w| {
                    format!(
                        "{{\"worker\":{},\"wall_us\":{},\"busy_ns\":{},\"idle_ns\":{},\
                         \"end_gap_us\":{},\"attribution\":{}}}",
                        w.worker,
                        w.wall_us,
                        w.busy_ns,
                        w.idle_ns,
                        w.end_gap_us,
                        attribution_json(&w.attribution)
                    )
                })
                .collect();
            let mw = &r.merge_wait;
            let o = &r.overhead;
            format!(
                "{{\"run_id\":{},\"seq\":{},\"run\":{},\"workers\":{},\"run_wall_us\":{},\
                 \"attributed_pct\":{},\"aggregate\":{},\"worker_reports\":[{}],\
                 \"merge_wait\":{{\"count\":{},\"total_ns\":{},\"mean_ns\":{},\"p50_us\":{},\
                 \"p95_us\":{},\"max_us\":{}}},\
                 \"prefetch\":{{\"stall_ns\":{},\"decode_ahead_ns\":{}}},\
                 \"straggler_us\":{},\"critical_path_us\":{},\
                 \"overhead\":{{\"recorded\":{},\"record_cost_ns\":{},\"total_ns\":{},\
                 \"max_worker_ns\":{},\"pct_of_wall\":{}}}}}",
                json_quote(&r.run_id),
                r.seq,
                json_quote(&r.run),
                r.workers,
                r.run_wall_us,
                json_number(r.attributed_pct),
                attribution_json(&r.aggregate),
                workers.join(","),
                mw.count,
                mw.total_ns,
                json_number(mw.mean_ns),
                mw.p50_us,
                mw.p95_us,
                mw.max_us,
                r.prefetch_stall_ns,
                r.decode_ahead_ns,
                r.straggler_us,
                r.critical_path_us,
                o.recorded,
                o.record_cost_ns,
                o.total_ns,
                o.max_worker_ns,
                json_number(o.pct_of_wall),
            )
        })
        .collect();
    format!("{{\"runs\":[{}]}}\n", runs.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    const STREAM: &str = concat!(
        "{\"type\":\"profile_run\",\"run_id\":\"aaaa000000000001-1\",\"seq\":1,\
         \"run\":\"online\",\"workers\":2,\"t_us\":100,\"dur_us\":10000}\n",
        "{\"type\":\"profile_worker\",\"run_id\":\"aaaa000000000001-1\",\"seq\":1,\
         \"run\":\"online\",\"worker\":0,\"t_us\":120,\"dur_us\":9800,\"recorded\":7,\
         \"kept\":4,\"phases\":{\"claim\":{\"count\":2,\"ns\":100000},\
         \"decode\":{\"count\":2,\"ns\":2000000},\"simulate\":{\"count\":1,\"ns\":6000000},\
         \"merge_wait\":{\"count\":1,\"ns\":500000},\"merge\":{\"count\":1,\"ns\":200000}}}\n",
        "{\"type\":\"profile_phase\",\"run_id\":\"aaaa000000000001-1\",\"seq\":1,\
         \"run\":\"online\",\"worker\":0,\"phase\":\"simulate\",\"t_us\":200,\"dur_us\":6000}\n",
        "{\"type\":\"profile_phase\",\"run_id\":\"aaaa000000000001-1\",\"seq\":1,\
         \"run\":\"online\",\"worker\":0,\"phase\":\"merge_wait\",\"t_us\":6200,\
         \"dur_us\":500}\n",
        "{\"type\":\"profile_worker\",\"run_id\":\"aaaa000000000001-1\",\"seq\":1,\
         \"run\":\"online\",\"worker\":1,\"t_us\":130,\"dur_us\":9900,\"recorded\":5,\
         \"kept\":5,\"phases\":{\"prefetch_wait\":{\"count\":1,\"ns\":1000000},\
         \"decode\":{\"count\":1,\"ns\":1000000},\"simulate\":{\"count\":1,\"ns\":7000000},\
         \"merge_wait\":{\"count\":1,\"ns\":300000},\"merge\":{\"count\":1,\"ns\":100000}}}\n",
        "{\"type\":\"profile_phase\",\"run_id\":\"aaaa000000000001-1\",\"seq\":1,\
         \"run\":\"online\",\"worker\":1,\"phase\":\"merge_wait\",\"t_us\":7000,\
         \"dur_us\":300}\n",
        // Other sinks may share the file: skipped, not fatal.
        "{\"type\":\"span\",\"name\":\"decode\",\"t_us\":5,\"dur_us\":2}\n",
    );

    #[test]
    fn parses_runs_workers_and_intervals() {
        let runs = parse_profile(STREAM).expect("valid stream");
        assert_eq!(runs.len(), 1);
        let run = &runs[0];
        assert_eq!((run.seq, run.declared_workers, run.dur_us), (1, 2, 10_000));
        assert_eq!(run.workers.len(), 2);
        assert_eq!(run.workers[0].recorded, 7);
        assert_eq!(run.workers[0].phases["decode"], PhaseTotal { count: 2, ns: 2_000_000 });
        assert_eq!(run.workers[0].intervals.len(), 2);
        assert_eq!(run.workers[1].busy_ns(), 9_400_000);
    }

    #[test]
    fn attribution_covers_the_run_wall() {
        let runs = parse_profile(STREAM).expect("valid stream");
        let report = analyze_profile(&runs[0], 50);
        // Σ (run end − worker start): (10100−120) + (10100−130) over
        // 2 × 10000 run wall — only the spawn latency is unattributed.
        assert!((report.attributed_pct - 99.75).abs() < 1e-9, "{}", report.attributed_pct);
        assert!(report.attributed_pct >= 95.0);
        // Per-worker shares (explicit phases + idle) sum to worker wall.
        for w in &report.worker_reports {
            let total: f64 = w.attribution.iter().map(|a| a.pct).sum();
            assert!((total - 100.0).abs() < 0.1, "worker {} sums to {total}", w.worker);
            assert_eq!(w.attribution.last().map(|a| a.phase.as_str()), Some("idle"));
        }
        assert_eq!(report.worker_reports[0].idle_ns, 1_000_000);
        assert_eq!(report.worker_reports[0].end_gap_us, 10_100 - 9_920);
    }

    #[test]
    fn contention_stragglers_and_critical_path() {
        let runs = parse_profile(STREAM).expect("valid stream");
        let report = analyze_profile(&runs[0], 50);
        let mw = &report.merge_wait;
        assert_eq!((mw.count, mw.total_ns), (2, 800_000));
        assert!((mw.mean_ns - 400_000.0).abs() < 1e-9);
        assert_eq!((mw.p50_us, mw.p95_us, mw.max_us), (300, 500, 500));
        assert_eq!(report.prefetch_stall_ns, 1_000_000);
        assert_eq!(report.decode_ahead_ns, 3_000_000);
        assert_eq!(report.straggler_us, 180 + 70);
        // Overlappable work: 18.2 ms busy − 9.4 ms busiest = 8.8 ms;
        // 10 ms run wall − 8.8 ms = 1.2 ms of unhidden serial residue.
        assert_eq!(report.critical_path_us, 1_200);
        let o = &report.overhead;
        assert_eq!((o.recorded, o.total_ns, o.max_worker_ns), (12, 600, 350));
        assert!(o.pct_of_wall < 0.01);
    }

    #[test]
    fn truncated_stream_synthesizes_the_run_window() {
        // Drop the profile_run bracket: the workers' envelope stands in.
        let body: String =
            STREAM.lines().filter(|l| !l.contains("profile_run")).collect::<Vec<_>>().join("\n");
        let runs = parse_profile(&body).expect("valid stream");
        let run = &runs[0];
        assert_eq!(run.t_us, 120);
        assert_eq!(run.dur_us, (130 + 9_900) - 120);
        assert_eq!(run.declared_workers, 2);
        let report = analyze_profile(run, 50);
        assert!(report.attributed_pct > 90.0);
    }

    #[test]
    fn renders_text_and_json() {
        let runs = parse_profile(STREAM).expect("valid stream");
        let report = analyze_profile(&runs[0], 50);
        let text = render_profile_text(&runs[0], &report);
        assert!(text.contains("profile aaaa000000000001-1 online #1"), "{text}");
        assert!(text.contains("worker 0"), "{text}");
        assert!(text.contains("merge-lock wait: 2 waits"), "{text}");
        assert!(text.contains("critical path ≥ 1.200 ms"), "{text}");
        assert!(text.contains("profiler overhead: 12 intervals × 50 ns"), "{text}");
        // The timeline bar shows simulate as the dominant early phase.
        assert!(text.contains('#'), "{text}");
        let json = render_profile_json(&[report]);
        let doc = JsonValue::parse(json.trim()).expect("valid JSON");
        let run0 = &doc.get("runs").and_then(JsonValue::as_arr).expect("runs array")[0];
        assert_eq!(run0.get("run_wall_us").and_then(JsonValue::as_u64), Some(10_000));
        assert!(run0.get("attributed_pct").and_then(JsonValue::as_f64).unwrap() >= 95.0);
        assert_eq!(
            run0.get("overhead").and_then(|o| o.get("recorded")).and_then(JsonValue::as_u64),
            Some(12)
        );
        assert_eq!(
            run0.get("merge_wait").and_then(|m| m.get("p95_us")).and_then(JsonValue::as_u64),
            Some(500)
        );
    }

    #[test]
    fn record_cost_probe_is_sane() {
        let cost = measure_record_cost_ns();
        assert!(cost >= 1, "cost is clamped positive");
        assert!(cost < 1_000_000, "a clock read is not a millisecond: {cost}");
    }
}
