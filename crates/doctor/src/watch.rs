//! `doctor watch`: live run exposition — a rebuilt-per-frame snapshot
//! of a growing events file or registry directory, rendered as an
//! in-place terminal dashboard and/or a Prometheus-style text
//! exposition.
//!
//! A frame is a pure function of the artifact's current contents: the
//! watch loop polls an [`EventsTail`] each tick — reading only the
//! bytes appended since the last frame, and re-seeking to the start
//! when the file shrank (truncated in place or rotated) — and rebuilds
//! the frame from the accumulated text. Parsing is deliberately
//! *tolerant* — a live writer's last line may be mid-append, and a
//! dashboard that dies on a partial line is useless — unlike
//! [`parse_events`](crate::parse_events), which reports malformed
//! lines because it reads completed artifacts.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io::{Read as _, Seek as _, SeekFrom};
use std::path::PathBuf;

use spectral_registry::RunRecord;
use spectral_telemetry::{json_number as number, JsonValue, RunSummary};

/// An incremental tail over a growing events file: each [`poll`] reads
/// only the bytes appended since the last one and returns the
/// accumulated contents, so a long watch doesn't re-read the whole
/// file every frame.
///
/// The tail must outlive its writers: a file that doesn't exist yet (or
/// vanished mid-rotation) is an empty frame, and a file that *shrank*
/// (truncated in place, or rotated and recreated) re-seeks to offset 0
/// and rebuilds from the new contents instead of erroring or serving a
/// stale blend of old and new bytes.
///
/// [`poll`]: EventsTail::poll
#[derive(Debug)]
pub struct EventsTail {
    path: PathBuf,
    offset: u64,
    text: String,
}

impl EventsTail {
    /// Start a tail over `path` (which need not exist yet).
    pub fn new(path: impl Into<PathBuf>) -> EventsTail {
        EventsTail { path: path.into(), offset: 0, text: String::new() }
    }

    /// Read any appended bytes and return the accumulated file
    /// contents. Never errors: missing files reset to an empty frame,
    /// shrunken files reset to offset 0 and re-read from the start.
    pub fn poll(&mut self) -> &str {
        let Ok(mut f) = std::fs::File::open(&self.path) else {
            self.offset = 0;
            self.text.clear();
            return &self.text;
        };
        let len = f.metadata().map(|m| m.len()).unwrap_or(0);
        if len < self.offset {
            // Truncated or rotated: what we accumulated no longer
            // reflects the file. Start over from the new contents.
            self.offset = 0;
            self.text.clear();
        }
        if len > self.offset && f.seek(SeekFrom::Start(self.offset)).is_ok() {
            let mut buf = Vec::with_capacity((len - self.offset) as usize);
            if f.take(len - self.offset).read_to_end(&mut buf).is_ok() {
                self.offset += buf.len() as u64;
                self.text.push_str(&String::from_utf8_lossy(&buf));
            }
        }
        &self.text
    }
}

/// The live state of one estimated series, distilled from its latest
/// progress records.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesState {
    /// Collision-resistant run identifier (empty for pre-`run_id`
    /// streams).
    pub run_id: String,
    /// Process-wide run ordinal.
    pub seq: u64,
    /// Run kind: `online`, `matched`, or `sweep`.
    pub run: String,
    /// What the mean estimates.
    pub metric: String,
    /// Sweep configuration index, if any.
    pub config: Option<usize>,
    /// Points merged into the estimate so far.
    pub n: u64,
    /// Running mean.
    pub mean: f64,
    /// Relative CI half-width at the policy confidence.
    pub rel_half_width: f64,
    /// The policy's relative-error target ε.
    pub target_rel_err: f64,
    /// Early-termination eligibility at the policy confidence.
    pub eligible: bool,
    /// Workers that have reported progress.
    pub workers: usize,
    /// `(max − min) / max` over per-worker busy time (0 with fewer than
    /// two busy workers).
    pub busy_spread: f64,
    /// Anomalies observed in this series' run so far.
    pub anomalies: u64,
}

/// One snapshot of a watched artifact.
#[derive(Debug, Clone, Default)]
pub struct WatchFrame {
    /// Live series, ordered by (seq, run_id, run, metric, config).
    pub series: Vec<SeriesState>,
    /// Registry records (empty when watching an events file).
    pub runs: Vec<RunRecord>,
}

type SeriesKey = (u64, String, String, String, Option<usize>);

#[derive(Default)]
struct SeriesAccum {
    latest: Option<SeriesState>,
    latest_n: u64,
    busy: BTreeMap<u64, u64>,
    workers: BTreeMap<u64, ()>,
}

impl WatchFrame {
    /// Build a frame from an events file's current contents. Malformed
    /// lines (including a partial final line mid-append) are skipped.
    pub fn from_events_text(text: &str) -> WatchFrame {
        let mut accums: BTreeMap<SeriesKey, SeriesAccum> = BTreeMap::new();
        let mut anomalies: BTreeMap<(String, u64, String), u64> = BTreeMap::new();
        for line in text.lines() {
            let Ok(doc) = JsonValue::parse(line) else { continue };
            let str_of = |key: &str| -> String {
                doc.get(key).and_then(JsonValue::as_str).unwrap_or("").to_owned()
            };
            let u64_of = |key: &str| doc.get(key).and_then(JsonValue::as_u64).unwrap_or(0);
            let f64_of = |key: &str| doc.get(key).and_then(JsonValue::as_f64).unwrap_or(0.0);
            match doc.get("type").and_then(JsonValue::as_str) {
                Some("progress") => {
                    let key = (
                        u64_of("seq"),
                        str_of("run_id"),
                        str_of("run"),
                        str_of("metric"),
                        doc.get("config").and_then(JsonValue::as_u64).map(|c| c as usize),
                    );
                    let acc = accums.entry(key.clone()).or_default();
                    let worker = u64_of("worker");
                    acc.workers.insert(worker, ());
                    let busy = u64_of("shard_busy_ns");
                    if busy > 0 {
                        let e = acc.busy.entry(worker).or_default();
                        *e = (*e).max(busy);
                    }
                    let n = u64_of("n");
                    if acc.latest.is_none() || n >= acc.latest_n {
                        acc.latest_n = n;
                        acc.latest = Some(SeriesState {
                            run_id: key.1,
                            seq: key.0,
                            run: key.2,
                            metric: key.3,
                            config: key.4,
                            n,
                            mean: f64_of("mean"),
                            rel_half_width: f64_of("rel_half_width"),
                            target_rel_err: f64_of("target_rel_err"),
                            eligible: doc
                                .get("eligible")
                                .and_then(JsonValue::as_bool)
                                .unwrap_or(false),
                            workers: 0,
                            busy_spread: 0.0,
                            anomalies: 0,
                        });
                    }
                }
                Some("anomaly") => {
                    *anomalies
                        .entry((str_of("run_id"), u64_of("seq"), str_of("run")))
                        .or_default() += 1;
                }
                _ => {}
            }
        }
        let series = accums
            .into_values()
            .filter_map(|acc| {
                let mut s = acc.latest?;
                s.workers = acc.workers.len();
                s.busy_spread = match (acc.busy.values().max(), acc.busy.values().min()) {
                    (Some(&max), Some(&min)) if acc.busy.len() > 1 && max > 0 => {
                        (max - min) as f64 / max as f64
                    }
                    _ => 0.0,
                };
                s.anomalies =
                    anomalies.get(&(s.run_id.clone(), s.seq, s.run.clone())).copied().unwrap_or(0);
                Some(s)
            })
            .collect();
        WatchFrame { series, runs: Vec::new() }
    }

    /// Build a frame from registry records: the run list verbatim, plus
    /// series derived from the latest record per `(kind, binary,
    /// benchmark, machine, threads)` tuple's convergence summaries.
    pub fn from_records(runs: Vec<RunRecord>) -> WatchFrame {
        type TupleKey = (String, String, String, String, usize);
        let mut latest: BTreeMap<TupleKey, &RunRecord> = BTreeMap::new();
        for r in &runs {
            latest.insert(
                (
                    r.kind.clone(),
                    r.binary.clone(),
                    r.benchmark.clone(),
                    r.machine.clone(),
                    r.threads,
                ),
                r,
            );
        }
        let series =
            latest.values().flat_map(|r| r.convergence.iter().map(summary_state)).collect();
        WatchFrame { series, runs }
    }

    /// Render the in-place dashboard body (no ANSI control codes — the
    /// watch loop owns screen clearing).
    pub fn dashboard(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "spectral-doctor watch — {} series, {} run record{}",
            self.series.len(),
            self.runs.len(),
            if self.runs.len() == 1 { "" } else { "s" }
        );
        for s in &self.series {
            let label = match s.config {
                Some(c) => format!("{} {} [config {c}]", s.run, s.metric),
                None => format!("{} {}", s.run, s.metric),
            };
            let _ = writeln!(
                out,
                "  [{label} #{seq}] n={n} mean={mean:.4} ±{rel:.2}% (target {tgt:.2}%) {state}  \
                 workers={w} busy-spread={spread:.0}% anomalies={a}",
                seq = s.seq,
                n = s.n,
                mean = s.mean,
                rel = s.rel_half_width * 100.0,
                tgt = s.target_rel_err * 100.0,
                state = if s.eligible { "ELIGIBLE" } else { "running" },
                w = s.workers,
                spread = s.busy_spread * 100.0,
                a = s.anomalies,
            );
        }
        let tail = self.runs.len().saturating_sub(5);
        if !self.runs.is_empty() {
            let _ = writeln!(out, "recent runs:");
        }
        for r in &self.runs[tail..] {
            // Decode-cache effectiveness, when the run sampled it.
            let cache = match (r.cache_hits, r.cache_misses) {
                (Some(h), Some(m)) if h + m > 0 => {
                    format!(
                        " cache={:.0}% hit ({h}h/{m}m/{}e)",
                        h as f64 * 100.0 / (h + m) as f64,
                        r.cache_evictions.unwrap_or(0)
                    )
                }
                _ => String::new(),
            };
            let _ = writeln!(
                out,
                "  {} {}/{} on {} t{} [{}] rate={}{cache}",
                r.kind,
                r.binary,
                r.benchmark,
                r.machine,
                r.threads,
                r.code_version,
                r.run_rate.map_or("n/a".to_owned(), |v| format!("{v:.0} pts/s")),
            );
        }
        out
    }

    /// Render the frame as a Prometheus-style text exposition
    /// (`# HELP` / `# TYPE` headers, one labeled sample per line).
    pub fn prometheus(&self) -> String {
        let mut out = String::new();
        let series_labels = |s: &SeriesState| {
            format!(
                "run_id=\"{}\",run=\"{}\",metric=\"{}\",config=\"{}\",seq=\"{}\"",
                escape_label(&s.run_id),
                escape_label(&s.run),
                escape_label(&s.metric),
                s.config.map_or(String::new(), |c| c.to_string()),
                s.seq
            )
        };
        let mut gauge = |name: &str, help: &str, rows: Vec<(String, String)>| {
            if rows.is_empty() {
                return;
            }
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} gauge");
            for (labels, value) in rows {
                let _ = writeln!(out, "{name}{{{labels}}} {value}");
            }
        };
        let rows = |f: &dyn Fn(&SeriesState) -> String| -> Vec<(String, String)> {
            self.series.iter().map(|s| (series_labels(s), f(s))).collect()
        };
        gauge(
            "spectral_progress_points",
            "Points merged into the running estimate.",
            rows(&|s| s.n.to_string()),
        );
        gauge("spectral_progress_mean", "Running mean.", rows(&|s| number(s.mean)));
        gauge(
            "spectral_progress_rel_half_width",
            "Relative CI half-width at the policy confidence.",
            rows(&|s| number(s.rel_half_width)),
        );
        gauge(
            "spectral_progress_target_rel_err",
            "The policy's relative-error target.",
            rows(&|s| number(s.target_rel_err)),
        );
        gauge(
            "spectral_progress_eligible",
            "Early-termination eligibility (1 = eligible).",
            rows(&|s| if s.eligible { "1" } else { "0" }.to_owned()),
        );
        gauge(
            "spectral_shard_busy_spread",
            "(max-min)/max over per-worker busy time.",
            rows(&|s| number(s.busy_spread)),
        );
        gauge(
            "spectral_anomalies",
            "Anomalous live-points observed in the series' run.",
            rows(&|s| s.anomalies.to_string()),
        );
        let run_labels = |r: &RunRecord| {
            format!(
                "run_id=\"{}\",kind=\"{}\",binary=\"{}\",benchmark=\"{}\",\
                 machine=\"{}\",threads=\"{}\",code_version=\"{}\"",
                escape_label(&r.run_id),
                escape_label(&r.kind),
                escape_label(&r.binary),
                escape_label(&r.benchmark),
                escape_label(&r.machine),
                r.threads,
                escape_label(&r.code_version),
            )
        };
        let run_rows = |f: &dyn Fn(&RunRecord) -> Option<String>| -> Vec<(String, String)> {
            self.runs.iter().filter_map(|r| Some((run_labels(r), f(r)?))).collect()
        };
        gauge(
            "spectral_run_rate",
            "Run throughput in points per second.",
            run_rows(&|r| r.run_rate.map(number)),
        );
        gauge(
            "spectral_cache_hits",
            "Decoded-point cache hits over the run (core.lib.cache_hits).",
            run_rows(&|r| r.cache_hits.map(|v| v.to_string())),
        );
        gauge(
            "spectral_cache_misses",
            "Decoded-point cache misses over the run (core.lib.cache_misses).",
            run_rows(&|r| r.cache_misses.map(|v| v.to_string())),
        );
        gauge(
            "spectral_cache_evictions",
            "Decoded-point cache evictions over the run (core.lib.cache_evictions).",
            run_rows(&|r| r.cache_evictions.map(|v| v.to_string())),
        );
        gauge(
            "spectral_cache_hit_ratio",
            "Decoded-point cache hits over hits plus misses.",
            run_rows(&|r| match (r.cache_hits?, r.cache_misses?) {
                (0, 0) => None,
                (h, m) => Some(number(h as f64 / (h + m) as f64)),
            }),
        );
        if !self.runs.is_empty() {
            let _ = writeln!(out, "# HELP spectral_runs_total Registry records seen.");
            let _ = writeln!(out, "# TYPE spectral_runs_total gauge");
            let _ = writeln!(out, "spectral_runs_total {}", self.runs.len());
        }
        out
    }
}

fn summary_state(s: &RunSummary) -> SeriesState {
    SeriesState {
        run_id: s.run_id.clone(),
        seq: s.seq,
        run: s.run.clone(),
        metric: s.metric.clone(),
        config: s.config,
        n: s.n,
        mean: s.mean,
        rel_half_width: s.rel_half_width,
        target_rel_err: s.target_rel_err,
        eligible: s.eligible,
        workers: s.workers,
        busy_spread: s.busy_spread(),
        anomalies: s.anomalies,
    }
}

/// Escape a Prometheus label value (backslash, quote, newline).
fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    const STREAM: &str = concat!(
        "{\"type\":\"progress\",\"run_id\":\"aaaa000000000001-1\",\"seq\":1,\"run\":\"online\",\
         \"metric\":\"cpi\",\"worker\":0,\"n\":8,\"mean\":1.52,\"rel_half_width\":0.4,\
         \"target_rel_err\":0.1,\"eligible\":false,\"shard_points\":8,\"shard_busy_ns\":400}\n",
        "{\"type\":\"span\",\"name\":\"decode\",\"t_us\":5,\"dur_us\":2}\n",
        "{\"type\":\"progress\",\"run_id\":\"aaaa000000000001-1\",\"seq\":1,\"run\":\"online\",\
         \"metric\":\"cpi\",\"worker\":1,\"n\":16,\"mean\":1.48,\"rel_half_width\":0.2,\
         \"target_rel_err\":0.1,\"eligible\":false,\"shard_points\":8,\"shard_busy_ns\":1000}\n",
        "{\"type\":\"anomaly\",\"run_id\":\"aaaa000000000001-1\",\"seq\":1,\"run\":\"online\",\
         \"worker\":0,\"point\":3}\n",
        "{\"type\":\"progress\",\"run_id\":\"aaaa000000000001-1\",\"seq\":1,\"run\":\"online\",\
         \"metric\":\"cpi\",\"worker\":0,\"n\":40,\"mean\":1.372,\"rel_half_width\":0.08,\
         \"target_rel_err\":0.1,\"eligible\":true,\"shard_points\":20,\"shard_busy_ns\":2000}\n",
        // A partial line mid-append: tolerated, not fatal.
        "{\"type\":\"progress\",\"run_id\":\"aaaa0000"
    );

    #[test]
    fn frame_distills_the_latest_state_per_series() {
        let frame = WatchFrame::from_events_text(STREAM);
        assert_eq!(frame.series.len(), 1);
        let s = &frame.series[0];
        assert_eq!(s.run_id, "aaaa000000000001-1");
        assert_eq!((s.n, s.eligible), (40, true));
        assert!((s.mean - 1.372).abs() < 1e-12);
        assert_eq!(s.workers, 2);
        assert!((s.busy_spread - 0.5).abs() < 1e-12, "(2000-1000)/2000");
        assert_eq!(s.anomalies, 1);
        let dash = frame.dashboard();
        assert!(dash.contains("ELIGIBLE"), "{dash}");
        assert!(dash.contains("n=40"), "{dash}");
    }

    #[test]
    fn prometheus_exposition_is_well_formed() {
        let frame = WatchFrame::from_events_text(STREAM);
        let prom = frame.prometheus();
        assert!(
            prom.contains(
                "spectral_progress_points{run_id=\"aaaa000000000001-1\",run=\"online\",\
                 metric=\"cpi\",config=\"\",seq=\"1\"} 40"
            ),
            "{prom}"
        );
        assert!(prom.contains("# TYPE spectral_progress_eligible gauge"), "{prom}");
        assert!(prom.contains("spectral_progress_eligible{") && prom.contains("} 1"), "{prom}");
        // Every non-comment line is `name{labels} value` or `name value`
        // with a parseable float value.
        for line in prom.lines().filter(|l| !l.is_empty() && !l.starts_with('#')) {
            let (_, value) = line.rsplit_once(' ').expect("sample has a value");
            assert!(value.parse::<f64>().is_ok(), "unparseable sample: {line}");
            if let Some(open) = line.find('{') {
                assert!(line[open..].contains('}'), "unterminated labels: {line}");
            }
        }
    }

    #[test]
    fn tail_survives_truncation_and_rotation() {
        let path =
            std::env::temp_dir().join(format!("spectral_watch_tail_{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let mut tail = EventsTail::new(&path);
        // Missing file: empty frame, not an error.
        assert_eq!(tail.poll(), "");
        // Appends accumulate incrementally.
        std::fs::write(&path, "line-1\n").unwrap();
        assert_eq!(tail.poll(), "line-1\n");
        let mut f = std::fs::OpenOptions::new().append(true).open(&path).unwrap();
        std::io::Write::write_all(&mut f, b"line-2\n").unwrap();
        drop(f);
        assert_eq!(tail.poll(), "line-1\nline-2\n");
        // Truncation mid-tail: shorter file ⇒ re-seek to 0, no stale mix.
        std::fs::write(&path, "new-1\n").unwrap();
        assert_eq!(tail.poll(), "new-1\n");
        // Rotation: the file vanishes, then a new one appears.
        std::fs::remove_file(&path).unwrap();
        assert_eq!(tail.poll(), "");
        std::fs::write(&path, "rotated-1\n").unwrap();
        assert_eq!(tail.poll(), "rotated-1\n");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn registry_frames_surface_runs_and_convergence() {
        let mut r = RunRecord::new("run", "online", "gcc-like", "8-wide", 4);
        r.run_id = "aaaa000000000001-1".into();
        r.run_rate = Some(2_000.0);
        r.cache_hits = Some(750);
        r.cache_misses = Some(250);
        r.cache_evictions = Some(10);
        r.convergence = vec![RunSummary {
            run_id: r.run_id.clone(),
            seq: 1,
            run: "online".into(),
            metric: "cpi".into(),
            config: None,
            n: 40,
            mean: 1.372,
            half_width: 0.041,
            rel_half_width: 0.0299,
            target_rel_err: 0.03,
            eligible: true,
            first_eligible_n: Some(36),
            overshoot: 4,
            anomalies: 2,
            workers: 4,
            min_shard_points: 8,
            max_shard_points: 12,
            min_shard_busy_ns: 600,
            max_shard_busy_ns: 2_000,
        }];
        let frame = WatchFrame::from_records(vec![r]);
        assert_eq!(frame.series.len(), 1);
        assert_eq!(frame.series[0].workers, 4);
        assert!((frame.series[0].busy_spread - 0.7).abs() < 1e-12);
        let prom = frame.prometheus();
        assert!(prom.contains("spectral_run_rate{"), "{prom}");
        assert!(prom.contains("spectral_runs_total 1"), "{prom}");
        // Decode-cache effectiveness is exported with HELP/TYPE headers.
        assert!(prom.contains("# HELP spectral_cache_hits "), "{prom}");
        assert!(prom.contains("# TYPE spectral_cache_hits gauge"), "{prom}");
        assert!(prom.contains("spectral_cache_hits{") && prom.contains("} 750"), "{prom}");
        assert!(prom.contains("# TYPE spectral_cache_hit_ratio gauge"), "{prom}");
        assert!(prom.contains("} 0.75"), "{prom}");
        // Every exported sample family carries HELP and TYPE lines.
        for line in prom.lines().filter(|l| !l.is_empty() && !l.starts_with('#')) {
            let name = line.split(['{', ' ']).next().expect("sample name");
            assert!(prom.contains(&format!("# HELP {name} ")), "no HELP for {name}: {prom}");
            assert!(prom.contains(&format!("# TYPE {name} gauge")), "no TYPE for {name}: {prom}");
        }
        let dash = frame.dashboard();
        assert!(dash.contains("recent runs:"), "{dash}");
        assert!(dash.contains("rate=2000 pts/s"), "{dash}");
        assert!(dash.contains("cache=75% hit (750h/250m/10e)"), "{dash}");
    }
}
