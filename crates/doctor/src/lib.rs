//! # spectral-doctor — sampling-health analysis over telemetry artifacts
//!
//! The experiment binaries leave three artifacts behind: a run manifest
//! (`--metrics-out`), a span trace (`--trace`), and a sampling-health
//! event stream (`--events`). This crate turns them into a diagnosis:
//!
//! * **Convergence** — the merge-stride CI trajectory per estimated
//!   series, the stride at which the run first became eligible to stop
//!   (at the policy confidence and at the paper's ±ε@95% rule), and how
//!   many points were processed past that moment (wasted work).
//! * **Anomaly triage** — the top-N anomalous live-points by severity,
//!   with library index and window provenance.
//! * **Shard balance** — per-worker point counts and busy time from
//!   the progress stream's `shard_points` / `shard_busy_ns` fields,
//!   and the resulting imbalances (`--check --max-imbalance PCT` gates
//!   on the busy-time spread).
//! * **Cross-run regression** — a matched-pair-style diff of two runs'
//!   final estimates: the mean delta against the combined half-width
//!   `sqrt(hw₁² + hw₂²)`, plus point-count and wall-clock movement.
//!
//! The `spectral-doctor` binary renders the diagnosis as a text report
//! (with a sparkline convergence curve), as machine-readable JSON
//! (`--json`), and can convert the trace + event streams into a Chrome
//! `trace_event` document for <https://ui.perfetto.dev> (`--perfetto`).
//!
//! Beyond the per-run `analyze` diagnosis, the binary grew cross-run
//! subcommands over the [`spectral-registry`](spectral_registry)
//! run registry:
//!
//! * **`trend`** ([`trend`]) — per-benchmark/per-machine time series of
//!   run rate, points-to-convergence, and CI half-width across
//!   registry records, rendered as sparklines or JSON.
//! * **`gate`** ([`gate`]) — a statistical regression verdict between a
//!   baseline run-set and a candidate run-set, built on
//!   [`spectral_stats::MatchedPair`]; designed as a CI gate (exit code
//!   2 on regression).
//! * **`watch`** ([`WatchFrame`]) — a live terminal dashboard over a
//!   growing events file or registry directory, with an optional
//!   Prometheus-style text exposition (`--prom`).
//! * **`profile`** ([`parse_profile`], [`analyze_profile`]) —
//!   wall-clock attribution over the worker-timeline profile stream
//!   (the binaries' `--profile` sink): per-worker phase shares with an
//!   explicit idle remainder, merge-lock wait distribution, prefetch
//!   stall vs decode-ahead, straggler/barrier waste, a critical-path
//!   estimate, and the profiler's own overhead.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analyze;
mod gate;
mod profile;
mod report;
mod trend;
mod watch;

use std::fmt;
use std::path::Path;

use spectral_telemetry::{JsonValue, RunManifest};

pub use analyze::{
    analyze, diff_runs, exhausted_without_convergence, Diagnosis, RunDiff, SeriesDiagnosis,
    ShardReport, TrajectoryPoint,
};
pub use gate::{gate, render_gate_json, render_gate_text, GateComparison, GateConfig, GateVerdict};
pub use profile::{
    analyze_profile, measure_record_cost_ns, parse_profile, render_profile_json,
    render_profile_text, OverheadEstimate, PhaseAttribution, PhaseTotal, ProfileInterval,
    ProfileReport, ProfileRun, WaitStats, WorkerProfile, WorkerReport,
};
pub use report::{render_json, render_text, sparkline};
pub use trend::{render_trend_json, render_trend_text, trend, TrendPoint, TrendSeries};
pub use watch::{EventsTail, SeriesState, WatchFrame};

/// A doctor failure: a one-line diagnostic for stderr.
#[derive(Debug)]
pub struct DoctorError(String);

impl DoctorError {
    /// Build an error from any displayable message.
    pub fn msg(m: impl Into<String>) -> DoctorError {
        DoctorError(m.into())
    }
}

impl fmt::Display for DoctorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DoctorError {}

/// One parsed `progress` record from the event stream.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgressRecord {
    /// Microseconds since the run's first telemetry event.
    pub t_us: u64,
    /// Collision-resistant run identifier (empty for pre-`run_id`
    /// streams).
    pub run_id: String,
    /// Process-wide run ordinal (0 for pre-`seq` streams).
    pub seq: u64,
    /// Run kind: `online`, `matched`, or `sweep`.
    pub run: String,
    /// What the mean estimates: `cpi` or `delta_cpi`.
    pub metric: String,
    /// Emitting worker ordinal.
    pub worker: usize,
    /// Sweep configuration index; `None` for single-config runs.
    pub config: Option<usize>,
    /// Points merged into the estimate so far.
    pub n: u64,
    /// Running mean.
    pub mean: f64,
    /// CI half-width at the policy confidence.
    pub half_width: f64,
    /// Relative error at the policy confidence.
    pub rel_half_width: f64,
    /// The policy's relative-error target ε.
    pub target_rel_err: f64,
    /// Early-termination eligibility at the policy confidence.
    pub eligible: bool,
    /// Relative error at 95% confidence.
    pub rel_half_width_95: f64,
    /// The paper's ±ε@95% early-termination rule.
    pub eligible_95: bool,
    /// The emitting worker's own processed-point count.
    pub shard_points: u64,
    /// The emitting worker's cumulative decode + simulate wall-clock
    /// (0 for pre-busy-time streams).
    pub shard_busy_ns: u64,
    /// Exact early-termination overshoot from the run's closing record
    /// (`None` for streams that predate exact accounting).
    pub overshoot: Option<u64>,
}

/// One parsed `anomaly` record from the event stream.
#[derive(Debug, Clone, PartialEq)]
pub struct AnomalyRecord {
    /// Microseconds since the run's first telemetry event.
    pub t_us: u64,
    /// Collision-resistant run identifier (empty for pre-`run_id`
    /// streams).
    pub run_id: String,
    /// Process-wide run ordinal (0 for pre-`seq` streams).
    pub seq: u64,
    /// Run kind.
    pub run: String,
    /// Emitting worker ordinal.
    pub worker: usize,
    /// Library index of the live-point.
    pub point: u64,
    /// Window provenance: start of detailed warming.
    pub detail_start: u64,
    /// Window provenance: start of measurement.
    pub measure_start: u64,
    /// Which tests fired.
    pub kinds: Vec<String>,
    /// The point's measured CPI.
    pub cpi: f64,
    /// Running CPI mean at observation time.
    pub mean: f64,
    /// Running CPI standard deviation at observation time.
    pub std_dev: f64,
    /// Deviation in standard deviations (0 when only a time test fired).
    pub sigmas: f64,
    /// Decode wall-clock for this point.
    pub decode_ns: u64,
    /// Detailed-simulation wall-clock for this point.
    pub simulate_ns: u64,
}

impl AnomalyRecord {
    /// Triage ordering key: CPI deviation first, then processing cost.
    pub(crate) fn severity(&self) -> (f64, u64) {
        (self.sigmas, self.decode_ns.saturating_add(self.simulate_ns))
    }
}

/// Everything the doctor knows about one run.
#[derive(Debug, Clone, Default)]
pub struct RunArtifacts {
    /// The run manifest, when `--manifest` was given.
    pub manifest: Option<RunManifest>,
    /// Parsed progress records, in stream order.
    pub progress: Vec<ProgressRecord>,
    /// Parsed anomaly records, in stream order.
    pub anomalies: Vec<AnomalyRecord>,
}

impl RunArtifacts {
    /// Assemble artifacts from already-loaded text.
    ///
    /// # Errors
    ///
    /// Returns a diagnostic when a non-empty event line is not valid
    /// JSON (unknown record types are skipped, so spans may be
    /// interleaved).
    pub fn from_parts(
        manifest: Option<RunManifest>,
        events_text: &str,
    ) -> Result<RunArtifacts, DoctorError> {
        let (progress, anomalies) = parse_events(events_text)?;
        Ok(RunArtifacts { manifest, progress, anomalies })
    }

    /// Load artifacts from disk.
    ///
    /// # Errors
    ///
    /// Returns a diagnostic naming the offending file on I/O or parse
    /// failures.
    pub fn load(
        manifest_path: Option<&Path>,
        events_path: &Path,
    ) -> Result<RunArtifacts, DoctorError> {
        let manifest = match manifest_path {
            Some(p) => {
                let text = std::fs::read_to_string(p).map_err(|e| {
                    DoctorError(format!("cannot read manifest {}: {e}", p.display()))
                })?;
                Some(RunManifest::from_json(&text).map_err(|e| {
                    DoctorError(format!("malformed manifest {}: {}", p.display(), e.message))
                })?)
            }
            None => None,
        };
        let events = std::fs::read_to_string(events_path).map_err(|e| {
            DoctorError(format!("cannot read events {}: {e}", events_path.display()))
        })?;
        Self::from_parts(manifest, &events)
            .map_err(|e| DoctorError(format!("{}: {e}", events_path.display())))
    }
}

fn u64_field(doc: &JsonValue, key: &str) -> u64 {
    doc.get(key).and_then(JsonValue::as_u64).unwrap_or(0)
}

fn f64_field(doc: &JsonValue, key: &str) -> f64 {
    doc.get(key).and_then(JsonValue::as_f64).unwrap_or(0.0)
}

fn bool_field(doc: &JsonValue, key: &str) -> bool {
    doc.get(key).and_then(JsonValue::as_bool).unwrap_or(false)
}

fn str_field(doc: &JsonValue, key: &str) -> String {
    doc.get(key).and_then(JsonValue::as_str).unwrap_or("").to_owned()
}

/// Parse a JSONL event stream into progress and anomaly records,
/// skipping spans and unknown record types.
///
/// # Errors
///
/// Returns a diagnostic (with its 1-based line number) when a non-empty
/// line is not valid JSON.
pub fn parse_events(text: &str) -> Result<(Vec<ProgressRecord>, Vec<AnomalyRecord>), DoctorError> {
    let mut progress = Vec::new();
    let mut anomalies = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let doc = JsonValue::parse(line)
            .map_err(|e| DoctorError(format!("line {}: {}", lineno + 1, e.message)))?;
        match doc.get("type").and_then(JsonValue::as_str) {
            Some("progress") => progress.push(ProgressRecord {
                t_us: u64_field(&doc, "t_us"),
                run_id: str_field(&doc, "run_id"),
                seq: u64_field(&doc, "seq"),
                run: str_field(&doc, "run"),
                metric: str_field(&doc, "metric"),
                worker: u64_field(&doc, "worker") as usize,
                config: doc.get("config").and_then(JsonValue::as_u64).map(|c| c as usize),
                n: u64_field(&doc, "n"),
                mean: f64_field(&doc, "mean"),
                half_width: f64_field(&doc, "half_width"),
                rel_half_width: f64_field(&doc, "rel_half_width"),
                target_rel_err: f64_field(&doc, "target_rel_err"),
                eligible: bool_field(&doc, "eligible"),
                rel_half_width_95: f64_field(&doc, "rel_half_width_95"),
                eligible_95: bool_field(&doc, "eligible_95"),
                shard_points: u64_field(&doc, "shard_points"),
                shard_busy_ns: u64_field(&doc, "shard_busy_ns"),
                overshoot: doc.get("overshoot").and_then(JsonValue::as_u64),
            }),
            Some("anomaly") => anomalies.push(AnomalyRecord {
                t_us: u64_field(&doc, "t_us"),
                run_id: str_field(&doc, "run_id"),
                seq: u64_field(&doc, "seq"),
                run: str_field(&doc, "run"),
                worker: u64_field(&doc, "worker") as usize,
                point: u64_field(&doc, "point"),
                detail_start: u64_field(&doc, "detail_start"),
                measure_start: u64_field(&doc, "measure_start"),
                kinds: doc
                    .get("kinds")
                    .and_then(JsonValue::as_arr)
                    .map(|a| a.iter().filter_map(JsonValue::as_str).map(str::to_owned).collect())
                    .unwrap_or_default(),
                cpi: f64_field(&doc, "cpi"),
                mean: f64_field(&doc, "mean"),
                std_dev: f64_field(&doc, "std_dev"),
                sigmas: f64_field(&doc, "sigmas"),
                decode_ns: u64_field(&doc, "decode_ns"),
                simulate_ns: u64_field(&doc, "simulate_ns"),
            }),
            _ => {}
        }
    }
    Ok((progress, anomalies))
}
