//! `doctor trend`: per-benchmark/per-machine time series over the run
//! registry — the perf trajectory a single run's artifacts can't show.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use spectral_registry::RunRecord;
use spectral_telemetry::{json_number as number, json_quote as quote};

use crate::report::sparkline;

/// One run's contribution to a trend series.
#[derive(Debug, Clone, PartialEq)]
pub struct TrendPoint {
    /// Append-time wall clock (the x-axis), ms since the Unix epoch.
    pub unix_ms: u64,
    /// The run's collision-resistant identifier.
    pub run_id: String,
    /// Code-version label the run was recorded under.
    pub code_version: String,
    /// Throughput, points per second of run-phase wall-clock.
    pub run_rate: Option<f64>,
    /// Points the primary series needed to first become eligible to
    /// stop (from the distilled convergence summary; falls back to the
    /// processed-point count for runs without one).
    pub points_to_convergence: Option<u64>,
    /// Final estimate CI half-width.
    pub ci_half_width: Option<f64>,
    /// Whether the run reached its confidence target.
    pub converged: Option<bool>,
}

/// The trajectory of one `(binary, benchmark, machine, threads)` tuple
/// across registry records, in append order.
#[derive(Debug, Clone, PartialEq)]
pub struct TrendSeries {
    /// Emitting binary.
    pub binary: String,
    /// Benchmark / workload identifier.
    pub benchmark: String,
    /// Machine configuration label.
    pub machine: String,
    /// Worker thread count.
    pub threads: usize,
    /// Record kind (`run` / `bench`).
    pub kind: String,
    /// Per-run samples, sorted by wall-clock (append order breaks ties).
    pub points: Vec<TrendPoint>,
}

fn trend_point(r: &RunRecord) -> TrendPoint {
    // The primary series is the first convergence summary (single-config
    // runs have exactly one; sweeps put the baseline first).
    let primary = r.convergence.first();
    TrendPoint {
        unix_ms: r.unix_ms,
        run_id: r.run_id.clone(),
        code_version: r.code_version.clone(),
        run_rate: r.run_rate,
        points_to_convergence: primary
            .and_then(|s| s.first_eligible_n)
            .or_else(|| primary.map(|s| s.n))
            .or(r.points_processed),
        ci_half_width: r.estimate.as_ref().map(|e| e.half_width),
        converged: r.estimate.as_ref().map(|e| e.reached_target),
    }
}

/// Group registry records into per-`(kind, binary, benchmark, machine,
/// threads)` trend series. Records stay in append order within a series
/// (then stable-sorted by wall clock, so backfilled registries still
/// render chronologically).
pub fn trend(records: &[RunRecord]) -> Vec<TrendSeries> {
    type Key = (String, String, String, String, usize);
    let mut groups: BTreeMap<Key, Vec<TrendPoint>> = BTreeMap::new();
    for r in records {
        groups
            .entry((
                r.kind.clone(),
                r.binary.clone(),
                r.benchmark.clone(),
                r.machine.clone(),
                r.threads,
            ))
            .or_default()
            .push(trend_point(r));
    }
    groups
        .into_iter()
        .map(|((kind, binary, benchmark, machine, threads), mut points)| {
            points.sort_by_key(|p| p.unix_ms);
            TrendSeries { binary, benchmark, machine, threads, kind, points }
        })
        .collect()
}

fn metric_line(out: &mut String, label: &str, values: &[Option<f64>], unit: &str) {
    let present: Vec<f64> = values.iter().filter_map(|v| *v).collect();
    if present.is_empty() {
        return;
    }
    let (first, last) = (present[0], present[present.len() - 1]);
    let change = if first != 0.0 {
        format!(" ({:+.1}%)", (last - first) / first * 100.0)
    } else {
        String::new()
    };
    let _ = writeln!(
        out,
        "  {label:<22} {}  {first:.4} → {last:.4}{unit}{change}",
        sparkline(&present)
    );
}

/// Render trend series as a text report with sparkline trajectories.
pub fn render_trend_text(series: &[TrendSeries]) -> String {
    let mut out = String::new();
    if series.is_empty() {
        let _ = writeln!(out, "trend: no matching records in the registry");
        return out;
    }
    for s in series {
        let _ = writeln!(
            out,
            "trend: {} {} / {} on {} with {} threads — {} run{}",
            s.kind,
            s.binary,
            s.benchmark,
            s.machine,
            s.threads,
            s.points.len(),
            if s.points.len() == 1 { "" } else { "s" }
        );
        let rates: Vec<Option<f64>> = s.points.iter().map(|p| p.run_rate).collect();
        let to_conv: Vec<Option<f64>> =
            s.points.iter().map(|p| p.points_to_convergence.map(|n| n as f64)).collect();
        let hws: Vec<Option<f64>> = s.points.iter().map(|p| p.ci_half_width).collect();
        metric_line(&mut out, "run rate (pts/s)", &rates, "");
        metric_line(&mut out, "points to converge", &to_conv, "");
        metric_line(&mut out, "CI half-width", &hws, "");
        let unconverged = s.points.iter().filter(|p| p.converged == Some(false)).count();
        if unconverged > 0 {
            let _ = writeln!(out, "  WARNING: {unconverged} run(s) missed the target");
        }
        out.push('\n');
    }
    out
}

/// Render trend series as machine-readable JSON.
pub fn render_trend_json(series: &[TrendSeries]) -> String {
    let mut out = String::from("{\"version\":1,\"series\":[");
    for (i, s) in series.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"kind\":{},\"binary\":{},\"benchmark\":{},\"machine\":{},\"threads\":{},\
             \"points\":[",
            quote(&s.kind),
            quote(&s.binary),
            quote(&s.benchmark),
            quote(&s.machine),
            s.threads
        );
        for (j, p) in s.points.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let opt_num = |v: Option<f64>| v.map_or("null".to_owned(), number);
            let _ = write!(
                out,
                "{{\"unix_ms\":{},\"run_id\":{},\"code_version\":{},\"run_rate\":{},\
                 \"points_to_convergence\":{},\"ci_half_width\":{},\"converged\":{}}}",
                p.unix_ms,
                quote(&p.run_id),
                quote(&p.code_version),
                opt_num(p.run_rate),
                p.points_to_convergence.map_or("null".to_owned(), |n| n.to_string()),
                opt_num(p.ci_half_width),
                p.converged.map_or("null".to_owned(), |b| b.to_string()),
            );
        }
        out.push_str("]}");
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use spectral_telemetry::EstimateSummary;

    fn record(binary: &str, unix_ms: u64, rate: f64, hw: f64) -> RunRecord {
        let mut r = RunRecord::new("run", binary, "gcc-like", "8-wide", 4);
        r.run_id = format!("aaaa000000000001-{unix_ms}");
        r.unix_ms = unix_ms;
        r.points_processed = Some(500);
        r.run_rate = Some(rate);
        r.estimate = Some(EstimateSummary {
            mean: 1.4,
            half_width: hw,
            relative_half_width: hw / 1.4,
            reached_target: true,
        });
        r
    }

    #[test]
    fn records_group_and_sort_chronologically() {
        // Deliberately interleaved and out of wall-clock order.
        let records = vec![
            record("online", 2_000, 2_400.0, 0.02),
            record("matched", 1_500, 900.0, 0.01),
            record("online", 1_000, 1_200.0, 0.05),
        ];
        let series = trend(&records);
        assert_eq!(series.len(), 2);
        let online = series.iter().find(|s| s.binary == "online").expect("online series");
        assert_eq!(online.points.len(), 2);
        assert_eq!(online.points[0].unix_ms, 1_000, "sorted by wall clock");
        assert_eq!(online.points[0].run_rate, Some(1_200.0));
        assert_eq!(online.points[1].run_rate, Some(2_400.0));
        let text = render_trend_text(&series);
        assert!(text.contains("online / gcc-like"), "{text}");
        assert!(text.contains("2 runs"), "{text}");
        assert!(text.contains("run rate"), "{text}");
        assert!(text.contains("(+100.0%)"), "rate doubled: {text}");
    }

    #[test]
    fn convergence_cost_prefers_the_distilled_summary() {
        let mut r = record("online", 1_000, 1_200.0, 0.05);
        r.convergence = vec![spectral_telemetry::RunSummary {
            run_id: r.run_id.clone(),
            seq: 1,
            run: "online".into(),
            metric: "cpi".into(),
            config: None,
            n: 40,
            mean: 1.4,
            half_width: 0.05,
            rel_half_width: 0.036,
            target_rel_err: 0.05,
            eligible: true,
            first_eligible_n: Some(36),
            overshoot: 4,
            anomalies: 0,
            workers: 4,
            min_shard_points: 8,
            max_shard_points: 12,
            min_shard_busy_ns: 0,
            max_shard_busy_ns: 0,
        }];
        let series = trend(&[r]);
        assert_eq!(series[0].points[0].points_to_convergence, Some(36));
        // Without a summary, fall back to processed points.
        let bare = record("online", 1_000, 1_200.0, 0.05);
        assert_eq!(trend(&[bare])[0].points[0].points_to_convergence, Some(500));
    }

    #[test]
    fn json_rendering_is_parseable() {
        use spectral_telemetry::JsonValue;
        let series = trend(&[
            record("online", 1_000, 1_200.0, 0.05),
            record("online", 2_000, 2_400.0, 0.02),
        ]);
        let doc = JsonValue::parse(&render_trend_json(&series)).expect("valid JSON");
        let arr = doc.get("series").and_then(JsonValue::as_arr).expect("series array");
        assert_eq!(arr.len(), 1);
        let points = arr[0].get("points").and_then(JsonValue::as_arr).expect("points array");
        assert_eq!(points.len(), 2);
        assert_eq!(points[1].get("run_rate").and_then(JsonValue::as_f64), Some(2_400.0));
    }
}
