//! `spectral-doctor` — diagnose a run from its telemetry artifacts.
//!
//! ```text
//! spectral-doctor --events run.events.jsonl [--manifest run.json]
//!                 [--trace run.trace.jsonl]
//!                 [--baseline-events old.events.jsonl]
//!                 [--baseline-manifest old.json]
//!                 [--json report.json] [--perfetto trace.chrome.json]
//!                 [--top N] [--check] [--max-imbalance PCT]
//! ```
//!
//! Prints the text diagnosis to stdout. `--json` additionally writes
//! the machine-readable report; `--perfetto` converts the trace and
//! event streams into a Chrome `trace_event` document for
//! <https://ui.perfetto.dev>. `--check` exits non-zero when the run
//! exhausted its library without reaching the confidence target (the
//! CI gate); it requires `--manifest`. `--max-imbalance PCT` extends
//! the gate: it also fails when any series' worker busy-time spread
//! (falling back to the point-count spread for streams without busy
//! accounting) exceeds `PCT` percent.

use std::path::PathBuf;
use std::process::ExitCode;

use spectral_doctor::{
    analyze, diff_runs, exhausted_without_convergence, render_json, render_text, DoctorError,
    RunArtifacts,
};

#[derive(Debug, Default)]
struct Cli {
    events: Option<PathBuf>,
    manifest: Option<PathBuf>,
    trace: Option<PathBuf>,
    baseline_events: Option<PathBuf>,
    baseline_manifest: Option<PathBuf>,
    json: Option<PathBuf>,
    perfetto: Option<PathBuf>,
    top: usize,
    check: bool,
    max_imbalance: Option<f64>,
}

const USAGE: &str = "spectral-doctor --events PATH [--manifest PATH] [--trace PATH] \
                     [--baseline-events PATH] [--baseline-manifest PATH] [--json PATH] \
                     [--perfetto PATH] [--top N] [--check] [--max-imbalance PCT]";

fn parse_cli(argv: &[String]) -> Result<Cli, DoctorError> {
    let mut cli = Cli { top: 3, ..Cli::default() };
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        let mut value = |what: &str| -> Result<&String, DoctorError> {
            it.next().ok_or_else(|| DoctorError::msg(format!("{what} needs a value")))
        };
        match a.as_str() {
            "--events" => cli.events = Some(PathBuf::from(value("--events")?)),
            "--manifest" => cli.manifest = Some(PathBuf::from(value("--manifest")?)),
            "--trace" => cli.trace = Some(PathBuf::from(value("--trace")?)),
            "--baseline-events" => {
                cli.baseline_events = Some(PathBuf::from(value("--baseline-events")?));
            }
            "--baseline-manifest" => {
                cli.baseline_manifest = Some(PathBuf::from(value("--baseline-manifest")?));
            }
            "--json" => cli.json = Some(PathBuf::from(value("--json")?)),
            "--perfetto" => cli.perfetto = Some(PathBuf::from(value("--perfetto")?)),
            "--top" => {
                let v = value("--top")?;
                cli.top = v.parse().map_err(|_| {
                    DoctorError::msg(format!("--top: expected an integer, got {v}"))
                })?;
            }
            "--check" => cli.check = true,
            "--max-imbalance" => {
                let v = value("--max-imbalance")?;
                let pct: f64 = v.parse().map_err(|_| {
                    DoctorError::msg(format!("--max-imbalance: expected a percentage, got {v}"))
                })?;
                if !(0.0..=100.0).contains(&pct) {
                    return Err(DoctorError::msg(format!(
                        "--max-imbalance: percentage must be in 0..=100, got {v}"
                    )));
                }
                cli.max_imbalance = Some(pct);
            }
            "--help" | "-h" => return Err(DoctorError::msg(format!("usage: {USAGE}"))),
            other => {
                return Err(DoctorError::msg(format!("unknown argument {other}\nusage: {USAGE}")))
            }
        }
    }
    if cli.events.is_none() {
        return Err(DoctorError::msg(format!("--events is required\nusage: {USAGE}")));
    }
    if cli.check && cli.manifest.is_none() {
        return Err(DoctorError::msg("--check needs --manifest (the convergence verdict)"));
    }
    if cli.max_imbalance.is_some() && !cli.check {
        return Err(DoctorError::msg("--max-imbalance only applies with --check"));
    }
    Ok(cli)
}

fn write_file(path: &PathBuf, text: &str) -> Result<(), DoctorError> {
    std::fs::write(path, text)
        .map_err(|e| DoctorError::msg(format!("cannot write {}: {e}", path.display())))
}

fn run(cli: &Cli) -> Result<Vec<String>, DoctorError> {
    let events = cli.events.as_ref().expect("validated in parse_cli");
    let artifacts = RunArtifacts::load(cli.manifest.as_deref(), events)?;
    let diagnosis = analyze(&artifacts);

    let diff = match &cli.baseline_events {
        Some(base_events) => {
            let baseline = RunArtifacts::load(cli.baseline_manifest.as_deref(), base_events)?;
            Some(diff_runs(&artifacts, &baseline)?)
        }
        None => None,
    };

    print!("{}", render_text(&diagnosis, artifacts.manifest.as_ref(), diff.as_ref(), cli.top));

    if let Some(path) = &cli.json {
        write_file(
            path,
            &render_json(&diagnosis, artifacts.manifest.as_ref(), diff.as_ref(), cli.top),
        )?;
    }
    if let Some(path) = &cli.perfetto {
        // One Chrome trace over the span trace (if given) and the event
        // stream: spans, convergence counters, anomaly instants.
        let mut jsonl = String::new();
        if let Some(trace) = &cli.trace {
            jsonl = std::fs::read_to_string(trace)
                .map_err(|e| DoctorError::msg(format!("cannot read {}: {e}", trace.display())))?;
        }
        jsonl.push_str(
            &std::fs::read_to_string(events)
                .map_err(|e| DoctorError::msg(format!("cannot read {}: {e}", events.display())))?,
        );
        let chrome = spectral_telemetry::chrome_trace(&jsonl)
            .map_err(|e| DoctorError::msg(format!("cannot convert trace: {}", e.message)))?;
        write_file(path, &chrome)?;
    }

    let mut failures: Vec<String> = Vec::new();
    if cli.check {
        if artifacts.manifest.as_ref().is_some_and(exhausted_without_convergence) {
            failures.push("library exhausted without convergence".to_owned());
        }
        if let Some(pct) = cli.max_imbalance {
            // Busy time is the scheduler-quality signal; fall back to
            // point counts for streams without busy accounting.
            for s in &diagnosis.series {
                let (spread, kind) = if s.shards.busy.len() > 1 {
                    (s.shards.busy_imbalance, "busy-time")
                } else {
                    (s.shards.imbalance, "point-count")
                };
                if spread * 100.0 > pct {
                    failures.push(format!(
                        "{} {} worker {kind} imbalance {:.1}% exceeds --max-imbalance {pct}%",
                        s.run,
                        s.metric,
                        spread * 100.0
                    ));
                }
            }
        }
    }
    Ok(failures)
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match parse_cli(&argv).and_then(|cli| run(&cli)) {
        Ok(failures) if failures.is_empty() => ExitCode::SUCCESS,
        Ok(failures) => {
            for f in &failures {
                eprintln!("spectral-doctor: check failed: {f}");
            }
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("spectral-doctor: error: {e}");
            ExitCode::FAILURE
        }
    }
}
