//! `spectral-doctor` — sampling-health analysis and cross-run
//! regression tracking.
//!
//! ```text
//! spectral-doctor analyze --events run.events.jsonl [--manifest run.json]
//!                         [--trace run.trace.jsonl]
//!                         [--baseline-events old.events.jsonl]
//!                         [--baseline-manifest old.json]
//!                         [--json report.json] [--perfetto trace.chrome.json]
//!                         [--top N] [--check] [--max-imbalance PCT]
//! spectral-doctor trend   --registry DIR [--json PATH] [--binary NAME]
//!                         [--benchmark NAME] [--machine NAME] [--last N]
//! spectral-doctor gate    --registry DIR [--baseline LABEL] [--candidate LABEL]
//!                         [--max-regress PCT] [--json PATH]
//! spectral-doctor watch   (--events PATH | --registry DIR) [--prom FILE]
//!                         [--interval MS] [--once | --frames N]
//! spectral-doctor profile --profile PATH [--json PATH] [--perfetto PATH]
//!                         [--record-cost-ns N]
//! ```
//!
//! `analyze` prints the per-run text diagnosis to stdout (`--json` /
//! `--perfetto` additionally write reports; `--check` exits non-zero on
//! a run that exhausted its library without converging). Invoking the
//! binary with bare flags and no subcommand is the pre-subcommand
//! `analyze` spelling and keeps working.
//!
//! `trend` renders per-benchmark/per-machine sparkline time series over
//! a run registry; `gate` compares a baseline run-set against a
//! candidate run-set and exits 0 on pass, 2 on regression, 1 on error —
//! the CI contract; `watch` tails a growing events file or registry
//! directory, redrawing an in-place dashboard each `--interval` and
//! optionally writing a Prometheus-style text exposition to `--prom`;
//! for all three, `--registry` falls back to the `SPECTRAL_REGISTRY`
//! environment variable when the flag is omitted — the same contract
//! the experiment binaries use for appending. `--help` / `-h` prints
//! the usage summary and exits 0 for every subcommand;
//! `profile` attributes each worker's wall-clock to scheduler/decode/
//! simulate/merge phases from a `--profile` stream, reporting
//! contention, stragglers, a critical-path estimate, and the profiler's
//! own overhead (priced at a clock-probe-measured per-record cost, or
//! `--record-cost-ns` for reproducible output).

use std::path::PathBuf;
use std::process::ExitCode;

use spectral_doctor::{
    analyze, analyze_profile, diff_runs, exhausted_without_convergence, gate,
    measure_record_cost_ns, parse_profile, render_gate_json, render_gate_text, render_json,
    render_profile_json, render_profile_text, render_text, render_trend_json, render_trend_text,
    trend, DoctorError, GateConfig, RunArtifacts, WatchFrame,
};

#[derive(Debug, Default)]
struct AnalyzeCli {
    events: Option<PathBuf>,
    manifest: Option<PathBuf>,
    trace: Option<PathBuf>,
    baseline_events: Option<PathBuf>,
    baseline_manifest: Option<PathBuf>,
    json: Option<PathBuf>,
    perfetto: Option<PathBuf>,
    top: usize,
    check: bool,
    max_imbalance: Option<f64>,
}

const USAGE: &str = "spectral-doctor [analyze] --events PATH [--manifest PATH] [--trace PATH] \
                     [--baseline-events PATH] [--baseline-manifest PATH] [--json PATH] \
                     [--perfetto PATH] [--top N] [--check] [--max-imbalance PCT]\n\
                     spectral-doctor trend --registry DIR [--json PATH] [--binary NAME] \
                     [--benchmark NAME] [--machine NAME] [--last N]\n\
                     spectral-doctor gate --registry DIR [--baseline LABEL] \
                     [--candidate LABEL] [--max-regress PCT] [--json PATH]\n\
                     spectral-doctor watch (--events PATH | --registry DIR) [--prom FILE] \
                     [--interval MS] [--once | --frames N]\n\
                     spectral-doctor profile --profile PATH [--json PATH] [--perfetto PATH] \
                     [--record-cost-ns N]";

/// A flag-value iterator shared by every subcommand parser.
struct Args<'a> {
    it: std::slice::Iter<'a, String>,
}

impl<'a> Args<'a> {
    fn new(argv: &'a [String]) -> Args<'a> {
        Args { it: argv.iter() }
    }

    fn next(&mut self) -> Option<&'a String> {
        self.it.next()
    }

    fn value(&mut self, flag: &str) -> Result<&'a String, DoctorError> {
        self.it.next().ok_or_else(|| DoctorError::msg(format!("{flag} needs a value")))
    }

    fn parsed<T: std::str::FromStr>(&mut self, flag: &str, what: &str) -> Result<T, DoctorError> {
        let v = self.value(flag)?;
        v.parse().map_err(|_| DoctorError::msg(format!("{flag}: expected {what}, got {v}")))
    }
}

fn parse_analyze(argv: &[String]) -> Result<AnalyzeCli, DoctorError> {
    let mut cli = AnalyzeCli { top: 3, ..AnalyzeCli::default() };
    let mut args = Args::new(argv);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--events" => cli.events = Some(PathBuf::from(args.value("--events")?)),
            "--manifest" => cli.manifest = Some(PathBuf::from(args.value("--manifest")?)),
            "--trace" => cli.trace = Some(PathBuf::from(args.value("--trace")?)),
            "--baseline-events" => {
                cli.baseline_events = Some(PathBuf::from(args.value("--baseline-events")?));
            }
            "--baseline-manifest" => {
                cli.baseline_manifest = Some(PathBuf::from(args.value("--baseline-manifest")?));
            }
            "--json" => cli.json = Some(PathBuf::from(args.value("--json")?)),
            "--perfetto" => cli.perfetto = Some(PathBuf::from(args.value("--perfetto")?)),
            "--top" => cli.top = args.parsed("--top", "an integer")?,
            "--check" => cli.check = true,
            "--max-imbalance" => {
                let pct: f64 = args.parsed("--max-imbalance", "a percentage")?;
                if !(0.0..=100.0).contains(&pct) {
                    return Err(DoctorError::msg(format!(
                        "--max-imbalance: percentage must be in 0..=100, got {pct}"
                    )));
                }
                cli.max_imbalance = Some(pct);
            }
            "--help" | "-h" => return Err(DoctorError::msg(format!("usage: {USAGE}"))),
            other => {
                return Err(DoctorError::msg(format!("unknown argument {other}\nusage: {USAGE}")))
            }
        }
    }
    if cli.events.is_none() {
        return Err(DoctorError::msg(format!("--events is required\nusage: {USAGE}")));
    }
    if cli.check && cli.manifest.is_none() {
        return Err(DoctorError::msg("--check needs --manifest (the convergence verdict)"));
    }
    if cli.max_imbalance.is_some() && !cli.check {
        return Err(DoctorError::msg("--max-imbalance only applies with --check"));
    }
    Ok(cli)
}

fn write_file(path: &PathBuf, text: &str) -> Result<(), DoctorError> {
    std::fs::write(path, text)
        .map_err(|e| DoctorError::msg(format!("cannot write {}: {e}", path.display())))
}

fn run_analyze(cli: &AnalyzeCli) -> Result<Vec<String>, DoctorError> {
    let events = cli.events.as_ref().expect("validated in parse_analyze");
    let artifacts = RunArtifacts::load(cli.manifest.as_deref(), events)?;
    let diagnosis = analyze(&artifacts);

    let diff = match &cli.baseline_events {
        Some(base_events) => {
            let baseline = RunArtifacts::load(cli.baseline_manifest.as_deref(), base_events)?;
            Some(diff_runs(&artifacts, &baseline)?)
        }
        None => None,
    };

    print!("{}", render_text(&diagnosis, artifacts.manifest.as_ref(), diff.as_ref(), cli.top));

    if let Some(path) = &cli.json {
        write_file(
            path,
            &render_json(&diagnosis, artifacts.manifest.as_ref(), diff.as_ref(), cli.top),
        )?;
    }
    if let Some(path) = &cli.perfetto {
        // One Chrome trace over the span trace (if given) and the event
        // stream: spans, convergence counters, anomaly instants.
        let mut jsonl = String::new();
        if let Some(trace) = &cli.trace {
            jsonl = std::fs::read_to_string(trace)
                .map_err(|e| DoctorError::msg(format!("cannot read {}: {e}", trace.display())))?;
        }
        jsonl.push_str(
            &std::fs::read_to_string(events)
                .map_err(|e| DoctorError::msg(format!("cannot read {}: {e}", events.display())))?,
        );
        let chrome = spectral_telemetry::chrome_trace(&jsonl)
            .map_err(|e| DoctorError::msg(format!("cannot convert trace: {}", e.message)))?;
        write_file(path, &chrome)?;
    }

    let mut failures: Vec<String> = Vec::new();
    if cli.check {
        if artifacts.manifest.as_ref().is_some_and(exhausted_without_convergence) {
            failures.push("library exhausted without convergence".to_owned());
        }
        if let Some(pct) = cli.max_imbalance {
            // Busy time is the scheduler-quality signal; fall back to
            // point counts for streams without busy accounting.
            for s in &diagnosis.series {
                let (spread, kind) = if s.shards.busy.len() > 1 {
                    (s.shards.busy_imbalance, "busy-time")
                } else {
                    (s.shards.imbalance, "point-count")
                };
                if spread * 100.0 > pct {
                    failures.push(format!(
                        "{} {} worker {kind} imbalance {:.1}% exceeds --max-imbalance {pct}%",
                        s.run,
                        s.metric,
                        spread * 100.0
                    ));
                }
            }
        }
    }
    Ok(failures)
}

fn analyze_main(argv: &[String]) -> ExitCode {
    match parse_analyze(argv).and_then(|cli| run_analyze(&cli)) {
        Ok(failures) if failures.is_empty() => ExitCode::SUCCESS,
        Ok(failures) => {
            for f in &failures {
                eprintln!("spectral-doctor: check failed: {f}");
            }
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("spectral-doctor: error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// The effective registry directory: `--registry` when given, else the
/// `SPECTRAL_REGISTRY` environment variable (when non-empty) — the same
/// fallback the experiment binaries use when appending.
fn registry_dir(cli: Option<&PathBuf>) -> Option<PathBuf> {
    cli.cloned().or_else(|| {
        std::env::var_os(spectral_registry::REGISTRY_ENV)
            .filter(|v| !v.is_empty())
            .map(PathBuf::from)
    })
}

fn load_registry(cli: Option<&PathBuf>) -> Result<Vec<spectral_registry::RunRecord>, DoctorError> {
    let dir = registry_dir(cli).ok_or_else(|| {
        DoctorError::msg(format!("--registry is required (or set SPECTRAL_REGISTRY)\n{USAGE}"))
    })?;
    spectral_registry::load_records(&dir)
        .map_err(|e| DoctorError::msg(format!("{}: {e}", dir.display())))
}

fn trend_main(argv: &[String]) -> ExitCode {
    let run = || -> Result<(), DoctorError> {
        let mut registry = None;
        let mut json = None;
        let (mut binary, mut benchmark, mut machine) = (None, None, None);
        let mut last: Option<usize> = None;
        let mut args = Args::new(argv);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--registry" => registry = Some(PathBuf::from(args.value("--registry")?)),
                "--json" => json = Some(PathBuf::from(args.value("--json")?)),
                "--binary" => binary = Some(args.value("--binary")?.clone()),
                "--benchmark" => benchmark = Some(args.value("--benchmark")?.clone()),
                "--machine" => machine = Some(args.value("--machine")?.clone()),
                "--last" => last = Some(args.parsed("--last", "an integer")?),
                other => {
                    return Err(DoctorError::msg(format!("unknown argument {other}\n{USAGE}")))
                }
            }
        }
        let mut records = load_registry(registry.as_ref())?;
        records.retain(|r| {
            binary.as_ref().is_none_or(|b| &r.binary == b)
                && benchmark.as_ref().is_none_or(|b| &r.benchmark == b)
                && machine.as_ref().is_none_or(|m| &r.machine == m)
        });
        let mut series = trend(&records);
        if let Some(n) = last {
            for s in &mut series {
                let drop = s.points.len().saturating_sub(n);
                s.points.drain(..drop);
            }
        }
        print!("{}", render_trend_text(&series));
        if let Some(path) = &json {
            write_file(path, &render_trend_json(&series))?;
        }
        Ok(())
    };
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("spectral-doctor trend: error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn gate_main(argv: &[String]) -> ExitCode {
    let run = || -> Result<bool, DoctorError> {
        let mut registry = None;
        let mut json = None;
        let mut cfg = GateConfig::default();
        let mut args = Args::new(argv);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--registry" => registry = Some(PathBuf::from(args.value("--registry")?)),
                "--baseline" => cfg.baseline = args.value("--baseline")?.clone(),
                "--candidate" => cfg.candidate = args.value("--candidate")?.clone(),
                "--max-regress" => {
                    cfg.max_regress = args.parsed("--max-regress", "a percentage")?;
                    if !(0.0..=100.0).contains(&cfg.max_regress) {
                        return Err(DoctorError::msg(format!(
                            "--max-regress: percentage must be in 0..=100, got {}",
                            cfg.max_regress
                        )));
                    }
                }
                "--json" => json = Some(PathBuf::from(args.value("--json")?)),
                other => {
                    return Err(DoctorError::msg(format!("unknown argument {other}\n{USAGE}")))
                }
            }
        }
        let records = load_registry(registry.as_ref())?;
        let verdict = gate(&records, &cfg)?;
        print!("{}", render_gate_text(&verdict, &cfg));
        if let Some(path) = &json {
            write_file(path, &render_gate_json(&verdict, &cfg))?;
        }
        Ok(verdict.pass())
    };
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        // Exit 2 distinguishes "a regression was detected" from
        // "the gate itself failed to run" (exit 1) for CI pipelines.
        Ok(false) => ExitCode::from(2),
        Err(e) => {
            eprintln!("spectral-doctor gate: error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn watch_main(argv: &[String]) -> ExitCode {
    let run = || -> Result<(), DoctorError> {
        let mut events: Option<PathBuf> = None;
        let mut registry: Option<PathBuf> = None;
        let mut prom: Option<PathBuf> = None;
        let mut interval_ms: u64 = 1_000;
        let mut frames: Option<u64> = None;
        let mut args = Args::new(argv);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--events" => events = Some(PathBuf::from(args.value("--events")?)),
                "--registry" => registry = Some(PathBuf::from(args.value("--registry")?)),
                "--prom" => prom = Some(PathBuf::from(args.value("--prom")?)),
                "--interval" => interval_ms = args.parsed("--interval", "milliseconds")?,
                "--once" => frames = Some(1),
                "--frames" => frames = Some(args.parsed("--frames", "an integer")?),
                other => {
                    return Err(DoctorError::msg(format!("unknown argument {other}\n{USAGE}")))
                }
            }
        }
        // With neither source flag given, fall back to the
        // SPECTRAL_REGISTRY environment variable like trend/gate do.
        let registry =
            if events.is_none() && registry.is_none() { registry_dir(None) } else { registry };
        if events.is_some() == registry.is_some() {
            return Err(DoctorError::msg(
                "watch needs exactly one of --events PATH or --registry DIR \
                 (or the SPECTRAL_REGISTRY environment variable)",
            ));
        }
        let total = frames.unwrap_or(u64::MAX);
        let in_place = total > 1;
        // Incremental tail: each frame reads only appended bytes, and a
        // truncated or rotated file re-seeks instead of erroring — a
        // sink that hasn't produced the file yet is an empty frame,
        // because watch outlives writers.
        let mut tail = events.as_ref().map(spectral_doctor::EventsTail::new);
        for i in 0..total {
            let frame = match (&mut tail, &registry) {
                (Some(tail), None) => WatchFrame::from_events_text(tail.poll()),
                (None, Some(dir)) => {
                    let records = spectral_registry::load_records(dir)
                        .map_err(|e| DoctorError::msg(format!("{}: {e}", dir.display())))?;
                    WatchFrame::from_records(records)
                }
                _ => unreachable!("validated above"),
            };
            if in_place {
                // Clear + home, then redraw over the previous frame.
                print!("\x1b[2J\x1b[H");
            }
            print!("{}", frame.dashboard());
            if let Some(path) = &prom {
                write_file(path, &frame.prometheus())?;
            }
            if i + 1 < total {
                std::thread::sleep(std::time::Duration::from_millis(interval_ms));
            }
        }
        Ok(())
    };
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("spectral-doctor watch: error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn profile_main(argv: &[String]) -> ExitCode {
    let run = || -> Result<(), DoctorError> {
        let mut profile: Option<PathBuf> = None;
        let mut json: Option<PathBuf> = None;
        let mut perfetto: Option<PathBuf> = None;
        let mut record_cost_ns: Option<u64> = None;
        let mut args = Args::new(argv);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--profile" => profile = Some(PathBuf::from(args.value("--profile")?)),
                "--json" => json = Some(PathBuf::from(args.value("--json")?)),
                "--perfetto" => perfetto = Some(PathBuf::from(args.value("--perfetto")?)),
                "--record-cost-ns" => {
                    record_cost_ns = Some(args.parsed("--record-cost-ns", "nanoseconds")?);
                }
                other => {
                    return Err(DoctorError::msg(format!("unknown argument {other}\n{USAGE}")))
                }
            }
        }
        let path =
            profile.ok_or_else(|| DoctorError::msg(format!("--profile is required\n{USAGE}")))?;
        let text = std::fs::read_to_string(&path)
            .map_err(|e| DoctorError::msg(format!("cannot read {}: {e}", path.display())))?;
        let runs = parse_profile(&text)
            .map_err(|e| DoctorError::msg(format!("{}: {e}", path.display())))?;
        if runs.is_empty() {
            return Err(DoctorError::msg(format!(
                "{}: no profile records (was the run started with --profile?)",
                path.display()
            )));
        }
        let cost = record_cost_ns.unwrap_or_else(measure_record_cost_ns);
        let reports: Vec<_> = runs.iter().map(|r| analyze_profile(r, cost)).collect();
        for (run, report) in runs.iter().zip(&reports) {
            print!("{}", render_profile_text(run, report));
        }
        if let Some(path) = &json {
            write_file(path, &render_profile_json(&reports))?;
        }
        if let Some(out) = &perfetto {
            let chrome = spectral_telemetry::chrome_trace(&text)
                .map_err(|e| DoctorError::msg(format!("cannot convert trace: {}", e.message)))?;
            write_file(out, &chrome)?;
        }
        Ok(())
    };
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("spectral-doctor profile: error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    // `--help` / `-h` works uniformly on every subcommand (and bare):
    // print the usage summary to stdout and exit 0.
    if argv.iter().any(|a| a == "--help" || a == "-h") {
        println!("usage: {USAGE}");
        return ExitCode::SUCCESS;
    }
    match argv.first().map(String::as_str) {
        Some("analyze") => analyze_main(&argv[1..]),
        Some("trend") => trend_main(&argv[1..]),
        Some("gate") => gate_main(&argv[1..]),
        Some("watch") => watch_main(&argv[1..]),
        Some("profile") => profile_main(&argv[1..]),
        // Bare flags are the pre-subcommand `analyze` spelling.
        _ => analyze_main(&argv),
    }
}
