//! Report rendering: the human-readable text diagnosis and the
//! machine-readable JSON report.

use std::fmt::Write as _;

use spectral_telemetry::{json_number as number, json_quote as quote, RunManifest};

use crate::analyze::exhausted_without_convergence;
use crate::{AnomalyRecord, Diagnosis, RunDiff, SeriesDiagnosis};

const SPARK_LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Render `values` as a unicode sparkline scaled to the series maximum
/// (empty input renders empty; non-finite values render at the floor).
pub fn sparkline(values: &[f64]) -> String {
    let max = values.iter().copied().filter(|v| v.is_finite()).fold(0.0_f64, f64::max);
    values
        .iter()
        .map(|&v| {
            if !(v.is_finite() && v > 0.0 && max > 0.0) {
                return SPARK_LEVELS[0];
            }
            let level = (v / max * (SPARK_LEVELS.len() - 1) as f64).round() as usize;
            SPARK_LEVELS[level.min(SPARK_LEVELS.len() - 1)]
        })
        .collect()
}

fn series_label(s: &SeriesDiagnosis) -> String {
    let mut label = match s.config {
        Some(c) => format!("{} {} [config {c}]", s.run, s.metric),
        None => format!("{} {}", s.run, s.metric),
    };
    if s.seq > 0 {
        label.push_str(&format!(", run #{}", s.seq));
    }
    label
}

fn write_series_text(out: &mut String, s: &SeriesDiagnosis) {
    let _ = writeln!(out, "convergence ({}):", series_label(s));
    let rels: Vec<f64> = s.trajectory.iter().map(|t| t.rel_half_width).collect();
    match (rels.first(), rels.last()) {
        (Some(first), Some(last)) => {
            let _ = writeln!(
                out,
                "  rel half-width  {}  {:.4} → {:.4} (target {:.4})",
                sparkline(&rels),
                first,
                last,
                s.target_rel_err
            );
        }
        _ => {
            let _ = writeln!(out, "  no progress records");
            return;
        }
    }
    match s.first_eligible {
        Some(i) => {
            let _ = writeln!(
                out,
                "  first eligible at n={} (stride {} of {}){}",
                s.trajectory[i].n,
                i + 1,
                s.trajectory.len(),
                match s.first_eligible_95 {
                    Some(j) => format!("; ±ε@95% at n={}", s.trajectory[j].n),
                    None => String::new(),
                }
            );
            let last_n = s.last().map_or(0, |t| t.n);
            let _ = writeln!(
                out,
                "  wasted points past convergence: {} of {} ({:.1}%{})",
                s.wasted_points,
                last_n,
                s.wasted_fraction() * 100.0,
                if s.wasted_exact { ", exact" } else { ", trajectory-granular" }
            );
        }
        None => {
            let _ = writeln!(out, "  never eligible: did NOT converge to the target");
        }
    }
    if s.shards.workers.len() > 1 {
        let pts: Vec<String> = s.shards.workers.iter().map(|&(_, n)| n.to_string()).collect();
        let _ = writeln!(
            out,
            "  shards: {} workers, points {} — imbalance {:.1}%",
            s.shards.workers.len(),
            pts.join("/"),
            s.shards.imbalance * 100.0
        );
        if s.shards.busy.len() > 1 {
            let busy: Vec<String> =
                s.shards.busy.iter().map(|&(_, ns)| format!("{}ms", ns / 1_000_000)).collect();
            let _ = writeln!(
                out,
                "  busy time: {} — spread {:.1}%",
                busy.join("/"),
                s.shards.busy_imbalance * 100.0
            );
        }
    }
}

fn write_anomaly_text(out: &mut String, a: &AnomalyRecord) {
    let mut detail = String::new();
    if a.sigmas > 0.0 {
        let _ = write!(detail, "cpi {:.3} ({:.1}σ from {:.3})", a.cpi, a.sigmas, a.mean);
    } else {
        let _ =
            write!(detail, "decode {}µs simulate {}µs", a.decode_ns / 1000, a.simulate_ns / 1000);
    }
    let _ = writeln!(
        out,
        "  point #{:<6} worker {}  {:<28} {}  window@{}",
        a.point,
        a.worker,
        a.kinds.join("+"),
        detail,
        a.measure_start
    );
}

/// Render the full text report.
pub fn render_text(
    diagnosis: &Diagnosis,
    manifest: Option<&RunManifest>,
    diff: Option<&RunDiff>,
    top: usize,
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "spectral-doctor — sampling-health report");
    if let Some(m) = manifest {
        let _ = writeln!(
            out,
            "run: {} / {} on machine {} with {} threads",
            m.binary, m.benchmark, m.machine, m.threads
        );
        if let Some(e) = &m.estimate {
            let _ = writeln!(
                out,
                "estimate: {:.4} ± {:.4} ({:.2}% rel), reached target: {}",
                e.mean,
                e.half_width,
                e.relative_half_width * 100.0,
                if e.reached_target { "yes" } else { "NO" }
            );
        }
        if let (Some(p), Some(l)) = (m.points_processed, m.library_points) {
            let _ = writeln!(out, "points: {p} processed of {l} in the library");
        }
        if let Some((_, ckpt)) = m.notes.iter().find(|(k, _)| k == "resumed_from") {
            let _ = writeln!(out, "lineage: resumed from checkpoint {ckpt}");
        }
        if exhausted_without_convergence(m) {
            let _ =
                writeln!(out, "WARNING: library exhausted without reaching the confidence target");
        }
    }
    out.push('\n');
    for s in &diagnosis.series {
        write_series_text(&mut out, s);
        out.push('\n');
    }
    let shown = diagnosis.top_anomalies(top);
    let _ = writeln!(
        out,
        "anomalies: {} total{}",
        diagnosis.anomalies.len(),
        if shown.is_empty() { String::new() } else { format!(", top {}:", shown.len()) }
    );
    for a in shown {
        write_anomaly_text(&mut out, a);
    }
    if let Some(d) = diff {
        let _ = writeln!(out, "\nvs baseline:");
        let _ = writeln!(
            out,
            "  mean delta {:+.4} against combined half-width {:.4} — {}",
            d.mean_delta,
            d.combined_half_width,
            if d.significant { "SIGNIFICANT" } else { "within noise" }
        );
        if let Some(p) = d.points_delta {
            let _ = writeln!(out, "  points processed: {p:+}");
        }
        if let Some(s) = d.secs_delta {
            let _ = writeln!(out, "  total phase wall-clock: {s:+.3}s");
        }
    }
    out
}

fn render_series_json(s: &SeriesDiagnosis) -> String {
    let mut out = String::from("{");
    let _ = write!(
        out,
        "\"seq\":{},\"run_id\":{},\"run\":{},\"metric\":{},\"config\":{},\"target_rel_err\":{},",
        s.seq,
        quote(&s.run_id),
        quote(&s.run),
        quote(&s.metric),
        s.config.map_or("null".to_owned(), |c| c.to_string()),
        number(s.target_rel_err),
    );
    let _ = write!(
        out,
        "\"converged\":{},\"first_eligible\":{},\"first_eligible_95\":{},\"wasted_points\":{},\
         \"wasted_exact\":{},\"wasted_fraction\":{},",
        s.converged,
        eligible_json(s, s.first_eligible),
        eligible_json(s, s.first_eligible_95),
        s.wasted_points,
        s.wasted_exact,
        number(s.wasted_fraction()),
    );
    match s.last() {
        Some(last) => {
            let _ = write!(
                out,
                "\"final\":{{\"n\":{},\"mean\":{},\"rel_half_width\":{}}},",
                last.n,
                number(last.mean),
                number(last.rel_half_width)
            );
        }
        None => out.push_str("\"final\":null,"),
    }
    out.push_str("\"trajectory\":[");
    for (i, t) in s.trajectory.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"n\":{},\"mean\":{},\"rel_half_width\":{},\"eligible\":{},\"eligible_95\":{}}}",
            t.n,
            number(t.mean),
            number(t.rel_half_width),
            t.eligible,
            t.eligible_95
        );
    }
    out.push_str("],");
    let workers: Vec<String> = s
        .shards
        .workers
        .iter()
        .map(|&(w, n)| format!("{{\"worker\":{w},\"points\":{n}}}"))
        .collect();
    let busy: Vec<String> = s
        .shards
        .busy
        .iter()
        .map(|&(w, ns)| format!("{{\"worker\":{w},\"busy_ns\":{ns}}}"))
        .collect();
    let _ = write!(
        out,
        "\"shards\":{{\"workers\":[{}],\"imbalance\":{},\"busy\":[{}],\"busy_imbalance\":{}}}}}",
        workers.join(","),
        number(s.shards.imbalance),
        busy.join(","),
        number(s.shards.busy_imbalance)
    );
    out
}

fn eligible_json(s: &SeriesDiagnosis, index: Option<usize>) -> String {
    match index {
        Some(i) => format!("{{\"stride\":{},\"n\":{}}}", i + 1, s.trajectory[i].n),
        None => "null".to_owned(),
    }
}

fn render_anomaly_json(a: &AnomalyRecord) -> String {
    let kinds: Vec<String> = a.kinds.iter().map(|k| quote(k)).collect();
    format!(
        "{{\"seq\":{},\"point\":{},\"worker\":{},\"kinds\":[{}],\"cpi\":{},\"mean\":{},\
         \"sigmas\":{},\"decode_ns\":{},\"simulate_ns\":{},\"detail_start\":{},\
         \"measure_start\":{}}}",
        a.seq,
        a.point,
        a.worker,
        kinds.join(","),
        number(a.cpi),
        number(a.mean),
        number(a.sigmas),
        a.decode_ns,
        a.simulate_ns,
        a.detail_start,
        a.measure_start
    )
}

/// Render the machine-readable JSON report.
pub fn render_json(
    diagnosis: &Diagnosis,
    manifest: Option<&RunManifest>,
    diff: Option<&RunDiff>,
    top: usize,
) -> String {
    let mut out = String::from("{\"version\":1,");
    out.push_str("\"series\":[");
    for (i, s) in diagnosis.series.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&render_series_json(s));
    }
    out.push_str("],");
    let shown: Vec<String> = diagnosis.top_anomalies(top).iter().map(render_anomaly_json).collect();
    let _ = write!(
        out,
        "\"anomalies\":{{\"total\":{},\"top\":[{}]}},",
        diagnosis.anomalies.len(),
        shown.join(",")
    );
    match manifest {
        Some(m) => {
            let _ = write!(
                out,
                "\"manifest\":{{\"binary\":{},\"benchmark\":{},\"machine\":{},\"threads\":{},\
                 \"points_processed\":{},\"library_points\":{},\"reached_target\":{}}},",
                quote(&m.binary),
                quote(&m.benchmark),
                quote(&m.machine),
                m.threads,
                m.points_processed.map_or("null".to_owned(), |n| n.to_string()),
                m.library_points.map_or("null".to_owned(), |n| n.to_string()),
                m.estimate.as_ref().map_or("null".to_owned(), |e| e.reached_target.to_string()),
            );
            let _ = write!(
                out,
                "\"check\":{{\"exhausted_without_convergence\":{}}},",
                exhausted_without_convergence(m)
            );
        }
        None => out.push_str("\"manifest\":null,\"check\":null,"),
    }
    match diff {
        Some(d) => {
            let _ = write!(
                out,
                "\"diff\":{{\"mean_delta\":{},\"combined_half_width\":{},\"significant\":{},\
                 \"points_delta\":{},\"secs_delta\":{}}}",
                number(d.mean_delta),
                number(d.combined_half_width),
                d.significant,
                d.points_delta.map_or("null".to_owned(), |p| p.to_string()),
                d.secs_delta.map_or("null".to_owned(), number),
            );
        }
        None => out.push_str("\"diff\":null"),
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::sparkline;

    #[test]
    fn sparkline_scales_to_max() {
        assert_eq!(sparkline(&[]), "");
        assert_eq!(sparkline(&[0.0, 0.0]), "▁▁");
        let s = sparkline(&[1.0, 0.5, 0.25, 0.125]);
        assert_eq!(s.chars().count(), 4);
        assert!(s.starts_with('█'), "the max renders at the top level: {s}");
        assert_eq!(sparkline(&[f64::NAN, f64::INFINITY, 1.0]).chars().next(), Some('▁'));
    }
}
