//! `doctor gate`: a statistical regression verdict between two
//! registry run-sets, built on the matched-pair machinery the paper
//! uses for design comparisons (§6.2).
//!
//! The baseline and candidate selectors pick run-sets out of the
//! registry (by `code_version` label or `run_id` prefix). Runs pair up
//! within each `(kind, binary, benchmark, machine, threads)` tuple in
//! append order — CI invokes the same seeded experiment once per side,
//! so the i-th baseline run and the i-th candidate run measured the
//! same work. The per-pair run-rate ratios feed a
//! [`MatchedPair`](spectral_stats::MatchedPair), and the verdict fails
//! when the mean relative rate change drops below `-max_regress`
//! percent, or when a pair's final estimate moved by more than the
//! combined CI half-width `sqrt(hw_b² + hw_c²)` (the statistical result
//! itself changed, not just its speed).
//!
//! `MatchedPair::significant` keeps its n ≥ 30 floor for paper-scale
//! comparisons; CI run-sets are tiny (often one pair per tuple), so the
//! gate reports the relative-change *interval* alongside the point
//! estimate instead of a significance bit.

use std::fmt::Write as _;

use spectral_registry::RunRecord;
use spectral_stats::{Confidence, MatchedPair};
use spectral_telemetry::{json_number as number, json_quote as quote};

use crate::DoctorError;

/// What to compare and how strict to be.
#[derive(Debug, Clone)]
pub struct GateConfig {
    /// Baseline run-set selector: a `code_version` label or a `run_id`
    /// prefix.
    pub baseline: String,
    /// Candidate run-set selector.
    pub candidate: String,
    /// Maximum tolerated run-rate regression, in percent (e.g. `10.0`
    /// fails when the candidate is more than 10% slower).
    pub max_regress: f64,
    /// Confidence level for the reported change intervals.
    pub confidence: Confidence,
}

impl Default for GateConfig {
    fn default() -> Self {
        GateConfig {
            baseline: "baseline".to_owned(),
            candidate: "candidate".to_owned(),
            max_regress: 10.0,
            confidence: Confidence::C95,
        }
    }
}

/// The verdict for one `(kind, binary, benchmark, machine, threads)`
/// tuple present in both run-sets.
#[derive(Debug, Clone)]
pub struct GateComparison {
    /// Record kind (`run` / `bench`).
    pub kind: String,
    /// Emitting binary.
    pub binary: String,
    /// Benchmark / workload identifier.
    pub benchmark: String,
    /// Machine configuration label.
    pub machine: String,
    /// Worker thread count.
    pub threads: usize,
    /// Paired runs that carried a run rate on both sides.
    pub pairs: u64,
    /// Mean baseline run rate (points/s).
    pub baseline_rate: f64,
    /// Mean candidate run rate (points/s).
    pub candidate_rate: f64,
    /// Mean relative rate change (negative = candidate slower).
    pub rate_change: f64,
    /// Confidence interval on the relative rate change.
    pub rate_change_interval: (f64, f64),
    /// Whether the rate change breaches `-max_regress`.
    pub rate_regressed: bool,
    /// Estimate drift: pairs whose final means moved by more than the
    /// combined half-width `sqrt(hw_b² + hw_c²)`.
    pub drifted_pairs: u64,
    /// Largest per-pair `|Δmean| / combined half-width` ratio (0 when no
    /// pair carried estimates).
    pub worst_drift_ratio: f64,
}

impl GateComparison {
    /// One-line tuple label for reports.
    pub fn label(&self) -> String {
        format!(
            "{} {}/{} on {} t{}",
            self.kind, self.binary, self.benchmark, self.machine, self.threads
        )
    }

    /// Whether this tuple passes the gate.
    pub fn pass(&self) -> bool {
        !self.rate_regressed && self.drifted_pairs == 0
    }
}

/// The full gate verdict across all comparable tuples.
#[derive(Debug, Clone)]
pub struct GateVerdict {
    /// Per-tuple comparisons, in registry key order.
    pub comparisons: Vec<GateComparison>,
    /// Tuples present in only one run-set (skipped, not failed).
    pub unpaired: Vec<String>,
    /// Failure messages (empty when the gate passes).
    pub failures: Vec<String>,
}

impl GateVerdict {
    /// Whether every comparison passed.
    pub fn pass(&self) -> bool {
        self.failures.is_empty()
    }
}

fn matches(r: &RunRecord, selector: &str) -> bool {
    r.code_version == selector || (!r.run_id.is_empty() && r.run_id.starts_with(selector))
}

type TupleKey = (String, String, String, String, usize);

fn key(r: &RunRecord) -> TupleKey {
    (r.kind.clone(), r.binary.clone(), r.benchmark.clone(), r.machine.clone(), r.threads)
}

fn select<'a>(
    records: &'a [RunRecord],
    selector: &str,
) -> std::collections::BTreeMap<TupleKey, Vec<&'a RunRecord>> {
    let mut sets: std::collections::BTreeMap<TupleKey, Vec<&RunRecord>> =
        std::collections::BTreeMap::new();
    for r in records.iter().filter(|r| matches(r, selector)) {
        sets.entry(key(r)).or_default().push(r);
    }
    sets
}

/// Compare the `cfg.baseline` run-set against the `cfg.candidate`
/// run-set over `records`.
///
/// # Errors
///
/// Returns a diagnostic when either selector matches no records — an
/// empty side means the CI pipeline is miswired, which must not read as
/// a pass.
pub fn gate(records: &[RunRecord], cfg: &GateConfig) -> Result<GateVerdict, DoctorError> {
    let base_sets = select(records, &cfg.baseline);
    let cand_sets = select(records, &cfg.candidate);
    if base_sets.is_empty() {
        return Err(DoctorError::msg(format!(
            "baseline selector '{}' matches no registry records",
            cfg.baseline
        )));
    }
    if cand_sets.is_empty() {
        return Err(DoctorError::msg(format!(
            "candidate selector '{}' matches no registry records",
            cfg.candidate
        )));
    }

    let mut comparisons = Vec::new();
    let mut unpaired = Vec::new();
    let mut failures = Vec::new();
    for (k, base_runs) in &base_sets {
        let Some(cand_runs) = cand_sets.get(k) else {
            unpaired.push(format!("{} {}/{} on {} t{} (baseline only)", k.0, k.1, k.2, k.3, k.4));
            continue;
        };
        let mut rates = MatchedPair::new();
        let mut pairs = 0u64;
        let mut drifted_pairs = 0u64;
        let mut worst_drift_ratio = 0.0f64;
        for (b, c) in base_runs.iter().zip(cand_runs.iter()) {
            if let (Some(br), Some(cr)) = (b.run_rate, c.run_rate) {
                rates.push(br, cr);
                pairs += 1;
            }
            if let (Some(be), Some(ce)) = (&b.estimate, &c.estimate) {
                let combined =
                    (be.half_width * be.half_width + ce.half_width * ce.half_width).sqrt();
                let delta = (ce.mean - be.mean).abs();
                if combined > 0.0 {
                    worst_drift_ratio = worst_drift_ratio.max(delta / combined);
                }
                if delta > combined {
                    drifted_pairs += 1;
                }
            }
        }
        let rate_change = rates.relative_change();
        let cmp = GateComparison {
            kind: k.0.clone(),
            binary: k.1.clone(),
            benchmark: k.2.clone(),
            machine: k.3.clone(),
            threads: k.4,
            pairs,
            baseline_rate: rates.base().mean(),
            candidate_rate: rates.experiment().mean(),
            rate_change,
            rate_change_interval: rates.relative_change_interval(cfg.confidence),
            rate_regressed: pairs > 0 && rate_change < -cfg.max_regress / 100.0,
            drifted_pairs,
            worst_drift_ratio,
        };
        if cmp.rate_regressed {
            failures.push(format!(
                "{}: run rate regressed {:.1}% (limit {:.1}%)",
                cmp.label(),
                -cmp.rate_change * 100.0,
                cfg.max_regress
            ));
        }
        if cmp.drifted_pairs > 0 {
            failures.push(format!(
                "{}: final estimate drifted beyond the combined CI half-width in {} pair(s)",
                cmp.label(),
                cmp.drifted_pairs
            ));
        }
        comparisons.push(cmp);
    }
    for k in cand_sets.keys().filter(|k| !base_sets.contains_key(*k)) {
        unpaired.push(format!("{} {}/{} on {} t{} (candidate only)", k.0, k.1, k.2, k.3, k.4));
    }
    if comparisons.is_empty() {
        return Err(DoctorError::msg(
            "baseline and candidate run-sets share no (kind, binary, benchmark, machine, \
             threads) tuple — nothing to compare",
        ));
    }
    Ok(GateVerdict { comparisons, unpaired, failures })
}

/// Render the verdict as a text report.
pub fn render_gate_text(verdict: &GateVerdict, cfg: &GateConfig) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "gate: baseline '{}' vs candidate '{}' (max regress {:.1}%)",
        cfg.baseline, cfg.candidate, cfg.max_regress
    );
    for c in &verdict.comparisons {
        let (lo, hi) = c.rate_change_interval;
        let _ = writeln!(
            out,
            "  {}: rate {:.0} → {:.0} pts/s ({:+.1}%, CI [{:+.1}%, {:+.1}%]) over {} pair(s) — {}",
            c.label(),
            c.baseline_rate,
            c.candidate_rate,
            c.rate_change * 100.0,
            lo * 100.0,
            hi * 100.0,
            c.pairs,
            if c.pass() { "ok" } else { "FAIL" }
        );
        if c.drifted_pairs > 0 {
            let _ = writeln!(
                out,
                "    estimate drift in {} pair(s), worst |Δ|/hw ratio {:.2}",
                c.drifted_pairs, c.worst_drift_ratio
            );
        }
    }
    for u in &verdict.unpaired {
        let _ = writeln!(out, "  skipped: {u}");
    }
    let _ = writeln!(out, "verdict: {}", if verdict.pass() { "PASS" } else { "REGRESSION" });
    for f in &verdict.failures {
        let _ = writeln!(out, "  {f}");
    }
    out
}

/// Render the verdict as machine-readable JSON.
pub fn render_gate_json(verdict: &GateVerdict, cfg: &GateConfig) -> String {
    let mut out = String::from("{\"version\":1,");
    let _ = write!(
        out,
        "\"baseline\":{},\"candidate\":{},\"max_regress_pct\":{},\"pass\":{},\"comparisons\":[",
        quote(&cfg.baseline),
        quote(&cfg.candidate),
        number(cfg.max_regress),
        verdict.pass()
    );
    for (i, c) in verdict.comparisons.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let (lo, hi) = c.rate_change_interval;
        let _ = write!(
            out,
            "{{\"kind\":{},\"binary\":{},\"benchmark\":{},\"machine\":{},\"threads\":{},\
             \"pairs\":{},\"baseline_rate\":{},\"candidate_rate\":{},\"rate_change\":{},\
             \"rate_change_interval\":[{},{}],\"rate_regressed\":{},\"drifted_pairs\":{},\
             \"worst_drift_ratio\":{}}}",
            quote(&c.kind),
            quote(&c.binary),
            quote(&c.benchmark),
            quote(&c.machine),
            c.threads,
            c.pairs,
            number(c.baseline_rate),
            number(c.candidate_rate),
            number(c.rate_change),
            number(lo),
            number(hi),
            c.rate_regressed,
            c.drifted_pairs,
            number(c.worst_drift_ratio),
        );
    }
    out.push_str("],\"failures\":[");
    for (i, f) in verdict.failures.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&quote(f));
    }
    out.push_str("],\"unpaired\":[");
    for (i, u) in verdict.unpaired.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&quote(u));
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use spectral_telemetry::EstimateSummary;

    fn record(version: &str, binary: &str, rate: f64, mean: f64, hw: f64) -> RunRecord {
        let mut r = RunRecord::new("run", binary, "gcc-like", "8-wide", 4);
        r.code_version = version.into();
        r.run_id = format!("{:016x}-1", rate as u64);
        r.points_processed = Some(500);
        r.run_secs = Some(500.0 / rate);
        r.run_rate = Some(rate);
        r.estimate = Some(EstimateSummary {
            mean,
            half_width: hw,
            relative_half_width: hw / mean,
            reached_target: true,
        });
        r
    }

    #[test]
    fn identical_run_sets_pass() {
        let records = vec![
            record("baseline", "online", 2_000.0, 1.4, 0.05),
            record("candidate", "online", 2_000.0, 1.4, 0.05),
        ];
        let verdict = gate(&records, &GateConfig::default()).expect("comparable sets");
        assert!(verdict.pass(), "{:?}", verdict.failures);
        assert_eq!(verdict.comparisons.len(), 1);
        assert_eq!(verdict.comparisons[0].pairs, 1);
        assert!((verdict.comparisons[0].rate_change).abs() < 1e-12);
    }

    #[test]
    fn degraded_rate_fails_and_small_jitter_passes() {
        let mk = |cand_rate: f64| {
            vec![
                record("baseline", "online", 2_000.0, 1.4, 0.05),
                record("candidate", "online", cand_rate, 1.4, 0.05),
            ]
        };
        let cfg = GateConfig { max_regress: 10.0, ..GateConfig::default() };
        let bad = gate(&mk(1_500.0), &cfg).expect("comparable");
        assert!(!bad.pass(), "25% slower must fail a 10% limit");
        assert!(bad.failures[0].contains("run rate regressed 25.0%"), "{:?}", bad.failures);

        let ok = gate(&mk(1_950.0), &cfg).expect("comparable");
        assert!(ok.pass(), "2.5% slower is within a 10% limit: {:?}", ok.failures);

        let faster = gate(&mk(3_000.0), &cfg).expect("comparable");
        assert!(faster.pass(), "speedups never fail the gate");
    }

    #[test]
    fn estimate_drift_beyond_combined_half_width_fails() {
        let records = vec![
            record("baseline", "online", 2_000.0, 1.40, 0.03),
            record("candidate", "online", 2_000.0, 1.55, 0.03), // Δ=0.15 vs ~0.042
        ];
        let verdict = gate(&records, &GateConfig::default()).expect("comparable");
        assert!(!verdict.pass());
        assert_eq!(verdict.comparisons[0].drifted_pairs, 1);
        assert!(verdict.comparisons[0].worst_drift_ratio > 3.0);
        assert!(verdict.failures[0].contains("estimate drifted"), "{:?}", verdict.failures);
    }

    #[test]
    fn selectors_also_match_run_id_prefixes() {
        let mut base = record("dev", "online", 2_000.0, 1.4, 0.05);
        base.run_id = "aaaa000000000001-1".into();
        let mut cand = record("dev", "online", 2_000.0, 1.4, 0.05);
        cand.run_id = "bbbb000000000001-1".into();
        let cfg = GateConfig {
            baseline: "aaaa".into(),
            candidate: "bbbb".into(),
            ..GateConfig::default()
        };
        let verdict = gate(&[base, cand], &cfg).expect("prefix selection works");
        assert!(verdict.pass());
        assert_eq!(verdict.comparisons[0].pairs, 1);
    }

    #[test]
    fn empty_or_disjoint_sides_are_errors_not_passes() {
        let records = vec![record("baseline", "online", 2_000.0, 1.4, 0.05)];
        assert!(gate(&records, &GateConfig::default()).is_err(), "no candidate records");
        let disjoint = vec![
            record("baseline", "online", 2_000.0, 1.4, 0.05),
            record("candidate", "matched", 2_000.0, 1.4, 0.05),
        ];
        let err = gate(&disjoint, &GateConfig::default());
        assert!(err.is_err(), "no shared tuple to compare");
    }

    #[test]
    fn unpaired_tuples_are_skipped_not_failed() {
        let records = vec![
            record("baseline", "online", 2_000.0, 1.4, 0.05),
            record("baseline", "matched", 900.0, 0.1, 0.01),
            record("candidate", "online", 2_000.0, 1.4, 0.05),
        ];
        let verdict = gate(&records, &GateConfig::default()).expect("online is comparable");
        assert!(verdict.pass());
        assert_eq!(verdict.comparisons.len(), 1);
        assert_eq!(verdict.unpaired.len(), 1);
        assert!(verdict.unpaired[0].contains("baseline only"));
        let json = render_gate_json(&verdict, &GateConfig::default());
        assert!(spectral_telemetry::JsonValue::parse(&json).is_ok(), "gate JSON parses");
    }
}
