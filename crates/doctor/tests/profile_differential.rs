//! Differential test for the worker-timeline profiler: enabling the
//! profile sink must leave a seeded 2-thread online run's estimates
//! bit-identical, and the attribution `spectral-doctor profile`
//! computes from the stream must cover ≥95% of run wall-clock.
//!
//! Everything lives in one test function: the profile sink is a
//! process-wide singleton and installing it is one-way, so the
//! unprofiled arm has to run first.

use std::process::Command;

use spectral_core::{CreationConfig, LivePointLibrary, OnlineRunner, RunPolicy};
use spectral_doctor::{analyze_profile, parse_profile, render_profile_text};
use spectral_telemetry::JsonValue;
use spectral_uarch::MachineConfig;

#[test]
fn profiling_is_bit_identical_and_attributes_wall_clock() {
    let program = spectral_workloads::tiny().build();
    // Enough points that the run's fixed costs (thread spawn, join,
    // the deterministic replay) stay well under the 5% unattributed
    // budget even on a contended test host.
    let cfg = CreationConfig::for_machine(&MachineConfig::eight_way()).with_sample_size(192);
    let library = LivePointLibrary::create(&program, &cfg).expect("create library");
    let runner = OnlineRunner::new(&library, MachineConfig::eight_way());
    // Exhaustive policy: every live-point is processed regardless of
    // worker interleaving, and the final estimate is the deterministic
    // index-ordered replay — so two runs compare bit for bit.
    let policy = RunPolicy { target_rel_err: 1e-12, stop_at_target: false, ..RunPolicy::default() };

    assert!(!spectral_telemetry::profiling(), "no profile sink installed yet");
    let unprofiled = runner.run_parallel(&program, &policy, 2).expect("unprofiled run");

    let profile =
        std::env::temp_dir().join(format!("spectral_doctor_diff_{}.jsonl", std::process::id()));
    spectral_telemetry::set_profile_path(&profile).expect("install profile sink");
    assert!(spectral_telemetry::profiling(), "sink installed");
    let profiled = runner.run_parallel(&program, &policy, 2).expect("profiled run");
    spectral_telemetry::flush_profile();

    // The differential: recording phase intervals must not perturb the
    // estimate in any bit.
    assert_eq!(profiled.processed(), unprofiled.processed());
    assert_eq!(
        profiled.mean().to_bits(),
        unprofiled.mean().to_bits(),
        "profiling changed the estimate: {} vs {}",
        profiled.mean(),
        unprofiled.mean()
    );
    assert_eq!(
        profiled.half_width().to_bits(),
        unprofiled.half_width().to_bits(),
        "profiling changed the half-width"
    );

    // Attribution through the doctor library.
    let text = std::fs::read_to_string(&profile).expect("read profile stream");
    let runs = parse_profile(&text).expect("parse profile stream");
    assert_eq!(runs.len(), 1, "exactly the profiled run is in the stream");
    let run = &runs[0];
    assert_eq!(run.run, "online");
    assert!(run.declared_workers >= 1, "run bracket declares its workers");
    assert_eq!(run.workers.len(), run.declared_workers, "every declared worker reported");

    let report = analyze_profile(run, 100);
    assert!(
        report.attributed_pct >= 95.0,
        "attribution covers only {:.1}% of run wall-clock",
        report.attributed_pct
    );
    let simulate = report
        .aggregate
        .iter()
        .find(|a| a.phase == "simulate")
        .expect("simulate appears in the aggregate attribution");
    assert!(simulate.count > 0 && simulate.ns > 0, "simulate intervals were recorded");
    assert!(
        report.overhead.pct_of_wall < 3.0,
        "self-estimated profiler overhead {:.3}% exceeds 3% of run wall",
        report.overhead.pct_of_wall
    );
    let rendered = render_profile_text(run, &report);
    assert!(rendered.contains("aggregate attribution"), "{rendered}");
    assert!(rendered.contains("profiler overhead:"), "{rendered}");

    // Same verdict through the CLI.
    let json_path =
        std::env::temp_dir().join(format!("spectral_doctor_diff_{}.json", std::process::id()));
    let out = Command::new(env!("CARGO_BIN_EXE_spectral-doctor"))
        .args(["profile", "--profile"])
        .arg(&profile)
        .arg("--json")
        .arg(&json_path)
        .output()
        .expect("run spectral-doctor profile");
    assert!(
        out.status.success(),
        "doctor profile failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let doc = JsonValue::parse(&std::fs::read_to_string(&json_path).expect("read report"))
        .expect("report is valid JSON");
    let cli_runs = doc.get("runs").and_then(JsonValue::as_arr).expect("runs array");
    assert_eq!(cli_runs.len(), 1);
    let att = cli_runs[0].get("attributed_pct").and_then(JsonValue::as_f64).expect("attributed");
    assert!(att >= 95.0, "CLI reports {att:.1}% attributed");

    let _ = std::fs::remove_file(&profile);
    let _ = std::fs::remove_file(&json_path);
}
