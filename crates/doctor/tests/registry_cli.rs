//! CLI-level tests for the registry-backed subcommands: `trend` renders
//! a trajectory from an on-disk registry, `gate` turns baseline vs
//! candidate run-sets into exit codes CI can branch on, and `watch
//! --once --prom` emits a parseable Prometheus text exposition.
//!
//! Records are synthesized through the `spectral-registry` API with
//! controlled run rates, so regression verdicts are deterministic; the
//! companion test in `crates/experiments/tests/registry.rs` covers the
//! same registry populated by real experiment invocations.

use std::path::PathBuf;
use std::process::Command;

use spectral_registry::{Registry, RunRecord};
use spectral_telemetry::JsonValue;

fn temp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("spectral_doctor_cli_{}_{name}", std::process::id()))
}

/// One synthetic online-run record with a controlled throughput.
fn record(code_version: &str, seq: u64, rate: f64, unix_ms: u64) -> RunRecord {
    let mut r = RunRecord::new("run", "online", "gcc-like", "8-wide", 4);
    r.run_id = format!("{:016x}-{seq}", 0xfeed_0000_0000_0000u64 | seq);
    r.code_version = code_version.to_owned();
    r.seed = Some(42);
    r.unix_ms = unix_ms;
    r.points_processed = Some(1000);
    r.run_secs = Some(1000.0 / rate);
    r.run_rate = Some(rate);
    r
}

fn build_registry(dir: &PathBuf, records: &[RunRecord]) -> Registry {
    let _ = std::fs::remove_dir_all(dir);
    let registry = Registry::open(dir).expect("open registry");
    for r in records {
        registry.append(r).expect("append record");
    }
    registry
}

fn doctor() -> Command {
    Command::new(env!("CARGO_BIN_EXE_spectral-doctor"))
}

#[test]
fn gate_exit_codes_track_the_regression_verdict() {
    let dir = temp_path("gate");
    // Baseline at ~2000 pts/s; candidate within jitter — must pass.
    build_registry(
        &dir,
        &[
            record("baseline", 1, 2000.0, 100),
            record("baseline", 2, 2020.0, 200),
            record("baseline", 3, 1990.0, 300),
            record("candidate", 4, 1995.0, 400),
            record("candidate", 5, 2010.0, 500),
            record("candidate", 6, 2005.0, 600),
        ],
    );
    let out = doctor()
        .args(["gate", "--baseline", "baseline", "--candidate", "candidate"])
        .args(["--max-regress", "10", "--registry"])
        .arg(&dir)
        .output()
        .expect("run gate");
    assert_eq!(
        out.status.code(),
        Some(0),
        "same-rate sets must pass: {}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("PASS"));

    // Candidate 25% slower than baseline: regression, exit code 2.
    build_registry(
        &dir,
        &[
            record("baseline", 1, 2000.0, 100),
            record("baseline", 2, 2020.0, 200),
            record("candidate", 3, 1500.0, 300),
            record("candidate", 4, 1510.0, 400),
        ],
    );
    let json = temp_path("gate.json");
    let out = doctor()
        .args(["gate", "--baseline", "baseline", "--candidate", "candidate"])
        .args(["--max-regress", "10", "--registry"])
        .arg(&dir)
        .arg("--json")
        .arg(&json)
        .output()
        .expect("run gate");
    assert_eq!(out.status.code(), Some(2), "a 25% rate drop must exit 2");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("REGRESSION"), "{stdout}");
    let doc = JsonValue::parse(&std::fs::read_to_string(&json).expect("read gate json"))
        .expect("gate --json output parses");
    assert_eq!(doc.get("pass").and_then(JsonValue::as_bool), Some(false));
    assert!(doc.get("failures").and_then(JsonValue::as_arr).is_some_and(|f| !f.is_empty()));

    // A selector that matches nothing is an operational error (exit 1),
    // not a silent pass.
    let out = doctor()
        .args(["gate", "--baseline", "no-such-version", "--candidate", "candidate"])
        .arg("--registry")
        .arg(&dir)
        .output()
        .expect("run gate");
    assert_eq!(out.status.code(), Some(1), "empty baseline set must be an error");

    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_file(&json);
}

#[test]
fn trend_renders_a_multi_point_trajectory() {
    let dir = temp_path("trend");
    build_registry(
        &dir,
        &[
            record("v1", 1, 1800.0, 1_000),
            record("v2", 2, 1900.0, 2_000),
            record("v3", 3, 2100.0, 3_000),
        ],
    );
    let out = doctor().arg("trend").arg("--registry").arg(&dir).output().expect("run trend");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("online"), "series label names the binary: {stdout}");
    assert!(stdout.contains("run rate"), "{stdout}");

    let json = temp_path("trend.json");
    let out = doctor()
        .arg("trend")
        .arg("--registry")
        .arg(&dir)
        .arg("--json")
        .arg(&json)
        .output()
        .expect("run trend --json");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let doc = JsonValue::parse(&std::fs::read_to_string(&json).expect("read trend json"))
        .expect("trend --json output parses");
    let series = doc.get("series").and_then(JsonValue::as_arr).expect("series array");
    assert_eq!(series.len(), 1, "one (binary, benchmark, machine, threads) tuple");
    let points = series[0].get("points").and_then(JsonValue::as_arr).expect("points");
    assert_eq!(points.len(), 3, "every record becomes a trajectory point");
    let rates: Vec<f64> =
        points.iter().filter_map(|p| p.get("run_rate").and_then(JsonValue::as_f64)).collect();
    assert_eq!(rates, vec![1800.0, 1900.0, 2100.0], "chronological order");

    // --last trims to the most recent points.
    let out = doctor()
        .args(["trend", "--last", "2", "--registry"])
        .arg(&dir)
        .arg("--json")
        .arg(&json)
        .output()
        .expect("run trend --last");
    assert!(out.status.success());
    let doc = JsonValue::parse(&std::fs::read_to_string(&json).unwrap()).unwrap();
    let points = doc.get("series").and_then(JsonValue::as_arr).unwrap()[0]
        .get("points")
        .and_then(JsonValue::as_arr)
        .unwrap();
    assert_eq!(points.len(), 2);

    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_file(&json);
}

/// Every non-comment exposition line must be `name{labels} value` (or
/// `name value`) with a finite float value.
fn assert_prometheus_parses(text: &str) -> usize {
    let mut samples = 0;
    for line in text.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (name_part, value) = line.rsplit_once(' ').expect("sample line has a value");
        let name = name_part.split('{').next().expect("metric name");
        assert!(
            !name.is_empty()
                && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
            "bad metric name in line: {line}"
        );
        let v: f64 = value.parse().unwrap_or_else(|_| panic!("non-float value in line: {line}"));
        assert!(v.is_finite(), "non-finite sample in line: {line}");
        samples += 1;
    }
    samples
}

#[test]
fn watch_once_emits_parseable_prometheus_exposition() {
    // Events-file mode: two progress strides and one anomaly.
    let events = temp_path("watch_events.jsonl");
    let progress = |n: u64, mean: f64| {
        format!(
            "{{\"type\":\"progress\",\"run_id\":\"feed5eed00000001-1\",\"seq\":1,\
             \"run\":\"online\",\"metric\":\"cpi\",\"t_us\":100,\"worker\":0,\"config\":null,\
             \"n\":{n},\"mean\":{mean},\"half_width\":0.05,\"rel_half_width\":0.04,\
             \"target_rel_err\":0.03,\"eligible\":false,\"rel_half_width_95\":0.02,\
             \"eligible_95\":true,\"shard_points\":{n},\"shard_busy_ns\":900,\"overshoot\":0}}"
        )
    };
    let anomaly = "{\"type\":\"anomaly\",\"run_id\":\"feed5eed00000001-1\",\"seq\":1,\
                   \"run\":\"online\",\"t_us\":120,\"worker\":0,\"point\":7,\
                   \"detail_start\":0,\"measure_start\":0,\"kinds\":[\"cpi_outlier\"],\
                   \"cpi\":9.0,\"mean\":1.2,\"std_dev\":0.2,\"sigmas\":6.5,\
                   \"decode_ns\":10,\"simulate_ns\":20}";
    std::fs::write(&events, format!("{}\n{}\n{anomaly}\n", progress(20, 1.25), progress(40, 1.22)))
        .expect("write events fixture");

    let prom = temp_path("watch.prom");
    let out = doctor()
        .args(["watch", "--once", "--events"])
        .arg(&events)
        .arg("--prom")
        .arg(&prom)
        .output()
        .expect("run watch");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("spectral-doctor watch"), "{stdout}");
    assert!(stdout.contains("n=40"), "dashboard shows the latest stride: {stdout}");

    let text = std::fs::read_to_string(&prom).expect("read exposition");
    assert!(text.contains("spectral_progress_points"), "{text}");
    assert!(text.contains("spectral_anomalies"), "{text}");
    assert!(assert_prometheus_parses(&text) >= 5, "several samples expected:\n{text}");

    // Registry mode: run records surface as spectral_run_rate samples.
    let dir = temp_path("watch_registry");
    build_registry(&dir, &[record("v1", 1, 2000.0, 1_000), record("v2", 2, 2100.0, 2_000)]);
    let out = doctor()
        .args(["watch", "--once", "--registry"])
        .arg(&dir)
        .arg("--prom")
        .arg(&prom)
        .output()
        .expect("run watch --registry");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = std::fs::read_to_string(&prom).expect("read exposition");
    assert!(text.contains("spectral_run_rate"), "{text}");
    assert!(text.contains("spectral_runs_total"), "{text}");
    assert!(assert_prometheus_parses(&text) >= 3, "{text}");

    let _ = std::fs::remove_file(&events);
    let _ = std::fs::remove_file(&prom);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn help_works_on_every_subcommand() {
    for sub in [
        &["--help"][..],
        &["analyze", "--help"],
        &["trend", "-h"],
        &["gate", "--help"],
        &["watch", "--help"],
        &["profile", "-h"],
    ] {
        let out = doctor().args(sub).output().expect("run --help");
        assert_eq!(out.status.code(), Some(0), "{sub:?} must exit 0");
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(stdout.contains("usage:"), "{sub:?}: {stdout}");
        assert!(stdout.contains("spectral-doctor watch"), "usage covers watch: {stdout}");
    }
}

#[test]
fn registry_env_var_substitutes_for_the_flag() {
    let dir = temp_path("env_registry");
    build_registry(&dir, &[record("v1", 1, 2000.0, 1_000), record("v2", 2, 2100.0, 2_000)]);

    let out =
        doctor().arg("trend").env("SPECTRAL_REGISTRY", &dir).output().expect("run trend via env");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("run rate"));

    let out = doctor()
        .args(["watch", "--once"])
        .env("SPECTRAL_REGISTRY", &dir)
        .output()
        .expect("run watch via env");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    // Without the flag or the variable, the error says how to fix it.
    let out = doctor().arg("trend").env_remove("SPECTRAL_REGISTRY").output().expect("run trend");
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("SPECTRAL_REGISTRY"));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn analyze_surfaces_resume_lineage() {
    // A manifest carrying a `resumed_from` note renders a lineage line.
    let manifest = temp_path("lineage.json");
    let events = temp_path("lineage_events.jsonl");
    let mut m = spectral_telemetry::RunManifest::new("online", "gcc-like", "8", 1);
    m.note("resumed_from", "out/online.ckpt");
    m.write(&manifest, None).expect("write manifest");
    std::fs::write(&events, "").expect("write empty events");

    let out = doctor()
        .args(["analyze", "--events"])
        .arg(&events)
        .arg("--manifest")
        .arg(&manifest)
        .output()
        .expect("run analyze");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("resumed from checkpoint out/online.ckpt"),
        "lineage line expected: {stdout}"
    );

    let _ = std::fs::remove_file(&manifest);
    let _ = std::fs::remove_file(&events);
}
