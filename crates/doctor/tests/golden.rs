//! End-to-end golden test: run a real seeded online experiment with the
//! event sink installed, then diagnose the artifacts through the doctor
//! library and the `spectral-doctor` binary, goldening the `--json`
//! report shape.
//!
//! Everything lives in one test function: the event sink is a
//! process-wide singleton, so sequential phases share it by
//! re-installing the path between runs.

use std::path::{Path, PathBuf};
use std::process::Command;

use spectral_core::{CreationConfig, LivePointLibrary, OnlineRunner, RunPolicy};
use spectral_doctor::{analyze, diff_runs, RunArtifacts};
use spectral_telemetry::{JsonValue, RunManifest};
use spectral_uarch::MachineConfig;

fn temp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("spectral_doctor_{}_{name}", std::process::id()))
}

fn write_manifest(path: &Path, est: &spectral_core::Estimate, library_points: u64) {
    let mut m = RunManifest::new("online", "tiny", "8", 1);
    m.library_points = Some(library_points);
    m.points_processed = Some(est.processed() as u64);
    m.phase("run", 0.25);
    m.set_estimate(est.mean(), est.half_width(), est.reached_target());
    m.write(path, None).expect("write manifest");
}

#[test]
fn seeded_run_diagnoses_end_to_end() {
    let program = spectral_workloads::tiny().build();
    let cfg = CreationConfig::for_machine(&MachineConfig::eight_way()).with_sample_size(35);
    let library = LivePointLibrary::create(&program, &cfg).expect("create library");
    let runner = OnlineRunner::new(&library, MachineConfig::eight_way());
    // A loose target the run converges to partway, low sigma so the
    // anomaly stream is populated, and no early stop so points past
    // convergence (wasted work) exist for the doctor to report.
    let policy = RunPolicy {
        target_rel_err: 0.5,
        stop_at_target: false,
        anomaly_sigma: 0.25,
        merge_stride: 4,
        ..RunPolicy::default()
    };

    let events = temp_path("events.jsonl");
    let manifest = temp_path("manifest.json");
    spectral_telemetry::set_events_path(&events).expect("install event sink");
    let est = runner.run(&program, &policy).expect("online run");
    spectral_telemetry::flush_events();
    write_manifest(&manifest, &est, library.len() as u64);
    assert_eq!(est.processed(), library.len(), "stop_at_target=false is exhaustive");
    assert!(est.reached_target(), "a 50% target converges partway");

    // Library-level diagnosis.
    let artifacts = RunArtifacts::load(Some(&manifest), &events).expect("load artifacts");
    assert!(!artifacts.progress.is_empty(), "merge-stride progress records were emitted");
    let diagnosis = analyze(&artifacts);
    let series = diagnosis.primary().expect("one cpi series");
    assert_eq!((series.run.as_str(), series.metric.as_str()), ("online", "cpi"));
    assert!(series.converged, "final record is eligible at 50%");
    let first = series.first_eligible.expect("converged run has a first-eligible stride");
    assert!(series.trajectory[first].n >= 30, "n >= 30 floor gates eligibility");
    assert!(series.wasted_points > 0, "exhaustive run wastes points past convergence");
    assert!(
        diagnosis.anomalies.len() >= 3,
        "a 0.25 sigma threshold flags several of {} points (got {})",
        est.processed(),
        diagnosis.anomalies.len()
    );
    for a in diagnosis.top_anomalies(3) {
        assert!((a.point as usize) < library.len(), "anomaly carries a library point id");
        assert!(!a.kinds.is_empty());
    }

    // Binary: --json report, golden shape.
    let report = temp_path("report.json");
    let chrome = temp_path("chrome.json");
    let out = Command::new(env!("CARGO_BIN_EXE_spectral-doctor"))
        .args(["--events"])
        .arg(&events)
        .arg("--manifest")
        .arg(&manifest)
        .arg("--json")
        .arg(&report)
        .arg("--perfetto")
        .arg(&chrome)
        .arg("--check")
        .output()
        .expect("run spectral-doctor");
    assert!(
        out.status.success(),
        "doctor must pass --check on a converged run: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("first eligible at n="), "text report names the stride: {stdout}");
    assert!(stdout.contains("wasted points past convergence"), "{stdout}");

    let doc = JsonValue::parse(&std::fs::read_to_string(&report).expect("read report"))
        .expect("report is valid JSON");
    assert_eq!(doc.get("version").and_then(JsonValue::as_u64), Some(1));
    let series = doc.get("series").and_then(JsonValue::as_arr).expect("series array");
    assert_eq!(series.len(), 1);
    let s = &series[0];
    assert_eq!(s.get("run").and_then(JsonValue::as_str), Some("online"));
    assert_eq!(s.get("metric").and_then(JsonValue::as_str), Some("cpi"));
    assert!(s.get("seq").and_then(JsonValue::as_u64).is_some_and(|v| v >= 1));
    assert!(s.get("shards").and_then(|sh| sh.get("workers")).is_some());
    assert_eq!(s.get("converged").and_then(JsonValue::as_bool), Some(true));
    let first = s.get("first_eligible").expect("first_eligible present");
    assert!(first.get("stride").and_then(JsonValue::as_u64).is_some_and(|v| v >= 1));
    assert!(first.get("n").and_then(JsonValue::as_u64).is_some_and(|v| v >= 30));
    assert!(s.get("wasted_points").and_then(JsonValue::as_u64).is_some_and(|v| v > 0));
    assert!(s.get("trajectory").and_then(JsonValue::as_arr).is_some_and(|t| t.len() >= 2));
    let anomalies = doc.get("anomalies").expect("anomalies section");
    assert!(anomalies.get("total").and_then(JsonValue::as_u64).is_some_and(|v| v >= 3));
    let top = anomalies.get("top").and_then(JsonValue::as_arr).expect("top array");
    assert_eq!(top.len(), 3, "top-3 anomalous points");
    for a in top {
        assert!(a.get("point").and_then(JsonValue::as_u64).is_some());
        assert!(a.get("measure_start").and_then(JsonValue::as_u64).is_some());
    }
    assert_eq!(
        doc.get("check")
            .and_then(|c| c.get("exhausted_without_convergence"))
            .and_then(JsonValue::as_bool),
        Some(false)
    );
    assert_eq!(doc.get("diff"), Some(&JsonValue::Null));

    // Perfetto export carries convergence counters from the events.
    let chrome_doc = JsonValue::parse(&std::fs::read_to_string(&chrome).expect("read chrome"))
        .expect("chrome trace is valid JSON");
    assert!(chrome_doc
        .get("traceEvents")
        .and_then(JsonValue::as_arr)
        .is_some_and(|e| !e.is_empty()));

    // Parallel run: shard report sees every worker.
    let par_events = temp_path("par_events.jsonl");
    spectral_telemetry::set_events_path(&par_events).expect("re-install event sink");
    let par = runner.run_parallel(&program, &policy, 4).expect("parallel run");
    spectral_telemetry::flush_events();
    let par_manifest = temp_path("par_manifest.json");
    write_manifest(&par_manifest, &par, library.len() as u64);
    let par_artifacts = RunArtifacts::load(Some(&par_manifest), &par_events).expect("load");
    let par_diag = analyze(&par_artifacts);
    assert_eq!(par_diag.series.len(), 1, "one parallel run, one series");
    let par_shards = &par_diag.primary().expect("parallel series").shards;
    assert_eq!(par_shards.workers.len(), 4, "all four shards reported progress");
    let total: u64 = par_shards.workers.iter().map(|&(_, n)| n).sum();
    assert_eq!(total, library.len() as u64, "shard points partition the library");

    // Two-run diff: same machine twice is within noise.
    let diff = diff_runs(&par_artifacts, &artifacts).expect("diff with manifests");
    assert!(!diff.significant, "same machine twice must not regress");
    assert_eq!(diff.points_delta, Some(0));

    // --check gate: an exhausted, non-converged manifest fails.
    let bad_manifest = temp_path("bad_manifest.json");
    let mut m = RunManifest::new("online", "tiny", "8", 1);
    m.library_points = Some(library.len() as u64);
    m.points_processed = Some(library.len() as u64);
    m.set_estimate(est.mean(), est.half_width(), false);
    m.write(&bad_manifest, None).expect("write manifest");
    let out = Command::new(env!("CARGO_BIN_EXE_spectral-doctor"))
        .arg("--events")
        .arg(&events)
        .arg("--manifest")
        .arg(&bad_manifest)
        .arg("--check")
        .output()
        .expect("run spectral-doctor");
    assert!(!out.status.success(), "--check must fail an exhausted non-converged run");

    for p in [events, manifest, report, chrome, par_events, par_manifest, bad_manifest] {
        let _ = std::fs::remove_file(p);
    }
}
