//! Shadow register state for approximate wrong-path execution.
//!
//! The paper's live-state design deliberately omits wrong-path operand
//! values: "we can use branch predictor outcomes to identify the
//! wrong-path instruction sequence, and cache tag arrays to identify
//! wrong-path load latency" (§5). The timing model therefore executes
//! wrong-path instructions *approximately*: ALU operations compute real
//! results over a shadow register file seeded from committed values,
//! while wrong-path loads produce an unknown (zero) value — exactly the
//! information a live-point can reproduce.

use spectral_isa::{AluOp, FpOp, Inst, Reg};

/// A lightweight integer register file tracking the values the front end
/// would see on a speculative path.
///
/// Seeded from committed correct-path results at dispatch; wrong-path
/// instructions update it via [`exec_approx`](Self::exec_approx).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShadowRegs {
    int: [u64; 32],
}

impl Default for ShadowRegs {
    fn default() -> Self {
        Self::new()
    }
}

impl ShadowRegs {
    /// All-zero shadow state.
    pub fn new() -> Self {
        ShadowRegs { int: [0; 32] }
    }

    /// Read a shadow register.
    #[inline]
    pub fn read(&self, r: Reg) -> u64 {
        self.int[r.index()]
    }

    /// Write a shadow register (writes to `r0` are discarded).
    #[inline]
    pub fn write(&mut self, r: Reg, v: u64) {
        if r != Reg::R0 {
            self.int[r.index()] = v;
        }
    }

    /// Record the committed result of a correct-path instruction so the
    /// shadow stays synchronized with architectural state at the point
    /// speculation might begin.
    #[inline]
    pub fn observe_commit(&mut self, dst: Option<Reg>, value: u64) {
        if let Some(r) = dst {
            self.write(r, value);
        }
    }

    /// Approximately execute a wrong-path instruction: computes ALU
    /// results exactly from shadow values, returns the effective address
    /// for memory operations, and yields zero for loads (their values
    /// are unavailable by design).
    ///
    /// Returns the effective data address if the instruction is a memory
    /// operation.
    pub fn exec_approx(&mut self, inst: &Inst) -> Option<u64> {
        match *inst {
            Inst::Alu { op, rd, rs1, rs2 } => {
                let v = alu(op, self.read(rs1), self.read(rs2));
                self.write(rd, v);
                None
            }
            Inst::AluImm { op, rd, rs1, imm } => {
                let v = alu(op, self.read(rs1), imm as u64);
                self.write(rd, v);
                None
            }
            Inst::Mul { rd, rs1, rs2 } => {
                let v = self.read(rs1).wrapping_mul(self.read(rs2));
                self.write(rd, v);
                None
            }
            Inst::Div { rd, rs1, rs2 } => {
                let a = self.read(rs1);
                let b = self.read(rs2);
                // Same zero-divisor convention as the emulator.
                self.write(rd, a.checked_div(b).unwrap_or(a));
                None
            }
            Inst::Load { rd, rs1, imm } => {
                let addr = self.read(rs1).wrapping_add(imm as u64);
                // The loaded value is unknown on the wrong path.
                self.write(rd, 0);
                Some(addr)
            }
            Inst::FpLoad { rs1, imm, .. } => Some(self.read(rs1).wrapping_add(imm as u64)),
            Inst::Store { rs1, imm, .. } | Inst::FpStore { rs1, imm, .. } => {
                Some(self.read(rs1).wrapping_add(imm as u64))
            }
            Inst::Jump { rd, .. } => {
                // Link value is not meaningful off-path; zero it.
                self.write(rd, 0);
                None
            }
            // FP values never feed addresses in SRISC; skip them.
            Inst::Fp { .. } | Inst::FpMul { .. } | Inst::FpDiv { .. } => None,
            Inst::Branch { .. } | Inst::JumpReg { .. } | Inst::Halt | Inst::Nop => None,
        }
    }
}

#[inline]
fn alu(op: AluOp, a: u64, b: u64) -> u64 {
    match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::And => a & b,
        AluOp::Or => a | b,
        AluOp::Xor => a ^ b,
        AluOp::Shl => a.wrapping_shl((b & 63) as u32),
        AluOp::Shr => a.wrapping_shr((b & 63) as u32),
        AluOp::Slt => ((a as i64) < (b as i64)) as u64,
    }
}

// Silence the "unused import" for FpOp referenced only in match arms via
// wildcard; keep explicit import for documentation clarity.
#[allow(unused)]
fn _fp_marker(_: FpOp) {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alu_tracks_exactly() {
        let mut s = ShadowRegs::new();
        s.write(Reg::R1, 10);
        s.exec_approx(&Inst::AluImm { op: AluOp::Add, rd: Reg::R2, rs1: Reg::R1, imm: 5 });
        assert_eq!(s.read(Reg::R2), 15);
        s.exec_approx(&Inst::Alu { op: AluOp::Shl, rd: Reg::R3, rs1: Reg::R2, rs2: Reg::R0 });
        assert_eq!(s.read(Reg::R3), 15);
    }

    #[test]
    fn load_address_from_shadow_base() {
        let mut s = ShadowRegs::new();
        s.write(Reg::R5, 0x1000);
        let addr = s.exec_approx(&Inst::Load { rd: Reg::R6, rs1: Reg::R5, imm: 0x20 });
        assert_eq!(addr, Some(0x1020));
        assert_eq!(s.read(Reg::R6), 0, "wrong-path load value unknown");
    }

    #[test]
    fn store_address_no_reg_change() {
        let mut s = ShadowRegs::new();
        s.write(Reg::R5, 0x2000);
        s.write(Reg::R7, 42);
        let addr = s.exec_approx(&Inst::Store { rs1: Reg::R5, rs2: Reg::R7, imm: 8 });
        assert_eq!(addr, Some(0x2008));
        assert_eq!(s.read(Reg::R7), 42);
    }

    #[test]
    fn observe_commit_syncs() {
        let mut s = ShadowRegs::new();
        s.observe_commit(Some(Reg::R9), 77);
        assert_eq!(s.read(Reg::R9), 77);
        s.observe_commit(None, 123);
        assert_eq!(s.read(Reg::R9), 77);
    }

    #[test]
    fn r0_stays_zero() {
        let mut s = ShadowRegs::new();
        s.exec_approx(&Inst::AluImm { op: AluOp::Add, rd: Reg::R0, rs1: Reg::R0, imm: 9 });
        assert_eq!(s.read(Reg::R0), 0);
    }
}
