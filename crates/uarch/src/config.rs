//! Machine configurations (the paper's Table 1).

use crate::bpred::BpredConfig;
use spectral_cache::HierarchyConfig;

/// Functional-unit pool sizes per class (Table 1's "Functional units").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuPools {
    /// Integer ALUs (1-cycle, pipelined).
    pub int_alu: u32,
    /// Integer multiply/divide units (divide is unpipelined).
    pub int_muldiv: u32,
    /// FP adders (pipelined).
    pub fp_alu: u32,
    /// FP multiply/divide units (divide is unpipelined).
    pub fp_muldiv: u32,
    /// L1D ports (loads issuing + store-buffer drains per cycle).
    pub mem_ports: u32,
}

/// Operation and memory latencies in cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyConfig {
    /// L1 hit latency.
    pub l1: u64,
    /// L2 hit latency (load-use).
    pub l2: u64,
    /// Main-memory latency (load-use).
    pub mem: u64,
    /// TLB miss penalty (Table 1: 200 cycles).
    pub tlb_miss: u64,
    /// Integer multiply.
    pub int_mul: u64,
    /// Integer divide (unpipelined).
    pub int_div: u64,
    /// FP add/sub/compare.
    pub fp_alu: u64,
    /// FP multiply.
    pub fp_mul: u64,
    /// FP divide (unpipelined).
    pub fp_div: u64,
}

/// A complete machine configuration: pipeline widths, queue sizes,
/// functional units, memory hierarchy, latencies, and branch predictor.
///
/// [`eight_way`](Self::eight_way) and [`sixteen_way`](Self::sixteen_way)
/// reproduce the paper's Table 1 columns; builder-style `with_*` methods
/// derive sensitivity-study variants (the paper's §6.2 experiments vary
/// latencies, queue sizes, and FU mixes).
#[derive(Debug, Clone, PartialEq)]
pub struct MachineConfig {
    /// Fetch/decode/issue/commit width.
    pub width: u32,
    /// RUU (unified ROB + issue window) entries.
    pub ruu_size: u32,
    /// Load/store queue entries.
    pub lsq_size: u32,
    /// Post-commit store buffer entries.
    pub store_buffer: u32,
    /// Miss status holding registers (outstanding misses).
    pub mshrs: u32,
    /// Functional-unit pools.
    pub fu: FuPools,
    /// Cache/TLB geometry.
    pub hierarchy: HierarchyConfig,
    /// Latencies.
    pub lat: LatencyConfig,
    /// Branch predictor configuration.
    pub bpred: BpredConfig,
    /// Detailed-warming length the sample design should use with this
    /// machine (Table 1: 2000 for 8-way, 4000 for 16-way).
    pub detailed_warming: u64,
    /// Whether the timing model fetches and approximately executes
    /// wrong-path instructions (default `true`). Disabling this is the
    /// DESIGN.md ablation for the paper's §5 argument that wrong-path
    /// effects "cannot be ignored given our tight bias goals": with it
    /// off, the front end idles from a mispredicted fetch until the
    /// branch resolves.
    pub model_wrong_path: bool,
    /// Human-readable configuration name.
    pub name: &'static str,
}

impl MachineConfig {
    /// The paper's baseline 8-way out-of-order superscalar (Table 1).
    pub fn eight_way() -> Self {
        MachineConfig {
            width: 8,
            ruu_size: 128,
            lsq_size: 64,
            store_buffer: 16,
            mshrs: 8,
            fu: FuPools { int_alu: 4, int_muldiv: 2, fp_alu: 2, fp_muldiv: 1, mem_ports: 2 },
            hierarchy: HierarchyConfig::baseline_8way(),
            lat: LatencyConfig {
                l1: 1,
                l2: 12,
                mem: 100,
                tlb_miss: 200,
                int_mul: 3,
                int_div: 20,
                fp_alu: 2,
                fp_mul: 4,
                fp_div: 12,
            },
            bpred: BpredConfig::paper_2k(),
            detailed_warming: 2000,
            model_wrong_path: true,
            name: "8-way",
        }
    }

    /// The paper's aggressive 16-way configuration (Table 1).
    pub fn sixteen_way() -> Self {
        MachineConfig {
            width: 16,
            ruu_size: 256,
            lsq_size: 128,
            store_buffer: 32,
            mshrs: 16,
            fu: FuPools { int_alu: 16, int_muldiv: 8, fp_alu: 8, fp_muldiv: 4, mem_ports: 4 },
            hierarchy: HierarchyConfig::aggressive_16way(),
            lat: LatencyConfig {
                l1: 2,
                l2: 16,
                mem: 100,
                tlb_miss: 200,
                int_mul: 3,
                int_div: 20,
                fp_alu: 2,
                fp_mul: 4,
                fp_div: 12,
            },
            bpred: BpredConfig::paper_8k(),
            detailed_warming: 4000,
            model_wrong_path: true,
            name: "16-way",
        }
    }

    /// Variant with a different main-memory latency (sensitivity studies).
    pub fn with_mem_latency(mut self, cycles: u64) -> Self {
        self.lat.mem = cycles;
        self.name = "custom";
        self
    }

    /// Variant with different RUU/LSQ sizes (sensitivity studies).
    ///
    /// # Panics
    ///
    /// Panics if either size is zero.
    pub fn with_queues(mut self, ruu: u32, lsq: u32) -> Self {
        assert!(ruu > 0 && lsq > 0, "queue sizes must be positive");
        self.ruu_size = ruu;
        self.lsq_size = lsq;
        self.name = "custom";
        self
    }

    /// Variant with a different functional-unit mix (sensitivity studies).
    pub fn with_fu(mut self, fu: FuPools) -> Self {
        self.fu = fu;
        self.name = "custom";
        self
    }

    /// Variant with a different cache hierarchy (must respect any
    /// live-point library bounds; see `spectral-core`).
    pub fn with_hierarchy(mut self, hierarchy: HierarchyConfig) -> Self {
        self.hierarchy = hierarchy;
        self.name = "custom";
        self
    }

    /// Ablation variant that does not model wrong-path execution: the
    /// front end idles from a mispredicted fetch until resolution.
    pub fn without_wrong_path(mut self) -> Self {
        self.model_wrong_path = false;
        self.name = "custom";
        self
    }

    /// Latency for a cache access outcome, in cycles.
    pub fn access_latency(&self, level: spectral_cache::HitLevel, tlb_miss: bool) -> u64 {
        let base = match level {
            spectral_cache::HitLevel::L1 => self.lat.l1,
            spectral_cache::HitLevel::L2 => self.lat.l2,
            spectral_cache::HitLevel::Memory => self.lat.mem,
        };
        base + if tlb_miss { self.lat.tlb_miss } else { 0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spectral_cache::HitLevel;

    #[test]
    fn table1_eight_way() {
        let c = MachineConfig::eight_way();
        assert_eq!(c.width, 8);
        assert_eq!((c.ruu_size, c.lsq_size), (128, 64));
        assert_eq!(c.store_buffer, 16);
        assert_eq!(c.mshrs, 8);
        assert_eq!(c.fu.int_alu, 4);
        assert_eq!(c.fu.fp_muldiv, 1);
        assert_eq!((c.lat.l1, c.lat.l2, c.lat.mem), (1, 12, 100));
        assert_eq!(c.lat.tlb_miss, 200);
        assert_eq!(c.detailed_warming, 2000);
    }

    #[test]
    fn table1_sixteen_way() {
        let c = MachineConfig::sixteen_way();
        assert_eq!(c.width, 16);
        assert_eq!((c.ruu_size, c.lsq_size), (256, 128));
        assert_eq!(c.store_buffer, 32);
        assert_eq!(c.mshrs, 16);
        assert_eq!(c.fu.int_alu, 16);
        assert_eq!((c.lat.l1, c.lat.l2), (2, 16));
        assert_eq!(c.detailed_warming, 4000);
    }

    #[test]
    fn access_latency_composes_tlb() {
        let c = MachineConfig::eight_way();
        assert_eq!(c.access_latency(HitLevel::L1, false), 1);
        assert_eq!(c.access_latency(HitLevel::L2, false), 12);
        assert_eq!(c.access_latency(HitLevel::Memory, true), 300);
    }

    #[test]
    fn builder_variants() {
        let c = MachineConfig::eight_way().with_mem_latency(200).with_queues(64, 32);
        assert_eq!(c.lat.mem, 200);
        assert_eq!(c.ruu_size, 64);
        assert_eq!(c.name, "custom");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_queue_rejected() {
        MachineConfig::eight_way().with_queues(0, 8);
    }
}
