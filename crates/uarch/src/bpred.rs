//! Combined branch predictor: bimodal + gshare + meta chooser, with a
//! BTB and return-address stack.
//!
//! Matches the paper's Table 1 predictors ("Combined 2K tables" /
//! "Combined 8K tables"). Prediction is **pure** (no state change);
//! all state updates happen at [`update`](BranchPredictor::update),
//! driven either by functional warming or by the timing model's commit
//! stage. This keeps warm predictor state identical across warming
//! strategies — the property the paper's bias comparisons rely on.

use spectral_isa::BranchInfo;

/// Predictor geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BpredConfig {
    /// Entries in each of the bimodal, gshare, and meta tables
    /// (power of two).
    pub table_entries: u32,
    /// Global-history bits used by gshare.
    pub history_bits: u32,
    /// BTB entries (direct-mapped on the low PC bits).
    pub btb_entries: u32,
    /// Return-address stack depth.
    pub ras_entries: u32,
    /// Extra fetch-redirect penalty on a mispredict, in cycles
    /// (Table 1: 7 for 2K tables, 10 for 8K).
    pub mispredict_penalty: u64,
    /// Conditional-branch predictions per cycle (Table 1: 1 / 2).
    pub predictions_per_cycle: u32,
}

impl BpredConfig {
    /// Table 1's "Combined 2K tables, 7 cycle mispred., 1 prediction/cycle".
    pub fn paper_2k() -> Self {
        BpredConfig {
            table_entries: 2048,
            history_bits: 11,
            btb_entries: 512,
            ras_entries: 8,
            mispredict_penalty: 7,
            predictions_per_cycle: 1,
        }
    }

    /// Table 1's "Combined 8K tables, 10 cycle mispred., 2 predictions/cycle".
    pub fn paper_8k() -> Self {
        BpredConfig {
            table_entries: 8192,
            history_bits: 13,
            btb_entries: 1024,
            ras_entries: 16,
            mispredict_penalty: 10,
            predictions_per_cycle: 2,
        }
    }

    /// Approximate uncompressed state size in bytes (three 2-bit tables
    /// plus BTB tags+targets plus the RAS) — the quantity charged to the
    /// branch-predictor slice of Fig 7's live-point breakdown.
    pub fn state_bytes(&self) -> u64 {
        let tables = 3 * (self.table_entries as u64 * 2).div_ceil(8);
        let btb = self.btb_entries as u64 * 12; // packed tag + target
        let ras = self.ras_entries as u64 * 8;
        tables + btb + ras + 8 // + history register
    }
}

/// One prediction for a fetched control instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Prediction {
    /// Predicted direction (always `true` for unconditional transfers).
    pub taken: bool,
    /// Predicted target address, if one is available (direct targets
    /// come from decode; indirect targets from BTB/RAS — `None` means
    /// the front end has no target and must stall until resolution).
    pub target: Option<u64>,
}

/// Warm predictor state, as stored in live-points.
///
/// The paper stores one snapshot per *user-selected predictor
/// configuration* (multiple-configuration approach, §4.3); a snapshot
/// can only be loaded into a predictor with identical geometry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BpredSnapshot {
    /// Geometry the snapshot was taken under.
    pub config: BpredConfig,
    /// Bimodal 2-bit counters.
    pub bimodal: Vec<u8>,
    /// Gshare 2-bit counters.
    pub gshare: Vec<u8>,
    /// Meta-chooser 2-bit counters.
    pub meta: Vec<u8>,
    /// Global history register.
    pub history: u64,
    /// BTB entries `(pc, target)`, zero-pc slots empty.
    pub btb: Vec<(u64, u64)>,
    /// Return-address stack contents (bottom first) and top pointer.
    pub ras: Vec<u64>,
    /// RAS top-of-stack index.
    pub ras_top: u32,
}

/// Precomputed table-index reducer: `x & (n-1)` when `n` is a power of
/// two (every paper geometry is), `x % n` otherwise. The two are
/// bit-identical for power-of-two `n`, so warm state and predictions
/// are unaffected — this only removes an integer divide from the
/// per-prediction hot path.
#[derive(Debug, Clone, Copy)]
struct TableIndex {
    n: u64,
    /// `n - 1` when `n` is a power of two, else `u64::MAX` sentinel.
    mask: u64,
}

impl TableIndex {
    fn new(n: u32) -> Self {
        let n = u64::from(n);
        TableIndex { n, mask: if n.is_power_of_two() { n - 1 } else { u64::MAX } }
    }

    #[inline]
    fn reduce(self, x: u64) -> usize {
        if self.mask != u64::MAX {
            (x & self.mask) as usize
        } else {
            (x % self.n) as usize
        }
    }
}

/// The combined predictor.
#[derive(Debug, Clone)]
pub struct BranchPredictor {
    config: BpredConfig,
    bimodal: Vec<u8>,
    gshare: Vec<u8>,
    meta: Vec<u8>,
    history: u64,
    btb: Vec<(u64, u64)>,
    ras: Vec<u64>,
    ras_top: u32,
    // Derived indexing state (not part of snapshots).
    table_idx: TableIndex,
    btb_idx: TableIndex,
    ras_idx: TableIndex,
    history_mask: u64,
    // statistics
    lookups: u64,
    dir_mispredicts: u64,
}

impl BranchPredictor {
    /// Create a cold predictor (all counters weakly not-taken).
    pub fn new(config: BpredConfig) -> Self {
        BranchPredictor {
            config,
            bimodal: vec![1; config.table_entries as usize],
            gshare: vec![1; config.table_entries as usize],
            meta: vec![2; config.table_entries as usize], // weakly prefer gshare
            history: 0,
            btb: vec![(0, 0); config.btb_entries as usize],
            ras: vec![0; config.ras_entries as usize],
            ras_top: 0,
            table_idx: TableIndex::new(config.table_entries),
            btb_idx: TableIndex::new(config.btb_entries),
            ras_idx: TableIndex::new(config.ras_entries),
            history_mask: (1u64 << config.history_bits) - 1,
            lookups: 0,
            dir_mispredicts: 0,
        }
    }

    /// The predictor's geometry.
    pub fn config(&self) -> &BpredConfig {
        &self.config
    }

    #[inline]
    fn bim_index(&self, pc: u64) -> usize {
        self.table_idx.reduce(pc >> 2)
    }

    #[inline]
    fn gs_index(&self, pc: u64) -> usize {
        self.table_idx.reduce((pc >> 2) ^ (self.history & self.history_mask))
    }

    #[inline]
    fn btb_index(&self, pc: u64) -> usize {
        self.btb_idx.reduce(pc >> 2)
    }

    /// Predict the direction of a conditional branch at `pc`
    /// (pure — no state change).
    pub fn predict_direction(&self, pc: u64) -> bool {
        let bim = self.bimodal[self.bim_index(pc)] >= 2;
        let gs = self.gshare[self.gs_index(pc)] >= 2;
        let use_gshare = self.meta[self.bim_index(pc)] >= 2;
        if use_gshare {
            gs
        } else {
            bim
        }
    }

    /// Look up the BTB target for `pc` (pure).
    pub fn btb_target(&self, pc: u64) -> Option<u64> {
        let (tag, target) = self.btb[self.btb_index(pc)];
        (tag == pc).then_some(target)
    }

    /// Peek the RAS top (pure); the timing model pops via
    /// [`ras_pop`](Self::ras_pop) at fetch and repairs on recovery with
    /// [`ras_restore`](Self::ras_restore).
    pub fn ras_peek(&self) -> u64 {
        let idx =
            self.ras_idx.reduce(u64::from(self.ras_top) + u64::from(self.config.ras_entries) - 1);
        self.ras[idx]
    }

    /// Push a return address (speculative, at fetch of a call).
    pub fn ras_push(&mut self, addr: u64) {
        self.ras[self.ras_top as usize] = addr;
        self.ras_top = self.ras_idx.reduce(u64::from(self.ras_top) + 1) as u32;
    }

    /// Pop a return address (speculative, at fetch of a return).
    pub fn ras_pop(&mut self) -> u64 {
        self.ras_top =
            self.ras_idx.reduce(u64::from(self.ras_top) + u64::from(self.config.ras_entries) - 1)
                as u32;
        self.ras[self.ras_top as usize]
    }

    /// Current RAS top pointer, checkpointed at predicted branches.
    pub fn ras_tos(&self) -> u32 {
        self.ras_top
    }

    /// Restore the RAS top pointer after a squash.
    pub fn ras_restore(&mut self, tos: u32) {
        self.ras_top = self.ras_idx.reduce(u64::from(tos)) as u32;
    }

    /// Commit-time (or functional-warming) update with the actual
    /// outcome of the control instruction at `pc`.
    ///
    /// Conditional branches train the direction tables and history;
    /// taken transfers install BTB entries; calls push and returns pop
    /// the RAS (architectural RAS state — speculative pushes/pops by the
    /// front end are repaired by the pipeline via
    /// [`ras_restore`](Self::ras_restore)).
    pub fn update(&mut self, pc: u64, fall_through: u64, info: &BranchInfo) {
        self.lookups += 1;
        if info.conditional {
            let predicted = self.predict_direction(pc);
            if predicted != info.taken {
                self.dir_mispredicts += 1;
            }
            let taken = info.taken;
            let bi = self.bim_index(pc);
            let gi = self.gs_index(pc);
            let bim_correct = (self.bimodal[bi] >= 2) == taken;
            let gs_correct = (self.gshare[gi] >= 2) == taken;
            bump(&mut self.bimodal[bi], taken);
            bump(&mut self.gshare[gi], taken);
            // Meta trains toward whichever component was right.
            if gs_correct != bim_correct {
                bump(&mut self.meta[bi], gs_correct);
            }
            self.history = ((self.history << 1) | taken as u64) & self.history_mask;
        }
        if info.taken {
            let idx = self.btb_index(pc);
            self.btb[idx] = (pc, info.target);
        }
        if info.is_call {
            self.ras_push(fall_through);
        } else if info.is_return {
            self.ras_pop();
        }
    }

    /// Lifetime conditional-branch lookups seen by `update`.
    pub fn lookups(&self) -> u64 {
        self.lookups
    }

    /// Lifetime direction mispredicts measured at `update`.
    pub fn dir_mispredicts(&self) -> u64 {
        self.dir_mispredicts
    }

    /// Zero the statistics counters.
    pub fn reset_stats(&mut self) {
        self.lookups = 0;
        self.dir_mispredicts = 0;
    }

    /// Export warm state.
    pub fn snapshot(&self) -> BpredSnapshot {
        BpredSnapshot {
            config: self.config,
            bimodal: self.bimodal.clone(),
            gshare: self.gshare.clone(),
            meta: self.meta.clone(),
            history: self.history,
            btb: self.btb.clone(),
            ras: self.ras.clone(),
            ras_top: self.ras_top,
        }
    }

    /// Restore a predictor from warm state.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot's geometry differs from its table sizes
    /// (corrupt snapshot).
    pub fn from_snapshot(snap: &BpredSnapshot) -> Self {
        let config = snap.config;
        assert_eq!(snap.bimodal.len(), config.table_entries as usize, "corrupt snapshot");
        assert_eq!(snap.btb.len(), config.btb_entries as usize, "corrupt snapshot");
        BranchPredictor {
            config,
            bimodal: snap.bimodal.clone(),
            gshare: snap.gshare.clone(),
            meta: snap.meta.clone(),
            history: snap.history,
            btb: snap.btb.clone(),
            ras: snap.ras.clone(),
            ras_top: snap.ras_top,
            table_idx: TableIndex::new(config.table_entries),
            btb_idx: TableIndex::new(config.btb_entries),
            ras_idx: TableIndex::new(config.ras_entries),
            history_mask: (1u64 << config.history_bits) - 1,
            lookups: 0,
            dir_mispredicts: 0,
        }
    }
}

#[inline]
fn bump(counter: &mut u8, up: bool) {
    if up {
        *counter = (*counter + 1).min(3);
    } else {
        *counter = counter.saturating_sub(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn taken_branch(target: u64) -> BranchInfo {
        BranchInfo {
            taken: true,
            target,
            conditional: true,
            indirect: false,
            is_call: false,
            is_return: false,
        }
    }

    fn not_taken_branch() -> BranchInfo {
        BranchInfo {
            taken: false,
            target: 0x9999,
            conditional: true,
            indirect: false,
            is_call: false,
            is_return: false,
        }
    }

    #[test]
    fn learns_always_taken() {
        let mut p = BranchPredictor::new(BpredConfig::paper_2k());
        let pc = 0x40_0100;
        for _ in 0..8 {
            p.update(pc, pc + 4, &taken_branch(0x40_0200));
        }
        assert!(p.predict_direction(pc));
        assert_eq!(p.btb_target(pc), Some(0x40_0200));
    }

    #[test]
    fn learns_always_not_taken() {
        let mut p = BranchPredictor::new(BpredConfig::paper_2k());
        let pc = 0x40_0104;
        for _ in 0..8 {
            p.update(pc, pc + 4, &not_taken_branch());
        }
        assert!(!p.predict_direction(pc));
    }

    #[test]
    fn gshare_learns_alternation() {
        // A strict T/NT alternation defeats bimodal but gshare + meta
        // should converge on it.
        let mut p = BranchPredictor::new(BpredConfig::paper_2k());
        let pc = 0x40_0108;
        let mut correct = 0;
        let trials = 600;
        for i in 0..trials {
            let taken = i % 2 == 0;
            if p.predict_direction(pc) == taken {
                correct += 1;
            }
            let mut info = taken_branch(0x40_0300);
            info.taken = taken;
            p.update(pc, pc + 4, &info);
        }
        assert!(
            correct * 10 > trials * 8,
            "alternating branch should be >80% predictable, got {correct}/{trials}"
        );
    }

    #[test]
    fn prediction_is_pure() {
        let mut p = BranchPredictor::new(BpredConfig::paper_2k());
        p.update(0x40_0100, 0x40_0104, &taken_branch(0x40_0200));
        let snap = p.snapshot();
        let _ = p.predict_direction(0x40_0100);
        let _ = p.btb_target(0x40_0100);
        let _ = p.ras_peek();
        assert_eq!(p.snapshot(), snap, "lookups must not mutate state");
    }

    #[test]
    fn ras_push_pop_lifo() {
        let mut p = BranchPredictor::new(BpredConfig::paper_2k());
        p.ras_push(0x1000);
        p.ras_push(0x2000);
        assert_eq!(p.ras_pop(), 0x2000);
        assert_eq!(p.ras_pop(), 0x1000);
    }

    #[test]
    fn ras_restore_repairs_speculation() {
        let mut p = BranchPredictor::new(BpredConfig::paper_2k());
        p.ras_push(0x1000);
        let tos = p.ras_tos();
        p.ras_push(0xBAD); // wrong-path push
        p.ras_restore(tos);
        assert_eq!(p.ras_pop(), 0x1000);
    }

    #[test]
    fn snapshot_roundtrip() {
        let mut p = BranchPredictor::new(BpredConfig::paper_2k());
        for i in 0..500u64 {
            let pc = 0x40_0000 + (i % 37) * 4;
            let mut info = taken_branch(pc + 400);
            info.taken = i % 3 != 0;
            p.update(pc, pc + 4, &info);
        }
        let snap = p.snapshot();
        let q = BranchPredictor::from_snapshot(&snap);
        assert_eq!(q.snapshot(), snap);
        // Same predictions everywhere.
        for i in 0..37u64 {
            let pc = 0x40_0000 + i * 4;
            assert_eq!(p.predict_direction(pc), q.predict_direction(pc));
            assert_eq!(p.btb_target(pc), q.btb_target(pc));
        }
    }

    #[test]
    fn mispredict_stats_track() {
        let mut p = BranchPredictor::new(BpredConfig::paper_2k());
        let pc = 0x40_0100;
        for _ in 0..20 {
            p.update(pc, pc + 4, &taken_branch(0x40_0200));
        }
        let before = p.dir_mispredicts();
        p.update(pc, pc + 4, &not_taken_branch()); // surprise
        assert_eq!(p.dir_mispredicts(), before + 1);
        assert_eq!(p.lookups(), 21);
    }

    #[test]
    fn state_bytes_sane() {
        // 2K tables: 3 * 512B + BTB 512*12 + RAS 64 + 8 ≈ 7.7 KB.
        let b = BpredConfig::paper_2k().state_bytes();
        assert!(b > 4_000 && b < 16_000, "{b}");
        assert!(BpredConfig::paper_8k().state_bytes() > b);
    }
}
