//! The out-of-order pipeline: fetch/dispatch, issue, writeback, commit.
//!
//! Structure follows SimpleScalar's `sim-outorder`: a unified RUU
//! (reorder buffer + issue window), an LSQ, a post-commit store buffer,
//! MSHR-limited cache misses, per-class functional-unit pools, and a
//! front end that runs down predicted paths — including *wrong* paths
//! after a mispredict, executed approximately against shadow register
//! state and cache tags (see [`crate::wrongpath`]).
//!
//! The correct-path oracle is a functional [`Emulator`] advanced at
//! fetch; wrong-path instructions are synthesized from the static
//! program image at the speculative fetch PC.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};

use spectral_cache::{AccessKind, CacheHierarchy, HitLevel};
use spectral_isa::{
    inst_index, BranchInfo, DecodedInst, DecodedProgram, Emulator, Inst, OpClass, Program, Reg,
};
use spectral_telemetry::Counter;

use crate::bpred::BranchPredictor;
use crate::config::MachineConfig;
use crate::stats::WindowStats;
use crate::wrongpath::ShadowRegs;

const INVALID_UID: u64 = u64::MAX;

// Process-wide pipeline counters, flushed once per `run`/
// `run_to_completion` (never per instruction) so the hot loop stays
// untouched. All compile to no-ops without the `telemetry` feature.
static TLM_FETCH_INSTS: Counter = Counter::new("uarch.fetch.insts");
static TLM_WRONG_PATH_INSTS: Counter = Counter::new("uarch.fetch.wrong_path_insts");
static TLM_ISSUE_INSTS: Counter = Counter::new("uarch.issue.insts");
static TLM_COMMIT_INSTS: Counter = Counter::new("uarch.commit.insts");
static TLM_CYCLES: Counter = Counter::new("uarch.commit.cycles");
static TLM_MISPREDICTS: Counter = Counter::new("uarch.bpred.mispredicts");
static TLM_L1D_MISSES: Counter = Counter::new("uarch.cache.l1d_misses");
static TLM_L2_MISSES: Counter = Counter::new("uarch.cache.l2_misses");

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MemClass {
    Load { forwarded: bool },
    Store,
}

#[derive(Debug, Clone)]
struct Entry {
    uid: u64,
    wrong_path: bool,
    op: OpClass,
    pc: u64,
    fall_through: u64,
    /// Outstanding (not-yet-complete) producers this entry waits on.
    /// When it reaches zero the entry enters the ready queue; issue no
    /// longer scans dependences at all.
    deps_left: u8,
    /// Uids of in-flight consumers to wake when this entry completes
    /// (the backing `Vec` is recycled through `DetailedSim::consumer_pool`
    /// so steady state allocates nothing).
    consumers: Vec<u64>,
    dst_int: Option<Reg>,
    dst_fp: Option<u8>,
    mem: Option<(MemClass, u64)>,
    issued: bool,
    complete: bool,
    complete_cycle: u64,
    /// Mispredicted correct-path branch: actual next PC to recover to.
    recover_to: Option<u64>,
    /// Branch outcome for commit-time predictor training.
    train: Option<BranchInfo>,
}

#[derive(Debug, Clone)]
struct Recovery {
    resolver_uid: u64,
    shadow: ShadowRegs,
    ras_tos: u32,
}

/// The cycle-level out-of-order timing simulator.
///
/// Construct with a cold ([`new`](Self::new)) or warmed
/// ([`with_state`](Self::with_state)) memory system and branch
/// predictor, then call [`run`](Self::run) to simulate a given number of
/// committed instructions. Accessors expose the warm structures so
/// warming strategies and live-point creation can snapshot or install
/// state.
#[derive(Debug)]
pub struct DetailedSim<'p> {
    cfg: MachineConfig,
    program: &'p Program,
    decoded: &'p DecodedProgram,
    oracle: Emulator<'p>,
    hierarchy: CacheHierarchy,
    bpred: BranchPredictor,
    shadow: ShadowRegs,

    cycle: u64,
    ruu: VecDeque<Entry>,
    next_uid: u64,
    lsq_count: u32,
    sbuf: VecDeque<u64>,
    mshr_busy_until: Vec<u64>,
    int_muldiv_busy: Vec<u64>,
    fp_muldiv_busy: Vec<u64>,

    int_producer: [u64; 32],
    fp_producer: [u64; 32],

    /// Unissued entries whose dependences are all satisfied, kept in
    /// ascending-uid (program) order so issue arbitration matches the
    /// old full-RUU scan bit for bit.
    ready: Vec<u64>,
    /// Entries woken since the last issue pass (by writeback or
    /// dispatch); merged into `ready` at the top of `issue_stage`.
    woken: Vec<u64>,
    /// Pending completion events `(complete_cycle, uid)` for issued
    /// entries — writeback pops due events instead of scanning the RUU.
    events: BinaryHeap<Reverse<(u64, u64)>>,
    /// Youngest in-flight store to each 8-byte word, replacing the
    /// reverse RUU scan in store-to-load dependence checks.
    store_by_word: HashMap<u64, u64>,
    /// Recycled consumer-list allocations.
    consumer_pool: Vec<Vec<u64>>,

    fetch_pc: u64,
    fetch_resume: u64,
    line_ready: (u64, u64), // (line number, ready cycle); line u64::MAX = none
    wrong_path: bool,
    recovery: Option<Recovery>,
    oracle_done: bool,
    commit_stop: u64,

    stats: WindowStats,
    fetched_insts: u64,
    issued_insts: u64,
}

impl<'p> DetailedSim<'p> {
    /// Create a simulator with cold caches and predictor, with the
    /// correct-path oracle positioned wherever `oracle` currently is.
    pub fn new(cfg: &MachineConfig, program: &'p Program, oracle: Emulator<'p>) -> Self {
        let hierarchy = CacheHierarchy::new(cfg.hierarchy);
        let bpred = BranchPredictor::new(cfg.bpred);
        Self::with_state(cfg, program, oracle, hierarchy, bpred)
    }

    /// Create a simulator over pre-warmed memory-system and predictor
    /// state (the checkpointed-warming path).
    ///
    /// # Panics
    ///
    /// Panics if `hierarchy`'s geometry differs from `cfg.hierarchy`.
    pub fn with_state(
        cfg: &MachineConfig,
        program: &'p Program,
        oracle: Emulator<'p>,
        hierarchy: CacheHierarchy,
        bpred: BranchPredictor,
    ) -> Self {
        assert_eq!(
            hierarchy.config(),
            &cfg.hierarchy,
            "warm hierarchy geometry must match the machine configuration"
        );
        let fetch_pc = oracle.pc();
        DetailedSim {
            cfg: cfg.clone(),
            program,
            decoded: program.decoded(),
            oracle,
            hierarchy,
            bpred,
            shadow: ShadowRegs::new(),
            cycle: 0,
            ruu: VecDeque::new(),
            next_uid: 0,
            lsq_count: 0,
            sbuf: VecDeque::new(),
            mshr_busy_until: vec![0; cfg.mshrs as usize],
            int_muldiv_busy: vec![0; cfg.fu.int_muldiv as usize],
            fp_muldiv_busy: vec![0; cfg.fu.fp_muldiv as usize],
            int_producer: [INVALID_UID; 32],
            fp_producer: [INVALID_UID; 32],
            ready: Vec::new(),
            woken: Vec::new(),
            events: BinaryHeap::new(),
            store_by_word: HashMap::new(),
            consumer_pool: Vec::new(),
            fetch_pc,
            fetch_resume: 0,
            line_ready: (u64::MAX, 0),
            wrong_path: false,
            recovery: None,
            oracle_done: false,
            commit_stop: u64::MAX,
            stats: WindowStats::default(),
            fetched_insts: 0,
            issued_insts: 0,
        }
    }

    /// The machine configuration being simulated.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Shared view of the memory hierarchy (warm-state snapshotting).
    pub fn hierarchy(&self) -> &CacheHierarchy {
        &self.hierarchy
    }

    /// Shared view of the branch predictor.
    pub fn bpred(&self) -> &BranchPredictor {
        &self.bpred
    }

    /// Shared view of the correct-path oracle.
    pub fn oracle(&self) -> &Emulator<'p> {
        &self.oracle
    }

    /// Cumulative statistics since construction.
    pub fn stats(&self) -> WindowStats {
        self.stats
    }

    /// Whether the oracle has exhausted the program and the pipeline has
    /// drained.
    pub fn is_done(&self) -> bool {
        self.oracle_done && self.ruu.is_empty()
    }

    /// Simulate until exactly `n` more instructions commit (or the
    /// program ends); returns the statistics delta for the interval.
    ///
    /// Commit is capped at the boundary so measurement intervals contain
    /// exactly the instructions the sample design specified.
    pub fn run(&mut self, n: u64) -> WindowStats {
        let start = self.stats;
        let (fetched0, issued0) = (self.fetched_insts, self.issued_insts);
        self.commit_stop = start.committed + n;
        while self.stats.committed < self.commit_stop && !self.is_done() {
            self.step_cycle();
        }
        self.commit_stop = u64::MAX;
        let delta = self.stats.since(&start);
        self.flush_telemetry(&delta, fetched0, issued0);
        delta
    }

    /// Simulate until the program ends and the pipeline drains; returns
    /// the statistics delta.
    pub fn run_to_completion(&mut self) -> WindowStats {
        let start = self.stats;
        let (fetched0, issued0) = (self.fetched_insts, self.issued_insts);
        while !self.is_done() {
            self.step_cycle();
        }
        let delta = self.stats.since(&start);
        self.flush_telemetry(&delta, fetched0, issued0);
        delta
    }

    /// Flush this interval's counter deltas to the process-wide
    /// telemetry registry (one call per simulated interval, not per
    /// instruction; a no-op without the `telemetry` feature).
    fn flush_telemetry(&self, delta: &WindowStats, fetched0: u64, issued0: u64) {
        TLM_FETCH_INSTS.add(self.fetched_insts - fetched0);
        TLM_WRONG_PATH_INSTS.add(delta.wrong_path_fetched);
        TLM_ISSUE_INSTS.add(self.issued_insts - issued0);
        TLM_COMMIT_INSTS.add(delta.committed);
        TLM_CYCLES.add(delta.cycles);
        TLM_MISPREDICTS.add(delta.mispredicts);
        TLM_L1D_MISSES.add(delta.l1d_misses);
        TLM_L2_MISSES.add(delta.l2_misses);
    }

    fn step_cycle(&mut self) {
        self.cycle += 1;
        // Stage order models same-cycle flow back-to-front.
        self.commit_stage();
        let ports_left = self.drain_store_buffer();
        self.writeback_stage();
        self.issue_stage(ports_left);
        self.fetch_stage();
        self.stats.cycles = self.cycle;
    }

    // --- commit --------------------------------------------------------

    fn commit_stage(&mut self) {
        let mut committed = 0;
        while committed < self.cfg.width && self.stats.committed < self.commit_stop {
            let Some(head) = self.ruu.front() else { break };
            if !head.complete || head.complete_cycle > self.cycle {
                break;
            }
            debug_assert!(!head.wrong_path, "wrong-path entry reached commit");
            if let Some((MemClass::Store, _)) = head.mem {
                if self.sbuf.len() >= self.cfg.store_buffer as usize {
                    break; // store buffer full: stall commit
                }
            }
            let head = self.ruu.pop_front().expect("checked above");
            match head.mem {
                Some((MemClass::Store, addr)) => {
                    // The word map tracks RUU residents only; drop the
                    // mapping unless a younger store superseded it.
                    if self.store_by_word.get(&(addr >> 3)) == Some(&head.uid) {
                        self.store_by_word.remove(&(addr >> 3));
                    }
                    self.sbuf.push_back(addr);
                    self.lsq_count -= 1;
                    self.stats.stores += 1;
                }
                Some((MemClass::Load { .. }, _)) => {
                    self.lsq_count -= 1;
                    self.stats.loads += 1;
                }
                None => {}
            }
            self.recycle_consumers(head.consumers);
            if let Some(info) = head.train {
                self.bpred.update(head.pc, head.fall_through, &info);
            }
            // Clear producer entries that still point at this uid.
            if let Some(r) = head.dst_int {
                if self.int_producer[r.index()] == head.uid {
                    self.int_producer[r.index()] = INVALID_UID;
                }
            }
            if let Some(f) = head.dst_fp {
                if self.fp_producer[f as usize] == head.uid {
                    self.fp_producer[f as usize] = INVALID_UID;
                }
            }
            self.stats.committed += 1;
            committed += 1;
        }
    }

    // --- store buffer drain ---------------------------------------------

    /// Drain committed stores to the memory system; returns the memory
    /// ports left for loads this cycle.
    fn drain_store_buffer(&mut self) -> u32 {
        let mut ports = self.cfg.fu.mem_ports;
        while ports > 0 {
            let Some(&addr) = self.sbuf.front() else { break };
            let Some(mshr) = self.free_mshr() else { break };
            let out = self.hierarchy.access(AccessKind::Write, addr);
            if out.level != HitLevel::L1 {
                self.stats.l1d_misses += 1;
                let lat = self.cfg.access_latency(out.level, out.tlb_miss);
                self.mshr_busy_until[mshr] = self.cycle + lat;
                if out.level == HitLevel::Memory {
                    self.stats.l2_misses += 1;
                }
            }
            if out.tlb_miss {
                self.stats.dtlb_misses += 1;
            }
            self.sbuf.pop_front();
            ports -= 1;
        }
        ports
    }

    fn free_mshr(&self) -> Option<usize> {
        self.mshr_busy_until.iter().position(|&b| b <= self.cycle)
    }

    // --- writeback -------------------------------------------------------

    /// Locate an in-flight entry by uid. Uids are dense and the RUU is
    /// contiguous in uid space, so this is a front-offset index, not a
    /// search.
    #[inline]
    fn entry_index(&self, uid: u64) -> Option<usize> {
        let front = self.ruu.front()?;
        if uid < front.uid {
            return None;
        }
        let idx = (uid - front.uid) as usize;
        (idx < self.ruu.len()).then_some(idx)
    }

    /// Return a consumer list to the allocation pool.
    fn recycle_consumers(&mut self, mut v: Vec<u64>) {
        if v.capacity() > 0 {
            v.clear();
            self.consumer_pool.push(v);
        }
    }

    fn writeback_stage(&mut self) {
        let mut recover: Option<(u64, u64)> = None; // (resolver uid, target pc)
                                                    // Pop due completion events instead of scanning the RUU; squash
                                                    // purges events for squashed uids, so every event here refers to
                                                    // a live issued entry.
        while let Some(&Reverse((when, uid))) = self.events.peek() {
            if when > self.cycle {
                break;
            }
            self.events.pop();
            let Some(idx) = self.entry_index(uid) else { continue };
            let (consumers, recover_target) = {
                let e = &mut self.ruu[idx];
                debug_assert!(e.issued && !e.complete);
                e.complete = true;
                (std::mem::take(&mut e.consumers), e.recover_to.take())
            };
            if let Some(target) = recover_target {
                recover = Some((uid, target));
            }
            for &c in &consumers {
                if let Some(ci) = self.entry_index(c) {
                    let ce = &mut self.ruu[ci];
                    ce.deps_left -= 1;
                    if ce.deps_left == 0 {
                        self.woken.push(c);
                    }
                }
            }
            self.recycle_consumers(consumers);
        }
        if let Some((uid, target)) = recover {
            self.squash_younger(uid);
            self.fetch_pc = target;
            self.wrong_path = false;
            self.fetch_resume = self.cycle + 1 + self.cfg.bpred.mispredict_penalty;
            self.line_ready = (u64::MAX, 0);
            if let Some(rec) = self.recovery.take() {
                debug_assert_eq!(rec.resolver_uid, uid);
                self.shadow = rec.shadow;
                self.bpred.ras_restore(rec.ras_tos);
            }
        }
    }

    fn squash_younger(&mut self, uid: u64) {
        while let Some(back) = self.ruu.back() {
            if back.uid <= uid {
                break;
            }
            let e = self.ruu.pop_back().expect("non-empty");
            if e.mem.is_some() {
                self.lsq_count -= 1;
            }
            self.recycle_consumers(e.consumers);
        }
        self.next_uid = uid + 1;
        // Squashed uids will be reused by refetched instructions, so
        // every structure keyed by uid must forget them: the ready and
        // woken queues, pending completion events, and survivors'
        // consumer lists.
        self.ready.retain(|&u| u <= uid);
        self.woken.retain(|&u| u <= uid);
        if self.events.iter().any(|&Reverse((_, u))| u > uid) {
            let mut evs = std::mem::take(&mut self.events).into_vec();
            evs.retain(|&Reverse((_, u))| u <= uid);
            self.events = BinaryHeap::from(evs);
        }
        // Rebuild rename and store-word maps from surviving entries.
        self.int_producer = [INVALID_UID; 32];
        self.fp_producer = [INVALID_UID; 32];
        self.store_by_word.clear();
        for e in self.ruu.iter_mut() {
            e.consumers.retain(|&c| c <= uid);
            if let Some(r) = e.dst_int {
                self.int_producer[r.index()] = e.uid;
            }
            if let Some(f) = e.dst_fp {
                self.fp_producer[f as usize] = e.uid;
            }
            if let Some((MemClass::Store, a)) = e.mem {
                self.store_by_word.insert(a >> 3, e.uid);
            }
        }
    }

    // --- issue -----------------------------------------------------------

    /// Try to reserve the functional unit (and, for loads, a memory port
    /// plus cache access) for one ready entry; returns the result latency
    /// or `None` when the needed resource is busy this cycle.
    fn fu_latency(
        &mut self,
        op: OpClass,
        mem: Option<(MemClass, u64)>,
        int_alu_left: &mut u32,
        fp_alu_left: &mut u32,
        mem_ports: &mut u32,
    ) -> Option<u64> {
        match op {
            OpClass::IntAlu | OpClass::Branch | OpClass::Jump | OpClass::Nop | OpClass::Halt => {
                if *int_alu_left == 0 {
                    return None;
                }
                *int_alu_left -= 1;
                Some(1)
            }
            OpClass::IntMul | OpClass::IntDiv => {
                let unit = self.int_muldiv_busy.iter().position(|&b| b <= self.cycle)?;
                let lat =
                    if op == OpClass::IntMul { self.cfg.lat.int_mul } else { self.cfg.lat.int_div };
                // Divide is unpipelined: the unit stays busy.
                self.int_muldiv_busy[unit] =
                    if op == OpClass::IntDiv { self.cycle + lat } else { self.cycle + 1 };
                Some(lat)
            }
            OpClass::FpAlu => {
                if *fp_alu_left == 0 {
                    return None;
                }
                *fp_alu_left -= 1;
                Some(self.cfg.lat.fp_alu)
            }
            OpClass::FpMul | OpClass::FpDiv => {
                let unit = self.fp_muldiv_busy.iter().position(|&b| b <= self.cycle)?;
                let lat =
                    if op == OpClass::FpMul { self.cfg.lat.fp_mul } else { self.cfg.lat.fp_div };
                self.fp_muldiv_busy[unit] =
                    if op == OpClass::FpDiv { self.cycle + lat } else { self.cycle + 1 };
                Some(lat)
            }
            OpClass::Load => {
                let (class, addr) = mem.expect("load has a memory access");
                let forwarded = matches!(class, MemClass::Load { forwarded: true });
                if forwarded {
                    Some(self.cfg.lat.l1)
                } else {
                    if *mem_ports == 0 {
                        return None;
                    }
                    // Probe first so we only consume an MSHR on miss.
                    let would_hit = self.hierarchy.probe(AccessKind::Read, addr) == HitLevel::L1;
                    let mshr = if would_hit { None } else { self.free_mshr() };
                    if !would_hit && mshr.is_none() {
                        return None; // no MSHR: retry next cycle
                    }
                    *mem_ports -= 1;
                    // Wrong-path loads reach here too: they really do
                    // perturb cache tags.
                    let out = self.hierarchy.access(AccessKind::Read, addr);
                    let lat = self.cfg.access_latency(out.level, out.tlb_miss);
                    if out.level != HitLevel::L1 {
                        self.stats.l1d_misses += 1;
                        if out.level == HitLevel::Memory {
                            self.stats.l2_misses += 1;
                        }
                        if let Some(m) = mshr {
                            self.mshr_busy_until[m] = self.cycle + lat;
                        }
                    }
                    if out.tlb_miss {
                        self.stats.dtlb_misses += 1;
                    }
                    Some(lat)
                }
            }
            OpClass::Store => Some(1), // address generation; cache access at drain
        }
    }

    fn issue_stage(&mut self, mut mem_ports: u32) {
        // Fold newly-woken entries in and restore program order; issue
        // then walks only ready entries — the wakeup queues replace the
        // old every-cycle scan over the whole RUU.
        if !self.woken.is_empty() {
            self.ready.append(&mut self.woken);
            self.ready.sort_unstable();
        }
        let mut int_alu_left = self.cfg.fu.int_alu;
        let mut fp_alu_left = self.cfg.fu.fp_alu;
        let mut issued_total = 0u32;
        let issue_width = self.cfg.width * 2; // generous issue bandwidth

        let mut kept = 0usize;
        for i in 0..self.ready.len() {
            let uid = self.ready[i];
            if issued_total >= issue_width {
                self.ready[kept] = uid;
                kept += 1;
                continue;
            }
            let idx = self.entry_index(uid).expect("ready entries are in flight");
            let e = &self.ruu[idx];
            debug_assert!(!e.issued && e.deps_left == 0);
            let (op, mem) = (e.op, e.mem);
            match self.fu_latency(op, mem, &mut int_alu_left, &mut fp_alu_left, &mut mem_ports) {
                Some(latency) => {
                    let complete_cycle = self.cycle + latency;
                    let e = &mut self.ruu[idx];
                    e.issued = true;
                    e.complete_cycle = complete_cycle;
                    self.events.push(Reverse((complete_cycle, uid)));
                    issued_total += 1;
                    self.issued_insts += 1;
                }
                None => {
                    // Resource-stalled: stays ready for next cycle.
                    self.ready[kept] = uid;
                    kept += 1;
                }
            }
        }
        self.ready.truncate(kept);
    }

    // --- fetch / dispatch --------------------------------------------------

    fn fetch_stage(&mut self) {
        if self.cycle < self.fetch_resume {
            return;
        }
        let mut fetched = 0u32;
        let mut cond_predictions = 0u32;
        let line_bytes = self.cfg.hierarchy.l1i.line_bytes();

        while fetched < self.cfg.width {
            if self.ruu.len() >= self.cfg.ruu_size as usize {
                break;
            }
            if self.oracle_done && !self.wrong_path {
                break;
            }

            // Instruction-cache lookup, one access per new line.
            let line = self.fetch_pc / line_bytes;
            if self.line_ready.0 != line {
                let out = self.hierarchy.access(AccessKind::Fetch, self.fetch_pc);
                let mut ready = self.cycle;
                if out.level != HitLevel::L1 {
                    self.stats.l1i_misses += 1;
                    ready = self.cycle + self.cfg.access_latency(out.level, false);
                }
                if out.tlb_miss {
                    ready += self.cfg.lat.tlb_miss;
                }
                self.line_ready = (line, ready);
            }
            if self.line_ready.1 > self.cycle {
                self.fetch_resume = self.line_ready.1;
                break;
            }

            if self.wrong_path {
                if !self.cfg.model_wrong_path {
                    break; // ablation: front end idles until recovery
                }
                // Synthesize from the pre-decoded image at the
                // speculative PC.
                let Some(idx) = inst_index(self.fetch_pc, self.program.len()) else {
                    break; // ran off the code segment: front end idles
                };
                let d = &self.decoded.insts()[idx];
                let is_branch = d.op == OpClass::Branch;
                if is_branch && cond_predictions >= self.cfg.bpred.predictions_per_cycle {
                    break;
                }
                let ok = self.fetch_wrong_path(d);
                if is_branch {
                    cond_predictions += 1;
                }
                if !ok {
                    break;
                }
            } else {
                // Peek the next correct-path instruction class before
                // consuming, to respect the prediction-rate limit.
                if self.oracle.is_halted() {
                    self.oracle_done = true;
                    break;
                }
                let next_class = inst_index(self.oracle.pc(), self.program.len())
                    .map(|i| self.decoded.insts()[i].op);
                let next_is_branch = next_class == Some(OpClass::Branch);
                if next_is_branch && cond_predictions >= self.cfg.bpred.predictions_per_cycle {
                    break;
                }
                // A memory op needs an LSQ slot; stall fetch until one
                // frees up (the wrong-path fetch applies the same check).
                if next_class.is_some_and(|c| c.is_mem()) && self.lsq_count >= self.cfg.lsq_size {
                    break;
                }
                let Some(di) = self.oracle.step() else {
                    self.oracle_done = true;
                    break;
                };
                if next_is_branch {
                    cond_predictions += 1;
                }
                self.fetch_correct_path(di);
            }
            fetched += 1;
            // A predicted-taken transfer ends the fetch group.
            if self.line_ready.0 != self.fetch_pc / line_bytes {
                // Redirected to a different line: stop this cycle.
                break;
            }
        }
        self.fetched_insts += u64::from(fetched);
    }

    /// Dispatch one correct-path instruction; updates fetch_pc along the
    /// *predicted* path and flips into wrong-path mode on a mispredict.
    fn fetch_correct_path(&mut self, di: spectral_isa::DynInst) {
        let d = &self.decoded.insts()[di.index as usize];
        let fall_through = d.fall_through;

        // Predict.
        let mut recover_to = None;
        match di.branch {
            Some(info) => {
                let predicted_next = self.predict_next(di.pc, fall_through, d, &info);
                if predicted_next != di.next_pc {
                    // Mispredicted: checkpoint recovery state, go wrong-path.
                    self.stats.mispredicts += 1;
                    recover_to = Some(di.next_pc);
                    self.recovery = Some(Recovery {
                        resolver_uid: self.next_uid,
                        shadow: self.shadow.clone(),
                        ras_tos: self.bpred.ras_tos(),
                    });
                    self.wrong_path = true;
                }
                self.fetch_pc = predicted_next;
            }
            None => {
                self.fetch_pc = di.next_pc;
            }
        }

        // Keep the shadow registers in sync with committed values.
        self.shadow.observe_commit(di.int_dst, di.int_result);

        let mem = di.mem.map(|(op, addr)| match op {
            spectral_isa::MemOp::Read => {
                (MemClass::Load { forwarded: self.forwards_from_store(addr) }, addr)
            }
            spectral_isa::MemOp::Write => (MemClass::Store, addr),
        });
        let deps_left = self.register_deps(d, mem, self.next_uid);
        self.push_entry(Entry {
            uid: self.next_uid,
            wrong_path: false,
            op: di.op,
            pc: di.pc,
            fall_through,
            deps_left,
            consumers: Vec::new(),
            dst_int: di.int_dst,
            dst_fp: di.fp_dst,
            mem,
            issued: false,
            complete: false,
            complete_cycle: 0,
            recover_to,
            train: di.branch,
        });
    }

    /// Dispatch one wrong-path instruction (pre-decoded at the
    /// speculative fetch PC); returns `false` when the front end should
    /// stop (LSQ full).
    fn fetch_wrong_path(&mut self, d: &DecodedInst) -> bool {
        let op = d.op;
        let pc = self.fetch_pc;
        let fall_through = pc + spectral_isa::INST_BYTES;
        if op.is_mem() && self.lsq_count >= self.cfg.lsq_size {
            return false;
        }
        if op == OpClass::Halt {
            return false; // speculative halt: idle until recovery
        }
        self.stats.wrong_path_fetched += 1;

        // Approximate execution for addresses and shadow updates.
        let addr = self.shadow.exec_approx(&d.inst);
        let mem = match op {
            OpClass::Load => {
                addr.map(|a| (MemClass::Load { forwarded: self.forwards_from_store(a) }, a))
            }
            OpClass::Store => addr.map(|a| (MemClass::Store, a)),
            _ => None,
        };

        // Follow the predicted direction for speculative control flow.
        match d.inst {
            Inst::Branch { .. } => {
                let taken = self.bpred.predict_direction(pc);
                self.fetch_pc = if taken { d.target_addr } else { fall_through };
            }
            Inst::Jump { rd, .. } => {
                if rd != Reg::R0 {
                    self.bpred.ras_push(fall_through);
                }
                self.fetch_pc = d.target_addr;
            }
            Inst::JumpReg { rs1 } => {
                self.fetch_pc = if rs1 == Reg::R31 {
                    self.bpred.ras_pop()
                } else {
                    self.bpred.btb_target(pc).unwrap_or(fall_through)
                };
            }
            _ => self.fetch_pc = fall_through,
        }

        let deps_left = self.register_deps(d, mem, self.next_uid);
        self.push_entry(Entry {
            uid: self.next_uid,
            wrong_path: true,
            op,
            pc,
            fall_through,
            deps_left,
            consumers: Vec::new(),
            dst_int: d.int_dst,
            dst_fp: d.fp_dst,
            mem,
            issued: false,
            complete: false,
            complete_cycle: 0,
            recover_to: None,
            train: None,
        });
        true
    }

    /// Compute the front end's predicted next PC for a control transfer,
    /// performing speculative RAS actions.
    fn predict_next(
        &mut self,
        pc: u64,
        fall_through: u64,
        d: &DecodedInst,
        info: &BranchInfo,
    ) -> u64 {
        match d.inst {
            Inst::Branch { .. } => {
                if self.bpred.predict_direction(pc) {
                    d.target_addr
                } else {
                    fall_through
                }
            }
            Inst::Jump { rd, .. } => {
                if rd != Reg::R0 {
                    self.bpred.ras_push(fall_through);
                }
                d.target_addr
            }
            Inst::JumpReg { rs1 } => {
                if rs1 == Reg::R31 {
                    self.bpred.ras_pop()
                } else {
                    self.bpred.btb_target(pc).unwrap_or(fall_through)
                }
            }
            _ => {
                debug_assert!(false, "predict_next on non-control {info:?}");
                fall_through
            }
        }
    }

    /// Resolve producer uids for an instruction's register sources and,
    /// for loads, the youngest older in-flight store to the same word;
    /// subscribe `consumer` to every producer that has not yet
    /// completed. Returns the number of outstanding producers.
    fn register_deps(
        &mut self,
        d: &DecodedInst,
        mem: Option<(MemClass, u64)>,
        consumer: u64,
    ) -> u8 {
        let mut deps = [INVALID_UID; 3];
        let mut n = 0;
        for r in d.int_srcs.into_iter().flatten() {
            let p = self.int_producer[r.index()];
            if p != INVALID_UID && !deps.contains(&p) {
                deps[n] = p;
                n += 1;
            }
        }
        for f in d.fp_srcs.into_iter().flatten() {
            let p = self.fp_producer[f as usize];
            if p != INVALID_UID && !deps.contains(&p) && n < 3 {
                deps[n] = p;
                n += 1;
            }
        }
        if let Some((MemClass::Load { .. }, addr)) = mem {
            if let Some(&uid) = self.store_by_word.get(&(addr >> 3)) {
                if n < 3 && !deps.contains(&uid) {
                    deps[n] = uid;
                    n += 1;
                }
            }
        }
        let mut outstanding = 0u8;
        for &dep in deps.iter().take(n) {
            if let Some(pi) = self.entry_index(dep) {
                let pe = &mut self.ruu[pi];
                if !pe.complete {
                    pe.consumers.push(consumer);
                    outstanding += 1;
                }
            }
        }
        outstanding
    }

    fn forwards_from_store(&self, addr: u64) -> bool {
        self.store_by_word.contains_key(&(addr >> 3))
    }

    fn push_entry(&mut self, mut e: Entry) {
        debug_assert!(self.ruu.len() < self.cfg.ruu_size as usize);
        if e.mem.is_some() {
            debug_assert!(self.lsq_count < self.cfg.lsq_size);
            self.lsq_count += 1;
        }
        if let Some((MemClass::Store, a)) = e.mem {
            self.store_by_word.insert(a >> 3, e.uid);
        }
        if let Some(r) = e.dst_int {
            self.int_producer[r.index()] = e.uid;
        }
        if let Some(f) = e.dst_fp {
            self.fp_producer[f as usize] = e.uid;
        }
        if e.deps_left == 0 {
            self.woken.push(e.uid);
        }
        if let Some(pooled) = self.consumer_pool.pop() {
            e.consumers = pooled;
        }
        self.next_uid = e.uid + 1;
        self.ruu.push_back(e);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spectral_isa::ProgramBuilder;

    fn counted_loop(n: i64) -> Program {
        let mut b = ProgramBuilder::new("loop");
        b.li(Reg::R1, 0);
        b.li(Reg::R2, n);
        let top = b.label();
        b.addi(Reg::R1, Reg::R1, 1);
        b.blt(Reg::R1, Reg::R2, top);
        b.halt();
        b.build()
    }

    #[test]
    fn runs_simple_loop_to_completion() {
        let p = counted_loop(5_000);
        let cfg = MachineConfig::eight_way();
        let mut sim = DetailedSim::new(&cfg, &p, Emulator::new(&p));
        let stats = sim.run_to_completion();
        assert!(sim.is_done());
        // 2 setup + 2*5000 loop + halt.
        assert_eq!(stats.committed, 2 + 10_000 + 1);
        assert!(stats.cycles > 0);
        // A tight dependent loop on an 8-way machine: CPI below 2.
        assert!(stats.cpi() < 2.0, "cpi {}", stats.cpi());
    }

    #[test]
    fn run_n_stops_at_target() {
        let p = counted_loop(100_000);
        let cfg = MachineConfig::eight_way();
        let mut sim = DetailedSim::new(&cfg, &p, Emulator::new(&p));
        let w = sim.run(1000);
        assert_eq!(w.committed, 1000);
        let w2 = sim.run(500);
        assert_eq!(w2.committed, 500);
        assert_eq!(sim.stats().committed, 1500);
    }

    #[test]
    fn cold_caches_cost_cycles() {
        // Loads over a large array: cold run should take far more cycles
        // than a warm rerun of the same window.
        let mut b = ProgramBuilder::new("mem");
        let base = b.alloc_data(4096);
        b.li(Reg::R1, base as i64);
        b.li(Reg::R2, 0);
        b.li(Reg::R3, 4096);
        let top = b.label();
        b.load(Reg::R4, Reg::R1, 0);
        b.addi(Reg::R1, Reg::R1, 8);
        b.addi(Reg::R2, Reg::R2, 1);
        b.blt(Reg::R2, Reg::R3, top);
        b.halt();
        let p = b.build();
        let cfg = MachineConfig::eight_way();

        let mut cold = DetailedSim::new(&cfg, &p, Emulator::new(&p));
        let cold_stats = cold.run_to_completion();

        // Warm: reuse the hierarchy the cold run built.
        let warm_h = cold.hierarchy().clone();
        let warm_b = BranchPredictor::from_snapshot(&cold.bpred().snapshot());
        let mut warm = DetailedSim::with_state(&cfg, &p, Emulator::new(&p), warm_h, warm_b);
        let warm_stats = warm.run_to_completion();

        assert_eq!(cold_stats.committed, warm_stats.committed);
        assert!(
            warm_stats.cycles * 3 < cold_stats.cycles * 2,
            "warm {} vs cold {} cycles",
            warm_stats.cycles,
            cold_stats.cycles
        );
        assert!(warm_stats.l1d_misses < cold_stats.l1d_misses / 4);
    }

    #[test]
    fn mispredicts_generate_wrong_path_work() {
        // Data-dependent branches (LCG parity) are hard to predict;
        // wrong-path instructions must appear.
        let mut b = ProgramBuilder::new("br");
        b.li(Reg::R1, 0);
        b.li(Reg::R2, 3000);
        b.li(Reg::R29, 12345);
        let top = b.label();
        b.li(Reg::R9, 0x5851_F42D_4C95_7F2D_u64 as i64);
        b.mul(Reg::R29, Reg::R29, Reg::R9);
        b.addi(Reg::R29, Reg::R29, 0x14057B7E);
        b.shri(Reg::R4, Reg::R29, 33);
        b.andi(Reg::R4, Reg::R4, 1);
        let skip = b.new_label();
        b.bne(Reg::R4, Reg::R0, skip);
        b.addi(Reg::R5, Reg::R5, 1);
        b.xori(Reg::R6, Reg::R5, 0x2A);
        b.bind(skip);
        b.addi(Reg::R1, Reg::R1, 1);
        b.blt(Reg::R1, Reg::R2, top);
        b.halt();
        let p = b.build();
        let cfg = MachineConfig::eight_way();
        let mut sim = DetailedSim::new(&cfg, &p, Emulator::new(&p));
        let stats = sim.run_to_completion();
        assert!(stats.mispredicts > 300, "mispredicts {}", stats.mispredicts);
        assert!(stats.wrong_path_fetched > 300, "wrong path {}", stats.wrong_path_fetched);
        // Mispredicts must cost cycles: CPI noticeably above the
        // no-mispredict ideal.
        assert!(stats.cpi() > 0.8, "cpi {}", stats.cpi());
    }

    #[test]
    fn correctness_unaffected_by_speculation() {
        // Timing-model execution must commit exactly the functional
        // instruction stream regardless of speculation.
        let p = counted_loop(2_000);
        let mut emu = Emulator::new(&p);
        let mut functional = 0u64;
        while emu.step().is_some() {
            functional += 1;
        }
        let cfg = MachineConfig::eight_way();
        let mut sim = DetailedSim::new(&cfg, &p, Emulator::new(&p));
        let stats = sim.run_to_completion();
        assert_eq!(stats.committed, functional);
    }

    #[test]
    fn store_load_forwarding() {
        // store then immediately load the same address, repeatedly: must
        // not pay cache-miss latency on the loads after the first line fill.
        let mut b = ProgramBuilder::new("fw");
        let base = b.alloc_data(1);
        b.li(Reg::R1, base as i64);
        b.li(Reg::R2, 0);
        b.li(Reg::R3, 2000);
        let top = b.label();
        b.store(Reg::R1, Reg::R2, 0);
        b.load(Reg::R4, Reg::R1, 0);
        b.addi(Reg::R2, Reg::R2, 1);
        b.blt(Reg::R2, Reg::R3, top);
        b.halt();
        let p = b.build();
        let cfg = MachineConfig::eight_way();
        let mut sim = DetailedSim::new(&cfg, &p, Emulator::new(&p));
        let stats = sim.run_to_completion();
        assert!(stats.cpi() < 3.0, "forwarding should keep cpi low, got {}", stats.cpi());
    }

    #[test]
    fn sixteen_way_beats_eight_way_on_ilp() {
        // Independent ALU work: the wider machine should need fewer cycles.
        let mut b = ProgramBuilder::new("ilp");
        b.li(Reg::R1, 0);
        b.li(Reg::R2, 2000);
        let top = b.label();
        for r in [Reg::R3, Reg::R4, Reg::R5, Reg::R6, Reg::R7, Reg::R8, Reg::R9, Reg::R13] {
            b.addi(r, r, 1);
        }
        b.addi(Reg::R1, Reg::R1, 1);
        b.blt(Reg::R1, Reg::R2, top);
        b.halt();
        let p = b.build();
        let cfg8 = MachineConfig::eight_way();
        let cfg16 = MachineConfig::sixteen_way();
        let s8 = DetailedSim::new(&cfg8, &p, Emulator::new(&p)).run_to_completion();
        let s16 = DetailedSim::new(&cfg16, &p, Emulator::new(&p)).run_to_completion();
        assert_eq!(s8.committed, s16.committed);
        assert!(s16.cycles < s8.cycles, "16-way {} vs 8-way {}", s16.cycles, s8.cycles);
    }

    #[test]
    fn div_chain_is_slow() {
        let mut b = ProgramBuilder::new("div");
        b.li(Reg::R1, i64::MAX);
        b.li(Reg::R2, 3);
        b.li(Reg::R3, 0);
        b.li(Reg::R4, 500);
        let top = b.label();
        b.div(Reg::R1, Reg::R1, Reg::R2);
        b.addi(Reg::R1, Reg::R1, 1_000_003);
        b.addi(Reg::R3, Reg::R3, 1);
        b.blt(Reg::R3, Reg::R4, top);
        b.halt();
        let p = b.build();
        let cfg = MachineConfig::eight_way();
        let stats = DetailedSim::new(&cfg, &p, Emulator::new(&p)).run_to_completion();
        // Each iteration is serialized behind a 20-cycle divide.
        assert!(stats.cpi() > 3.0, "div chain cpi {}", stats.cpi());
    }

    #[test]
    fn deterministic_across_runs() {
        let p = counted_loop(3_000);
        let cfg = MachineConfig::eight_way();
        let a = DetailedSim::new(&cfg, &p, Emulator::new(&p)).run_to_completion();
        let b2 = DetailedSim::new(&cfg, &p, Emulator::new(&p)).run_to_completion();
        assert_eq!(a, b2);
    }
}
