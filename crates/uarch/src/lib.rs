//! # spectral-uarch — cycle-level out-of-order superscalar timing model
//!
//! The detailed performance model of the Spectral framework (reproduction
//! of *Simulation Sampling with Live-points*, ISPASS 2006). It stands in
//! for the paper's modified SimpleScalar 3.0 `sim-outorder`:
//!
//! * a unified RUU (reorder buffer + issue window) with an LSQ, a store
//!   buffer, MSHRs, limited cache ports, and per-class functional units —
//!   the paper's Table 1 resources ([`MachineConfig::eight_way`] and
//!   [`MachineConfig::sixteen_way`] reproduce the two columns verbatim),
//! * a combined branch predictor (bimodal + gshare + meta chooser) with
//!   BTB and return-address stack ([`BranchPredictor`]),
//! * **wrong-path fetch and approximate wrong-path execution**: after a
//!   mispredicted branch is fetched, the model keeps fetching down the
//!   predicted path, executing speculative instructions against a shadow
//!   register file and the cache *tag* state — exactly the approximation
//!   live-points rely on (paper §5: wrong-path operand values are not
//!   stored; predictor outcomes identify the wrong-path sequence and tag
//!   state identifies wrong-path load latency),
//! * a correct-path oracle: the [`Emulator`](spectral_isa::Emulator)
//!   executes architecturally at fetch, so the timing model needs no
//!   duplicate functional logic.
//!
//! ## Example: measure CPI over a window
//!
//! ```
//! use spectral_uarch::{DetailedSim, MachineConfig};
//! use spectral_isa::{ProgramBuilder, Reg, Emulator};
//!
//! let mut b = ProgramBuilder::new("loop");
//! b.li(Reg::R1, 0);
//! b.li(Reg::R2, 10_000);
//! let top = b.label();
//! b.addi(Reg::R1, Reg::R1, 1);
//! b.blt(Reg::R1, Reg::R2, top);
//! b.halt();
//! let p = b.build();
//!
//! let cfg = MachineConfig::eight_way();
//! let mut sim = DetailedSim::new(&cfg, &p, Emulator::new(&p));
//! let stats = sim.run(5_000);
//! assert!(stats.committed > 0);
//! assert!(stats.cpi() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bpred;
mod config;
mod pipeline;
mod stats;
mod wrongpath;

pub use bpred::{BpredConfig, BpredSnapshot, BranchPredictor, Prediction};
pub use config::{FuPools, LatencyConfig, MachineConfig};
pub use pipeline::DetailedSim;
pub use stats::WindowStats;
pub use wrongpath::ShadowRegs;
