//! Timing-simulation statistics.

/// Statistics accumulated over a simulated interval.
///
/// Produced by [`DetailedSim::run`](crate::DetailedSim::run); subtract
/// two snapshots (or call `run` twice) to separate detailed-warming from
/// measurement intervals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WindowStats {
    /// Committed (correct-path) instructions.
    pub committed: u64,
    /// Elapsed cycles.
    pub cycles: u64,
    /// Wrong-path instructions fetched.
    pub wrong_path_fetched: u64,
    /// Conditional-branch direction mispredicts discovered at fetch.
    pub mispredicts: u64,
    /// Committed loads.
    pub loads: u64,
    /// Committed stores.
    pub stores: u64,
    /// L1D accesses that missed (from the timing model's path).
    pub l1d_misses: u64,
    /// Unified-L2 misses.
    pub l2_misses: u64,
    /// Instruction-fetch L1I misses.
    pub l1i_misses: u64,
    /// Data-TLB misses.
    pub dtlb_misses: u64,
}

impl WindowStats {
    /// Cycles per committed instruction (`f64::INFINITY` when nothing
    /// committed).
    pub fn cpi(&self) -> f64 {
        if self.committed == 0 {
            f64::INFINITY
        } else {
            self.cycles as f64 / self.committed as f64
        }
    }

    /// Instructions per cycle (0 when no cycles elapsed).
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.cycles as f64
        }
    }

    /// The component-wise difference `self − earlier` (for isolating a
    /// measurement interval from cumulative counters).
    pub fn since(&self, earlier: &WindowStats) -> WindowStats {
        WindowStats {
            committed: self.committed - earlier.committed,
            cycles: self.cycles - earlier.cycles,
            wrong_path_fetched: self.wrong_path_fetched - earlier.wrong_path_fetched,
            mispredicts: self.mispredicts - earlier.mispredicts,
            loads: self.loads - earlier.loads,
            stores: self.stores - earlier.stores,
            l1d_misses: self.l1d_misses - earlier.l1d_misses,
            l2_misses: self.l2_misses - earlier.l2_misses,
            l1i_misses: self.l1i_misses - earlier.l1i_misses,
            dtlb_misses: self.dtlb_misses - earlier.dtlb_misses,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpi_and_ipc() {
        let s = WindowStats { committed: 1000, cycles: 1500, ..Default::default() };
        assert!((s.cpi() - 1.5).abs() < 1e-12);
        assert!((s.ipc() - 1000.0 / 1500.0).abs() < 1e-12);
    }

    #[test]
    fn empty_window_edge_cases() {
        let s = WindowStats::default();
        assert_eq!(s.cpi(), f64::INFINITY);
        assert_eq!(s.ipc(), 0.0);
    }

    #[test]
    fn since_subtracts() {
        let a = WindowStats { committed: 100, cycles: 200, loads: 10, ..Default::default() };
        let b = WindowStats { committed: 350, cycles: 700, loads: 25, ..Default::default() };
        let d = b.since(&a);
        assert_eq!(d.committed, 250);
        assert_eq!(d.cycles, 500);
        assert_eq!(d.loads, 15);
    }
}
