//! Behavioural tests for the out-of-order pipeline: each test isolates
//! one microarchitectural mechanism and checks its first-order timing
//! effect.

use spectral_isa::{Emulator, ProgramBuilder, Reg};
use spectral_uarch::{DetailedSim, MachineConfig};

fn run(cfg: &MachineConfig, p: &spectral_isa::Program) -> spectral_uarch::WindowStats {
    DetailedSim::new(cfg, p, Emulator::new(p)).run_to_completion()
}

/// Serialized pointer-chase loads: every load depends on the previous
/// one, so CPI tracks the L2 latency when the working set exceeds L1.
#[test]
fn dependent_loads_track_l2_latency() {
    let mut b = ProgramBuilder::new("chase");
    let nodes: u64 = 1 << 13; // 64 KB: beyond 32 KB L1, inside L2
    let base = b.alloc_data(nodes);
    for i in 0..nodes {
        b.init_word(base + i * 8, base + ((i + 7919) % nodes) * 8);
    }
    b.li(Reg::R1, base as i64);
    b.li(Reg::R2, 0);
    b.li(Reg::R3, 6000);
    let top = b.label();
    b.load(Reg::R1, Reg::R1, 0);
    b.addi(Reg::R2, Reg::R2, 1);
    b.blt(Reg::R2, Reg::R3, top);
    b.halt();
    let p = b.build();

    let fast = MachineConfig::eight_way();
    let mut slow = MachineConfig::eight_way();
    slow.lat.l2 = 24; // double L2 latency
    let s_fast = run(&fast, &p);
    let s_slow = run(&slow, &p);
    assert_eq!(s_fast.committed, s_slow.committed);
    assert!(
        s_slow.cycles as f64 > s_fast.cycles as f64 * 1.3,
        "doubling L2 latency must slow a chase: {} vs {}",
        s_slow.cycles,
        s_fast.cycles
    );
}

/// MSHR starvation: many independent misses with 1 MSHR serialize;
/// with 8 MSHRs they overlap.
#[test]
fn mshrs_enable_miss_overlap() {
    let mut b = ProgramBuilder::new("mlp");
    let base = b.alloc_data(1 << 15);
    b.li(Reg::R1, base as i64);
    b.li(Reg::R2, 0);
    b.li(Reg::R3, 400);
    let top = b.label();
    // Eight independent loads, stride 4 KB (distinct sets and lines).
    for k in 0..8i64 {
        b.load(Reg::from_index(4 + k as usize), Reg::R1, k * 4096);
    }
    b.addi(Reg::R1, Reg::R1, 8);
    b.addi(Reg::R2, Reg::R2, 1);
    b.blt(Reg::R2, Reg::R3, top);
    b.halt();
    let p = b.build();

    let wide = MachineConfig::eight_way(); // 8 MSHRs
    let mut narrow = MachineConfig::eight_way();
    narrow.mshrs = 1;
    let s_wide = run(&wide, &p);
    let s_narrow = run(&narrow, &p);
    assert!(
        s_narrow.cycles as f64 > s_wide.cycles as f64 * 1.25,
        "1 MSHR must serialize misses: {} vs {}",
        s_narrow.cycles,
        s_wide.cycles
    );
}

/// A store burst against a tiny store buffer stalls commit.
#[test]
fn store_buffer_backpressure() {
    let mut b = ProgramBuilder::new("stores");
    let base = b.alloc_data(1 << 14);
    b.li(Reg::R1, base as i64);
    b.li(Reg::R2, 0);
    b.li(Reg::R3, 3000);
    let top = b.label();
    // Stores to distinct lines: every drain misses L1 and holds an MSHR.
    b.store(Reg::R1, Reg::R2, 0);
    b.addi(Reg::R1, Reg::R1, 64);
    b.addi(Reg::R2, Reg::R2, 1);
    b.blt(Reg::R2, Reg::R3, top);
    b.halt();
    let p = b.build();

    let base_cfg = MachineConfig::eight_way();
    let mut tiny_sbuf = MachineConfig::eight_way();
    tiny_sbuf.store_buffer = 1;
    tiny_sbuf.mshrs = 1;
    let s_base = run(&base_cfg, &p);
    let s_tiny = run(&tiny_sbuf, &p);
    assert!(
        s_tiny.cycles > s_base.cycles,
        "tiny store buffer + 1 MSHR must backpressure: {} vs {}",
        s_tiny.cycles,
        s_base.cycles
    );
}

/// DTLB misses add the configured 200-cycle penalty: touching many
/// pages once is far slower than touching one page many times.
#[test]
fn tlb_misses_cost_200_cycles() {
    let make = |stride: i64| {
        let mut b = ProgramBuilder::new("tlb");
        let base = b.alloc_data(1 << 17);
        b.li(Reg::R1, base as i64);
        b.li(Reg::R2, 0);
        b.li(Reg::R3, 1000);
        let top = b.label();
        b.load(Reg::R4, Reg::R1, 0);
        b.addi(Reg::R1, Reg::R1, stride);
        b.addi(Reg::R2, Reg::R2, 1);
        b.blt(Reg::R2, Reg::R3, top);
        b.halt();
        b.build()
    };
    let cfg = MachineConfig::eight_way();
    let same_page = run(&cfg, &make(0));
    let new_pages = run(&cfg, &make(4096));
    assert!(new_pages.dtlb_misses > 500, "page-stride walk misses the DTLB");
    assert!(
        new_pages.cycles as f64 > same_page.cycles as f64 * 5.0,
        "TLB misses must dominate: {} vs {}",
        new_pages.cycles,
        same_page.cycles
    );
}

/// The wrong-path ablation (paper §5: wrong-path instructions interact
/// with the commit stream "through resource contention and in the cache
/// tag arrays"): a wrong-path load prefetches the next iteration's line,
/// so disabling wrong-path execution changes miss counts and cycles.
#[test]
fn wrong_path_ablation_changes_timing() {
    let mut b = ProgramBuilder::new("wp");
    let base = b.alloc_data(1 << 16);
    b.li(Reg::R20, base as i64);
    b.li(Reg::R1, 0);
    b.li(Reg::R2, 3000);
    b.li(Reg::R29, 0xDEAD_BEEF);
    let top = b.label();
    b.li(Reg::R9, 0x5851_F42D_4C95_7F2D_u64 as i64);
    b.mul(Reg::R29, Reg::R29, Reg::R9);
    b.addi(Reg::R29, Reg::R29, 12345);
    b.shri(Reg::R4, Reg::R29, 41);
    b.andi(Reg::R4, Reg::R4, 1);
    let skip = b.new_label();
    // ~50% unpredictable branch; the fall-through path "prefetches" the
    // next iteration's cache line. When this executes on the wrong path
    // only, the tag perturbation is speculation's doing.
    b.bne(Reg::R4, Reg::R0, skip);
    b.load(Reg::R6, Reg::R20, 64);
    b.bind(skip);
    b.load(Reg::R7, Reg::R20, 0);
    b.addi(Reg::R20, Reg::R20, 64);
    b.addi(Reg::R1, Reg::R1, 1);
    b.blt(Reg::R1, Reg::R2, top);
    b.halt();
    let p = b.build();

    let on = run(&MachineConfig::eight_way(), &p);
    let off = run(&MachineConfig::eight_way().without_wrong_path(), &p);
    assert_eq!(on.committed, off.committed, "architectural behaviour unchanged");
    assert!(on.wrong_path_fetched > 1000, "speculation happens when enabled");
    assert_eq!(off.wrong_path_fetched, 0, "and not when disabled");
    // Total misses are invariant (each line is missed once by whoever
    // touches it first); the *timing* differs because wrong-path
    // prefetches overlap miss latency with the recovery shadow.
    eprintln!("cycles on={} off={}", on.cycles, off.cycles);
    assert_ne!(on.cycles, off.cycles, "wrong-path work must affect timing");
}

/// Return-address-stack recovery: deep call/return chains around
/// mispredicted branches still predict returns correctly afterwards.
#[test]
fn returns_predict_after_recovery() {
    let mut b = ProgramBuilder::new("ras");
    let f = b.new_label();
    b.li(Reg::R1, 0);
    b.li(Reg::R2, 2500);
    b.li(Reg::R29, 777);
    let top = b.label();
    // Unpredictable branch to force recoveries...
    b.li(Reg::R9, 0x5851_F42D_4C95_7F2D_u64 as i64);
    b.mul(Reg::R29, Reg::R29, Reg::R9);
    b.addi(Reg::R29, Reg::R29, 999);
    b.shri(Reg::R4, Reg::R29, 37);
    b.andi(Reg::R4, Reg::R4, 1);
    let skip = b.new_label();
    b.bne(Reg::R4, Reg::R0, skip);
    b.addi(Reg::R5, Reg::R5, 1);
    b.bind(skip);
    // ...interleaved with calls whose returns must stay predictable.
    b.call(Reg::R31, f);
    b.addi(Reg::R1, Reg::R1, 1);
    b.blt(Reg::R1, Reg::R2, top);
    b.halt();
    b.bind(f);
    b.addi(Reg::R7, Reg::R7, 1);
    b.jump_reg(Reg::R31);
    let p = b.build();

    let cfg = MachineConfig::eight_way();
    let stats = run(&cfg, &p);
    // Roughly half the data branches mispredict (~1250); if returns also
    // mispredicted, the count would approach 2500 + 2500.
    assert!(
        stats.mispredicts < 1900,
        "returns must stay predicted through recoveries: {} mispredicts",
        stats.mispredicts
    );
}
