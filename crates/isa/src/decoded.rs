//! Pre-decoded static instruction streams.
//!
//! The emulator and the timing model's fetch/oracle paths consume the
//! same per-instruction metadata — operand class, source/destination
//! registers, control-transfer targets — on **every dynamic
//! instruction**. Recomputing that metadata from the [`Inst`] enum on
//! each step is pure overhead: it depends only on the static program
//! image. [`DecodedProgram`] computes it once per program into a flat
//! dense array indexed by instruction index (equivalently, by PC via
//! [`inst_index`](crate::inst_index)), so steady-state execution is a
//! single bounds-checked array load per instruction.
//!
//! The pre-decode is derived data: it changes no semantics, and every
//! field is defined as exactly what the corresponding [`Inst`] method
//! returns (asserted in tests).

use std::sync::OnceLock;

use crate::inst::{Inst, OpClass, Reg};
use crate::{inst_addr, INST_BYTES};

/// One statically pre-decoded instruction: the raw [`Inst`] plus every
/// piece of per-instruction metadata the emulator and pipeline would
/// otherwise recompute per dynamic instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecodedInst {
    /// The decoded instruction itself (execution still matches on it).
    pub inst: Inst,
    /// Coarse functional-unit class ([`Inst::op_class`]).
    pub op: OpClass,
    /// Integer source registers ([`Inst::int_sources`]).
    pub int_srcs: [Option<Reg>; 2],
    /// Integer destination register ([`Inst::int_dest`]).
    pub int_dst: Option<Reg>,
    /// FP source register indices ([`Inst::fp_sources`]).
    pub fp_srcs: [Option<u8>; 2],
    /// FP destination register index ([`Inst::fp_dest`]).
    pub fp_dst: Option<u8>,
    /// This instruction's code virtual address.
    pub pc: u64,
    /// Address of the next sequential instruction (`pc + 4`).
    pub fall_through: u64,
    /// Pre-translated target address for direct control transfers
    /// (`Branch`/`Jump`); zero for everything else (indirect targets
    /// come from registers at run time).
    pub target_addr: u64,
}

impl DecodedInst {
    fn new(index: usize, inst: Inst) -> Self {
        let pc = inst_addr(index);
        let target_addr = match inst {
            Inst::Branch { target, .. } | Inst::Jump { target, .. } => inst_addr(target as usize),
            _ => 0,
        };
        DecodedInst {
            inst,
            op: inst.op_class(),
            int_srcs: inst.int_sources(),
            int_dst: inst.int_dest(),
            fp_srcs: inst.fp_sources(),
            fp_dst: inst.fp_dest(),
            pc,
            fall_through: pc + INST_BYTES,
            target_addr,
        }
    }
}

/// A one-time pre-decode of an entire static program: a flat dense
/// array of [`DecodedInst`], indexed by static instruction index.
///
/// Obtained from [`Program::decoded`](crate::Program::decoded), which
/// computes it lazily once per program image and shares it across every
/// emulator and timing model running that program.
#[derive(Debug)]
pub struct DecodedProgram {
    insts: Box<[DecodedInst]>,
}

impl DecodedProgram {
    /// Pre-decode `insts` (instruction `i` is assumed to live at
    /// [`inst_addr`]`(i)`).
    pub fn new(insts: &[Inst]) -> Self {
        DecodedProgram {
            insts: insts.iter().enumerate().map(|(i, &inst)| DecodedInst::new(i, inst)).collect(),
        }
    }

    /// Number of static instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether the program contains no instructions.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// The pre-decoded instruction at `index`, if in range.
    #[inline]
    pub fn get(&self, index: usize) -> Option<&DecodedInst> {
        self.insts.get(index)
    }

    /// The full flat pre-decoded stream.
    #[inline]
    pub fn insts(&self) -> &[DecodedInst] {
        &self.insts
    }
}

/// Lazily-initialised per-program pre-decode cache. Lives in its own
/// type so [`Program`](crate::Program) can keep deriving nothing
/// unusual: clones restart with an empty cache, and equality ignores
/// the cache entirely (it is a pure function of the instruction list).
#[derive(Default)]
pub(crate) struct DecodeCache(OnceLock<DecodedProgram>);

impl DecodeCache {
    pub(crate) fn get_or_decode(&self, insts: &[Inst]) -> &DecodedProgram {
        self.0.get_or_init(|| DecodedProgram::new(insts))
    }
}

impl std::fmt::Debug for DecodeCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(if self.0.get().is_some() {
            "DecodeCache(ready)"
        } else {
            "DecodeCache(empty)"
        })
    }
}

impl Clone for DecodeCache {
    fn clone(&self) -> Self {
        // Derived data: recompute lazily in the clone rather than deep-
        // copying the table.
        DecodeCache(OnceLock::new())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::ProgramBuilder;

    #[test]
    fn predecode_matches_inst_methods() {
        let mut b = ProgramBuilder::new("t");
        let buf = b.alloc_data(8);
        b.li(Reg::R1, buf as i64);
        b.li(Reg::R2, 3);
        let top = b.label();
        b.store(Reg::R1, Reg::R2, 0);
        b.load(Reg::R3, Reg::R1, 0);
        b.fadd(1, 2, 3);
        b.subi(Reg::R2, Reg::R2, 1);
        b.bne(Reg::R2, Reg::R0, top);
        b.call(Reg::R31, top);
        b.jump_reg(Reg::R31);
        b.halt();
        let p = b.build();
        let d = p.decoded();
        assert_eq!(d.len(), p.len());
        for (i, &inst) in p.insts().iter().enumerate() {
            let di = d.get(i).unwrap();
            assert_eq!(di.inst, inst);
            assert_eq!(di.op, inst.op_class());
            assert_eq!(di.int_srcs, inst.int_sources());
            assert_eq!(di.int_dst, inst.int_dest());
            assert_eq!(di.fp_srcs, inst.fp_sources());
            assert_eq!(di.fp_dst, inst.fp_dest());
            assert_eq!(di.pc, inst_addr(i));
            assert_eq!(di.fall_through, inst_addr(i) + INST_BYTES);
            match inst {
                Inst::Branch { target, .. } | Inst::Jump { target, .. } => {
                    assert_eq!(di.target_addr, inst_addr(target as usize));
                }
                _ => assert_eq!(di.target_addr, 0),
            }
        }
    }

    #[test]
    fn decode_is_cached_and_survives_clone() {
        let mut b = ProgramBuilder::new("t");
        b.li(Reg::R1, 1);
        b.halt();
        let p = b.build();
        let first = p.decoded() as *const DecodedProgram;
        let second = p.decoded() as *const DecodedProgram;
        assert_eq!(first, second, "decode must happen once per program");
        let q = p.clone();
        assert_eq!(q.decoded().len(), p.decoded().len());
        assert_eq!(q, p, "the cache must not affect program equality");
    }
}
