//! Dynamic-instruction trace records produced by the functional emulator.

use crate::inst::{OpClass, Reg};

/// Direction of a data-memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemOp {
    /// A data read.
    Read,
    /// A data write.
    Write,
}

/// Control-flow outcome of a committed branch or jump.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BranchInfo {
    /// Whether the control transfer was taken (always `true` for jumps).
    pub taken: bool,
    /// The taken-path code address (branch target).
    pub target: u64,
    /// Whether the transfer was a conditional branch (eligible for
    /// direction prediction) as opposed to an unconditional jump.
    pub conditional: bool,
    /// Whether this was an indirect transfer (target from a register).
    pub indirect: bool,
    /// Whether this transfer is a call (writes a link register).
    pub is_call: bool,
    /// Whether this transfer is a return (indirect jump through the
    /// conventional link register).
    pub is_return: bool,
}

/// One committed dynamic instruction, as observed on the correct path.
///
/// This is the record consumed by functional warming (cache, TLB and
/// branch-predictor updates), by live-point creation (live-state
/// collection), and by the out-of-order timing model's correct-path
/// oracle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DynInst {
    /// Zero-based commit sequence number.
    pub seq: u64,
    /// Code virtual address of this instruction.
    pub pc: u64,
    /// Index of the static instruction within the program image.
    pub index: u32,
    /// Coarse class (selects functional unit and latency in the timing
    /// model).
    pub op: OpClass,
    /// Integer source registers (up to two).
    pub int_srcs: [Option<Reg>; 2],
    /// Integer destination register, if any.
    pub int_dst: Option<Reg>,
    /// FP source register indices (up to two).
    pub fp_srcs: [Option<u8>; 2],
    /// FP destination register index, if any.
    pub fp_dst: Option<u8>,
    /// Effective data-memory access performed, if any.
    pub mem: Option<(MemOp, u64)>,
    /// Control-flow outcome, if this is a branch or jump.
    pub branch: Option<BranchInfo>,
    /// Address of the next committed instruction.
    pub next_pc: u64,
    /// Value written to the integer destination register (zero when the
    /// instruction has no integer destination). The timing model's
    /// wrong-path approximation uses these committed values to estimate
    /// speculative load addresses.
    pub int_result: u64,
}

impl DynInst {
    /// Whether this instruction redirected control away from the
    /// fall-through path.
    #[inline]
    pub fn redirects(&self) -> bool {
        self.branch.map(|b| b.taken).unwrap_or(false)
    }

    /// The effective data address, if this instruction accesses memory.
    #[inline]
    pub fn data_addr(&self) -> Option<u64> {
        self.mem.map(|(_, a)| a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blank() -> DynInst {
        DynInst {
            seq: 0,
            pc: 0x40_0000,
            index: 0,
            op: OpClass::IntAlu,
            int_srcs: [None, None],
            int_dst: None,
            fp_srcs: [None, None],
            fp_dst: None,
            mem: None,
            branch: None,
            next_pc: 0x40_0004,
            int_result: 0,
        }
    }

    #[test]
    fn non_branch_does_not_redirect() {
        assert!(!blank().redirects());
    }

    #[test]
    fn taken_branch_redirects() {
        let mut d = blank();
        d.op = OpClass::Branch;
        d.branch = Some(BranchInfo {
            taken: true,
            target: 0x40_0100,
            conditional: true,
            indirect: false,
            is_call: false,
            is_return: false,
        });
        assert!(d.redirects());
    }

    #[test]
    fn data_addr_passthrough() {
        let mut d = blank();
        assert_eq!(d.data_addr(), None);
        d.mem = Some((MemOp::Read, 0x1234));
        assert_eq!(d.data_addr(), Some(0x1234));
    }
}
