//! # spectral-isa — the SRISC ISA and functional emulator
//!
//! This crate provides the instruction-set substrate for the Spectral
//! simulation-sampling framework (a reproduction of *Simulation Sampling
//! with Live-points*, ISPASS 2006). The paper evaluates on Alpha binaries
//! running under SimpleScalar's functional simulator; neither is available
//! here, so SRISC is a compact 64-bit load/store RISC ISA with:
//!
//! * 32 integer registers ([`Reg`], `r0` hard-wired to zero) and
//!   32 floating-point registers,
//! * ALU / multiply / divide / FP / load / store / branch / jump
//!   instruction classes matching the functional-unit classes of the
//!   paper's Table 1 configurations,
//! * a sparse paged memory ([`SparseMemory`]) whose footprint can be
//!   measured (the paper's checkpoint-size arguments hinge on footprint),
//! * a deterministic functional emulator ([`Emulator`]) that yields one
//!   [`DynInst`] record per committed instruction — the dynamic stream
//!   consumed by functional warming, live-point creation, and the
//!   out-of-order timing model's correct-path oracle.
//!
//! ## Example
//!
//! ```
//! use spectral_isa::{ProgramBuilder, Emulator, Reg, OpClass};
//!
//! // A loop that stores r1 = 0..10 to memory.
//! let mut b = ProgramBuilder::new("demo");
//! b.li(Reg::R1, 0);
//! b.li(Reg::R2, 10);
//! b.li(Reg::R3, 0x1000_0000);
//! let top = b.label();
//! b.store(Reg::R3, Reg::R1, 0);
//! b.addi(Reg::R1, Reg::R1, 1);
//! b.addi(Reg::R3, Reg::R3, 8);
//! b.blt(Reg::R1, Reg::R2, top);
//! b.halt();
//! let program = b.build();
//!
//! let mut emu = Emulator::new(&program);
//! let mut stores = 0;
//! while let Some(di) = emu.step() {
//!     if di.op == OpClass::Store { stores += 1; }
//! }
//! assert_eq!(stores, 10);
//! assert_eq!(emu.memory().read_u64(0x1000_0000 + 9 * 8), 9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod decoded;
mod disasm;
mod emu;
mod error;
mod inst;
mod mem;
mod program;
mod regs;
mod trace;

pub use decoded::{DecodedInst, DecodedProgram};
pub use emu::{ArchState, Emulator, Trace};
pub use error::IsaError;
pub use inst::{AluOp, BranchCond, FpOp, Inst, OpClass, Reg};
pub use mem::{SparseMemory, PAGE_BYTES, PAGE_WORDS};
pub use program::{Label, Program, ProgramBuilder};
pub use regs::RegFile;
pub use trace::{BranchInfo, DynInst, MemOp};

/// Byte size of one SRISC instruction in the simulated address space.
///
/// Instruction `i` of a [`Program`] occupies addresses
/// `[CODE_BASE + 4*i, CODE_BASE + 4*i + 4)`; instruction-cache and ITLB
/// models index on these addresses.
pub const INST_BYTES: u64 = 4;

/// Base virtual address of the code segment.
pub const CODE_BASE: u64 = 0x0040_0000;

/// Base virtual address of the statically-initialized data segment.
pub const DATA_BASE: u64 = 0x1000_0000;

/// Initial stack pointer (stack grows down).
pub const STACK_BASE: u64 = 0x7FFF_FF00;

/// Translate an instruction index into its simulated virtual address.
#[inline]
pub fn inst_addr(index: usize) -> u64 {
    CODE_BASE + index as u64 * INST_BYTES
}

/// Translate a code virtual address back into an instruction index, if it
/// lies within the code segment of a program with `len` instructions.
#[inline]
pub fn inst_index(addr: u64, len: usize) -> Option<usize> {
    if addr < CODE_BASE || !(addr - CODE_BASE).is_multiple_of(INST_BYTES) {
        return None;
    }
    let idx = ((addr - CODE_BASE) / INST_BYTES) as usize;
    (idx < len).then_some(idx)
}

#[cfg(test)]
mod lib_tests {
    use super::*;

    #[test]
    fn inst_addr_roundtrip() {
        for i in [0usize, 1, 7, 1000] {
            assert_eq!(inst_index(inst_addr(i), 2000), Some(i));
        }
    }

    #[test]
    fn inst_index_rejects_out_of_range() {
        assert_eq!(inst_index(inst_addr(10), 10), None);
        assert_eq!(inst_index(CODE_BASE + 2, 10), None, "misaligned");
        assert_eq!(inst_index(0, 10), None, "below code base");
    }
}
