//! Error types for the ISA crate.

use std::error::Error;
use std::fmt;

/// Errors arising from program construction or emulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IsaError {
    /// A control-flow target referenced an unbound label.
    UnboundLabel {
        /// The label's identifier.
        label: usize,
    },
    /// The program counter left the code segment.
    PcOutOfRange {
        /// The offending code address.
        pc: u64,
    },
    /// An emulation step limit was exceeded without reaching `Halt`.
    StepLimitExceeded {
        /// The limit that was exceeded.
        limit: u64,
    },
}

impl fmt::Display for IsaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IsaError::UnboundLabel { label } => {
                write!(f, "control-flow target references unbound label {label}")
            }
            IsaError::PcOutOfRange { pc } => {
                write!(f, "program counter {pc:#x} left the code segment")
            }
            IsaError::StepLimitExceeded { limit } => {
                write!(f, "emulation exceeded {limit} steps without halting")
            }
        }
    }
}

impl Error for IsaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let e = IsaError::PcOutOfRange { pc: 0x10 };
        let s = e.to_string();
        assert!(!s.is_empty());
        assert!(s.starts_with(char::is_lowercase));
    }

    #[test]
    fn is_std_error() {
        fn takes_err<E: Error + Send + Sync + 'static>(_e: E) {}
        takes_err(IsaError::StepLimitExceeded { limit: 5 });
    }
}
