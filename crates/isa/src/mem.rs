//! Sparse paged simulated memory.

use std::collections::HashMap;

/// Bytes per simulated memory page.
pub const PAGE_BYTES: u64 = 4096;

/// 64-bit words per simulated memory page.
pub const PAGE_WORDS: usize = (PAGE_BYTES / 8) as usize;

type Page = Box<[u64; PAGE_WORDS]>;

/// Entries in the direct-mapped page-translation cache (power of two).
const TCACHE_ENTRIES: usize = 64;

/// Marker for an empty translation-cache slot (no real page number maps
/// here: the simulated address space tops out far below `2^52` pages).
const NO_PAGE: u64 = u64::MAX;

/// A direct-mapped page-number → page-slot translation cache entry.
#[derive(Debug, Clone, Copy)]
struct TransEntry {
    pno: u64,
    slot: u32,
}

/// A sparse, page-granular 64-bit word-addressed memory.
///
/// Pages are allocated on first touch; untouched memory reads as zero.
/// The *footprint* (number of touched pages) is exposed because the
/// paper's storage arguments (conventional checkpoints cost
/// ~memory-footprint bytes; live-state costs ~window-touched bytes)
/// are footprint comparisons.
///
/// Page storage is split into a dense slot vector plus a page-number →
/// slot index, fronted by a small direct-mapped translation cache
/// ([`TCACHE_ENTRIES`] entries) so the common same-few-pages access
/// pattern skips the hash map entirely. Reads through `&self`
/// ([`read_u64`](Self::read_u64)) consult but cannot fill the cache;
/// the emulator's hot paths use the `&mut self` accessors
/// ([`load_u64`](Self::load_u64), [`write_u64`](Self::write_u64)),
/// which fill it.
///
/// All accesses are 64-bit and are silently aligned down to 8 bytes —
/// the workload generator only emits aligned accesses, and alignment
/// carries no information for warming studies.
#[derive(Debug, Clone)]
pub struct SparseMemory {
    /// Page-number → index into `slots`.
    index: HashMap<u64, u32>,
    /// Dense page storage, in first-touch order.
    slots: Vec<Page>,
    /// Direct-mapped translation cache over `index`.
    tcache: [TransEntry; TCACHE_ENTRIES],
}

impl Default for SparseMemory {
    fn default() -> Self {
        SparseMemory {
            index: HashMap::new(),
            slots: Vec::new(),
            tcache: [TransEntry { pno: NO_PAGE, slot: 0 }; TCACHE_ENTRIES],
        }
    }
}

impl SparseMemory {
    /// Create an empty memory.
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    fn split(addr: u64) -> (u64, usize) {
        let aligned = addr & !7;
        (aligned / PAGE_BYTES, ((aligned % PAGE_BYTES) / 8) as usize)
    }

    /// Translation-cache set for a page number.
    #[inline]
    fn tset(pno: u64) -> usize {
        (pno as usize) & (TCACHE_ENTRIES - 1)
    }

    /// Look up a page's slot without touching the translation cache.
    #[inline]
    fn slot_of(&self, pno: u64) -> Option<usize> {
        let t = self.tcache[Self::tset(pno)];
        if t.pno == pno {
            return Some(t.slot as usize);
        }
        self.index.get(&pno).map(|&s| s as usize)
    }

    /// Look up a page's slot, filling the translation cache on a hit in
    /// the backing index.
    #[inline]
    fn slot_of_cached(&mut self, pno: u64) -> Option<usize> {
        let set = Self::tset(pno);
        let t = self.tcache[set];
        if t.pno == pno {
            return Some(t.slot as usize);
        }
        let slot = *self.index.get(&pno)?;
        self.tcache[set] = TransEntry { pno, slot };
        Some(slot as usize)
    }

    /// Look up or allocate a page's slot, filling the translation cache.
    #[inline]
    fn slot_of_alloc(&mut self, pno: u64) -> usize {
        let set = Self::tset(pno);
        let t = self.tcache[set];
        if t.pno == pno {
            return t.slot as usize;
        }
        let slot = *self.index.entry(pno).or_insert_with(|| {
            self.slots.push(Box::new([0u64; PAGE_WORDS]));
            (self.slots.len() - 1) as u32
        });
        self.tcache[set] = TransEntry { pno, slot };
        slot as usize
    }

    /// Read the 64-bit word containing `addr` (aligned down) through a
    /// shared reference. Consults the translation cache but cannot fill
    /// it; prefer [`load_u64`](Self::load_u64) on hot paths.
    #[inline]
    pub fn read_u64(&self, addr: u64) -> u64 {
        let (pno, widx) = Self::split(addr);
        match self.slot_of(pno) {
            Some(s) => self.slots[s][widx],
            None => 0,
        }
    }

    /// Read the 64-bit word containing `addr` (aligned down), filling
    /// the translation cache — the emulator's load path.
    #[inline]
    pub fn load_u64(&mut self, addr: u64) -> u64 {
        let (pno, widx) = Self::split(addr);
        match self.slot_of_cached(pno) {
            Some(s) => self.slots[s][widx],
            None => 0,
        }
    }

    /// Write the 64-bit word containing `addr` (aligned down).
    #[inline]
    pub fn write_u64(&mut self, addr: u64, value: u64) {
        let (pno, widx) = Self::split(addr);
        let s = self.slot_of_alloc(pno);
        self.slots[s][widx] = value;
    }

    /// Read an IEEE-754 double stored at `addr`.
    #[inline]
    pub fn read_f64(&self, addr: u64) -> f64 {
        f64::from_bits(self.read_u64(addr))
    }

    /// Read an IEEE-754 double stored at `addr`, filling the translation
    /// cache — the emulator's FP load path.
    #[inline]
    pub fn load_f64(&mut self, addr: u64) -> f64 {
        f64::from_bits(self.load_u64(addr))
    }

    /// Write an IEEE-754 double at `addr`.
    #[inline]
    pub fn write_f64(&mut self, addr: u64, value: f64) {
        self.write_u64(addr, value.to_bits());
    }

    /// Whether the page containing `addr` has ever been written.
    pub fn is_mapped(&self, addr: u64) -> bool {
        self.slot_of(Self::split(addr).0).is_some()
    }

    /// Number of touched (allocated) pages.
    pub fn page_count(&self) -> usize {
        self.slots.len()
    }

    /// Total footprint in bytes (touched pages × page size).
    ///
    /// This is the quantity the paper reports as the "memory footprint"
    /// driving conventional-checkpoint storage cost (105 MB average for
    /// SPEC2K).
    pub fn footprint_bytes(&self) -> u64 {
        self.slots.len() as u64 * PAGE_BYTES
    }

    /// Install sorted `(word_address, value)` pairs in bulk — the
    /// checkpoint-restore path. Exploits address ordering to translate
    /// each page once per run of same-page words instead of once per
    /// word.
    ///
    /// Accepts unsorted input too (it merely loses the batching win).
    pub fn install_words(&mut self, words: &[(u64, u64)]) {
        let mut current: Option<(u64, usize)> = None;
        for &(addr, value) in words {
            let (pno, widx) = Self::split(addr);
            let slot = match current {
                Some((p, s)) if p == pno => s,
                _ => {
                    let s = self.slot_of_alloc(pno);
                    current = Some((pno, s));
                    s
                }
            };
            self.slots[slot][widx] = value;
        }
    }

    /// Iterate over touched pages as `(first_byte_address, words)` in
    /// ascending address order — the bulk snapshot path.
    ///
    /// Deterministic: pages are visited sorted by page number, not in
    /// the backing map's arbitrary order.
    pub fn pages(&self) -> impl Iterator<Item = (u64, &[u64; PAGE_WORDS])> + '_ {
        let mut order: Vec<(u64, u32)> = self.index.iter().map(|(&p, &s)| (p, s)).collect();
        order.sort_unstable_by_key(|&(p, _)| p);
        order.into_iter().map(move |(pno, slot)| (pno * PAGE_BYTES, &*self.slots[slot as usize]))
    }

    /// Iterate over `(word_address, value)` pairs of all nonzero words,
    /// in ascending address order.
    ///
    /// Used by conventional-checkpoint size accounting and tests; not on
    /// any hot path. The order is deterministic (see [`pages`](Self::pages)),
    /// so callers may hash or diff the stream directly.
    pub fn iter_words(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.pages().flat_map(|(base, page)| {
            page.iter()
                .enumerate()
                .filter(|(_, w)| **w != 0)
                .map(move |(i, w)| (base + i as u64 * 8, *w))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untouched_reads_zero() {
        let m = SparseMemory::new();
        assert_eq!(m.read_u64(0xDEAD_BEE8), 0);
        assert_eq!(m.page_count(), 0);
    }

    #[test]
    fn write_read_roundtrip() {
        let mut m = SparseMemory::new();
        m.write_u64(0x1000, 42);
        m.write_u64(0x1008, 43);
        assert_eq!(m.read_u64(0x1000), 42);
        assert_eq!(m.read_u64(0x1008), 43);
        assert_eq!(m.load_u64(0x1000), 42);
        assert_eq!(m.page_count(), 1);
    }

    #[test]
    fn alignment_rounds_down() {
        let mut m = SparseMemory::new();
        m.write_u64(0x1003, 7);
        assert_eq!(m.read_u64(0x1000), 7);
        assert_eq!(m.read_u64(0x1007), 7);
    }

    #[test]
    fn f64_roundtrip() {
        let mut m = SparseMemory::new();
        m.write_f64(0x2000, 3.25);
        assert_eq!(m.read_f64(0x2000), 3.25);
        assert_eq!(m.load_f64(0x2000), 3.25);
    }

    #[test]
    fn footprint_counts_pages() {
        let mut m = SparseMemory::new();
        for i in 0..10 {
            m.write_u64(i * PAGE_BYTES, 1);
        }
        assert_eq!(m.page_count(), 10);
        assert_eq!(m.footprint_bytes(), 10 * PAGE_BYTES);
    }

    #[test]
    fn iter_words_skips_zeros() {
        let mut m = SparseMemory::new();
        m.write_u64(0x0, 5);
        m.write_u64(0x8, 0); // explicit zero should be skipped
        m.write_u64(0x10, 6);
        let words: Vec<_> = m.iter_words().collect();
        assert_eq!(words, vec![(0x0, 5), (0x10, 6)]);
    }

    #[test]
    fn iteration_is_address_sorted() {
        // Touch pages in descending and aliasing order; iteration must
        // come back ascending regardless of hash-map internals.
        let mut m = SparseMemory::new();
        for pno in [900u64, 3, 700, 64 + 3, 1, 128 + 3] {
            m.write_u64(pno * PAGE_BYTES, pno);
        }
        let pages: Vec<u64> = m.pages().map(|(base, _)| base).collect();
        let mut sorted = pages.clone();
        sorted.sort_unstable();
        assert_eq!(pages, sorted);
        let words: Vec<_> = m.iter_words().collect();
        let mut ws = words.clone();
        ws.sort_unstable();
        assert_eq!(words, ws);
    }

    #[test]
    fn translation_cache_aliasing_is_correct() {
        // Pages 3 and 3+TCACHE_ENTRIES map to the same cache set; the
        // cache must never serve one page's data for the other.
        let mut m = SparseMemory::new();
        let a = 3 * PAGE_BYTES;
        let b = (3 + TCACHE_ENTRIES as u64) * PAGE_BYTES;
        m.write_u64(a, 111);
        m.write_u64(b, 222);
        for _ in 0..4 {
            assert_eq!(m.load_u64(a), 111);
            assert_eq!(m.load_u64(b), 222);
        }
    }

    #[test]
    fn install_words_matches_individual_writes() {
        let words: Vec<(u64, u64)> = (0..2000u64)
            .map(|i| (i * 24 % (40 * PAGE_BYTES), i.wrapping_mul(0x9E37_79B9)))
            .collect();
        let mut sorted = words.clone();
        sorted.sort_unstable();
        sorted.dedup_by_key(|w| w.0);

        let mut bulk = SparseMemory::new();
        bulk.install_words(&sorted);
        let mut single = SparseMemory::new();
        for &(a, v) in &sorted {
            single.write_u64(a, v);
        }
        assert_eq!(bulk.iter_words().collect::<Vec<_>>(), single.iter_words().collect::<Vec<_>>());
    }
}
