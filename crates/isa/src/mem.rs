//! Sparse paged simulated memory.

use std::collections::HashMap;

/// Bytes per simulated memory page.
pub const PAGE_BYTES: u64 = 4096;

/// 64-bit words per simulated memory page.
pub const PAGE_WORDS: usize = (PAGE_BYTES / 8) as usize;

type Page = Box<[u64; PAGE_WORDS]>;

/// A sparse, page-granular 64-bit word-addressed memory.
///
/// Pages are allocated on first touch; untouched memory reads as zero.
/// The *footprint* (number of touched pages) is exposed because the
/// paper's storage arguments (conventional checkpoints cost
/// ~memory-footprint bytes; live-state costs ~window-touched bytes)
/// are footprint comparisons.
///
/// All accesses are 64-bit and are silently aligned down to 8 bytes —
/// the workload generator only emits aligned accesses, and alignment
/// carries no information for warming studies.
#[derive(Debug, Clone, Default)]
pub struct SparseMemory {
    pages: HashMap<u64, Page>,
    // One-entry lookaside to short-circuit the common same-page case.
    last_page: Option<u64>,
}

impl SparseMemory {
    /// Create an empty memory.
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    fn split(addr: u64) -> (u64, usize) {
        let aligned = addr & !7;
        (aligned / PAGE_BYTES, ((aligned % PAGE_BYTES) / 8) as usize)
    }

    /// Read the 64-bit word containing `addr` (aligned down).
    #[inline]
    pub fn read_u64(&self, addr: u64) -> u64 {
        let (pno, widx) = Self::split(addr);
        match self.pages.get(&pno) {
            Some(p) => p[widx],
            None => 0,
        }
    }

    /// Write the 64-bit word containing `addr` (aligned down).
    #[inline]
    pub fn write_u64(&mut self, addr: u64, value: u64) {
        let (pno, widx) = Self::split(addr);
        self.last_page = Some(pno);
        self.pages.entry(pno).or_insert_with(|| Box::new([0u64; PAGE_WORDS]))[widx] = value;
    }

    /// Read an IEEE-754 double stored at `addr`.
    #[inline]
    pub fn read_f64(&self, addr: u64) -> f64 {
        f64::from_bits(self.read_u64(addr))
    }

    /// Write an IEEE-754 double at `addr`.
    #[inline]
    pub fn write_f64(&mut self, addr: u64, value: f64) {
        self.write_u64(addr, value.to_bits());
    }

    /// Whether the page containing `addr` has ever been written.
    pub fn is_mapped(&self, addr: u64) -> bool {
        self.pages.contains_key(&Self::split(addr).0)
    }

    /// Number of touched (allocated) pages.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Total footprint in bytes (touched pages × page size).
    ///
    /// This is the quantity the paper reports as the "memory footprint"
    /// driving conventional-checkpoint storage cost (105 MB average for
    /// SPEC2K).
    pub fn footprint_bytes(&self) -> u64 {
        self.pages.len() as u64 * PAGE_BYTES
    }

    /// Iterate over `(word_address, value)` pairs of all nonzero words.
    ///
    /// Used by conventional-checkpoint size accounting and tests; not on
    /// any hot path.
    pub fn iter_words(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.pages.iter().flat_map(|(pno, page)| {
            let base = pno * PAGE_BYTES;
            page.iter()
                .enumerate()
                .filter(|(_, w)| **w != 0)
                .map(move |(i, w)| (base + i as u64 * 8, *w))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untouched_reads_zero() {
        let m = SparseMemory::new();
        assert_eq!(m.read_u64(0xDEAD_BEE8), 0);
        assert_eq!(m.page_count(), 0);
    }

    #[test]
    fn write_read_roundtrip() {
        let mut m = SparseMemory::new();
        m.write_u64(0x1000, 42);
        m.write_u64(0x1008, 43);
        assert_eq!(m.read_u64(0x1000), 42);
        assert_eq!(m.read_u64(0x1008), 43);
        assert_eq!(m.page_count(), 1);
    }

    #[test]
    fn alignment_rounds_down() {
        let mut m = SparseMemory::new();
        m.write_u64(0x1003, 7);
        assert_eq!(m.read_u64(0x1000), 7);
        assert_eq!(m.read_u64(0x1007), 7);
    }

    #[test]
    fn f64_roundtrip() {
        let mut m = SparseMemory::new();
        m.write_f64(0x2000, 3.25);
        assert_eq!(m.read_f64(0x2000), 3.25);
    }

    #[test]
    fn footprint_counts_pages() {
        let mut m = SparseMemory::new();
        for i in 0..10 {
            m.write_u64(i * PAGE_BYTES, 1);
        }
        assert_eq!(m.page_count(), 10);
        assert_eq!(m.footprint_bytes(), 10 * PAGE_BYTES);
    }

    #[test]
    fn iter_words_skips_zeros() {
        let mut m = SparseMemory::new();
        m.write_u64(0x0, 5);
        m.write_u64(0x8, 0); // explicit zero should be skipped
        m.write_u64(0x10, 6);
        let mut words: Vec<_> = m.iter_words().collect();
        words.sort_unstable();
        assert_eq!(words, vec![(0x0, 5), (0x10, 6)]);
    }
}
