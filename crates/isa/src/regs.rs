//! Architectural register file.

use crate::inst::Reg;

/// The architectural register state: 32 integer and 32 FP registers.
///
/// Integer register `r0` is hard-wired to zero.
#[derive(Debug, Clone, PartialEq)]
pub struct RegFile {
    int: [u64; 32],
    fp: [f64; 32],
}

impl Default for RegFile {
    fn default() -> Self {
        Self::new()
    }
}

impl RegFile {
    /// Create a register file with all registers zeroed.
    pub fn new() -> Self {
        RegFile { int: [0; 32], fp: [0.0; 32] }
    }

    /// Read an integer register.
    #[inline]
    pub fn read(&self, r: Reg) -> u64 {
        self.int[r.index()]
    }

    /// Write an integer register; writes to `r0` are discarded.
    #[inline]
    pub fn write(&mut self, r: Reg, v: u64) {
        if r != Reg::R0 {
            self.int[r.index()] = v;
        }
    }

    /// Read an FP register by index (`0..32`).
    ///
    /// # Panics
    /// Panics if `f >= 32`.
    #[inline]
    pub fn read_fp(&self, f: u8) -> f64 {
        self.fp[f as usize]
    }

    /// Write an FP register by index (`0..32`).
    ///
    /// # Panics
    /// Panics if `f >= 32`.
    #[inline]
    pub fn write_fp(&mut self, f: u8, v: f64) {
        self.fp[f as usize] = v;
    }

    /// Raw view of the integer registers (for checkpoint encoding).
    pub fn int_regs(&self) -> &[u64; 32] {
        &self.int
    }

    /// Raw view of the FP registers (for checkpoint encoding).
    pub fn fp_regs(&self) -> &[f64; 32] {
        &self.fp
    }

    /// Restore integer registers from a raw array (checkpoint load).
    pub fn set_int_regs(&mut self, regs: [u64; 32]) {
        self.int = regs;
        self.int[0] = 0;
    }

    /// Restore FP registers from a raw array (checkpoint load).
    pub fn set_fp_regs(&mut self, regs: [f64; 32]) {
        self.fp = regs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn r0_is_zero() {
        let mut r = RegFile::new();
        r.write(Reg::R0, 99);
        assert_eq!(r.read(Reg::R0), 0);
    }

    #[test]
    fn int_write_read() {
        let mut r = RegFile::new();
        r.write(Reg::R5, 123);
        assert_eq!(r.read(Reg::R5), 123);
    }

    #[test]
    fn fp_write_read() {
        let mut r = RegFile::new();
        r.write_fp(7, 1.5);
        assert_eq!(r.read_fp(7), 1.5);
    }

    #[test]
    fn restore_forces_r0_zero() {
        let mut r = RegFile::new();
        let mut raw = [1u64; 32];
        raw[0] = 77;
        r.set_int_regs(raw);
        assert_eq!(r.read(Reg::R0), 0);
        assert_eq!(r.read(Reg::R1), 1);
    }
}
