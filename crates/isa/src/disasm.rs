//! Disassembly: human-readable rendering of instructions and programs,
//! for debugging workloads and inspecting live-point windows.

use crate::inst::{AluOp, BranchCond, FpOp, Inst};
use crate::program::Program;
use crate::{inst_addr, DynInst};
use std::fmt;

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Inst::Alu { op, rd, rs1, rs2 } => {
                write!(f, "{} {rd}, {rs1}, {rs2}", alu_name(op))
            }
            Inst::AluImm { op, rd, rs1, imm } => {
                write!(f, "{}i {rd}, {rs1}, {imm:#x}", alu_name(op))
            }
            Inst::Mul { rd, rs1, rs2 } => write!(f, "mul {rd}, {rs1}, {rs2}"),
            Inst::Div { rd, rs1, rs2 } => write!(f, "div {rd}, {rs1}, {rs2}"),
            Inst::Fp { op, fd, fs1, fs2 } => {
                let name = match op {
                    FpOp::Add => "fadd",
                    FpOp::Sub => "fsub",
                    FpOp::Max => "fmax",
                };
                write!(f, "{name} f{fd}, f{fs1}, f{fs2}")
            }
            Inst::FpMul { fd, fs1, fs2 } => write!(f, "fmul f{fd}, f{fs1}, f{fs2}"),
            Inst::FpDiv { fd, fs1, fs2 } => write!(f, "fdiv f{fd}, f{fs1}, f{fs2}"),
            Inst::Load { rd, rs1, imm } => write!(f, "ld {rd}, {imm}({rs1})"),
            Inst::FpLoad { fd, rs1, imm } => write!(f, "fld f{fd}, {imm}({rs1})"),
            Inst::Store { rs1, rs2, imm } => write!(f, "st {rs2}, {imm}({rs1})"),
            Inst::FpStore { rs1, fs2, imm } => write!(f, "fst f{fs2}, {imm}({rs1})"),
            Inst::Branch { cond, rs1, rs2, target } => {
                let name = match cond {
                    BranchCond::Eq => "beq",
                    BranchCond::Ne => "bne",
                    BranchCond::Lt => "blt",
                    BranchCond::Ge => "bge",
                };
                write!(f, "{name} {rs1}, {rs2}, {:#x}", inst_addr(target as usize))
            }
            Inst::Jump { rd, target } => {
                if rd == crate::Reg::R0 {
                    write!(f, "j {:#x}", inst_addr(target as usize))
                } else {
                    write!(f, "call {rd}, {:#x}", inst_addr(target as usize))
                }
            }
            Inst::JumpReg { rs1 } => {
                if rs1 == crate::Reg::R31 {
                    write!(f, "ret")
                } else {
                    write!(f, "jr {rs1}")
                }
            }
            Inst::Halt => write!(f, "halt"),
            Inst::Nop => write!(f, "nop"),
        }
    }
}

fn alu_name(op: AluOp) -> &'static str {
    match op {
        AluOp::Add => "add",
        AluOp::Sub => "sub",
        AluOp::And => "and",
        AluOp::Or => "or",
        AluOp::Xor => "xor",
        AluOp::Shl => "shl",
        AluOp::Shr => "shr",
        AluOp::Slt => "slt",
    }
}

impl Program {
    /// Disassemble the instruction range `[from, to)` (indices clamped
    /// to the program), one `address: instruction` line per entry.
    pub fn disassemble(&self, from: usize, to: usize) -> String {
        use std::fmt::Write;
        let to = to.min(self.len());
        let mut out = String::new();
        for (i, inst) in self.insts().iter().enumerate().take(to).skip(from) {
            writeln!(out, "{:#010x}: {inst}", inst_addr(i)).expect("string write");
        }
        out
    }
}

impl fmt::Display for DynInst {
    /// Trace-line rendering: sequence, pc, class, and the effective
    /// address or branch outcome where applicable.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:>8}] {:#010x} {:9}", self.seq, self.pc, self.op.to_string())?;
        if let Some((op, addr)) = self.mem {
            let arrow = match op {
                crate::MemOp::Read => "<-",
                crate::MemOp::Write => "->",
            };
            write!(f, " {arrow} {addr:#x}")?;
        }
        if let Some(b) = self.branch {
            write!(f, " {}{:#x}", if b.taken { "T:" } else { "NT:" }, b.target)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::program::ProgramBuilder;
    use crate::{Emulator, Reg};

    #[test]
    fn renders_every_class() {
        let mut b = ProgramBuilder::new("d");
        let lbl = b.new_label();
        b.li(Reg::R1, 16);
        b.add(Reg::R2, Reg::R1, Reg::R1);
        b.mul(Reg::R3, Reg::R2, Reg::R1);
        b.div(Reg::R4, Reg::R3, Reg::R1);
        b.fadd(1, 2, 3);
        b.fmul(4, 5, 6);
        b.fdiv(7, 8, 9);
        b.load(Reg::R5, Reg::R1, 8);
        b.fload(2, Reg::R1, 16);
        b.store(Reg::R1, Reg::R5, 24);
        b.fstore(Reg::R1, 2, 32);
        b.beq(Reg::R1, Reg::R2, lbl);
        b.jump(lbl);
        b.call(Reg::R31, lbl);
        b.jump_reg(Reg::R31);
        b.jump_reg(Reg::R5);
        b.nop();
        b.bind(lbl);
        b.halt();
        let p = b.build();
        let text = p.disassemble(0, p.len());
        for needle in [
            "addi r1, r0, 0x10",
            "add r2, r1, r1",
            "mul r3",
            "div r4",
            "fadd f1, f2, f3",
            "fmul f4",
            "fdiv f7",
            "ld r5, 8(r1)",
            "fld f2, 16(r1)",
            "st r5, 24(r1)",
            "fst f2, 32(r1)",
            "beq r1, r2,",
            "call r31,",
            "ret",
            "jr r5",
            "nop",
            "halt",
        ] {
            assert!(text.contains(needle), "missing `{needle}` in:\n{text}");
        }
    }

    #[test]
    fn disassemble_clamps_range() {
        let mut b = ProgramBuilder::new("d");
        b.halt();
        let p = b.build();
        assert_eq!(p.disassemble(0, 100).lines().count(), 1);
        assert_eq!(p.disassemble(5, 100), "");
    }

    #[test]
    fn dyninst_trace_line() {
        let mut b = ProgramBuilder::new("d");
        let buf = b.alloc_data(1);
        b.li(Reg::R1, buf as i64);
        b.load(Reg::R2, Reg::R1, 0);
        b.halt();
        let p = b.build();
        let mut emu = Emulator::new(&p);
        emu.step();
        let d = emu.step().unwrap();
        let line = d.to_string();
        assert!(line.contains("load"), "{line}");
        assert!(line.contains("<- 0x"), "{line}");
    }
}
