//! Static program images and the assembler-style builder.

use crate::decoded::{DecodeCache, DecodedProgram};
use crate::error::IsaError;
use crate::inst::{AluOp, BranchCond, FpOp, Inst, Reg};
use crate::DATA_BASE;

/// An opaque forward-referenceable code label issued by
/// [`ProgramBuilder::new_label`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(usize);

/// An immutable static program image: the instruction sequence plus the
/// statically-initialized data segment.
///
/// A `Program` plays the role of the benchmark *binary* in the paper's
/// setup: it is an input shared by every simulation of the benchmark and
/// is therefore **not** stored inside live-points (only dynamically
/// written data is).
#[derive(Debug, Clone)]
pub struct Program {
    name: String,
    insts: Vec<Inst>,
    /// `(word_address, value)` pairs initialized before execution.
    data_init: Vec<(u64, u64)>,
    entry: u32,
    /// Lazily-computed pre-decode of `insts` (derived data: excluded
    /// from equality, reset on clone).
    decoded: DecodeCache,
}

impl PartialEq for Program {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name
            && self.insts == other.insts
            && self.data_init == other.data_init
            && self.entry == other.entry
    }
}

impl Program {
    /// The benchmark's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The static instruction sequence.
    pub fn insts(&self) -> &[Inst] {
        &self.insts
    }

    /// Number of static instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether the program contains no instructions.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Index of the entry instruction.
    pub fn entry(&self) -> u32 {
        self.entry
    }

    /// Fetch the static instruction at `index`, if in range.
    #[inline]
    pub fn fetch(&self, index: usize) -> Option<&Inst> {
        self.insts.get(index)
    }

    /// The statically-initialized data words.
    pub fn data_init(&self) -> &[(u64, u64)] {
        &self.data_init
    }

    /// The pre-decoded instruction stream (computed once per program,
    /// shared by every emulator and timing model running it).
    #[inline]
    pub fn decoded(&self) -> &DecodedProgram {
        self.decoded.get_or_decode(&self.insts)
    }
}

/// Incremental builder for [`Program`] images, in the style of a tiny
/// assembler: emit instructions, bind labels, and resolve branches at
/// [`build`](ProgramBuilder::build) time.
///
/// # Example
///
/// ```
/// use spectral_isa::{ProgramBuilder, Reg};
///
/// let mut b = ProgramBuilder::new("count");
/// b.li(Reg::R1, 3);
/// let top = b.label();
/// b.subi(Reg::R1, Reg::R1, 1);
/// b.bne(Reg::R1, Reg::R0, top);
/// b.halt();
/// let p = b.build();
/// assert_eq!(p.len(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct ProgramBuilder {
    name: String,
    insts: Vec<Inst>,
    labels: Vec<Option<u32>>,
    /// Instruction slots whose `target` field holds a label id to patch.
    fixups: Vec<(usize, Label)>,
    data_init: Vec<(u64, u64)>,
    data_cursor: u64,
}

impl ProgramBuilder {
    /// Start building a program named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        ProgramBuilder {
            name: name.into(),
            insts: Vec::new(),
            labels: Vec::new(),
            fixups: Vec::new(),
            data_init: Vec::new(),
            data_cursor: DATA_BASE,
        }
    }

    /// Current instruction index (where the next emitted instruction will
    /// land).
    pub fn here(&self) -> u32 {
        self.insts.len() as u32
    }

    /// Issue a fresh, not-yet-bound label for forward references.
    pub fn new_label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Bind `label` to the current position.
    pub fn bind(&mut self, label: Label) {
        self.labels[label.0] = Some(self.here());
    }

    /// Issue a label already bound to the current position (back-edges).
    pub fn label(&mut self) -> Label {
        let l = self.new_label();
        self.bind(l);
        l
    }

    /// Reserve `words` 64-bit words of data-segment space, returning the
    /// base address of the reservation.
    pub fn alloc_data(&mut self, words: u64) -> u64 {
        let base = self.data_cursor;
        self.data_cursor += words * 8;
        base
    }

    /// Statically initialize the word at `addr`.
    pub fn init_word(&mut self, addr: u64, value: u64) {
        self.data_init.push((addr, value));
    }

    /// Statically initialize the word at `addr` with a double.
    pub fn init_f64(&mut self, addr: u64, value: f64) {
        self.data_init.push((addr, value.to_bits()));
    }

    /// Emit a raw instruction.
    pub fn push(&mut self, inst: Inst) -> &mut Self {
        self.insts.push(inst);
        self
    }

    // --- ergonomic emitters -------------------------------------------

    /// `rd = imm` (via `addi rd, r0, imm`).
    pub fn li(&mut self, rd: Reg, imm: i64) -> &mut Self {
        self.push(Inst::AluImm { op: AluOp::Add, rd, rs1: Reg::R0, imm })
    }

    /// `rd = rs1 + rs2`.
    pub fn add(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.push(Inst::Alu { op: AluOp::Add, rd, rs1, rs2 })
    }

    /// `rd = rs1 - rs2`.
    pub fn sub(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.push(Inst::Alu { op: AluOp::Sub, rd, rs1, rs2 })
    }

    /// `rd = rs1 + imm`.
    pub fn addi(&mut self, rd: Reg, rs1: Reg, imm: i64) -> &mut Self {
        self.push(Inst::AluImm { op: AluOp::Add, rd, rs1, imm })
    }

    /// `rd = rs1 - imm`.
    pub fn subi(&mut self, rd: Reg, rs1: Reg, imm: i64) -> &mut Self {
        self.push(Inst::AluImm { op: AluOp::Sub, rd, rs1, imm })
    }

    /// `rd = rs1 & imm`.
    pub fn andi(&mut self, rd: Reg, rs1: Reg, imm: i64) -> &mut Self {
        self.push(Inst::AluImm { op: AluOp::And, rd, rs1, imm })
    }

    /// `rd = rs1 ^ imm`.
    pub fn xori(&mut self, rd: Reg, rs1: Reg, imm: i64) -> &mut Self {
        self.push(Inst::AluImm { op: AluOp::Xor, rd, rs1, imm })
    }

    /// `rd = rs1 << imm`.
    pub fn shli(&mut self, rd: Reg, rs1: Reg, imm: i64) -> &mut Self {
        self.push(Inst::AluImm { op: AluOp::Shl, rd, rs1, imm })
    }

    /// `rd = rs1 >> imm` (logical).
    pub fn shri(&mut self, rd: Reg, rs1: Reg, imm: i64) -> &mut Self {
        self.push(Inst::AluImm { op: AluOp::Shr, rd, rs1, imm })
    }

    /// `rd = (rs1 < imm) as u64` (signed set-less-than).
    pub fn slti(&mut self, rd: Reg, rs1: Reg, imm: i64) -> &mut Self {
        self.push(Inst::AluImm { op: AluOp::Slt, rd, rs1, imm })
    }

    /// `rd = rs1 * rs2`.
    pub fn mul(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.push(Inst::Mul { rd, rs1, rs2 })
    }

    /// `rd = rs1 / max(rs2,1)`.
    pub fn div(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.push(Inst::Div { rd, rs1, rs2 })
    }

    /// `fd = fs1 + fs2`.
    pub fn fadd(&mut self, fd: u8, fs1: u8, fs2: u8) -> &mut Self {
        self.push(Inst::Fp { op: FpOp::Add, fd, fs1, fs2 })
    }

    /// `fd = fs1 - fs2`.
    pub fn fsub(&mut self, fd: u8, fs1: u8, fs2: u8) -> &mut Self {
        self.push(Inst::Fp { op: FpOp::Sub, fd, fs1, fs2 })
    }

    /// `fd = fs1 * fs2`.
    pub fn fmul(&mut self, fd: u8, fs1: u8, fs2: u8) -> &mut Self {
        self.push(Inst::FpMul { fd, fs1, fs2 })
    }

    /// `fd = fs1 / fs2`.
    pub fn fdiv(&mut self, fd: u8, fs1: u8, fs2: u8) -> &mut Self {
        self.push(Inst::FpDiv { fd, fs1, fs2 })
    }

    /// `rd = mem[rs1 + imm]`.
    pub fn load(&mut self, rd: Reg, rs1: Reg, imm: i64) -> &mut Self {
        self.push(Inst::Load { rd, rs1, imm })
    }

    /// `fd = mem[rs1 + imm]` (FP load).
    pub fn fload(&mut self, fd: u8, rs1: Reg, imm: i64) -> &mut Self {
        self.push(Inst::FpLoad { fd, rs1, imm })
    }

    /// `mem[rs1 + imm] = rs2`.
    pub fn store(&mut self, rs1: Reg, rs2: Reg, imm: i64) -> &mut Self {
        self.push(Inst::Store { rs1, rs2, imm })
    }

    /// `mem[rs1 + imm] = fs2` (FP store).
    pub fn fstore(&mut self, rs1: Reg, fs2: u8, imm: i64) -> &mut Self {
        self.push(Inst::FpStore { rs1, fs2, imm })
    }

    fn branch(&mut self, cond: BranchCond, rs1: Reg, rs2: Reg, label: Label) -> &mut Self {
        let slot = self.insts.len();
        self.fixups.push((slot, label));
        self.push(Inst::Branch { cond, rs1, rs2, target: 0 })
    }

    /// Branch to `label` if `rs1 == rs2`.
    pub fn beq(&mut self, rs1: Reg, rs2: Reg, label: Label) -> &mut Self {
        self.branch(BranchCond::Eq, rs1, rs2, label)
    }

    /// Branch to `label` if `rs1 != rs2`.
    pub fn bne(&mut self, rs1: Reg, rs2: Reg, label: Label) -> &mut Self {
        self.branch(BranchCond::Ne, rs1, rs2, label)
    }

    /// Branch to `label` if `rs1 < rs2` (signed).
    pub fn blt(&mut self, rs1: Reg, rs2: Reg, label: Label) -> &mut Self {
        self.branch(BranchCond::Lt, rs1, rs2, label)
    }

    /// Branch to `label` if `rs1 >= rs2` (signed).
    pub fn bge(&mut self, rs1: Reg, rs2: Reg, label: Label) -> &mut Self {
        self.branch(BranchCond::Ge, rs1, rs2, label)
    }

    /// Unconditional jump to `label`.
    pub fn jump(&mut self, label: Label) -> &mut Self {
        let slot = self.insts.len();
        self.fixups.push((slot, label));
        self.push(Inst::Jump { rd: Reg::R0, target: 0 })
    }

    /// Call `label`, writing the return address into `rd` (conventionally
    /// `r31`).
    pub fn call(&mut self, rd: Reg, label: Label) -> &mut Self {
        let slot = self.insts.len();
        self.fixups.push((slot, label));
        self.push(Inst::Jump { rd, target: 0 })
    }

    /// Indirect jump through `rs1` (conventionally `ret` via `r31`).
    pub fn jump_reg(&mut self, rs1: Reg) -> &mut Self {
        self.push(Inst::JumpReg { rs1 })
    }

    /// Emit `Halt`.
    pub fn halt(&mut self) -> &mut Self {
        self.push(Inst::Halt)
    }

    /// Emit `Nop`.
    pub fn nop(&mut self) -> &mut Self {
        self.push(Inst::Nop)
    }

    /// Resolve all label fixups and produce the immutable [`Program`].
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::UnboundLabel`] if any referenced label was
    /// never bound.
    pub fn try_build(mut self) -> Result<Program, IsaError> {
        for (slot, label) in &self.fixups {
            let target = self.labels[label.0].ok_or(IsaError::UnboundLabel { label: label.0 })?;
            match &mut self.insts[*slot] {
                Inst::Branch { target: t, .. } | Inst::Jump { target: t, .. } => *t = target,
                other => unreachable!("fixup on non-control instruction {other:?}"),
            }
        }
        Ok(Program {
            name: self.name,
            insts: self.insts,
            data_init: self.data_init,
            entry: 0,
            decoded: DecodeCache::default(),
        })
    }

    /// Resolve fixups and produce the [`Program`].
    ///
    /// # Panics
    ///
    /// Panics if any referenced label was never bound; use
    /// [`try_build`](Self::try_build) to handle that as an error.
    pub fn build(self) -> Program {
        self.try_build().expect("all labels bound")
    }

    /// Byte address just past the data reserved so far.
    pub fn data_end(&self) -> u64 {
        self.data_cursor
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Inst;

    #[test]
    fn forward_label_resolution() {
        let mut b = ProgramBuilder::new("t");
        let end = b.new_label();
        b.li(Reg::R1, 1);
        b.beq(Reg::R0, Reg::R0, end);
        b.li(Reg::R1, 2); // skipped
        b.bind(end);
        b.halt();
        let p = b.build();
        match p.insts()[1] {
            Inst::Branch { target, .. } => assert_eq!(target, 3),
            ref other => panic!("expected branch, got {other:?}"),
        }
    }

    #[test]
    fn unbound_label_is_error() {
        let mut b = ProgramBuilder::new("t");
        let l = b.new_label();
        b.jump(l);
        assert!(matches!(b.try_build(), Err(IsaError::UnboundLabel { .. })));
    }

    #[test]
    fn data_allocation_is_disjoint() {
        let mut b = ProgramBuilder::new("t");
        let a = b.alloc_data(10);
        let c = b.alloc_data(5);
        assert_eq!(c, a + 80);
        assert_eq!(b.data_end(), c + 40);
    }

    #[test]
    fn builder_chains() {
        let mut b = ProgramBuilder::new("t");
        b.li(Reg::R1, 5).addi(Reg::R1, Reg::R1, 1).halt();
        assert_eq!(b.here(), 3);
    }
}
