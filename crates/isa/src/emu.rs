//! The SRISC functional emulator.

use crate::decoded::DecodedProgram;
use crate::inst::{AluOp, FpOp, Inst, Reg};
use crate::mem::SparseMemory;
use crate::program::Program;
use crate::regs::RegFile;
use crate::trace::{BranchInfo, DynInst, MemOp};
use crate::{inst_addr, inst_index, STACK_BASE};

/// A snapshot of architectural register state, sufficient (together with
/// a memory image) to resume functional execution at an arbitrary point.
///
/// This is the "architectural state" component of a checkpoint in the
/// paper's terminology; memory contents are captured separately because
/// live-state stores only the *touched subset* of memory.
#[derive(Debug, Clone, PartialEq)]
pub struct ArchState {
    /// Register file contents.
    pub regs: RegFile,
    /// Code address of the next instruction to execute.
    pub pc: u64,
    /// Commit sequence number of the next instruction.
    pub seq: u64,
}

/// The functional emulator: executes a [`Program`] one committed
/// instruction at a time, yielding a [`DynInst`] record per step.
///
/// The emulator is strictly architectural — no timing. Warming models
/// (caches, TLBs, branch predictors) consume the emitted records; the
/// out-of-order timing model uses an emulator as its correct-path oracle.
#[derive(Debug, Clone)]
pub struct Emulator<'p> {
    program: &'p Program,
    decoded: &'p DecodedProgram,
    regs: RegFile,
    mem: SparseMemory,
    pc: u64,
    seq: u64,
    halted: bool,
}

impl<'p> Emulator<'p> {
    /// Create an emulator at the program entry with a fresh memory image
    /// (data segment initialized, stack pointer in `r30`).
    pub fn new(program: &'p Program) -> Self {
        let mut mem = SparseMemory::new();
        for &(addr, value) in program.data_init() {
            mem.write_u64(addr, value);
        }
        let mut regs = RegFile::new();
        regs.write(Reg::R30, STACK_BASE);
        Emulator {
            program,
            decoded: program.decoded(),
            regs,
            mem,
            pc: inst_addr(program.entry() as usize),
            seq: 0,
            halted: false,
        }
    }

    /// Create an emulator resuming from `state` over a caller-provided
    /// memory image (checkpoint load path).
    pub fn from_state(program: &'p Program, state: ArchState, mem: SparseMemory) -> Self {
        Emulator {
            program,
            decoded: program.decoded(),
            regs: state.regs,
            mem,
            pc: state.pc,
            seq: state.seq,
            halted: false,
        }
    }

    /// The program being executed.
    pub fn program(&self) -> &'p Program {
        self.program
    }

    /// Current architectural snapshot (registers, pc, sequence number).
    pub fn arch_state(&self) -> ArchState {
        ArchState { regs: self.regs.clone(), pc: self.pc, seq: self.seq }
    }

    /// Shared view of the memory image.
    pub fn memory(&self) -> &SparseMemory {
        &self.mem
    }

    /// Exclusive view of the memory image (used to install live-state).
    pub fn memory_mut(&mut self) -> &mut SparseMemory {
        &mut self.mem
    }

    /// Shared view of the register file.
    pub fn regs(&self) -> &RegFile {
        &self.regs
    }

    /// Commit sequence number of the next instruction to execute.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Code address of the next instruction to execute.
    pub fn pc(&self) -> u64 {
        self.pc
    }

    /// Whether the program has halted.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Execute one instruction, returning its dynamic record, or `None`
    /// once the program has halted (the `Halt` instruction itself *is*
    /// recorded; subsequent calls return `None`).
    ///
    /// Leaving the code segment (a wild indirect jump) also halts the
    /// program; the workload suite never does this, but the emulator must
    /// be total.
    pub fn step(&mut self) -> Option<DynInst> {
        if self.halted {
            return None;
        }
        let index = match inst_index(self.pc, self.program.len()) {
            Some(i) => i,
            None => {
                self.halted = true;
                return None;
            }
        };
        // Pre-decoded: operand metadata and control-flow targets were
        // computed once per program image, not per dynamic instruction.
        let d = &self.decoded.insts()[index];
        let pc = self.pc;
        let fall_through = d.fall_through;
        let mut next_pc = fall_through;
        let mut mem_access: Option<(MemOp, u64)> = None;
        let mut branch: Option<BranchInfo> = None;
        let mut int_result: u64 = 0;

        match d.inst {
            Inst::Alu { op, rd, rs1, rs2 } => {
                let v = alu(op, self.regs.read(rs1), self.regs.read(rs2));
                self.regs.write(rd, v);
                int_result = v;
            }
            Inst::AluImm { op, rd, rs1, imm } => {
                let v = alu(op, self.regs.read(rs1), imm as u64);
                self.regs.write(rd, v);
                int_result = v;
            }
            Inst::Mul { rd, rs1, rs2 } => {
                let v = self.regs.read(rs1).wrapping_mul(self.regs.read(rs2));
                self.regs.write(rd, v);
                int_result = v;
            }
            Inst::Div { rd, rs1, rs2 } => {
                let a = self.regs.read(rs1);
                let b = self.regs.read(rs2);
                // ISA-defined: a zero divisor yields the dividend.
                let v = a.checked_div(b).unwrap_or(a);
                self.regs.write(rd, v);
                int_result = v;
            }
            Inst::Fp { op, fd, fs1, fs2 } => {
                let a = self.regs.read_fp(fs1);
                let b = self.regs.read_fp(fs2);
                let v = match op {
                    FpOp::Add => a + b,
                    FpOp::Sub => a - b,
                    FpOp::Max => a.max(b),
                };
                self.regs.write_fp(fd, v);
            }
            Inst::FpMul { fd, fs1, fs2 } => {
                let v = self.regs.read_fp(fs1) * self.regs.read_fp(fs2);
                self.regs.write_fp(fd, v);
            }
            Inst::FpDiv { fd, fs1, fs2 } => {
                let a = self.regs.read_fp(fs1);
                let b = self.regs.read_fp(fs2);
                self.regs.write_fp(fd, if b == 0.0 { a } else { a / b });
            }
            Inst::Load { rd, rs1, imm } => {
                let addr = self.regs.read(rs1).wrapping_add(imm as u64);
                let v = self.mem.load_u64(addr);
                self.regs.write(rd, v);
                int_result = v;
                mem_access = Some((MemOp::Read, addr));
            }
            Inst::FpLoad { fd, rs1, imm } => {
                let addr = self.regs.read(rs1).wrapping_add(imm as u64);
                let v = self.mem.load_f64(addr);
                self.regs.write_fp(fd, v);
                mem_access = Some((MemOp::Read, addr));
            }
            Inst::Store { rs1, rs2, imm } => {
                let addr = self.regs.read(rs1).wrapping_add(imm as u64);
                self.mem.write_u64(addr, self.regs.read(rs2));
                mem_access = Some((MemOp::Write, addr));
            }
            Inst::FpStore { rs1, fs2, imm } => {
                let addr = self.regs.read(rs1).wrapping_add(imm as u64);
                self.mem.write_f64(addr, self.regs.read_fp(fs2));
                mem_access = Some((MemOp::Write, addr));
            }
            Inst::Branch { cond, rs1, rs2, .. } => {
                let taken = cond.eval(self.regs.read(rs1), self.regs.read(rs2));
                let target_addr = d.target_addr;
                if taken {
                    next_pc = target_addr;
                }
                branch = Some(BranchInfo {
                    taken,
                    target: target_addr,
                    conditional: true,
                    indirect: false,
                    is_call: false,
                    is_return: false,
                });
            }
            Inst::Jump { rd, .. } => {
                let target_addr = d.target_addr;
                let is_call = rd != Reg::R0;
                if is_call {
                    self.regs.write(rd, fall_through);
                    int_result = fall_through;
                }
                next_pc = target_addr;
                branch = Some(BranchInfo {
                    taken: true,
                    target: target_addr,
                    conditional: false,
                    indirect: false,
                    is_call,
                    is_return: false,
                });
            }
            Inst::JumpReg { rs1 } => {
                let target_addr = self.regs.read(rs1);
                next_pc = target_addr;
                branch = Some(BranchInfo {
                    taken: true,
                    target: target_addr,
                    conditional: false,
                    indirect: true,
                    is_call: false,
                    is_return: rs1 == Reg::R31,
                });
            }
            Inst::Halt => {
                self.halted = true;
                next_pc = pc;
            }
            Inst::Nop => {}
        }

        let record = DynInst {
            seq: self.seq,
            pc,
            index: index as u32,
            op: d.op,
            int_srcs: d.int_srcs,
            int_dst: d.int_dst,
            fp_srcs: d.fp_srcs,
            fp_dst: d.fp_dst,
            mem: mem_access,
            branch,
            next_pc,
            int_result,
        };
        self.seq += 1;
        self.pc = next_pc;
        Some(record)
    }

    /// Execute up to `n` instructions, invoking `sink` on each record.
    /// Returns the number actually executed (less than `n` only if the
    /// program halts first).
    pub fn run_n(&mut self, n: u64, mut sink: impl FnMut(&DynInst)) -> u64 {
        let mut executed = 0;
        while executed < n {
            match self.step() {
                Some(di) => {
                    sink(&di);
                    executed += 1;
                }
                None => break,
            }
        }
        executed
    }

    /// Run until the commit sequence number reaches `seq` (exclusive),
    /// invoking `sink` on each record. Returns `false` if the program
    /// halted first.
    pub fn run_to_seq(&mut self, seq: u64, sink: impl FnMut(&DynInst)) -> bool {
        if self.seq >= seq {
            return true;
        }
        let n = seq - self.seq;
        self.run_n(n, sink) == n
    }

    /// Borrowing iterator over the remaining committed instructions.
    ///
    /// ```
    /// use spectral_isa::{Emulator, ProgramBuilder, Reg};
    /// let mut b = ProgramBuilder::new("t");
    /// b.li(Reg::R1, 1);
    /// b.halt();
    /// let p = b.build();
    /// let mut emu = Emulator::new(&p);
    /// assert_eq!(emu.trace().count(), 2);
    /// ```
    pub fn trace(&mut self) -> Trace<'_, 'p> {
        Trace { emu: self }
    }
}

/// Iterator over an [`Emulator`]'s remaining committed instructions;
/// created by [`Emulator::trace`].
#[derive(Debug)]
pub struct Trace<'e, 'p> {
    emu: &'e mut Emulator<'p>,
}

impl Iterator for Trace<'_, '_> {
    type Item = DynInst;

    fn next(&mut self) -> Option<DynInst> {
        self.emu.step()
    }
}

#[inline]
fn alu(op: AluOp, a: u64, b: u64) -> u64 {
    match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::And => a & b,
        AluOp::Or => a | b,
        AluOp::Xor => a ^ b,
        AluOp::Shl => a.wrapping_shl((b & 63) as u32),
        AluOp::Shr => a.wrapping_shr((b & 63) as u32),
        AluOp::Slt => ((a as i64) < (b as i64)) as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::ProgramBuilder;

    fn run_all(p: &Program) -> (Vec<DynInst>, Emulator<'_>) {
        let mut emu = Emulator::new(p);
        let mut v = Vec::new();
        while let Some(d) = emu.step() {
            v.push(d);
        }
        (v, emu)
    }

    #[test]
    fn straightline_arithmetic() {
        let mut b = ProgramBuilder::new("t");
        b.li(Reg::R1, 6);
        b.li(Reg::R2, 7);
        b.mul(Reg::R3, Reg::R1, Reg::R2);
        b.halt();
        let p = b.build();
        let (trace, emu) = run_all(&p);
        assert_eq!(emu.regs().read(Reg::R3), 42);
        assert_eq!(trace.len(), 4);
        assert_eq!(trace[2].int_result, 42);
        assert!(emu.is_halted());
    }

    #[test]
    fn loop_commits_expected_count() {
        let mut b = ProgramBuilder::new("t");
        b.li(Reg::R1, 0);
        b.li(Reg::R2, 100);
        let top = b.label();
        b.addi(Reg::R1, Reg::R1, 1);
        b.blt(Reg::R1, Reg::R2, top);
        b.halt();
        let p = b.build();
        let (trace, emu) = run_all(&p);
        // 2 setup + 100*(add+branch) + halt
        assert_eq!(trace.len(), 2 + 200 + 1);
        assert_eq!(emu.regs().read(Reg::R1), 100);
        // Branch records: 99 taken, 1 not-taken.
        let taken = trace
            .iter()
            .filter(|d| d.branch.map(|bi| bi.conditional && bi.taken).unwrap_or(false))
            .count();
        assert_eq!(taken, 99);
    }

    #[test]
    fn memory_trace_records_addresses() {
        let mut b = ProgramBuilder::new("t");
        let buf = b.alloc_data(4);
        b.li(Reg::R1, buf as i64);
        b.li(Reg::R2, 55);
        b.store(Reg::R1, Reg::R2, 8);
        b.load(Reg::R3, Reg::R1, 8);
        b.halt();
        let p = b.build();
        let (trace, emu) = run_all(&p);
        assert_eq!(emu.regs().read(Reg::R3), 55);
        assert_eq!(trace[2].mem, Some((MemOp::Write, buf + 8)));
        assert_eq!(trace[3].mem, Some((MemOp::Read, buf + 8)));
    }

    #[test]
    fn call_and_return() {
        let mut b = ProgramBuilder::new("t");
        let f = b.new_label();
        let after = b.new_label();
        b.call(Reg::R31, f);
        b.bind(after);
        b.li(Reg::R2, 9);
        b.halt();
        b.bind(f);
        b.li(Reg::R1, 4);
        b.jump_reg(Reg::R31);
        let p = b.build();
        let (trace, emu) = run_all(&p);
        assert_eq!(emu.regs().read(Reg::R1), 4);
        assert_eq!(emu.regs().read(Reg::R2), 9);
        let call = trace[0].branch.unwrap();
        assert!(call.is_call && !call.is_return);
        let ret = trace[2].branch.unwrap();
        assert!(ret.is_return && ret.indirect);
    }

    #[test]
    fn data_init_visible_before_execution() {
        let mut b = ProgramBuilder::new("t");
        let buf = b.alloc_data(1);
        b.init_word(buf, 1234);
        b.li(Reg::R1, buf as i64);
        b.load(Reg::R2, Reg::R1, 0);
        b.halt();
        let p = b.build();
        let (_, emu) = run_all(&p);
        assert_eq!(emu.regs().read(Reg::R2), 1234);
    }

    #[test]
    fn snapshot_resume_is_deterministic() {
        // Run 50 insts, snapshot, run rest; compare to uninterrupted run.
        let mut b = ProgramBuilder::new("t");
        let buf = b.alloc_data(64);
        b.li(Reg::R1, 0);
        b.li(Reg::R2, 64);
        b.li(Reg::R3, buf as i64);
        let top = b.label();
        b.store(Reg::R3, Reg::R1, 0);
        b.addi(Reg::R3, Reg::R3, 8);
        b.addi(Reg::R1, Reg::R1, 1);
        b.blt(Reg::R1, Reg::R2, top);
        b.halt();
        let p = b.build();

        let (full, _) = run_all(&p);

        let mut emu = Emulator::new(&p);
        for _ in 0..50 {
            emu.step();
        }
        let state = emu.arch_state();
        let mem = emu.memory().clone();
        let mut resumed = Emulator::from_state(&p, state, mem);
        let mut tail = Vec::new();
        while let Some(d) = resumed.step() {
            tail.push(d);
        }
        assert_eq!(&full[50..], &tail[..]);
    }

    #[test]
    fn run_to_seq_counts() {
        let mut b = ProgramBuilder::new("t");
        b.li(Reg::R1, 0);
        b.li(Reg::R2, 1000);
        let top = b.label();
        b.addi(Reg::R1, Reg::R1, 1);
        b.blt(Reg::R1, Reg::R2, top);
        b.halt();
        let p = b.build();
        let mut emu = Emulator::new(&p);
        assert!(emu.run_to_seq(500, |_| {}));
        assert_eq!(emu.seq(), 500);
        assert!(!emu.run_to_seq(1_000_000, |_| {}), "halts before a million");
    }

    #[test]
    fn wild_jump_halts() {
        let mut b = ProgramBuilder::new("t");
        b.li(Reg::R1, 0x10); // not a code address
        b.jump_reg(Reg::R1);
        b.halt();
        let p = b.build();
        let (trace, emu) = run_all(&p);
        assert!(emu.is_halted());
        assert_eq!(trace.len(), 2, "li + jump_reg, then halt without record");
    }
}
