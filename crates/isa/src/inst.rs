//! Instruction definitions for the SRISC ISA.

use std::fmt;

/// An architectural integer register name (`r0`–`r31`).
///
/// `r0` reads as zero and ignores writes, following the usual RISC
/// convention. The enum form (rather than a raw `u8`) rules out
/// out-of-range register numbers statically (C-NEWTYPE / C-CUSTOM-TYPE).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[allow(missing_docs)]
#[repr(u8)]
pub enum Reg {
    R0 = 0,
    R1,
    R2,
    R3,
    R4,
    R5,
    R6,
    R7,
    R8,
    R9,
    R10,
    R11,
    R12,
    R13,
    R14,
    R15,
    R16,
    R17,
    R18,
    R19,
    R20,
    R21,
    R22,
    R23,
    R24,
    R25,
    R26,
    R27,
    R28,
    R29,
    R30,
    R31,
}

impl Reg {
    /// All 32 register names in order.
    pub const ALL: [Reg; 32] = [
        Reg::R0,
        Reg::R1,
        Reg::R2,
        Reg::R3,
        Reg::R4,
        Reg::R5,
        Reg::R6,
        Reg::R7,
        Reg::R8,
        Reg::R9,
        Reg::R10,
        Reg::R11,
        Reg::R12,
        Reg::R13,
        Reg::R14,
        Reg::R15,
        Reg::R16,
        Reg::R17,
        Reg::R18,
        Reg::R19,
        Reg::R20,
        Reg::R21,
        Reg::R22,
        Reg::R23,
        Reg::R24,
        Reg::R25,
        Reg::R26,
        Reg::R27,
        Reg::R28,
        Reg::R29,
        Reg::R30,
        Reg::R31,
    ];

    /// The register's index in `0..32`.
    #[inline]
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Construct from an index in `0..32`.
    ///
    /// # Panics
    /// Panics if `i >= 32`.
    #[inline]
    pub fn from_index(i: usize) -> Reg {
        Reg::ALL[i]
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.index())
    }
}

/// Integer ALU operation selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum AluOp {
    Add,
    Sub,
    And,
    Or,
    Xor,
    Shl,
    Shr,
    /// Set-less-than (signed): `rd = (rs1 < rs2) as u64`.
    Slt,
}

/// Floating-point operation selector for the `FpAlu` class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum FpOp {
    Add,
    Sub,
    /// Maximum of the two operands; cheap way to build reductions.
    Max,
}

/// Branch condition codes (compare two integer registers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum BranchCond {
    Eq,
    Ne,
    Lt,
    Ge,
}

impl BranchCond {
    /// Evaluate the condition on two signed 64-bit operands.
    #[inline]
    pub fn eval(self, a: u64, b: u64) -> bool {
        let (a, b) = (a as i64, b as i64);
        match self {
            BranchCond::Eq => a == b,
            BranchCond::Ne => a != b,
            BranchCond::Lt => a < b,
            BranchCond::Ge => a >= b,
        }
    }
}

/// Coarse instruction class, used by the timing model to pick a functional
/// unit and latency, and by warming code to classify the dynamic stream.
///
/// The classes mirror SimpleScalar's functional-unit classes as configured
/// in the paper's Table 1 (I-ALU, I-MUL/DIV, FP-ALU, FP-MUL/DIV, plus
/// memory and control).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum OpClass {
    IntAlu,
    IntMul,
    IntDiv,
    FpAlu,
    FpMul,
    FpDiv,
    Load,
    Store,
    Branch,
    Jump,
    Halt,
    Nop,
}

impl OpClass {
    /// Whether instructions of this class reference data memory.
    #[inline]
    pub fn is_mem(self) -> bool {
        matches!(self, OpClass::Load | OpClass::Store)
    }

    /// Whether instructions of this class can redirect control flow.
    #[inline]
    pub fn is_ctrl(self) -> bool {
        matches!(self, OpClass::Branch | OpClass::Jump)
    }
}

impl fmt::Display for OpClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OpClass::IntAlu => "int-alu",
            OpClass::IntMul => "int-mul",
            OpClass::IntDiv => "int-div",
            OpClass::FpAlu => "fp-alu",
            OpClass::FpMul => "fp-mul",
            OpClass::FpDiv => "fp-div",
            OpClass::Load => "load",
            OpClass::Store => "store",
            OpClass::Branch => "branch",
            OpClass::Jump => "jump",
            OpClass::Halt => "halt",
            OpClass::Nop => "nop",
        };
        f.write_str(s)
    }
}

/// A single static SRISC instruction.
///
/// Targets of control instructions are *instruction indices* into the
/// owning [`Program`](crate::Program), not byte addresses; helpers in the
/// crate root convert between the two.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Inst {
    /// `rd = rs1 <op> rs2`
    Alu {
        /// Operation selector.
        op: AluOp,
        /// Destination register.
        rd: Reg,
        /// First source register.
        rs1: Reg,
        /// Second source register.
        rs2: Reg,
    },
    /// `rd = rs1 <op> imm`
    AluImm {
        /// Operation selector.
        op: AluOp,
        /// Destination register.
        rd: Reg,
        /// Source register.
        rs1: Reg,
        /// Sign-extended immediate operand.
        imm: i64,
    },
    /// `rd = rs1 * rs2` (integer multiply; long latency).
    Mul {
        /// Destination register.
        rd: Reg,
        /// First source register.
        rs1: Reg,
        /// Second source register.
        rs2: Reg,
    },
    /// `rd = rs1 / max(rs2,1)` (integer divide; long latency, unpipelined).
    Div {
        /// Destination register.
        rd: Reg,
        /// Dividend register.
        rs1: Reg,
        /// Divisor register (a zero divisor yields `rs1`).
        rs2: Reg,
    },
    /// `fd = fs1 <op> fs2` over the FP register file.
    Fp {
        /// Operation selector.
        op: FpOp,
        /// Destination FP register index (`0..32`).
        fd: u8,
        /// First source FP register index.
        fs1: u8,
        /// Second source FP register index.
        fs2: u8,
    },
    /// `fd = fs1 * fs2`.
    FpMul {
        /// Destination FP register index.
        fd: u8,
        /// First source FP register index.
        fs1: u8,
        /// Second source FP register index.
        fs2: u8,
    },
    /// `fd = fs1 / fs2` (division by zero yields `fs1`).
    FpDiv {
        /// Destination FP register index.
        fd: u8,
        /// Dividend FP register index.
        fs1: u8,
        /// Divisor FP register index.
        fs2: u8,
    },
    /// `rd = mem[rs1 + imm]` (64-bit load).
    Load {
        /// Destination register.
        rd: Reg,
        /// Base address register.
        rs1: Reg,
        /// Byte displacement.
        imm: i64,
    },
    /// `fd = mem[rs1 + imm]` reinterpreted as an IEEE-754 double.
    FpLoad {
        /// Destination FP register index.
        fd: u8,
        /// Base address register.
        rs1: Reg,
        /// Byte displacement.
        imm: i64,
    },
    /// `mem[rs1 + imm] = rs2` (64-bit store).
    Store {
        /// Base address register.
        rs1: Reg,
        /// Value register.
        rs2: Reg,
        /// Byte displacement.
        imm: i64,
    },
    /// `mem[rs1 + imm] = fs2` (FP store).
    FpStore {
        /// Base address register.
        rs1: Reg,
        /// Source FP register index.
        fs2: u8,
        /// Byte displacement.
        imm: i64,
    },
    /// Conditional branch to instruction index `target` when
    /// `cond(rs1, rs2)` holds.
    Branch {
        /// Condition code.
        cond: BranchCond,
        /// First comparison register.
        rs1: Reg,
        /// Second comparison register.
        rs2: Reg,
        /// Taken-path instruction index.
        target: u32,
    },
    /// Unconditional direct jump to instruction index `target`,
    /// writing the return index into `rd` (use `r0` to discard — this
    /// doubles as `call`).
    Jump {
        /// Link register (receives the fall-through instruction index
        /// encoded as a code address).
        rd: Reg,
        /// Target instruction index.
        target: u32,
    },
    /// Indirect jump to the code address held in `rs1` (doubles as
    /// `ret` and as the vehicle for data-dependent control flow).
    JumpReg {
        /// Register holding the target code address.
        rs1: Reg,
    },
    /// Stop the program.
    Halt,
    /// Do nothing for one slot.
    Nop,
}

impl Inst {
    /// The coarse class of this instruction.
    pub fn op_class(&self) -> OpClass {
        match self {
            Inst::Alu { .. } | Inst::AluImm { .. } => OpClass::IntAlu,
            Inst::Mul { .. } => OpClass::IntMul,
            Inst::Div { .. } => OpClass::IntDiv,
            Inst::Fp { .. } => OpClass::FpAlu,
            Inst::FpMul { .. } => OpClass::FpMul,
            Inst::FpDiv { .. } => OpClass::FpDiv,
            Inst::Load { .. } | Inst::FpLoad { .. } => OpClass::Load,
            Inst::Store { .. } | Inst::FpStore { .. } => OpClass::Store,
            Inst::Branch { .. } => OpClass::Branch,
            Inst::Jump { .. } | Inst::JumpReg { .. } => OpClass::Jump,
            Inst::Halt => OpClass::Halt,
            Inst::Nop => OpClass::Nop,
        }
    }

    /// Integer source registers read by this instruction (up to two).
    pub fn int_sources(&self) -> [Option<Reg>; 2] {
        match *self {
            Inst::Alu { rs1, rs2, .. }
            | Inst::Mul { rs1, rs2, .. }
            | Inst::Div { rs1, rs2, .. }
            | Inst::Store { rs1, rs2, .. }
            | Inst::Branch { rs1, rs2, .. } => [Some(rs1), Some(rs2)],
            Inst::AluImm { rs1, .. }
            | Inst::Load { rs1, .. }
            | Inst::FpLoad { rs1, .. }
            | Inst::FpStore { rs1, .. }
            | Inst::JumpReg { rs1 } => [Some(rs1), None],
            _ => [None, None],
        }
    }

    /// Integer destination register written by this instruction, if any.
    pub fn int_dest(&self) -> Option<Reg> {
        match *self {
            Inst::Alu { rd, .. }
            | Inst::AluImm { rd, .. }
            | Inst::Mul { rd, .. }
            | Inst::Div { rd, .. }
            | Inst::Load { rd, .. }
            | Inst::Jump { rd, .. } => (rd != Reg::R0).then_some(rd),
            _ => None,
        }
    }

    /// FP source register indices read by this instruction (up to two).
    pub fn fp_sources(&self) -> [Option<u8>; 2] {
        match *self {
            Inst::Fp { fs1, fs2, .. }
            | Inst::FpMul { fs1, fs2, .. }
            | Inst::FpDiv { fs1, fs2, .. } => [Some(fs1), Some(fs2)],
            Inst::FpStore { fs2, .. } => [Some(fs2), None],
            _ => [None, None],
        }
    }

    /// FP destination register index written by this instruction, if any.
    pub fn fp_dest(&self) -> Option<u8> {
        match *self {
            Inst::Fp { fd, .. }
            | Inst::FpMul { fd, .. }
            | Inst::FpDiv { fd, .. }
            | Inst::FpLoad { fd, .. } => Some(fd),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_roundtrip() {
        for i in 0..32 {
            assert_eq!(Reg::from_index(i).index(), i);
        }
    }

    #[test]
    fn reg_display() {
        assert_eq!(Reg::R0.to_string(), "r0");
        assert_eq!(Reg::R31.to_string(), "r31");
    }

    #[test]
    fn branch_cond_eval() {
        assert!(BranchCond::Eq.eval(3, 3));
        assert!(!BranchCond::Eq.eval(3, 4));
        assert!(BranchCond::Ne.eval(3, 4));
        assert!(BranchCond::Lt.eval(u64::MAX, 0), "-1 < 0 signed");
        assert!(BranchCond::Ge.eval(0, u64::MAX), "0 >= -1 signed");
    }

    #[test]
    fn op_class_of_insts() {
        let ld = Inst::Load { rd: Reg::R1, rs1: Reg::R2, imm: 0 };
        assert_eq!(ld.op_class(), OpClass::Load);
        assert!(ld.op_class().is_mem());
        let br = Inst::Branch { cond: BranchCond::Eq, rs1: Reg::R1, rs2: Reg::R2, target: 0 };
        assert!(br.op_class().is_ctrl());
        assert!(!Inst::Nop.op_class().is_mem());
    }

    #[test]
    fn sources_and_dests() {
        let add = Inst::Alu { op: AluOp::Add, rd: Reg::R3, rs1: Reg::R1, rs2: Reg::R2 };
        assert_eq!(add.int_sources(), [Some(Reg::R1), Some(Reg::R2)]);
        assert_eq!(add.int_dest(), Some(Reg::R3));

        // Writes to r0 are discarded, so r0 is never a dest.
        let addz = Inst::AluImm { op: AluOp::Add, rd: Reg::R0, rs1: Reg::R1, imm: 1 };
        assert_eq!(addz.int_dest(), None);

        let fp = Inst::FpMul { fd: 1, fs1: 2, fs2: 3 };
        assert_eq!(fp.fp_sources(), [Some(2), Some(3)]);
        assert_eq!(fp.fp_dest(), Some(1));
        assert_eq!(fp.int_dest(), None);
    }
}
